# Developer entry points.  All targets run from the repo root; the
# package is imported from src/ without installation.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke test-process test-economics bench-smoke bench-full lint

# The tier-1 gate: the full test + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 with the process backend forced for every default-backend
# slice_many call (csr kernel, fused saturation on) — the lane that
# proves backend choice never changes results.  Speedup pins that need
# >= 2 cores self-skip on small runners.
test-process:
	REPRO_SLICE_BACKEND=process REPRO_KERNEL=csr REPRO_BATCH_SATURATION=on \
		$(PYTHON) -m pytest tests -x -q

# The fast subset (seconds, not minutes) for edit-run loops.
smoke:
	$(PYTHON) -m pytest -m smoke -q

# The store suites under a deliberately tiny size cap (1 MB): every
# session run in these tests fights the evictor, exercising the
# cost-tier ordering and the degraded paths CI's economics lane pins.
test-economics:
	REPRO_CACHE_MAX_BYTES=1000000 $(PYTHON) -m pytest tests/test_store.py tests/test_cache_economics.py -q

# Quick benchmark pass: QUICK_SUITE with capped slice counts.
# Both bench targets leave a machine-readable BENCH_<n>.json in the
# repo root (measured speedups + wall times per benchmark).
bench-smoke:
	REPRO_BENCH_JSON=. $(PYTHON) -m pytest benchmarks -x -q

# The full §8 reproduction (much slower).
bench-full:
	REPRO_BENCH_FULL=1 REPRO_BENCH_JSON=. $(PYTHON) -m pytest benchmarks -x -q

# No third-party linters in the container: syntax-check everything.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q >/dev/null
