"""Setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (which require ``bdist_wheel``) fail.  This shim
enables the legacy ``setup.py develop`` editable-install path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
