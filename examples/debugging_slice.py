"""Debugging with executable slices (§5 motivation).

A program misbehaves at a specific print under a specific calling
context (a "bug site" in the style of Horwitz et al. 2010).  We take a
specialization slice with respect to that exact (vertex, call-stack)
configuration, producing a *much smaller runnable program* that
reproduces the faulty value — ready for bisection and experiment.

Usage:  python examples/debugging_slice.py
"""

from repro.core import executable_program, specialization_slice
from repro.core.criteria import configs_criterion
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.pds import encode_sdg
from repro.sdg import build_sdg

SOURCE = """
int total;
int count;
int errors;

int clamp(int v, int lo, int hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

void record(int v) {
  // BUG: the clamp range is inverted, so every sample becomes 100.
  int c = clamp(v, 100, 0);
  total = total + c;
  count = count + 1;
}

void audit(int v) {
  if (v < 0) { errors = errors + 1; }
}

int main() {
  int i = 0;
  while (i < 5) {
    int sample = input();
    record(sample);
    audit(sample);
    i = i + 1;
  }
  print("total %d\\n", total);
  print("count %d\\n", count);
  print("errors %d\\n", errors);
}
"""


def main():
    program = parse(SOURCE)
    info = check(program)
    sdg = build_sdg(program, info)

    # The symptom: "total" prints a wrong value.  Slice from exactly
    # that print's arguments, in main's (empty) calling context.
    total_print = sdg.print_call_vertices()[0]
    encoding = encode_sdg(sdg)
    configs = [(vid, ()) for vid in sorted(sdg.print_criterion([total_print]))]
    criterion = configs_criterion(encoding, configs)

    result = specialization_slice(sdg, criterion)
    executable = executable_program(result)

    print("--- debugging slice (total only) ---")
    print(pretty(executable.program))
    print("kept %d of %d vertices; versions: %s" % (
        result.sdg.vertex_count(),
        sdg.vertex_count(),
        {k: v for k, v in result.version_counts().items() if v},
    ))

    inputs = [7, -3, 42, 9, 1]
    full = run_program(program, inputs)
    slim = run_program(executable.program, inputs)
    print("full program prints:", full.values)
    print("slice prints:       ", slim.values)
    # The slice reproduces the buggy total (5 * 100 = 500) without the
    # count/errors machinery.
    assert slim.values == [full.values[0]]
    # 'audit' and 'errors' play no role in the symptom:
    kept_procs = [p.name for p in executable.program.procs]
    assert not any("audit" in name for name in kept_procs)


if __name__ == "__main__":
    main()
