"""Quickstart: specialization slicing in five steps.

Runs Algorithm 1 on the paper's running example (Fig. 1(a)) and prints
the polyvariant executable slice (Fig. 1(b)): procedure ``p`` splits
into a one-parameter and a two-parameter version.

Usage:  python examples/quickstart.py
"""

from repro.core import executable_program, specialization_slice
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg

SOURCE = """
int g1;
int g2;
int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  print("%d", g2);
  return 0;
}
"""


def main():
    # 1. Parse and check the subject program.
    program = parse(SOURCE)
    info = check(program)

    # 2. Build its system dependence graph.
    sdg = build_sdg(program, info)
    print("SDG: %d vertices, %d edges" % (sdg.vertex_count(), sdg.edge_count()))

    # 3. Pick a slicing criterion: the actual parameters of the print.
    criterion = sdg.print_criterion()

    # 4. Run Algorithm 1 (PDS encoding -> Prestar -> MRD -> read-out).
    result = specialization_slice(sdg, criterion)
    print("Specialized versions per procedure:", result.version_counts())
    print("Automaton sizes: A1=%d states, A6=%d states" % (
        result.stats["a1_states"], result.stats["a6_states"]))

    # 5. Render the executable slice and run both programs.
    executable = executable_program(result)
    print("\n--- polyvariant executable slice ---")
    print(pretty(executable.program))

    original = run_program(program)
    sliced = run_program(executable.program)
    print("original prints:", original.values)
    print("slice prints:   ", sliced.values)
    assert original.values == sliced.values


if __name__ == "__main__":
    main()
