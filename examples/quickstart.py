"""Quickstart: specialization slicing in five steps, then the fast paths.

Part 1 runs Algorithm 1 step by step on the paper's running example
(Fig. 1(a)) and prints the polyvariant executable slice (Fig. 1(b)):
procedure ``p`` splits into a one-parameter and a two-parameter
version.

Part 2 does the same work the production way: a shared
:class:`repro.engine.SlicingSession` (one front half, many memoized
criteria) backed by the persistent on-disk store, so a second process
— here simulated with a second session against the same cache
directory — answers the whole batch from disk with no saturation work.

Usage:  python examples/quickstart.py
"""

import tempfile

import repro
from repro.core import executable_program, specialization_slice
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg

SOURCE = """
int g1;
int g2;
int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  print("%d", g2);
  return 0;
}
"""


def main():
    # 1. Parse and check the subject program.
    program = parse(SOURCE)
    info = check(program)

    # 2. Build its system dependence graph.
    sdg = build_sdg(program, info)
    print("SDG: %d vertices, %d edges" % (sdg.vertex_count(), sdg.edge_count()))

    # 3. Pick a slicing criterion: the actual parameters of the print.
    criterion = sdg.print_criterion()

    # 4. Run Algorithm 1 (PDS encoding -> Prestar -> MRD -> read-out).
    result = specialization_slice(sdg, criterion)
    print("Specialized versions per procedure:", result.version_counts())
    print("Automaton sizes: A1=%d states, A6=%d states" % (
        result.stats["a1_states"], result.stats["a6_states"]))

    # 5. Render the executable slice and run both programs.
    executable = executable_program(result)
    print("\n--- polyvariant executable slice ---")
    print(pretty(executable.program))

    original = run_program(program)
    sliced = run_program(executable.program)
    print("original prints:", original.values)
    print("slice prints:   ", sliced.values)
    assert original.values == sliced.values


def sessions_and_the_store():
    """Part 2: session reuse, then the warm-cache path."""
    cache_dir = tempfile.mkdtemp(prefix="repro-quickstart-")

    # One session serves many criteria: parse, SDG, PDS encoding, and
    # the shared Poststar saturation happen once; each criterion's
    # saturation and slice are memoized under a canonical key.
    session = repro.open_session(SOURCE, cache_dir=cache_dir)
    results = session.slice_many(["prints", ("print", 0), "prints"])
    assert results[0] is results[2]  # duplicate criteria dedupe
    print("\n--- session reuse ---")
    print("versions:", results[0].version_counts())
    stats = session.stats
    print("slice hits/misses: %(slice_hits)d/%(slice_misses)d" % stats)

    # The warm-cache path: a *fresh* session (think: a new process, or
    # the same corpus next week) against the same cache directory loads
    # the front half and every slice from disk — zero saturation work.
    from repro.engine import SlicingSession
    from repro.store import SliceStore

    warm = SlicingSession(SOURCE, store=SliceStore(cache_dir))
    warm_results = warm.slice_many(["prints", ("print", 0)])
    stats = warm.stats
    print("--- warm store (%s) ---" % cache_dir)
    print("front half from store:", stats["front_half_from_store"])
    print("persist hits/misses: %(persist_hits)d/%(persist_misses)d" % stats)
    assert stats["front_half_from_store"] and stats["saturation_misses"] == 0
    # Byte-identical to the fresh computation.
    assert pretty(executable_program(warm_results[0]).program) == pretty(
        executable_program(results[0]).program
    )
    print("warm results byte-identical: True")


def incremental_editing():
    """Part 3: the editor loop — edit the source, update the session."""
    session = repro.open_session(SOURCE)
    before = session.slice_many(["prints"])[0]

    # A one-token edit: update_source diffs per-procedure content keys,
    # rebuilds only the changed PDG, and keeps every memoized
    # saturation the edit provably left intact.
    edited = SOURCE.replace("p(g2, 3)", "p(g2, 33)")
    summary = session.update_source(edited)
    after = session.slice_many(["prints"])[0]

    print("\n--- incremental update ---")
    print(
        "procs reused/rebuilt: %d/%d, saturations kept: %d (%s path)"
        % (
            summary["procs_reused"],
            summary["procs_rebuilt"],
            summary["saturations_kept"],
            "fast" if summary["fast_path"] else "slow",
        )
    )
    # Byte-identical to a cold session on the edited text.
    cold = repro.slice_source(edited)
    assert pretty(executable_program(after).program) == pretty(cold.program)
    assert after is not before
    print("incremental result byte-identical to cold: True")


if __name__ == "__main__":
    main()
    sessions_and_the_store()
    incremental_editing()
