"""Extracting specialized components (§5): a line-count-only wc.

Slicing wc with respect to its line-count report yields a runnable
program that does a fraction of the original's work — the paper's
"create a version of the word-count utility wc that counts only lines"
example, with the speedup measured in interpreter steps.

Usage:  python examples/wc_specialization.py
"""

from repro.core import executable_program, specialization_slice
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.wc import load_wc, text_to_inputs

TEXT = (
    "we hold these truths to be self evident\n"
    "that all men are created equal\n"
    "\n"
    "life liberty and the pursuit of happiness\n"
) * 6


def main():
    program, _info, sdg = load_wc()
    inputs = text_to_inputs(TEXT)
    original = run_program(program, inputs)
    print("full wc prints:", original.values, "(%d steps)" % original.steps)

    labels = ["lines", "words", "chars", "longest"]
    for label, print_vid in zip(labels, sdg.print_call_vertices()):
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        executable = executable_program(result)
        sliced = run_program(executable.program, inputs)
        print(
            "%-8s slice: value=%r, steps=%d (%.0f%% of original)"
            % (
                label,
                sliced.values,
                sliced.steps,
                100.0 * sliced.steps / original.steps,
            )
        )
        if label == "lines":
            print("--- the line-count-only wc ---")
            print(pretty(executable.program))


if __name__ == "__main__":
    main()
