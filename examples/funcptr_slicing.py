"""Slicing through function pointers (§6.2, Fig. 15).

Indirect calls are lowered to explicit dispatch procedures over the
pointer's points-to set; the slicer then specializes the dispatcher and
its targets like ordinary procedures, keeping stubs for procedures that
exist only as addresses.

Usage:  python examples/funcptr_slicing.py
"""

from repro.core import executable_program, lower_indirect_calls, specialization_slice
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg

SOURCE = """
int acc;

int plus(int a, int b) {
  return a + b;
}

int fst(int a, int b) {
  return a;
}

int apply_twice(fnptr op, int x, int y) {
  int once = op(x, y);
  int twice = op(once, y);
  return twice;
}

int main() {
  fnptr op;
  int mode = input();
  if (mode > 0) {
    op = plus;
  } else {
    op = fst;
  }
  acc = apply_twice(op, 3, 4);
  print("%d", acc);
}
"""


def main():
    program = parse(SOURCE)
    info = check(program)

    lowered, lowered_info = lower_indirect_calls(program, info)
    print("--- after §6.2 lowering ---")
    print(pretty(lowered))

    sdg = build_sdg(lowered, lowered_info)
    result = specialization_slice(sdg, sdg.print_criterion())
    executable = executable_program(result)
    print("--- specialization slice ---")
    print(pretty(executable.program))

    for inputs in ([1], [0], [-9]):
        original = run_program(program, inputs)
        sliced = run_program(executable.program, inputs)
        print("input %r: original %r, slice %r" % (inputs, original.values, sliced.values))
        assert original.values == sliced.values


if __name__ == "__main__":
    main()
