"""Feature removal for multi-procedure programs (§7, Fig. 16).

The tally program computes both a sum and a product through a shared
``add`` helper.  Deleting the forward slice of ``prod = 1`` naively
would delete ``add`` — breaking the sum.  Algorithm 2 subtracts the
feature's *configurations* on the unrolled SDG instead, so ``add``
survives and ``tally`` is specialized away from its ``prod`` parameter.

Usage:  python examples/feature_removal_demo.py
"""

from repro.core import executable_program, remove_feature
from repro.lang import ast_nodes as A
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig16


def main():
    program, _info, sdg = load_fig16()
    print("--- original (sum and product) ---")
    print(pretty(program))

    # The feature to remove: everything influenced by prod's initializer.
    prod_decl = next(
        s
        for s in A.walk_stmts(program.proc("main").body)
        if isinstance(s, A.LocalDecl) and s.name == "prod"
    )
    criterion = [sdg.vertex_of_stmt[prod_decl.uid]]

    result = remove_feature(sdg, criterion, contexts="empty")
    executable = executable_program(result)
    print("--- product feature removed (Fig. 16(b)) ---")
    print(pretty(executable.program))

    original = run_program(program, max_steps=5_000_000)
    reduced = run_program(executable.program, max_steps=5_000_000)
    print("original prints:", original.values, "(%d steps)" % original.steps)
    print("reduced prints: ", reduced.values, "(%d steps)" % reduced.steps)
    assert reduced.values == [original.values[0]]
    assert reduced.steps < original.steps


if __name__ == "__main__":
    main()
