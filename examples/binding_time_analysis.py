"""Polyvariant binding-time analysis for partial evaluation (§9).

An off-line partial evaluator wants to know, per procedure and per
calling pattern, which parameters are static (can be evaluated at
specialization time) and which are dynamic.  The paper's machinery
answers this polyvariantly: forward stack-configuration slice from the
dynamic inputs + MRD partition.

Here ``power`` is called once with both arguments known and once with a
dynamic exponent: BTA discovers the two binding-time divisions that an
off-line specializer would use to generate a fully-static ``power_1``
and a residual ``power_2``.

Usage:  python examples/binding_time_analysis.py
"""

from repro.core import binding_time_analysis, dynamic_input_vertices
from repro.lang import check, parse
from repro.sdg import build_sdg

SOURCE = """
int result;

int power(int base, int exp) {
  int acc = 1;
  int i = 0;
  while (i < exp) {
    acc = acc * base;
    i = i + 1;
  }
  return acc;
}

int main() {
  int n = input();
  result = power(2, 10);
  print("static: %d\\n", result);
  result = power(3, n);
  print("dynamic: %d\\n", result);
}
"""


def main():
    program = parse(SOURCE)
    info = check(program)
    sdg = build_sdg(program, info)

    dynamic = dynamic_input_vertices(sdg)
    result = binding_time_analysis(sdg, dynamic)

    print("binding-time divisions:")
    print(result.report())
    print()
    print("division counts:", result.division_counts())

    divisions = result.divisions_of("power")
    # Only the n-site makes power dynamic; its 'exp' parameter (and the
    # loop it controls) are delayed, while 'base' stays static.
    for division in divisions:
        labels = sorted(
            sdg.vertices[sdg.formal_ins["power"][role]].label
            for role in division.dynamic_param_roles
        )
        print("power division: dynamic params =", labels)
        assert labels == ["exp_in"]


if __name__ == "__main__":
    main()
