"""Finite-state automata and transducers (the OpenFST substitute).

Provides exactly the operations Algorithm 1 and the §8.3 reslicing check
need: reversal, subset-construction determinization, Hopcroft
minimization, epsilon removal, product intersection, complementation,
language equality, and finite-state transducers with inverse application.
"""

from repro.fsa.automaton import FiniteAutomaton
from repro.fsa.determinize import determinize
from repro.fsa.minimize import minimize
from repro.fsa.ops import (
    complement,
    intersection,
    is_empty,
    language_equal,
    mrd,
    remove_epsilon,
    reverse,
    union,
)
from repro.fsa.transducer import Transducer

__all__ = [
    "FiniteAutomaton",
    "Transducer",
    "complement",
    "determinize",
    "intersection",
    "is_empty",
    "language_equal",
    "minimize",
    "mrd",
    "remove_epsilon",
    "reverse",
    "union",
]
