"""Finite-state automata and transducers (the OpenFST substitute).

Provides exactly the operations Algorithm 1 and the §8.3 reslicing check
need: reversal, subset-construction determinization, Hopcroft
minimization, epsilon removal, product intersection, complementation,
language equality, and finite-state transducers with inverse application
— plus the deterministic serialization layer (:mod:`repro.fsa.serialize`)
that relocatable saturation artifacts are built on.
"""

from repro.fsa.automaton import FiniteAutomaton
from repro.fsa.determinize import determinize
from repro.fsa.minimize import minimize
from repro.fsa.ops import (
    complement,
    intersection,
    is_empty,
    language_equal,
    mrd,
    remove_epsilon,
    reverse,
    union,
)
from repro.fsa.serialize import (
    automaton_from_payload,
    automaton_to_payload,
    canonical_dfa,
    structurally_equal,
)
from repro.fsa.transducer import Transducer

__all__ = [
    "FiniteAutomaton",
    "Transducer",
    "automaton_from_payload",
    "automaton_to_payload",
    "canonical_dfa",
    "complement",
    "determinize",
    "intersection",
    "is_empty",
    "language_equal",
    "minimize",
    "mrd",
    "remove_epsilon",
    "reverse",
    "structurally_equal",
    "union",
]
