"""Finite-state transducers for the §8.3 reslicing check.

The reslicing check needs only *alphabetic* (length-preserving, state-
less) transductions: every vertex or call-site symbol of the specialized
SDG ``R`` maps to the symbol of the original SDG ``S`` it specializes.
Such a transduction is a plain symbol-to-symbol mapping, and its inverse
maps one ``S`` symbol to the set of ``R`` symbols specializing it.

``apply`` rewrites an automaton's labels through the mapping (computing
``T(A)``); ``apply_inverse`` computes an automaton for ``T^{-1}(A)``.
Both preserve the state graph, which is exactly the composition of a
recognizer with a one-state transducer.
"""

from repro.fsa.automaton import EPSILON, FiniteAutomaton


class Transducer(object):
    """A one-state, symbol-to-symbol finite-state transducer."""

    def __init__(self, mapping=None):
        self._map = dict(mapping or {})
        self._inverse = {}
        for src, dst in self._map.items():
            self._inverse.setdefault(dst, set()).add(src)

    def add(self, src, dst):
        self._map[src] = dst
        self._inverse.setdefault(dst, set()).add(src)

    def __getitem__(self, symbol):
        return self._map[symbol]

    def get(self, symbol, default=None):
        return self._map.get(symbol, default)

    def inverse_of(self, symbol):
        """All input symbols mapping to ``symbol``."""
        return set(self._inverse.get(symbol, ()))

    def apply(self, automaton):
        """T(A): rewrite each transition label through the mapping.
        Labels without a mapping are kept unchanged (identity)."""
        result = FiniteAutomaton(automaton.initials, automaton.finals)
        for state in automaton.states:
            result.add_state(state)
        for src, symbol, dst in automaton.transitions():
            if symbol is EPSILON:
                result.add_transition(src, EPSILON, dst)
            else:
                result.add_transition(src, self._map.get(symbol, symbol), dst)
        return result

    def apply_inverse(self, automaton):
        """T^{-1}(A): each transition on ``y`` becomes transitions on
        every ``x`` with ``T(x) = y``.  Symbols with no preimage are
        dropped (the inverse transduction of a symbol outside the
        transducer's range is empty)."""
        result = FiniteAutomaton(automaton.initials, automaton.finals)
        for state in automaton.states:
            result.add_state(state)
        for src, symbol, dst in automaton.transitions():
            if symbol is EPSILON:
                result.add_transition(src, EPSILON, dst)
                continue
            for preimage in self._inverse.get(symbol, ()):
                result.add_transition(src, preimage, dst)
        return result

    def __len__(self):
        return len(self._map)
