"""Deterministic automaton serialization and structural equality.

Saturation automata outlive the process that computed them: they are
pickled into the persistent store's ``__sats__`` table, shipped to
process-pool workers, and compared across interpreter runs by the
differential harnesses.  ``FiniteAutomaton``'s in-memory representation
(dicts of sets) pickles fine but not *deterministically* — iteration
order depends on insertion history — so this module defines a canonical
payload form:

* :func:`automaton_to_payload` renders an automaton as nested tuples
  with states and transitions in a stable order (sorted by
  :func:`stable_render`, the same deterministic rendering the store's
  key digests use), so equal automata serialize to equal bytes in any
  process;
* :func:`automaton_from_payload` is the exact inverse;
* :func:`structurally_equal` is identity of the state/transition sets
  (the round-trip guarantee, strictly stronger than language equality);
* :func:`canonical_dfa` brings any automaton to its minimal trim DFA
  with states renamed in BFS discovery order over stably-sorted
  symbols — two automata accept the same language **iff** their
  canonical DFAs are structurally equal, which is how the artifact
  property tests check language preservation without a graph-
  isomorphism search.

States and symbols must be built from ints, strings, bytes, bools,
None, and (frozen)sets/tuples thereof — true for every automaton the
PDS machinery produces (control locations, ``__post__`` mid-states,
intersection pairs).
"""

from collections import deque

from repro.fsa.automaton import EPSILON, FiniteAutomaton
from repro.fsa.determinize import determinize
from repro.fsa.minimize import minimize
from repro.fsa.ops import remove_epsilon


def stable_render(value):
    """A process-independent total order key for states and symbols
    (``repr`` is deterministic for the value types above; sets are
    ordered by their elements' renderings)."""
    if isinstance(value, (frozenset, set)):
        return "{%s}" % ",".join(sorted(stable_render(item) for item in value))
    if isinstance(value, tuple):
        return "(%s)" % ",".join(stable_render(item) for item in value)
    return repr(value)


def automaton_to_payload(automaton):
    """The canonical tuple form ``(states, initials, finals,
    transitions)``: states in stable order, initials/finals as sorted
    index tuples, transitions as ``(src_index, symbol, dst_index)``
    sorted by (src, symbol rendering, dst)."""
    states = sorted(automaton.states, key=stable_render)
    index = {state: position for position, state in enumerate(states)}
    transitions = sorted(
        (
            (index[src], symbol, index[dst])
            for (src, symbol, dst) in automaton.transitions()
        ),
        key=lambda entry: (entry[0], stable_render(entry[1]), entry[2]),
    )
    return (
        tuple(states),
        tuple(sorted(index[state] for state in automaton.initials)),
        tuple(sorted(index[state] for state in automaton.finals)),
        tuple(transitions),
    )


def automaton_from_payload(payload):
    """Rebuild the exact automaton :func:`automaton_to_payload` came
    from (same states, same transitions — structural identity, not just
    language equality)."""
    states, initials, finals, transitions = payload
    automaton = FiniteAutomaton()
    for state in states:
        automaton.add_state(state)
    for position in initials:
        automaton.add_initial(states[position])
    for position in finals:
        automaton.add_final(states[position])
    for (src, symbol, dst) in transitions:
        automaton.add_transition(states[src], symbol, states[dst])
    return automaton


def structurally_equal(left, right):
    """Exact equality of the two automata's state, initial, final, and
    transition sets (what a serialization round trip must preserve)."""
    return (
        left.states == right.states
        and left.initials == right.initials
        and left.finals == right.finals
        and set(left.transitions()) == set(right.transitions())
    )


def canonical_dfa(automaton):
    """The minimal trim DFA with states renamed ``0, 1, ...`` in BFS
    discovery order (symbols visited in stable order), so that language
    equality becomes structural equality of canonical forms."""
    minimal = minimize(determinize(remove_epsilon(automaton)))
    result = FiniteAutomaton()
    if not minimal.states:
        return result
    start = next(iter(minimal.initials))
    numbering = {start: 0}
    result.add_initial(0)
    if start in minimal.finals:
        result.add_final(0)
    queue = deque([start])
    while queue:
        state = queue.popleft()
        for symbol in sorted(minimal.out_symbols(state), key=stable_render):
            if symbol is EPSILON:
                continue
            (target,) = minimal.targets(state, symbol)
            if target not in numbering:
                numbering[target] = len(numbering)
                if target in minimal.finals:
                    result.add_final(numbering[target])
                queue.append(target)
            result.add_transition(numbering[state], symbol, numbering[target])
    return result
