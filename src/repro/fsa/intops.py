"""Integer-kernel implementations of the hot FSA operations.

Each function here is the ``csr`` twin of an object implementation —
:func:`repro.fsa.ops.remove_epsilon`, :meth:`FiniteAutomaton.trim`,
:func:`repro.fsa.determinize.determinize`,
:func:`repro.fsa.minimize.minimize` — run over the
:mod:`repro.fsa.intcodec` representation and decoded back to the exact
same result automaton: same state objects (including the frozenset
subset states of determinize and the frozenset-of-frozensets quotient
states of minimize), same transitions, same initials and finals.  The
property suite asserts structural equality against the object twins,
which is what lets callers switch kernels without perturbing anything
downstream.

:func:`mrd_int` is the fused form of Algorithm 1 lines 4–8 (reverse;
determinize; minimize; reverse) that :func:`repro.core.specialize
.specialization_slice` runs under the ``csr`` kernel: one encode, the
whole chain over bitsets, one decode — no intermediate object automata
at all, which is where the kernel's speedup on determinize-heavy
workloads (Fig. 13) comes from.
"""

from repro.fsa.automaton import FiniteAutomaton
from repro.fsa.intcodec import (
    assemble_automaton,
    decode_automaton,
    decode_packed_rows,
    encode_automaton,
    iter_bits,
    trim_bits,
    trim_packed_rows,
)


def trim_int(automaton):
    """Kernel twin of :meth:`FiniteAutomaton.trim`."""
    enc = encode_automaton(automaton)
    return decode_automaton(enc, keep_bits=trim_bits(enc))


def query_view_int(automaton, initial):
    """Kernel twin of :func:`repro.core.criteria.as_query_view`: the
    same transitions read from a single ``initial`` state, trimmed —
    one encode, one bitset trim, one decode, instead of copying the
    whole P-automaton object-by-object and trimming the copy."""
    enc = encode_automaton(automaton)
    enc.initials_bits = 1 << enc.state_id(initial)
    return decode_automaton(enc, keep_bits=trim_bits(enc))


def intersection_int(left, right):
    """Kernel twin of ``intersection(left, right).trim()``
    (:func:`repro.fsa.ops.intersection`): the BFS product over dense
    pair codes and packed rows, trimmed over bitsets, decoded to the
    same ``(a, b)`` tuple states the object construction builds.  This
    is the post-saturation read-out hot spot — the reachable-view ∩
    criterion product of
    :func:`repro.core.criteria.reachable_contexts_criterion` — where
    the left operand is the program-sized reachable view."""
    if left.has_epsilon() or right.has_epsilon():
        raise ValueError("intersection requires epsilon-free automata")
    lenc = encode_automaton(left)
    renc = encode_automaton(right)
    # Product symbols are left-symbol ids; a right symbol the left never
    # uses cannot label a product transition.
    sym_map = {}
    for rsym, symbol in enumerate(renc.syms):
        lsym = lenc.symidx.get(symbol)
        if lsym is not None:
            sym_map[lsym] = rsym
    lrows = lenc.out
    rrows = [dict(row) for row in renc.out]

    pairs = []  # discovery-ordered (left id, right id)
    index = {}
    for a in iter_bits(lenc.initials_bits):
        for b in iter_bits(renc.initials_bits):
            index[(a, b)] = len(pairs)
            pairs.append((a, b))
    initials_bits = (1 << len(pairs)) - 1 if pairs else 0
    finals_bits = 0
    out_rows = []
    position = 0
    while position < len(pairs):
        a, b = pairs[position]
        brow = rrows[b]
        row = {}
        for lsym, abits in lrows[a]:
            rsym = sym_map.get(lsym)
            if rsym is None:
                continue
            bbits = brow.get(rsym)
            if not bbits:
                continue
            targets = 0
            for da in iter_bits(abits):
                for db in iter_bits(bbits):
                    pair = (da, db)
                    j = index.get(pair)
                    if j is None:
                        j = index[pair] = len(pairs)
                        pairs.append(pair)
                    targets |= 1 << j
            if targets:
                row[lsym] = targets
        out_rows.append(row)
        if ((lenc.finals_bits >> a) & 1) and ((renc.finals_bits >> b) & 1):
            finals_bits |= 1 << position
        position += 1

    present = (1 << len(pairs)) - 1 if pairs else 0
    keep = trim_packed_rows(out_rows, initials_bits, finals_bits, present)
    lstates = lenc.states
    rstates = renc.states
    return decode_packed_rows(
        [(lstates[a], rstates[b]) for a, b in pairs],
        lenc.syms,
        out_rows,
        None,
        initials_bits,
        finals_bits,
        keep,
    )


def remove_epsilon_int(automaton):
    """Kernel twin of :func:`repro.fsa.ops.remove_epsilon`: every input
    state is kept (even isolated ones), a state is final iff its epsilon
    closure meets the finals, and its non-epsilon transitions are the
    union over the closure."""
    enc = encode_automaton(automaton)
    n = len(enc.states)
    out = enc.out
    finals_bits = enc.finals_bits
    states = enc.states
    syms = enc.syms
    new_finals = 0
    triples = []
    for sid in range(n):
        closure = enc.closure_bits(1 << sid)
        if closure & finals_bits:
            new_finals |= 1 << sid
        row = {}
        for mid in iter_bits(closure):
            for sym, bits in out[mid]:
                row[sym] = row.get(sym, 0) | bits
        src = states[sid]
        for sym, bits in row.items():
            symbol = syms[sym]
            for dst in iter_bits(bits):
                triples.append((src, symbol, states[dst]))
    return assemble_automaton(
        states,
        [states[sid] for sid in iter_bits(enc.initials_bits)],
        [states[sid] for sid in iter_bits(new_finals)],
        triples,
    )


def eliminate_epsilon_rows(out_rows, eps_out, present, finals_bits):
    """Epsilon elimination directly over the saturation kernel's packed
    fixpoint rows (``out_rows[src id]`` = ``{symbol id: target bitset}``,
    ``eps_out[src id]`` = epsilon-successor bitset), restricted to the
    ``present`` state bitset: states unchanged, a state becomes final
    iff its epsilon closure meets the finals, and its non-epsilon rows
    are unioned over the closure.  Returns ``(closed_rows,
    closed_finals)``.  This is the row-level twin of
    :func:`remove_epsilon_int`, shared by ``poststar_csr`` and the
    batched ``poststar_many_csr`` projections so both close epsilons by
    the same code."""
    closed_rows = [None] * len(out_rows)
    closed_finals = finals_bits
    for sid in iter_bits(present):
        bit = 1 << sid
        closure = bit
        todo = eps_out[sid]
        while todo:
            low = todo & -todo
            todo ^= low
            if closure & low:
                continue
            closure |= low
            todo |= eps_out[low.bit_length() - 1] & ~closure
        if closure & finals_bits:
            closed_finals |= bit
        if closure == bit:
            closed_rows[sid] = out_rows[sid]
            continue
        row = dict(out_rows[sid])
        for mid in iter_bits(closure ^ bit):
            for sym, bits in out_rows[mid].items():
                row[sym] = row.get(sym, 0) | bits
        closed_rows[sid] = row
    return closed_rows, closed_finals


def determinize_int(automaton):
    """Kernel twin of :func:`repro.fsa.determinize.determinize`:
    subset construction with epsilon-closure semantics, subsets carried
    as bitsets and decoded to the same frozenset states the object
    construction builds."""
    enc = encode_automaton(automaton)
    out = enc.out
    start = enc.closure_bits(enc.initials_bits)
    subsets = [start]
    index = {start: 0}
    rows = []
    position = 0
    while position < len(subsets):
        bits = subsets[position]
        row = {}
        for sid in iter_bits(bits):
            for sym, tbits in out[sid]:
                row[sym] = row.get(sym, 0) | tbits
        entries = []
        for sym, tbits in row.items():
            closure = enc.closure_bits(tbits)
            j = index.get(closure)
            if j is None:
                j = index[closure] = len(subsets)
                subsets.append(closure)
            entries.append((sym, j))
        rows.append(entries)
        position += 1
    states = enc.states
    syms = enc.syms
    subset_obj = [
        frozenset(states[sid] for sid in iter_bits(bits)) for bits in subsets
    ]
    finals_bits = enc.finals_bits
    triples = []
    for position, entries in enumerate(rows):
        src = subset_obj[position]
        for sym, j in entries:
            triples.append((src, syms[sym], subset_obj[j]))
    return assemble_automaton(
        subset_obj,
        [subset_obj[0]],
        [
            subset_obj[position]
            for position, bits in enumerate(subsets)
            if bits & finals_bits
        ],
        triples,
    )


def _symbol_ranks(syms):
    """Dense ranks replicating the object minimize's per-state
    transition sort key ``repr(symbol)`` (repr is injective over the
    int/string symbol universe the PDS machinery produces; ties — which
    cannot arise there — break by symbol id)."""
    order = sorted(range(len(syms)), key=lambda sym: (repr(syms[sym]), sym))
    ranks = [0] * len(syms)
    for rank, sym in enumerate(order):
        ranks[sym] = rank
    return ranks


def _refine(kept, rows, finals_bits):
    """Moore partition refinement, mirroring the object implementation:
    initial split finals / non-finals (the implicit dead state sits with
    the non-finals), then resplit by sparse successor-block signatures
    (transitions into the dead block omitted) until the block count is
    stable.  ``rows[sid]`` lists ``(symbol id, target)`` sorted in
    repr-rank order; a target outside ``kept`` is the dead state.
    Returns ``(block_of, dead_block)``."""
    block_of = {}
    for sid in kept:
        block_of[sid] = 0 if (finals_bits >> sid) & 1 else 1
    dead_block = 1
    while True:
        block_count = len(set(block_of.values()) | {dead_block})
        signatures = {}
        new_block_of = {}
        for sid in kept:
            sparse = []
            for sym, dst in rows[sid]:
                dst_block = block_of.get(dst, dead_block)
                if dst_block != dead_block:
                    sparse.append((sym, dst_block))
            signature = (block_of[sid], tuple(sparse))
            new_block_of[sid] = signatures.setdefault(signature, len(signatures))
        new_dead = signatures.setdefault((dead_block, ()), len(signatures))
        block_of, dead_block = new_block_of, new_dead
        if len(signatures) == block_count:
            return block_of, dead_block


def minimize_int(automaton):
    """Kernel twin of :func:`repro.fsa.minimize.minimize`: trim, Moore
    refinement over int ids, quotient states decoded as the same
    ``frozenset(block members)`` the object implementation builds.

    The object version ends with a ``trim()`` of the quotient; that trim
    is a no-op — every DFA state the refinement sees is reachable from
    the initial state and co-reachable to a final one (the input was
    trimmed), and quotienting preserves both along the very same paths —
    so the kernel builds the quotient directly.
    """
    if not automaton.is_deterministic():
        raise ValueError("minimize requires a deterministic automaton")
    enc = encode_automaton(automaton)
    keep = trim_bits(enc)
    if not keep or not (keep & enc.finals_bits):
        return FiniteAutomaton()
    kept = list(iter_bits(keep))
    ranks = _symbol_ranks(enc.syms)
    rows = {}
    for sid in kept:
        # Deterministic input: every target bitset is a single bit.
        row = sorted(
            (ranks[sym], sym, bits.bit_length() - 1) for sym, bits in enc.out[sid]
        )
        rows[sid] = [(sym, dst) for _rank, sym, dst in row]
    block_of, dead_block = _refine(kept, rows, enc.finals_bits)

    states = enc.states
    members = {}
    for sid in kept:
        members.setdefault(block_of[sid], []).append(sid)
    representative = {
        block: frozenset(states[sid] for sid in sids)
        for block, sids in members.items()
        if block != dead_block
    }
    syms = enc.syms
    triples = []
    for sid in kept:
        src = representative[block_of[sid]]
        for sym, dst in rows[sid]:
            dst_block = block_of.get(dst, dead_block)
            if dst_block != dead_block:
                triples.append((src, syms[sym], representative[dst_block]))
    initial_sid = next(iter_bits(enc.initials_bits & keep))
    return assemble_automaton(
        list(representative.values()),
        [representative[block_of[initial_sid]]],
        [
            representative[block_of[sid]]
            for sid in iter_bits(enc.finals_bits & keep)
        ],
        triples,
    )


def mrd_int(view):
    """The fused int MRD chain over an epsilon-free query view:
    reverse, determinize, Moore-minimize, reverse — all over bitsets,
    decoding only the final automaton (``a6``).  Structurally identical
    to running the object chain of :func:`repro.core.specialize
    .specialization_slice` stage by stage.

    Returns ``(a6, a3_states, a4_states)``, or None when the view has
    epsilon transitions (the caller falls back to the object chain,
    whose determinize-through-closure produces structurally different —
    language-equal — subsets than remove-epsilon-then-determinize
    would).
    """
    enc = encode_automaton(view)
    if enc.has_eps:
        return None
    n = len(enc.states)

    # Reversed adjacency: rev_rows[t] lists (symbol, source bitset) for
    # every transition src -symbol-> t of the view.
    rev = [{} for _ in range(n)]
    for sid in range(n):
        bit = 1 << sid
        for sym, bits in enc.out[sid]:
            for dst in iter_bits(bits):
                row = rev[dst]
                row[sym] = row.get(sym, 0) | bit
    rev_rows = [list(row.items()) for row in rev]

    # Subset construction over the reversal: initials are the view's
    # finals, accepting subsets meet the view's initials.
    start = enc.finals_bits
    subsets = [start]
    index = {start: 0}
    dfa_rows = []
    position = 0
    while position < len(subsets):
        bits = subsets[position]
        row = {}
        for sid in iter_bits(bits):
            for sym, sbits in rev_rows[sid]:
                row[sym] = row.get(sym, 0) | sbits
        entries = []
        for sym, tbits in row.items():
            j = index.get(tbits)
            if j is None:
                j = index[tbits] = len(subsets)
                subsets.append(tbits)
            entries.append((sym, j))
        dfa_rows.append(entries)
        position += 1
    a3_states = len(subsets)

    rev_finals = enc.initials_bits
    dfa_finals = [
        position for position, bits in enumerate(subsets) if bits & rev_finals
    ]
    if not dfa_finals:
        return FiniteAutomaton(), a3_states, 0

    # Minimize's trim: every subset is reachable by construction, keep
    # the ones co-reachable to an accepting subset.
    dfa_rin = [[] for _ in range(len(subsets))]
    for position, entries in enumerate(dfa_rows):
        for _sym, j in entries:
            dfa_rin[j].append(position)
    keep = set()
    stack = list(dfa_finals)
    while stack:
        position = stack.pop()
        if position in keep:
            continue
        keep.add(position)
        stack.extend(dfa_rin[position])

    ranks = _symbol_ranks(enc.syms)
    rows = {}
    finals_bits_dfa = 0
    for position in dfa_finals:
        finals_bits_dfa |= 1 << position
    kept = sorted(keep)
    for position in kept:
        row = sorted((ranks[sym], sym, j) for sym, j in dfa_rows[position])
        rows[position] = [(sym, j) for _rank, sym, j in row]
    block_of, dead_block = _refine(kept, rows, finals_bits_dfa)

    # Quotient and final reversal, fused: a quotient transition
    # block(i) -sym-> block(j) becomes rep(j) -sym-> rep(i) in a6, the
    # quotient's finals become a6's initials and vice versa.  The
    # object chain's closing trims (minimize's and any a5 one) are
    # no-ops here for the same reachability argument as in
    # :func:`minimize_int`.
    states = enc.states
    members = {}
    for position in kept:
        members.setdefault(block_of[position], []).append(position)
    subset_obj = {
        position: frozenset(
            states[sid] for sid in iter_bits(subsets[position])
        )
        for position in kept
    }
    representative = {
        block: frozenset(subset_obj[position] for position in positions)
        for block, positions in members.items()
        if block != dead_block
    }
    a4_states = len(representative)
    syms = enc.syms
    triples = []
    for position in kept:
        dst = representative[block_of[position]]
        for sym, j in rows[position]:
            j_block = block_of.get(j, dead_block)
            if j_block != dead_block:
                triples.append((representative[j_block], syms[sym], dst))
    a6 = assemble_automaton(
        list(representative.values()),
        {representative[block_of[position]] for position in dfa_finals},
        [representative[block_of[0]]],
        triples,
    )
    return a6, a3_states, a4_states
