"""Automaton operations: reverse, epsilon removal, product intersection,
complement, union, emptiness, language equality, and the MRD pipeline of
Algorithm 1 (lines 4–8)."""

from collections import deque

from repro import kernelcfg
from repro.fsa.automaton import EPSILON, FiniteAutomaton
from repro.fsa.determinize import determinize
from repro.fsa.minimize import minimize


def reverse(automaton):
    """The reversal: L(reverse(A)) = { w^R : w in L(A) }.

    Implemented by flipping every transition and swapping initial/final
    state sets — no epsilon transitions are introduced (multiple initial
    states are allowed in our representation, unlike OpenFST's, which is
    why the paper's implementation needed an epsilon-removal step)."""
    result = FiniteAutomaton(initials=automaton.finals, finals=automaton.initials)
    for state in automaton.states:
        result.add_state(state)
    for src, symbol, dst in automaton.transitions():
        result.add_transition(dst, symbol, src)
    return result


def remove_epsilon(automaton, kernel=None):
    """An equivalent automaton with no epsilon transitions.

    ``kernel`` selects the implementation (default: the ``REPRO_KERNEL``
    environment knob); the ``csr`` kernel computes the closures over
    bitsets (:mod:`repro.fsa.intops`) with structurally identical
    output."""
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.fsa.intops import remove_epsilon_int

        return remove_epsilon_int(automaton)
    result = FiniteAutomaton()
    for state in automaton.initials:
        result.add_initial(state)
    for state in automaton.states:
        result.add_state(state)
    for state in automaton.states:
        closure = automaton.epsilon_closure([state])
        if closure & automaton.finals:
            result.add_final(state)
        for mid in closure:
            for symbol in automaton.out_symbols(mid):
                if symbol is EPSILON:
                    continue
                for dst in automaton.targets(mid, symbol):
                    result.add_transition(state, symbol, dst)
    return result


def intersection(left, right):
    """Product construction: L = L(left) ∩ L(right).

    Requires epsilon-free inputs (apply :func:`remove_epsilon` first);
    handles nondeterminism and multiple initial states."""
    if left.has_epsilon() or right.has_epsilon():
        raise ValueError("intersection requires epsilon-free automata")
    result = FiniteAutomaton()
    queue = deque()
    for a in left.initials:
        for b in right.initials:
            pair = (a, b)
            result.add_initial(pair)
            queue.append(pair)
    seen = set(result.states)
    while queue:
        a, b = queue.popleft()
        if a in left.finals and b in right.finals:
            result.add_final((a, b))
        for symbol in left.out_symbols(a) & right.out_symbols(b):
            for da in left.targets(a, symbol):
                for db in right.targets(b, symbol):
                    pair = (da, db)
                    result.add_transition((a, b), symbol, pair)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
    return result


def complement(automaton, alphabet):
    """The complement with respect to ``alphabet``* .

    The input is determinized, completed with a dead state, and its
    final/non-final states are swapped."""
    dfa = determinize(remove_epsilon(automaton)) if automaton.has_epsilon() else determinize(automaton)
    dead = ("__dead__",)
    result = FiniteAutomaton()
    if not dfa.initials:
        # Empty-language DFA: complement accepts everything.
        result.add_initial(dead)
        result.add_final(dead)
        for symbol in alphabet:
            result.add_transition(dead, symbol, dead)
        return result
    initial = next(iter(dfa.initials))
    result.add_initial(initial)
    result.add_state(dead)
    for state in list(dfa.states) + [dead]:
        missing = set(alphabet)
        if state is not dead:
            for symbol in dfa.out_symbols(state):
                targets = dfa.targets(state, symbol)
                result.add_transition(state, symbol, next(iter(targets)))
                missing.discard(symbol)
        for symbol in missing:
            result.add_transition(state, symbol, dead)
        if state is dead or state not in dfa.finals:
            result.add_final(state)
    return result


def union(left, right):
    """Disjoint union (tags states to avoid collisions)."""
    result = FiniteAutomaton()
    for tag, automaton in (("L", left), ("R", right)):
        for state in automaton.initials:
            result.add_initial((tag, state))
        for state in automaton.finals:
            result.add_final((tag, state))
        for state in automaton.states:
            result.add_state((tag, state))
        for src, symbol, dst in automaton.transitions():
            result.add_transition((tag, src), symbol, (tag, dst))
    return result


def is_empty(automaton):
    """True iff L(A) is empty."""
    return not automaton.trim().finals


def language_equal(left, right):
    """Language equality via minimal-DFA isomorphism.

    Both automata are brought to minimal trim DFA form; minimal DFAs
    accepting the same language are unique up to renaming, so a
    structural isomorphism check decides equality.
    """
    a = minimize(determinize(remove_epsilon(left)))
    b = minimize(determinize(remove_epsilon(right)))
    if len(a.states) != len(b.states):
        return False
    if not a.states:
        return True
    if a.transition_count() != b.transition_count():
        return False
    # Parallel walk from the initial states.
    start_a = next(iter(a.initials))
    start_b = next(iter(b.initials))
    mapping = {start_a: start_b}
    queue = deque([start_a])
    while queue:
        sa = queue.popleft()
        sb = mapping[sa]
        if (sa in a.finals) != (sb in b.finals):
            return False
        if a.out_symbols(sa) != b.out_symbols(sb):
            return False
        for symbol in a.out_symbols(sa):
            da = next(iter(a.targets(sa, symbol)))
            db = next(iter(b.targets(sb, symbol)))
            if da in mapping:
                if mapping[da] != db:
                    return False
            else:
                mapping[da] = db
                queue.append(da)
    return True


def mrd(automaton):
    """The minimal reverse-deterministic automaton for L(A): Algorithm 1,
    lines 4–8 (reverse; determinize; minimize; reverse; remove-epsilon —
    the last is a no-op in our representation, kept for fidelity)."""
    reversed_a = reverse(automaton)
    det = determinize(remove_epsilon(reversed_a) if reversed_a.has_epsilon() else reversed_a)
    minimal = minimize(det)
    back = reverse(minimal)
    return remove_epsilon(back) if back.has_epsilon() else back


def is_reverse_deterministic(automaton):
    """True iff reverse(A) is deterministic (at most one *source* per
    (state, symbol) pair, a single final state, no epsilon)."""
    if len(automaton.finals) != 1 or automaton.has_epsilon():
        return False
    seen = {}
    for src, symbol, dst in automaton.transitions():
        key = (dst, symbol)
        if key in seen and seen[key] != src:
            return False
        seen[key] = src
    return True
