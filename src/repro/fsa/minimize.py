"""DFA minimization by partition refinement (Moore's algorithm).

The input must be deterministic (possibly partial: missing transitions
go to an implicit dead state).  The result is the minimal *trim* DFA:
unreachable states and the dead state are removed, so the minimal
automaton for the empty language has no states.

Moore's refinement — repeatedly split blocks by the successor-block
signature until stable — is O(n^2 |Σ|) in the worst case, versus
Hopcroft's O(n log n); the automata arising from Prestar on SDGs are
small enough (a few states per procedure specialization) that the
simpler algorithm is the better engineering choice.  The module-level
benchmark ``benchmarks/test_determinize_shrink.py`` confirms minimize is
never the bottleneck.
"""

from repro import kernelcfg
from repro.fsa.automaton import FiniteAutomaton

_DEAD = ("__dead__",)


def minimize(automaton, kernel=None):
    """Return the minimal trim DFA equivalent to ``automaton``.

    ``kernel`` selects the implementation (default: the ``REPRO_KERNEL``
    environment knob): the ``csr`` kernel refines over int ids and
    bitsets (:mod:`repro.fsa.intops`) and decodes to the structurally
    identical quotient (same frozenset block states)."""
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.fsa.intops import minimize_int

        return minimize_int(automaton)
    if not automaton.is_deterministic():
        raise ValueError("minimize requires a deterministic automaton")
    trimmed = automaton.trim()
    if not trimmed.states or not trimmed.finals:
        return FiniteAutomaton()

    states = list(trimmed.states) + [_DEAD]

    # Sparse successor lists: a missing transition is equivalent to a
    # transition into the dead state, so signatures only record
    # transitions whose target block differs from the dead state's —
    # avoiding an O(|states| * |alphabet|) signature per round (SDG
    # alphabets contain every vertex id, so dense signatures are huge).
    out_transitions = {state: [] for state in states}
    for src, symbol, dst in trimmed.transitions():
        out_transitions[src].append((symbol, dst))
    for transitions in out_transitions.values():
        transitions.sort(key=lambda item: repr(item[0]))

    # Initial partition: finals vs non-finals (dead state is non-final).
    block_of = {}
    for state in states:
        block_of[state] = 0 if (state is not _DEAD and state in trimmed.finals) else 1

    # Refinement only ever splits blocks, so iterate until the block
    # count stabilizes.
    while True:
        block_count = len(set(block_of.values()))
        dead_block = block_of[_DEAD]
        signatures = {}
        new_block_of = {}
        for state in states:
            sparse = tuple(
                (symbol, block_of[dst])
                for symbol, dst in out_transitions[state]
                if block_of[dst] != dead_block
            )
            signature = (block_of[state], sparse)
            if signature not in signatures:
                signatures[signature] = len(signatures)
            new_block_of[state] = signatures[signature]
        block_of = new_block_of
        if len(signatures) == block_count:
            break

    # Build the quotient automaton, dropping the dead state's block.
    blocks = {}
    for state in states:
        blocks.setdefault(block_of[state], set()).add(state)
    dead_block = block_of[_DEAD]

    result = FiniteAutomaton()
    representative = {
        index: frozenset(members - {_DEAD}) for index, members in blocks.items()
    }
    initial = next(iter(trimmed.initials))
    result.add_initial(representative[block_of[initial]])
    for state in trimmed.finals:
        result.add_final(representative[block_of[state]])
    for src, symbol, dst in trimmed.transitions():
        if block_of[dst] == dead_block:
            continue
        result.add_transition(
            representative[block_of[src]], symbol, representative[block_of[dst]]
        )
    return result.trim()
