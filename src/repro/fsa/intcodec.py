"""The integer codec behind the ``csr`` kernel: automata as int arrays
and bitsets.

The object representation (:class:`repro.fsa.automaton.FiniteAutomaton`)
keys everything by arbitrary hashable states and symbols; the hot loops
of saturation, subset construction, and partition refinement then spend
most of their time hashing tuples and frozensets.  The codec flattens an
automaton to

* ``states`` — a list giving each state a dense id (index -> object),
* ``syms`` — the same for non-epsilon symbols,
* ``out`` — per state, a list of ``(symbol id, target bitset)`` pairs,
* ``eps_out`` — per state, the epsilon-successor bitset,
* ``initials_bits`` / ``finals_bits`` — state-set bitsets,

where every *set of states* is a Python int bitset (bit ``i`` = state
``i``).  Kernel loops then run over machine ints; the codec decodes the
final result back into the exact state/symbol objects it was built
from, so an encode -> compute -> decode round trip is *structurally
identical* to the object computation (pinned by the property suite in
``tests/test_kernel_properties.py``).
"""

from repro.fsa.automaton import EPSILON, FiniteAutomaton


def bits_of(ids):
    """The bitset with exactly the given bit positions set."""
    bits = 0
    for index in ids:
        bits |= 1 << index
    return bits


def iter_bits(bits):
    """The set bit positions of a bitset, ascending.  The ``m &= m-1``
    trick visits each set bit once; ``bit_length`` turns the isolated
    low bit back into its position."""
    while bits:
        low = bits & -bits
        bits ^= low
        yield low.bit_length() - 1


class IntAutomaton(object):
    """An automaton flattened to dense int ids and bitsets (see the
    module docstring for the field layout)."""

    __slots__ = (
        "states",
        "index",
        "syms",
        "symidx",
        "out",
        "eps_out",
        "initials_bits",
        "finals_bits",
        "has_eps",
    )

    def __init__(self):
        self.states = []
        self.index = {}
        self.syms = []
        self.symidx = {}
        self.out = []
        self.eps_out = []
        self.initials_bits = 0
        self.finals_bits = 0
        self.has_eps = False

    def state_id(self, state):
        """The dense id for ``state``, allocating one if new."""
        sid = self.index.get(state)
        if sid is None:
            sid = self.index[state] = len(self.states)
            self.states.append(state)
            self.out.append([])
            self.eps_out.append(0)
        return sid

    def sym_id(self, symbol):
        """The dense id for a (non-epsilon) ``symbol``."""
        sym = self.symidx.get(symbol)
        if sym is None:
            sym = self.symidx[symbol] = len(self.syms)
            self.syms.append(symbol)
        return sym

    def closure_bits(self, bits):
        """Epsilon closure of a state bitset."""
        if not self.has_eps:
            return bits
        eps_out = self.eps_out
        todo = bits
        while todo:
            low = todo & -todo
            todo ^= low
            new = eps_out[low.bit_length() - 1] & ~bits
            bits |= new
            todo |= new
        return bits


def encode_automaton(automaton):
    """Flatten a :class:`FiniteAutomaton` into an :class:`IntAutomaton`.

    States are numbered in the automaton's insertion order (the order is
    internal to one kernel call and never observable — decode restores
    the original objects)."""
    enc = IntAutomaton()
    for state in automaton.states:
        enc.state_id(state)
    # Group targets per (state, symbol) into one bitset, reading the
    # representation directly: the per-bucket sets are exactly what
    # bitsets replace.
    index = enc.index
    for src, buckets in automaton._out.items():
        sid = index[src]
        row = enc.out[sid]
        for symbol, dsts in buckets.items():
            bits = 0
            for dst in dsts:
                bits |= 1 << index[dst]
            if symbol is EPSILON:
                enc.eps_out[sid] = bits
                if bits:
                    enc.has_eps = True
            else:
                row.append((enc.sym_id(symbol), bits))
    for state in automaton.initials:
        enc.initials_bits |= 1 << index[state]
    for state in automaton.finals:
        enc.finals_bits |= 1 << index[state]
    return enc


def decode_automaton(enc, keep_bits=None):
    """The inverse of :func:`encode_automaton`: rebuild the
    :class:`FiniteAutomaton` (same state objects, same transitions).
    With ``keep_bits`` the result is restricted to that state bitset —
    states, initials, finals, and transitions whose endpoints both
    survive — which is how the kernel's int-side trim reaches the
    object world without an intermediate full-size automaton."""
    states = enc.states
    triples = []
    for sid, row in enumerate(enc.out):
        if keep_bits is not None and not (keep_bits >> sid) & 1:
            continue
        src = states[sid]
        for sym, bits in row:
            if keep_bits is not None:
                bits &= keep_bits
            symbol = enc.syms[sym]
            for dst in iter_bits(bits):
                triples.append((src, symbol, states[dst]))
        eps = enc.eps_out[sid]
        if eps:
            if keep_bits is not None:
                eps &= keep_bits
            for dst in iter_bits(eps):
                triples.append((src, EPSILON, states[dst]))
    initials = enc.initials_bits
    finals = enc.finals_bits
    kept_states = range(len(states))
    if keep_bits is not None:
        initials &= keep_bits
        finals &= keep_bits
        kept_states = iter_bits(keep_bits)
    return assemble_automaton(
        [states[sid] for sid in kept_states],
        [states[sid] for sid in iter_bits(initials)],
        [states[sid] for sid in iter_bits(finals)],
        triples,
    )


def assemble_automaton(states, initials, finals, triples):
    """Bulk-build a :class:`FiniteAutomaton` without the per-call
    bookkeeping of :meth:`add_transition` (which re-checks state
    membership on every edge).  ``initials``/``finals`` must be subsets
    of ``states`` and every triple endpoint must be listed in
    ``states`` — true for all codec callers, which enumerate states
    first.  Keeps the class invariant that ``_out``/``_in`` carry an
    entry for every state."""
    automaton = FiniteAutomaton()
    state_set = set(states)
    automaton.states = state_set
    automaton.initials = set(initials)
    automaton.finals = set(finals)
    out = automaton._out = {state: {} for state in state_set}
    into = automaton._in = {state: {} for state in state_set}
    for src, symbol, dst in triples:
        bucket = out[src].get(symbol)
        if bucket is None:
            bucket = out[src][symbol] = set()
        bucket.add(dst)
        bucket = into[dst].get(symbol)
        if bucket is None:
            bucket = into[dst][symbol] = set()
        bucket.add(src)
    return automaton


def decode_packed_rows(
    state_list, sym_list, out_rows, eps_out, initials_bits, finals_bits, keep
):
    """Rebuild a :class:`FiniteAutomaton` from the saturation kernel's
    packed fixpoint rows (``out_rows[src id]`` = ``{symbol id: target
    bitset}``), restricted to the ``keep`` state bitset.  Shared by the
    single-criterion saturations and the batched projections of
    :func:`repro.pds.kernel.prestar_many_csr` — both decode through
    here, so a projected member of a batch is assembled by literally
    the same code path as a solo run."""
    triples = []
    for sid in iter_bits(keep):
        src = state_list[sid]
        for sym, bits in out_rows[sid].items():
            symbol = sym_list[sym]
            for dst in iter_bits(bits & keep):
                triples.append((src, symbol, state_list[dst]))
        if eps_out is not None and eps_out[sid]:
            for dst in iter_bits(eps_out[sid] & keep):
                triples.append((src, EPSILON, state_list[dst]))
    return assemble_automaton(
        [state_list[sid] for sid in iter_bits(keep)],
        [state_list[sid] for sid in iter_bits(initials_bits & keep)],
        [state_list[sid] for sid in iter_bits(finals_bits & keep)],
        triples,
    )


def trim_packed_rows(out_rows, initials_bits, finals_bits, present):
    """Useful-part bitset over packed saturation rows (the int form of
    :meth:`FiniteAutomaton.trim`, for the dict-row layout of
    :func:`decode_packed_rows` rather than :class:`IntAutomaton`)."""
    forward = 0
    todo = initials_bits & present
    while todo:
        low = todo & -todo
        todo ^= low
        if forward & low:
            continue
        forward |= low
        succ = 0
        for bits in out_rows[low.bit_length() - 1].values():
            succ |= bits
        todo |= succ & present & ~forward
    rin = {}
    for sid in iter_bits(forward):
        succ = 0
        for bits in out_rows[sid].values():
            succ |= bits
        low = 1 << sid
        for dst in iter_bits(succ & forward):
            rin[dst] = rin.get(dst, 0) | low
    backward = 0
    todo = finals_bits & forward
    while todo:
        low = todo & -todo
        todo ^= low
        if backward & low:
            continue
        backward |= low
        todo |= rin.get(low.bit_length() - 1, 0) & ~backward
    return forward & backward


def trim_bits(enc, extra_sources=0):
    """The useful-part bitset of an encoded automaton: states reachable
    from an initial state and co-reachable to a final one — the int
    form of :meth:`FiniteAutomaton.trim`.  ``extra_sources`` widens the
    forward roots (the saturation kernel seeds it with the control
    locations, which are initial in every saturation result)."""
    out = enc.out
    eps_out = enc.eps_out
    n = len(enc.states)

    forward = 0
    todo = (enc.initials_bits | extra_sources) & ((1 << n) - 1 if n else 0)
    while todo:
        low = todo & -todo
        todo ^= low
        sid = low.bit_length() - 1
        if (forward >> sid) & 1:
            continue
        forward |= low
        succ = eps_out[sid]
        for _sym, bits in out[sid]:
            succ |= bits
        todo |= succ & ~forward

    # Reverse adjacency, restricted to forward-reachable states.
    rin = [0] * n
    for sid in iter_bits(forward):
        succ = eps_out[sid]
        for _sym, bits in out[sid]:
            succ |= bits
        low = 1 << sid
        for dst in iter_bits(succ & forward):
            rin[dst] |= low

    backward = 0
    todo = enc.finals_bits & forward
    while todo:
        low = todo & -todo
        todo ^= low
        sid = low.bit_length() - 1
        if (backward >> sid) & 1:
            continue
        backward |= low
        todo |= rin[sid] & ~backward

    return forward & backward
