"""Subset-construction determinization.

Input may be nondeterministic with multiple initial states and epsilon
transitions.  Output is a deterministic automaton whose states are
frozensets of input states; only reachable subsets are constructed, and
the (total) dead state is left implicit — the result may be partial.
"""

from collections import deque

from repro import kernelcfg
from repro.fsa.automaton import EPSILON, FiniteAutomaton


def determinize(automaton, kernel=None):
    """Return an equivalent deterministic automaton (subset construction).

    ``kernel`` selects the implementation (default: the ``REPRO_KERNEL``
    environment knob): the ``csr`` kernel runs the construction over the
    :mod:`repro.fsa.intcodec` bitset representation and decodes to the
    structurally identical result (same frozenset states)."""
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.fsa.intops import determinize_int

        return determinize_int(automaton)
    start = frozenset(automaton.epsilon_closure(automaton.initials))
    result = FiniteAutomaton(initials=[start])
    if start & automaton.finals:
        result.add_final(start)
    queue = deque([start])
    seen = {start}
    while queue:
        subset = queue.popleft()
        symbols = set()
        for state in subset:
            symbols |= {s for s in automaton.out_symbols(state) if s is not EPSILON}
        for symbol in symbols:
            targets = set()
            for state in subset:
                targets |= automaton.targets(state, symbol)
            closure = frozenset(automaton.epsilon_closure(targets))
            if not closure:
                continue
            result.add_transition(subset, symbol, closure)
            if closure not in seen:
                seen.add(closure)
                if closure & automaton.finals:
                    result.add_final(closure)
                queue.append(closure)
    return result
