"""The finite-automaton data structure.

States and symbols are arbitrary hashable values; the symbol ``None`` is
reserved for epsilon transitions.  Automata may be nondeterministic and
may have several initial states (reversal produces those).
"""

EPSILON = None


class FiniteAutomaton(object):
    """A (nondeterministic) finite automaton."""

    def __init__(self, initials=(), finals=()):
        self.states = set()
        self.initials = set()
        self.finals = set()
        self._out = {}  # state -> {symbol -> set(states)}
        self._in = {}  # state -> {symbol -> set(states)}
        for state in initials:
            self.add_initial(state)
        for state in finals:
            self.add_final(state)

    # -- construction ---------------------------------------------------------

    def add_state(self, state):
        if state not in self.states:
            self.states.add(state)
            self._out[state] = {}
            self._in[state] = {}
        return state

    def add_initial(self, state):
        self.add_state(state)
        self.initials.add(state)

    def add_final(self, state):
        self.add_state(state)
        self.finals.add(state)

    def add_transition(self, src, symbol, dst):
        """Add ``src --symbol--> dst``; returns True if new."""
        self.add_state(src)
        self.add_state(dst)
        bucket = self._out[src].setdefault(symbol, set())
        if dst in bucket:
            return False
        bucket.add(dst)
        self._in[dst].setdefault(symbol, set()).add(src)
        return True

    def has_transition(self, src, symbol, dst):
        return dst in self._out.get(src, {}).get(symbol, ())

    # -- queries -----------------------------------------------------------------

    def targets(self, src, symbol):
        return set(self._out.get(src, {}).get(symbol, ()))

    def sources(self, dst, symbol):
        return set(self._in.get(dst, {}).get(symbol, ()))

    def out_symbols(self, src):
        return set(self._out.get(src, {}))

    def transitions(self):
        """Iterate all ``(src, symbol, dst)`` triples."""
        for src, buckets in self._out.items():
            for symbol, dsts in buckets.items():
                for dst in dsts:
                    yield (src, symbol, dst)

    def transition_count(self):
        return sum(len(dsts) for buckets in self._out.values() for dsts in buckets.values())

    def alphabet(self):
        """All symbols appearing on transitions (excluding epsilon)."""
        symbols = set()
        for _src, symbol, _dst in self.transitions():
            if symbol is not EPSILON:
                symbols.add(symbol)
        return symbols

    def has_epsilon(self):
        return any(symbol is EPSILON for _s, symbol, _d in self.transitions())

    # -- acceptance -----------------------------------------------------------------

    def epsilon_closure(self, states):
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.targets(state, EPSILON):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return closure

    def accepts(self, word):
        """Membership test (handles nondeterminism and epsilon)."""
        current = self.epsilon_closure(self.initials)
        for symbol in word:
            nxt = set()
            for state in current:
                nxt |= self.targets(state, symbol)
            current = self.epsilon_closure(nxt)
            if not current:
                return False
        return bool(current & self.finals)

    def accepts_from(self, state, word):
        """Membership test starting from a specific state."""
        current = self.epsilon_closure([state])
        for symbol in word:
            nxt = set()
            for src in current:
                nxt |= self.targets(src, symbol)
            current = self.epsilon_closure(nxt)
            if not current:
                return False
        return bool(current & self.finals)

    # -- language enumeration (tests / readout aids) ----------------------------------

    def enumerate_words(self, max_length, limit=None):
        """All accepted words up to ``max_length``, in length-lexicographic
        order of discovery (BFS).  ``limit`` caps the result count."""
        from collections import deque

        words = []
        start = frozenset(self.epsilon_closure(self.initials))
        queue = deque([(start, ())])
        while queue:
            states, word = queue.popleft()
            if states & self.finals:
                words.append(word)
                if limit is not None and len(words) >= limit:
                    return words
            if len(word) == max_length:
                continue
            symbols = set()
            for state in states:
                symbols |= {s for s in self.out_symbols(state) if s is not EPSILON}
            for symbol in sorted(symbols, key=repr):
                nxt = set()
                for state in states:
                    nxt |= self.targets(state, symbol)
                nxt = frozenset(self.epsilon_closure(nxt))
                if nxt:
                    queue.append((nxt, word + (symbol,)))
        return words

    def is_deterministic(self):
        """Single initial state, no epsilon, at most one target per
        (state, symbol)."""
        if len(self.initials) != 1 or self.has_epsilon():
            return False
        for _src, _symbol, _dst in self.transitions():
            pass
        for src, buckets in self._out.items():
            for symbol, dsts in buckets.items():
                if len(dsts) > 1:
                    return False
        return True

    # -- trimming -----------------------------------------------------------------

    def trim(self):
        """A copy restricted to states both reachable from an initial
        state and co-reachable to a final state."""
        forward = set()
        stack = list(self.initials)
        while stack:
            state = stack.pop()
            if state in forward:
                continue
            forward.add(state)
            for buckets in (self._out.get(state, {}),):
                for dsts in buckets.values():
                    stack.extend(dsts - forward)
        backward = set()
        stack = [s for s in self.finals if s in forward]
        while stack:
            state = stack.pop()
            if state in backward:
                continue
            backward.add(state)
            for symbol, srcs in self._in.get(state, {}).items():
                stack.extend((srcs & forward) - backward)
        keep = forward & backward
        result = FiniteAutomaton()
        for state in self.initials & keep:
            result.add_initial(state)
        for state in self.finals & keep:
            result.add_final(state)
        for src, symbol, dst in self.transitions():
            if src in keep and dst in keep:
                result.add_transition(src, symbol, dst)
        return result

    def copy(self):
        result = FiniteAutomaton(self.initials, self.finals)
        for state in self.states:
            result.add_state(state)
        for src, symbol, dst in self.transitions():
            result.add_transition(src, symbol, dst)
        return result

    def renumber(self):
        """A copy with states renamed to consecutive integers (stable
        under repr-sorting; useful after subset construction)."""
        mapping = {state: index for index, state in enumerate(sorted(self.states, key=repr))}
        result = FiniteAutomaton()
        for state in self.initials:
            result.add_initial(mapping[state])
        for state in self.finals:
            result.add_final(mapping[state])
        for state in self.states:
            result.add_state(mapping[state])
        for src, symbol, dst in self.transitions():
            result.add_transition(mapping[src], symbol, mapping[dst])
        return result

    def __repr__(self):
        return "FiniteAutomaton(%d states, %d transitions, %d initial, %d final)" % (
            len(self.states),
            self.transition_count(),
            len(self.initials),
            len(self.finals),
        )
