"""Graphviz (DOT) export for SDGs and automata.

Reproduces the visual conventions of the paper's figures: one cluster
per PDG (per procedure), solid edges for control/flow dependences,
dashed edges for call/parameter-in/parameter-out edges (Fig. 3), and
bold styling for a highlighted vertex set (e.g. a slice — the way
Figs. 3/4 mark the closure slice).  Automata are rendered with the
initial/final conventions of Figs. 9-11.

The output is plain DOT text; no graphviz installation is required to
produce it.
"""

from repro.sdg.graph import (
    CALL,
    CONTROL,
    FLOW,
    LIBRARY,
    PARAM_IN,
    PARAM_OUT,
    SUMMARY,
    VertexKind,
)

_SHAPES = {
    VertexKind.ENTRY: "box",
    VertexKind.STATEMENT: "ellipse",
    VertexKind.PREDICATE: "diamond",
    VertexKind.CALL: "box",
    VertexKind.ACTUAL_IN: "ellipse",
    VertexKind.ACTUAL_OUT: "ellipse",
    VertexKind.FORMAL_IN: "ellipse",
    VertexKind.FORMAL_OUT: "ellipse",
}

_DASHED = frozenset([CALL, PARAM_IN, PARAM_OUT])


def _quote(text):
    return '"%s"' % str(text).replace("\\", "\\\\").replace('"', '\\"')


def sdg_to_dot(sdg, highlight=(), include_summary=False, title="SDG"):
    """Render ``sdg`` as DOT text.

    Args:
        sdg: a :class:`SystemDependenceGraph`.
        highlight: vertex ids drawn bold (e.g. a slice).
        include_summary: also draw summary edges (dotted).
        title: graph label.
    """
    highlight = set(highlight)
    lines = [
        "digraph %s {" % _quote(title),
        "  rankdir=TB;",
        "  node [fontsize=10];",
        "  label=%s;" % _quote(title),
    ]
    for index, proc in enumerate(sdg.procedures()):
        lines.append("  subgraph cluster_%d {" % index)
        lines.append("    label=%s;" % _quote(proc))
        for vid in sdg.proc_vertices[proc]:
            vertex = sdg.vertices[vid]
            style = ["shape=%s" % _SHAPES.get(vertex.kind, "ellipse")]
            if vertex.is_parameter():
                style.append("fontsize=8")
            if vid in highlight:
                style.append("penwidth=2.5")
                style.append("fontname=\"bold\"")
            lines.append(
                "    v%d [label=%s, %s];" % (vid, _quote(vertex.label), ", ".join(style))
            )
        lines.append("  }")

    kinds = [CONTROL, FLOW, LIBRARY, CALL, PARAM_IN, PARAM_OUT]
    if include_summary:
        kinds.append(SUMMARY)
    for (src, dst, kind) in sorted(sdg.edges(kinds)):
        attributes = []
        if kind in _DASHED:
            attributes.append("style=dashed")
        elif kind == SUMMARY:
            attributes.append("style=dotted")
        elif kind == FLOW:
            attributes.append("color=gray30")
        if src in highlight and dst in highlight:
            attributes.append("penwidth=2.0")
        lines.append(
            "  v%d -> v%d%s;" % (src, dst, (" [%s]" % ", ".join(attributes)) if attributes else "")
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def automaton_to_dot(automaton, title="automaton", symbol_label=None):
    """Render a finite automaton as DOT text (Figs. 9-11 style).

    ``symbol_label`` optionally maps transition symbols to display
    strings (e.g. SDG vertex ids to their labels)."""
    if symbol_label is None:
        symbol_label = str
    names = {}
    for index, state in enumerate(sorted(automaton.states, key=repr)):
        names[state] = "s%d" % index
    lines = [
        "digraph %s {" % _quote(title),
        "  rankdir=LR;",
        "  label=%s;" % _quote(title),
        '  __start [shape=point, label=""];',
    ]
    for state in sorted(automaton.states, key=repr):
        shape = "doublecircle" if state in automaton.finals else "circle"
        lines.append(
            "  %s [shape=%s, label=%s];" % (names[state], shape, _quote(state))
        )
    for state in sorted(automaton.initials, key=repr):
        if state in names:
            lines.append("  __start -> %s;" % names[state])
    # Group parallel transitions into one labeled edge.
    grouped = {}
    for (src, symbol, dst) in automaton.transitions():
        grouped.setdefault((src, dst), []).append(
            "ε" if symbol is None else symbol_label(symbol)
        )
    for (src, dst), symbols in sorted(grouped.items(), key=repr):
        label = ", ".join(sorted(str(s) for s in symbols))
        if len(label) > 40:
            label = label[:37] + "..."
        lines.append(
            "  %s -> %s [label=%s];" % (names[src], names[dst], _quote(label))
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
