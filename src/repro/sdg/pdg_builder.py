"""Per-procedure PDG construction.

For each procedure we create the paper's vertex inventory (entry,
statements, predicates, call vertices with actual-in/out vertices,
formal-in/out vertices), then compute dependence edges from a
*vertex-level* CFG:

* Control dependence: Ferrante–Ottenstein–Warren on the augmented CFG.
  ``return`` and ``exit`` statements, and calls to procedures that may
  transitively exit, are modeled as Ball–Horwitz pseudo-predicates (an
  executable jump edge plus a non-executable fall-through edge), so the
  statements they guard become control dependent on them — this is what
  makes executable slices respect early termination, and it subsumes the
  paper's §6.1 treatment of ``exit``.
  Per the paper's convention, parameter vertices are then re-attached:
  actual-in/out vertices are control dependent on their call vertex, and
  formal-in/out vertices on the procedure entry.

* Flow dependence: reaching definitions over the executable edges.
  Globals and ``ref`` parameters use the value-result model: formal-in
  vertices define the variable on entry, formal-out vertices use it at
  the (unique) return join, and actual-out vertices strongly define the
  caller's variable after the call.  This threads interprocedural
  def-use chains through callees exactly as in Horwitz et al. (1990).

The special name ``$ret`` carries return values from ``return``
statements to the ``$ret`` formal-out.

Termination (§6.1, generalized): the pseudo-location ``$halt`` models
"the program was terminated here".  ``exit`` vertices weakly define
``$halt``; every procedure that may transitively exit gets a
``("halt",)`` formal-out using ``$halt``, and each call site on such a
procedure gets a matching ``("halt",)`` actual-out that weakly defines
``$halt`` in the caller and acts as the Ball–Horwitz pseudo-branch for
the call.  A statement guarded by a conditional ``exit`` deep inside a
callee is thus transitively (control- and flow-) dependent on that
``exit`` — keeping executable slices faithful — while programs without
``exit`` pay nothing.
"""

from repro.analysis.callgraph import _call_of
from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.modref import INPUT
from repro.analysis.control_dep import control_dependence
from repro.analysis.reaching import flow_dependences
from repro.lang import ast_nodes as A
from repro.sdg.graph import CONTROL, FLOW, LIBRARY, VertexKind

RET = "$ret"
HALT = "$halt"
EXIT_NODE = "$exit"


class BuildContext(object):
    """Shared state across per-procedure builders."""

    def __init__(self, sdg, program, info, modref, call_graph):
        self.sdg = sdg
        self.program = program
        self.info = info
        self.modref = modref
        self.call_graph = call_graph
        self.may_exit = call_graph.may_exit()
        self._site_counter = 0

    def next_site_label(self):
        self._site_counter += 1
        return "C%d" % self._site_counter

    def ref_in_globals(self, proc_name):
        return sorted(
            self.modref.ref_in_globals(proc_name, self.info.global_names)
        )

    def mod_out_globals(self, proc_name):
        return sorted(
            self.modref.mod_out_globals(proc_name, self.info.global_names)
        )


class PDGBuilder(object):
    """Builds one procedure's PDG into the shared SDG."""

    def __init__(self, context, proc):
        self.context = context
        self.sdg = context.sdg
        self.info = context.info
        self.proc = proc
        self.name = proc.name
        self.cfg = None
        self.defs = {}
        self.uses = {}
        self.entry = None
        self.ret_region_start = None

    # -- top level ------------------------------------------------------------

    def build(self):
        sdg = self.sdg
        self.entry = sdg.new_vertex(VertexKind.ENTRY, self.name, "enter " + self.name)
        sdg.entry_vertex[self.name] = self.entry
        sdg.formal_ins[self.name] = {}
        sdg.formal_outs[self.name] = {}
        sdg.sites_in_proc.setdefault(self.name, [])

        self._create_formals()
        self.cfg = ControlFlowGraph(self.entry, EXIT_NODE)
        self._wire_formals_and_body()
        self._add_control_edges()
        self._add_flow_edges()

    # -- vertex creation ----------------------------------------------------------

    def _create_formals(self):
        sdg, name = self.sdg, self.name
        # Explicit parameters: formal-in for every declared parameter.
        for index, param in enumerate(self.proc.params):
            vid = sdg.new_vertex(
                VertexKind.FORMAL_IN, name, "%s_in" % param.name, role=("param", index)
            )
            sdg.formal_ins[name][("param", index)] = vid
            self.defs[vid] = {param.name}
        # Implicit global parameters: MayRef ∪ (MayMod − MustMod).
        for global_name in self.context.ref_in_globals(name):
            vid = sdg.new_vertex(
                VertexKind.FORMAL_IN, name, "%s_in" % global_name, role=("global", global_name)
            )
            sdg.formal_ins[name][("global", global_name)] = vid
            self.defs[vid] = {global_name}
        # Formal-outs: modified ref parameters, modified globals, return.
        may_mod = self.context.modref.may_mod[name]
        for index, param in enumerate(self.proc.params):
            if param.kind == "ref" and param.name in may_mod:
                vid = sdg.new_vertex(
                    VertexKind.FORMAL_OUT, name, "%s_out" % param.name, role=("param", index)
                )
                sdg.formal_outs[name][("param", index)] = vid
                self.uses[vid] = {param.name}
        for global_name in self.context.mod_out_globals(name):
            vid = sdg.new_vertex(
                VertexKind.FORMAL_OUT, name, "%s_out" % global_name, role=("global", global_name)
            )
            sdg.formal_outs[name][("global", global_name)] = vid
            self.uses[vid] = {global_name}
        if self.proc.ret == "int":
            vid = sdg.new_vertex(VertexKind.FORMAL_OUT, name, "ret_out", role=("ret",))
            sdg.formal_outs[name][("ret",)] = vid
            self.uses[vid] = {RET}
        # Termination pseudo-output: present iff the procedure may exit.
        # Must be created last so it sits at the very end of the
        # formal-out chain (exit paths jump straight to it, bypassing the
        # value copy-backs that never happen on a terminating run).
        if name in self.context.may_exit:
            vid = sdg.new_vertex(VertexKind.FORMAL_OUT, name, "halt_out", role=("halt",))
            sdg.formal_outs[name][("halt",)] = vid
            self.uses[vid] = {HALT}

    # -- CFG wiring ---------------------------------------------------------------

    def _wire_formals_and_body(self):
        cfg = self.cfg
        # Formal-out chain defines the return join region.
        formal_outs = list(self.sdg.formal_outs[self.name].values())
        if formal_outs:
            self.ret_region_start = formal_outs[0]
            for src, dst in zip(formal_outs, formal_outs[1:]):
                cfg.add_edge(src, dst)
            cfg.add_edge(formal_outs[-1], EXIT_NODE)
        else:
            self.ret_region_start = EXIT_NODE

        # entry -> formal-ins -> body.
        chain = [self.entry] + list(self.sdg.formal_ins[self.name].values())
        for src, dst in zip(chain, chain[1:]):
            cfg.add_edge(src, dst)
        # FOW augmentation: entry is a pseudo-branch to exit so top-level
        # statements become control dependent on it.
        cfg.add_edge(self.entry, EXIT_NODE, fallthrough=True)

        dangling = [(chain[-1], False)]
        dangling = self._wire_block(self.proc.body, dangling)
        for node, fall in dangling:
            cfg.add_edge(node, self.ret_region_start, fallthrough=fall)

    def _connect(self, dangling, node):
        for src, fall in dangling:
            self.cfg.add_edge(src, node, fallthrough=fall)

    def _wire_block(self, block, dangling):
        for stmt in block.stmts:
            dangling = self._wire_stmt(stmt, dangling)
        return dangling

    def _wire_stmt(self, stmt, dangling):
        sdg, name = self.sdg, self.name
        call, captures, target = _call_of(stmt)

        if call is not None:
            return self._wire_call(stmt, call, captures, target, dangling)

        if isinstance(stmt, (A.Assign, A.LocalDecl)):
            vid = sdg.new_vertex(
                VertexKind.STATEMENT, name, _stmt_label(stmt), stmt_uid=stmt.uid
            )
            sdg.vertex_of_stmt[stmt.uid] = vid
            self._connect(dangling, vid)
            expr = stmt.expr if isinstance(stmt, A.Assign) else stmt.init
            self.defs[vid] = {stmt.name}
            if isinstance(expr, A.InputExpr):
                # input() reads and advances the input stream.
                self.defs[vid] = {stmt.name, INPUT}
                self.uses[vid] = {INPUT}
            elif expr is not None:
                self.uses[vid] = A.expr_vars(expr)
            return [(vid, False)]

        if isinstance(stmt, A.If):
            vid = sdg.new_vertex(
                VertexKind.PREDICATE, name, "if " + _expr_label(stmt.cond), stmt_uid=stmt.uid
            )
            sdg.vertex_of_stmt[stmt.uid] = vid
            self._connect(dangling, vid)
            self.uses[vid] = A.expr_vars(stmt.cond)
            then_ends = self._wire_block(stmt.then, [(vid, False)])
            if stmt.els is not None:
                else_ends = self._wire_block(stmt.els, [(vid, False)])
            else:
                else_ends = [(vid, False)]
            return then_ends + else_ends

        if isinstance(stmt, A.While):
            vid = sdg.new_vertex(
                VertexKind.PREDICATE, name, "while " + _expr_label(stmt.cond), stmt_uid=stmt.uid
            )
            sdg.vertex_of_stmt[stmt.uid] = vid
            self._connect(dangling, vid)
            self.uses[vid] = A.expr_vars(stmt.cond)
            body_ends = self._wire_block(stmt.body, [(vid, False)])
            self._connect(body_ends, vid)
            return [(vid, False)]

        if isinstance(stmt, A.Return):
            vid = sdg.new_vertex(
                VertexKind.STATEMENT, name, _stmt_label(stmt), stmt_uid=stmt.uid
            )
            sdg.vertex_of_stmt[stmt.uid] = vid
            self._connect(dangling, vid)
            if stmt.expr is not None:
                self.defs[vid] = {RET}
                self.uses[vid] = A.expr_vars(stmt.expr)
            # Jump edge to the return join; Ball–Horwitz fall-through.
            self.cfg.add_edge(vid, self.ret_region_start)
            return [(vid, True)]

        if isinstance(stmt, A.Print):
            return self._wire_library_call(
                stmt, "call print", stmt.args, dangling, exits=False
            )

        if isinstance(stmt, A.ExitStmt):
            args = [stmt.arg] if stmt.arg is not None else []
            return self._wire_library_call(stmt, "call exit", args, dangling, exits=True)

        raise AssertionError("unknown statement %r" % stmt)

    def _wire_library_call(self, stmt, label, args, dangling, exits):
        """print/exit: a call vertex plus actual-in vertices with the
        §6.1 library edges (actual -> call)."""
        sdg, name = self.sdg, self.name
        call_vid = sdg.new_vertex(VertexKind.CALL, name, label, stmt_uid=stmt.uid)
        sdg.vertex_of_stmt[stmt.uid] = call_vid
        previous = dangling
        actual_vids = []
        for index, arg in enumerate(args):
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_IN,
                name,
                _expr_label(arg),
                stmt_uid=stmt.uid,
                role=("param", index),
            )
            self.uses[vid] = A.expr_vars(arg)
            self._connect(previous, vid)
            previous = [(vid, False)]
            actual_vids.append(vid)
        self._connect(previous, call_vid)
        for vid in actual_vids:
            sdg.add_edge(vid, call_vid, LIBRARY)
            sdg.add_edge(call_vid, vid, CONTROL)
        if exits:
            # The exit vertex weakly defines $halt and jumps straight to
            # the halt formal-out (bypassing value copy-backs, which a
            # terminating run never performs); the Ball–Horwitz
            # fall-through makes following statements control dependent
            # on it.
            self.defs[call_vid] = {HALT}
            halt_fo = self.sdg.formal_outs[name].get(("halt",))
            self.cfg.add_edge(call_vid, halt_fo if halt_fo is not None else EXIT_NODE)
            return [(call_vid, True)]
        return [(call_vid, False)]

    def _wire_call(self, stmt, call, captures, target, dangling):
        """A direct call: actual-ins -> call vertex -> actual-outs."""
        sdg, name, context = self.sdg, self.name, self.context
        callee = call.callee
        callee_proc = self.info.procs[callee].proc
        label = context.next_site_label()

        call_vid = sdg.new_vertex(
            VertexKind.CALL,
            name,
            "call %s" % callee,
            stmt_uid=stmt.uid,
            site_label=label,
        )
        sdg.vertex_of_stmt[stmt.uid] = call_vid

        from repro.sdg.graph import CallSiteInfo

        site = CallSiteInfo(label, name, callee, call_vid, stmt.uid)
        sdg.call_sites[label] = site
        sdg.sites_in_proc.setdefault(name, []).append(label)
        sdg.sites_on_proc.setdefault(callee, []).append(label)

        previous = dangling
        # Actual-ins: explicit arguments, then implicit globals.
        for index, (arg, param) in enumerate(zip(call.args, callee_proc.params)):
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_IN,
                name,
                _expr_label(arg),
                stmt_uid=stmt.uid,
                site_label=label,
                role=("param", index),
            )
            site.actual_ins[("param", index)] = vid
            self.uses[vid] = A.expr_vars(arg)
            self._connect(previous, vid)
            previous = [(vid, False)]
        for global_name in context.ref_in_globals(callee):
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_IN,
                name,
                "%s_in" % global_name,
                stmt_uid=stmt.uid,
                site_label=label,
                role=("global", global_name),
            )
            site.actual_ins[("global", global_name)] = vid
            self.uses[vid] = {global_name}
            self._connect(previous, vid)
            previous = [(vid, False)]

        self._connect(previous, call_vid)
        previous = [(call_vid, False)]

        # Actual-outs: modified ref params, modified globals, return.
        may_mod = context.modref.may_mod[callee]
        for index, (arg, param) in enumerate(zip(call.args, callee_proc.params)):
            if param.kind == "ref" and param.name in may_mod:
                vid = sdg.new_vertex(
                    VertexKind.ACTUAL_OUT,
                    name,
                    "%s_out" % arg.name,
                    stmt_uid=stmt.uid,
                    site_label=label,
                    role=("param", index),
                )
                site.actual_outs[("param", index)] = vid
                self.defs[vid] = {arg.name}
                self._connect(previous, vid)
                previous = [(vid, False)]
        for global_name in context.mod_out_globals(callee):
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_OUT,
                name,
                "%s_out" % global_name,
                stmt_uid=stmt.uid,
                site_label=label,
                role=("global", global_name),
            )
            site.actual_outs[("global", global_name)] = vid
            self.defs[vid] = {global_name}
            self._connect(previous, vid)
            previous = [(vid, False)]
        if captures:
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_OUT,
                name,
                "%s = %s$ret" % (target, callee),
                stmt_uid=stmt.uid,
                site_label=label,
                role=("ret",),
            )
            site.actual_outs[("ret",)] = vid
            self.defs[vid] = {target}
            self._connect(previous, vid)
            previous = [(vid, False)]

        if callee in context.may_exit:
            # The callee may terminate the program.  The halt actual-out
            # weakly defines $halt in the caller and is the Ball–Horwitz
            # pseudo-branch: following statements become control
            # dependent on it, and through the param-out edge from the
            # callee's halt formal-out, transitively data dependent on
            # the exit() that could fire (§6.1, interprocedural).
            vid = sdg.new_vertex(
                VertexKind.ACTUAL_OUT,
                name,
                "halt_out",
                stmt_uid=stmt.uid,
                site_label=label,
                role=("halt",),
            )
            site.actual_outs[("halt",)] = vid
            self.defs[vid] = {HALT}
            self._connect(previous, vid)
            previous = [(vid, False)]
            halt_fo = sdg.formal_outs[name].get(("halt",))
            self.cfg.add_edge(vid, halt_fo if halt_fo is not None else EXIT_NODE)

        # Control dependence of parameter vertices on the call vertex.
        for vid in list(site.actual_ins.values()) + list(site.actual_outs.values()):
            sdg.add_edge(call_vid, vid, CONTROL)

        return previous

    # -- dependence edges -------------------------------------------------------------

    def _add_control_edges(self):
        sdg = self.sdg
        skip_targets = set()
        halt_controllers = set()
        for vid in sdg.proc_vertices[self.name]:
            vertex = sdg.vertices[vid]
            if vertex.kind in (
                VertexKind.ACTUAL_IN,
                VertexKind.ACTUAL_OUT,
                VertexKind.FORMAL_IN,
                VertexKind.FORMAL_OUT,
            ):
                skip_targets.add(vid)
                if vertex.role == ("halt",) and vertex.kind == VertexKind.ACTUAL_OUT:
                    # Halt actual-outs are pseudo-branches and *can*
                    # control other vertices.
                    halt_controllers.add(vid)

        for controller, dependent in control_dependence(self.cfg):
            if controller == EXIT_NODE or dependent == EXIT_NODE:
                continue
            if dependent in skip_targets or dependent == self.entry:
                continue
            if controller in skip_targets and controller not in halt_controllers:
                continue
            sdg.add_edge(controller, dependent, CONTROL)

        # Paper convention: formal vertices hang off the entry vertex.
        for vid in list(sdg.formal_ins[self.name].values()) + list(
            sdg.formal_outs[self.name].values()
        ):
            sdg.add_edge(self.entry, vid, CONTROL)

    def _add_flow_edges(self):
        # $halt definitions are weak: "the program may have been
        # terminated here" never cancels an earlier possible termination.
        must_defs = {
            node: variables - {HALT} for node, variables in self.defs.items()
        }
        for src, dst, _var in flow_dependences(self.cfg, self.defs, self.uses, must_defs):
            if src == EXIT_NODE or dst == EXIT_NODE:
                continue
            self.sdg.add_edge(src, dst, FLOW)


def _expr_label(expr):
    from repro.lang.pretty import _expr as render

    return render(expr)


def _stmt_label(stmt):
    if isinstance(stmt, A.Assign):
        return "%s = %s" % (stmt.name, _expr_label(stmt.expr))
    if isinstance(stmt, A.LocalDecl):
        if stmt.init is not None:
            return "int %s = %s" % (stmt.name, _expr_label(stmt.init))
        return "int %s" % stmt.name
    if isinstance(stmt, A.Return):
        if stmt.expr is not None:
            return "return %s" % _expr_label(stmt.expr)
        return "return"
    return type(stmt).__name__
