"""Whole-program SDG construction.

Pipeline: semantic info -> call graph -> mod/ref -> one PDG per
procedure -> interprocedural edges (call, parameter-in, parameter-out)
-> optional summary edges.

Programs containing indirect calls must be lowered first
(:func:`repro.core.funcptr.lower_indirect_calls`); the builder rejects
them otherwise.
"""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.modref import compute_modref
from repro.sdg.graph import CALL, PARAM_IN, PARAM_OUT, SystemDependenceGraph
from repro.sdg.pdg_builder import BuildContext, PDGBuilder
from repro.sdg.summary import compute_summary_edges


def build_sdg(program, info, with_summary=True):
    """Build the SDG of a semantically checked program.

    Args:
        program: the checked AST.
        info: the :class:`~repro.lang.sema.ProgramInfo` from ``check``.
        with_summary: also compute summary edges (needed by the HRB
            closure-slicing baseline; harmless otherwise).

    Returns:
        a :class:`SystemDependenceGraph`.
    """
    call_graph = build_call_graph(program)
    modref = compute_modref(program, info, call_graph)
    sdg = SystemDependenceGraph(program, info)
    sdg.call_graph = call_graph
    sdg.modref = modref

    context = BuildContext(sdg, program, info, modref, call_graph)
    for proc in program.procs:
        PDGBuilder(context, proc).build()

    _connect_pdgs(sdg)
    if with_summary:
        compute_summary_edges(sdg)
    return sdg


def _connect_pdgs(sdg):
    """Add call, parameter-in and parameter-out edges."""
    for site in sdg.call_sites.values():
        callee = site.callee
        sdg.add_edge(site.call_vertex, sdg.entry_vertex[callee], CALL)
        for role, ai in site.actual_ins.items():
            fi = sdg.formal_ins[callee].get(role)
            if fi is not None:
                sdg.add_edge(ai, fi, PARAM_IN)
        for role, fo in sdg.formal_outs[callee].items():
            ao = site.actual_outs.get(role)
            if ao is not None:
                sdg.add_edge(fo, ao, PARAM_OUT)
