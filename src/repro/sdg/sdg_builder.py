"""Whole-program SDG construction.

Pipeline: semantic info -> call graph -> mod/ref -> one PDG per
procedure -> interprocedural edges (call, parameter-in, parameter-out)
-> optional summary edges.

The per-procedure step has two interchangeable paths: build the PDG
from the AST (:class:`~repro.sdg.pdg_builder.PDGBuilder`), or relocate
a previously built :class:`~repro.sdg.parts.ProcPart` into the graph.
Both draw vertex ids and call-site labels from the same counters in
program order, so an SDG assembled from any mix of fresh builds and
reused parts is numbered identically to a cold build of the same
program — the invariant the incremental engine's byte-identical
guarantee rests on.

Programs containing indirect calls must be lowered first
(:func:`repro.core.funcptr.lower_indirect_calls`); the builder rejects
them otherwise.
"""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.modref import compute_modref
from repro.sdg.graph import CALL, PARAM_IN, PARAM_OUT, SystemDependenceGraph
from repro.sdg.pdg_builder import BuildContext, PDGBuilder
from repro.sdg.summary import compute_summary_edges


def build_sdg(program, info, with_summary=True):
    """Build the SDG of a semantically checked program.

    Args:
        program: the checked AST.
        info: the :class:`~repro.lang.sema.ProgramInfo` from ``check``.
        with_summary: also compute summary edges (needed by the HRB
            closure-slicing baseline; harmless otherwise).

    Returns:
        a :class:`SystemDependenceGraph`.
    """
    sdg, _relocations = assemble_sdg(program, info, with_summary=with_summary)
    return sdg


def assemble_sdg(program, info, parts=None, with_summary=True, call_graph=None, modref=None):
    """Build an SDG, relocating reusable per-procedure parts.

    Args:
        program: the checked AST (reused parts must have been
            retargeted onto its procedures' statement uids via
            :meth:`~repro.sdg.parts.ProcPart.retarget_uids`).
        info: the matching :class:`~repro.lang.sema.ProgramInfo`.
        parts: optional mapping of procedure name to
            :class:`~repro.sdg.parts.ProcPart`; procedures not in the
            mapping are built from the AST.
        with_summary: recompute summary edges over the assembled graph
            (they depend on transitive callee contents and are never
            carried by a part).
        call_graph / modref: precomputed analyses of ``program`` (e.g.
            from content-key computation); computed here otherwise.

    Returns:
        ``(sdg, relocations)`` where ``relocations`` maps each reused
        procedure name to its ``(vid_map, site_map)`` donor-to-new
        renaming.
    """
    if call_graph is None:
        call_graph = build_call_graph(program)
    if modref is None:
        modref = compute_modref(program, info, call_graph)
    sdg = SystemDependenceGraph(program, info)
    sdg.call_graph = call_graph
    sdg.modref = modref

    context = BuildContext(sdg, program, info, modref, call_graph)
    relocations = {}
    for proc in program.procs:
        part = parts.get(proc.name) if parts else None
        if part is None:
            PDGBuilder(context, proc).build()
        else:
            relocations[proc.name] = part.add_to(sdg, context)

    _connect_pdgs(sdg)
    if with_summary:
        compute_summary_edges(sdg)
    return sdg, relocations


def _connect_pdgs(sdg):
    """Add call, parameter-in and parameter-out edges."""
    for site in sdg.call_sites.values():
        callee = site.callee
        sdg.add_edge(site.call_vertex, sdg.entry_vertex[callee], CALL)
        for role, ai in site.actual_ins.items():
            fi = sdg.formal_ins[callee].get(role)
            if fi is not None:
                sdg.add_edge(ai, fi, PARAM_IN)
        for role, fo in sdg.formal_outs[callee].items():
            ao = site.actual_outs.get(role)
            if ao is not None:
                sdg.add_edge(fo, ao, PARAM_OUT)
