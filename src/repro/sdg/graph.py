"""SDG data structures: vertices, edges, call sites.

Vertex roles for parameter vertices follow the paper's model:

* ``("param", i)`` — the i-th explicit parameter position;
* ``("global", g)`` — global variable ``g`` passed implicitly
  (value-result, per Horwitz et al. 1990);
* ``("ret",)`` — the return value.

Edge kinds:

* ``CONTROL`` / ``FLOW`` — intraprocedural dependences;
* ``CALL`` — call vertex to callee entry;
* ``PARAM_IN`` / ``PARAM_OUT`` — actual-in to formal-in / formal-out to
  actual-out;
* ``SUMMARY`` — transitive actual-in to actual-out dependences (used by
  HRB closure slicing only; the PDS encoding ignores them);
* ``LIBRARY`` — the §6.1 actual-in to call-vertex edges that pin a
  library call's arguments to the call.
"""


class VertexKind(object):
    ENTRY = "entry"
    STATEMENT = "statement"
    PREDICATE = "predicate"
    CALL = "call"
    ACTUAL_IN = "actual-in"
    ACTUAL_OUT = "actual-out"
    FORMAL_IN = "formal-in"
    FORMAL_OUT = "formal-out"


CONTROL = "control"
FLOW = "flow"
CALL = "call"
PARAM_IN = "param-in"
PARAM_OUT = "param-out"
SUMMARY = "summary"
LIBRARY = "library"

#: Edge kinds that stay within a single PDG.
INTRA_KINDS = frozenset([CONTROL, FLOW, SUMMARY, LIBRARY])
#: Edge kinds that cross PDGs.
INTER_KINDS = frozenset([CALL, PARAM_IN, PARAM_OUT])


class Vertex(object):
    """One SDG vertex.

    Attributes:
        vid: integer id, unique within the SDG.
        kind: a :class:`VertexKind` value.
        proc: name of the owning procedure.
        label: human-readable description (used in dumps and tests).
        stmt_uid: uid of the originating statement, if any.
        site_label: for actual-in/out and call vertices, the call-site
            label ("C1", "C2", ...); None elsewhere.
        role: for parameter vertices, the role tuple described above.
    """

    __slots__ = ("vid", "kind", "proc", "label", "stmt_uid", "site_label", "role")

    def __init__(self, vid, kind, proc, label, stmt_uid=None, site_label=None, role=None):
        self.vid = vid
        self.kind = kind
        self.proc = proc
        self.label = label
        self.stmt_uid = stmt_uid
        self.site_label = site_label
        self.role = role

    def is_parameter(self):
        return self.kind in (
            VertexKind.ACTUAL_IN,
            VertexKind.ACTUAL_OUT,
            VertexKind.FORMAL_IN,
            VertexKind.FORMAL_OUT,
        )

    def __repr__(self):
        return "Vertex(%d, %s, %s, %r)" % (self.vid, self.kind, self.proc, self.label)


class CallSiteInfo(object):
    """Everything the builders and slicers need to know about one call
    site: its label, caller/callee, call vertex, and parameter vertices
    indexed by role."""

    def __init__(self, label, caller, callee, call_vertex, stmt_uid):
        self.label = label
        self.caller = caller
        self.callee = callee
        self.call_vertex = call_vertex
        self.stmt_uid = stmt_uid
        self.actual_ins = {}  # role -> vid
        self.actual_outs = {}  # role -> vid

    def __repr__(self):
        return "CallSiteInfo(%s: %s -> %s)" % (self.label, self.caller, self.callee)


class SystemDependenceGraph(object):
    """The system dependence graph of a TinyC program."""

    def __init__(self, program=None, info=None):
        self.program = program
        self.info = info
        self.vertices = {}  # vid -> Vertex
        self._next_vid = 1
        self._out = {}  # vid -> list of (dst, kind)
        self._in = {}  # vid -> list of (src, kind)
        self._edge_set = set()  # (src, dst, kind)
        self.proc_vertices = {}  # proc name -> list of vids
        self.entry_vertex = {}  # proc name -> vid
        self.formal_ins = {}  # proc name -> {role: vid}
        self.formal_outs = {}  # proc name -> {role: vid}
        self.call_sites = {}  # label -> CallSiteInfo
        self.sites_in_proc = {}  # proc name -> list of labels
        self.sites_on_proc = {}  # callee name -> list of labels
        self.vertex_of_stmt = {}  # stmt uid -> vid (statement/call/predicate)

    def __getstate__(self):
        # SDGs are pickled into the persistent slice store and shipped to
        # process-pool workers.  A SlicingSession cached on the graph by
        # ``SlicingSession.for_sdg`` holds locks and futures and must not
        # travel; the PDS encoding (criterion-independent, pure data)
        # stays so a warm front-half load skips re-encoding.
        state = self.__dict__.copy()
        state.pop("_slicing_session", None)
        return state

    # -- construction ---------------------------------------------------------

    def new_vertex(self, kind, proc, label, stmt_uid=None, site_label=None, role=None):
        vid = self._next_vid
        self._next_vid += 1
        vertex = Vertex(vid, kind, proc, label, stmt_uid, site_label, role)
        self.vertices[vid] = vertex
        self._out[vid] = []
        self._in[vid] = []
        self.proc_vertices.setdefault(proc, []).append(vid)
        return vid

    def add_edge(self, src, dst, kind):
        key = (src, dst, kind)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._out[src].append((dst, kind))
        self._in[dst].append((src, kind))
        return True

    def has_edge(self, src, dst, kind):
        return (src, dst, kind) in self._edge_set

    # -- queries ---------------------------------------------------------------

    def successors(self, vid, kinds=None):
        if kinds is None:
            return [dst for dst, _ in self._out[vid]]
        return [dst for dst, kind in self._out[vid] if kind in kinds]

    def predecessors(self, vid, kinds=None):
        if kinds is None:
            return [src for src, _ in self._in[vid]]
        return [src for src, kind in self._in[vid] if kind in kinds]

    def out_edges(self, vid):
        return [(vid, dst, kind) for dst, kind in self._out[vid]]

    def in_edges(self, vid):
        return [(src, vid, kind) for src, kind in self._in[vid]]

    def edges(self, kinds=None):
        for (src, dst, kind) in self._edge_set:
            if kinds is None or kind in kinds:
                yield (src, dst, kind)

    def vertex(self, vid):
        return self.vertices[vid]

    def vertex_count(self):
        return len(self.vertices)

    def edge_count(self, kinds=None):
        if kinds is None:
            return len(self._edge_set)
        return sum(1 for _ in self.edges(kinds))

    def procedures(self):
        return list(self.proc_vertices)

    # -- criterion helpers --------------------------------------------------------

    def print_call_vertices(self):
        """Call vertices of ``print`` statements, in program order."""
        result = []
        for vid in sorted(self.vertices):
            vertex = self.vertices[vid]
            if vertex.kind == VertexKind.CALL and vertex.label.startswith("call print"):
                result.append(vid)
        return result

    def print_criterion(self, vids=None):
        """The slicing criterion "the actual parameters of print": the
        actual-in vertices hanging off the given print call vertices
        (default: every print in the program)."""
        if vids is None:
            vids = self.print_call_vertices()
        criterion = set()
        for call_vid in vids:
            for dst, kind in self._in[call_vid]:
                if kind == LIBRARY:
                    criterion.add(dst)
        return criterion

    def stmt_vertices(self, uids):
        """Vertices for the given statement uids."""
        return {self.vertex_of_stmt[uid] for uid in uids}

    def describe(self, vids):
        """Readable multi-line description of a vertex set (test aid)."""
        lines = []
        for vid in sorted(vids):
            vertex = self.vertices[vid]
            lines.append(
                "%4d %-11s %-12s %s" % (vid, vertex.kind, vertex.proc, vertex.label)
            )
        return "\n".join(lines)
