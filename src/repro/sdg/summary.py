"""Summary-edge computation.

A summary edge runs from an actual-in vertex to an actual-out vertex of
the same call site when the value passed in may transitively affect the
value coming out — i.e., when there is a same-level realizable path from
the corresponding formal-in to the corresponding formal-out of the
callee.  They let the HRB two-phase slicer step *across* call sites
without descending.

This is the worklist algorithm of Horwitz–Reps–Binkley (1990), as
streamlined by Reps–Horwitz–Sagiv–Rosay (1994): path edges ``(fo, v)``
record "v reaches formal-out fo along a same-level path"; discovering
``(fo, fi)`` for a formal-in installs summary edges at every call site
on the procedure, which can in turn extend path edges in the callers.
Path edges never leave a single PDG: caller propagation happens only via
installed summary edges.

The specialization-slicing algorithm itself does not need summary edges
(the PDS encoding plays their role); they exist for the closure-slicing
baseline that both the paper's §8 experiments and ours compare against.
"""

from collections import deque

from repro.sdg.graph import CONTROL, FLOW, LIBRARY, SUMMARY, VertexKind


def compute_summary_edges(sdg):
    """Add SUMMARY edges to ``sdg``; returns the number added."""
    path_edge = set()  # (fo, v): v reaches fo along a same-level path
    worklist = deque()
    # Reverse index: actual-out vid -> path edges ending there, to extend
    # caller path edges when a summary edge appears late.
    edges_at = {}

    def add(fo, v):
        if (fo, v) not in path_edge:
            path_edge.add((fo, v))
            edges_at.setdefault(v, []).append(fo)
            worklist.append((fo, v))

    for proc in sdg.procedures():
        for fo in sdg.formal_outs.get(proc, {}).values():
            add(fo, fo)

    added = 0
    intra = (CONTROL, FLOW, SUMMARY, LIBRARY)
    while worklist:
        fo, v = worklist.popleft()
        vertex = sdg.vertices[v]
        for src in sdg.predecessors(v, intra):
            add(fo, src)
        if vertex.kind == VertexKind.FORMAL_IN:
            in_role = vertex.role
            out_role = sdg.vertices[fo].role
            callee = vertex.proc
            for label in sdg.sites_on_proc.get(callee, ()):
                site = sdg.call_sites[label]
                ai = site.actual_ins.get(in_role)
                ao = site.actual_outs.get(out_role)
                if ai is None or ao is None:
                    continue
                if sdg.add_edge(ai, ao, SUMMARY):
                    added += 1
                    for fo2 in edges_at.get(ao, ()):
                        add(fo2, ai)
    return added
