"""Closure slicing on SDGs.

* :func:`backward_closure_slice` / :func:`forward_closure_slice` — the
  context-sensitive two-phase algorithm of Horwitz–Reps–Binkley (1990),
  which requires summary edges.
* :func:`backward_reach` / :func:`forward_reach` — plain context-
  insensitive graph reachability, used by the Weiser-style baseline.

Phase conventions for the backward slice from criterion ``C``:

* Phase 1 ascends: traverse control, flow, library, summary, call and
  parameter-in edges backwards (never parameter-out), marking everything
  in procedures that (transitively) call the criterion's procedure.
* Phase 2 descends: from all phase-1 vertices, traverse control, flow,
  library, summary and parameter-out edges backwards (never call or
  parameter-in).

The forward slice is the mirror image.
"""

from collections import deque

from repro.sdg.graph import CALL, CONTROL, FLOW, LIBRARY, PARAM_IN, PARAM_OUT, SUMMARY

_BACK_PHASE1 = frozenset([CONTROL, FLOW, LIBRARY, SUMMARY, CALL, PARAM_IN])
_BACK_PHASE2 = frozenset([CONTROL, FLOW, LIBRARY, SUMMARY, PARAM_OUT])
_FWD_PHASE1 = frozenset([CONTROL, FLOW, LIBRARY, SUMMARY, PARAM_OUT])
_FWD_PHASE2 = frozenset([CONTROL, FLOW, LIBRARY, SUMMARY, CALL, PARAM_IN])


def _closure(sdg, criterion, phase1_kinds, phase2_kinds, backward):
    step = sdg.predecessors if backward else sdg.successors
    visited = set(criterion)
    worklist = deque(visited)
    while worklist:
        vid = worklist.popleft()
        for nxt in step(vid, phase1_kinds):
            if nxt not in visited:
                visited.add(nxt)
                worklist.append(nxt)
    phase2 = set(visited)
    worklist = deque(visited)
    while worklist:
        vid = worklist.popleft()
        for nxt in step(vid, phase2_kinds):
            if nxt not in phase2:
                phase2.add(nxt)
                worklist.append(nxt)
    return phase2


def backward_closure_slice(sdg, criterion):
    """Context-sensitive backward closure slice (HRB two-phase)."""
    return _closure(sdg, criterion, _BACK_PHASE1, _BACK_PHASE2, backward=True)


def forward_closure_slice(sdg, criterion):
    """Context-sensitive forward closure slice (HRB two-phase)."""
    return _closure(sdg, criterion, _FWD_PHASE1, _FWD_PHASE2, backward=False)


def backward_reach(sdg, criterion, kinds=None):
    """Context-insensitive backward reachability over all edge kinds
    except summaries (Weiser-style baseline)."""
    if kinds is None:
        kinds = frozenset([CONTROL, FLOW, LIBRARY, CALL, PARAM_IN, PARAM_OUT])
    visited = set(criterion)
    worklist = deque(visited)
    while worklist:
        vid = worklist.popleft()
        for nxt in sdg.predecessors(vid, kinds):
            if nxt not in visited:
                visited.add(nxt)
                worklist.append(nxt)
    return visited


def forward_reach(sdg, criterion, kinds=None):
    """Context-insensitive forward reachability (all edges but summary)."""
    if kinds is None:
        kinds = frozenset([CONTROL, FLOW, LIBRARY, CALL, PARAM_IN, PARAM_OUT])
    visited = set(criterion)
    worklist = deque(visited)
    while worklist:
        vid = worklist.popleft()
        for nxt in sdg.successors(vid, kinds):
            if nxt not in visited:
                visited.add(nxt)
                worklist.append(nxt)
    return visited
