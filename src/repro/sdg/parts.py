"""Per-procedure PDG parts: the unit of incremental SDG assembly.

A :class:`ProcPart` is one procedure's contribution to an SDG — its
vertices (in build order), intraprocedural dependence edges, interface
vertices (entry, formal-in/out), and call sites — detached from any
particular vertex-id or call-site-label numbering.  Parts support three
operations:

* :func:`extract_part` lifts a procedure's PDG out of a built SDG;
* :meth:`ProcPart.add_to` relocates a part into a new SDG, drawing
  fresh vertex ids and call-site labels so the assembled graph is
  numbered exactly as a cold :func:`repro.sdg.build_sdg` of the same
  program would number it;
* :meth:`ProcPart.shape_key` renders the part's *dependence structure*
  (positions, roles, edges, site/role wiring — not labels or AST) into
  a hashable value: two parts with equal shape keys contribute
  identical PDS rules under identical numbering, which is what lets
  the incremental engine keep saturations across label-only edits.

Summary edges are deliberately not part of a part: they depend on the
transitive contents of callees and are recomputed per assembly.

Parts are pickled into the persistent store's content-addressed
per-procedure table, so they also carry the donor procedure's AST (the
SDG vertices refer back to its statement uids); before relocation,
:meth:`retarget_uids` re-keys a part onto the matching procedure of a
freshly parsed program — content-key equality guarantees the two ASTs
are token-identical, so their statement walks correspond one to one.
"""

from repro.lang import ast_nodes as A
from repro.sdg.graph import CONTROL, FLOW, LIBRARY, CallSiteInfo, VertexKind

#: Edge kinds a part owns (SUMMARY is recomputed per assembly, and the
#: interprocedural kinds are stitched by the assembler).
PART_EDGE_KINDS = frozenset([CONTROL, FLOW, LIBRARY])

#: Vertex kinds registered in ``sdg.vertex_of_stmt``.
_STMT_KINDS = (VertexKind.STATEMENT, VertexKind.PREDICATE, VertexKind.CALL)


class ProcPart(object):
    """One procedure's PDG, relocatable into any SDG.

    Attributes:
        name: the procedure name.
        proc_ast: the procedure's :class:`~repro.lang.ast_nodes.Proc`
            node (vertices refer to its statement uids).
        vertices: the :class:`~repro.sdg.graph.Vertex` objects in build
            order (their ``vid`` fields are donor-local).
        edges: ``(src_vid, dst_vid, kind)`` intraprocedural edges.
        entry: donor vid of the entry vertex.
        formal_ins / formal_outs: role -> donor vid, in build order.
        sites: per call site, in program order:
            ``(label, callee, stmt_uid, call_vid, actual_ins, actual_outs)``
            with the actual maps as ``(role, donor vid)`` tuples.
        stmt_vertices: stmt uid -> donor vid.
    """

    __slots__ = (
        "name",
        "proc_ast",
        "vertices",
        "edges",
        "entry",
        "formal_ins",
        "formal_outs",
        "sites",
        "stmt_vertices",
        "_uid_map",
    )

    def __init__(self):
        self.name = None
        self.proc_ast = None
        self.vertices = []
        self.edges = []
        self.entry = None
        self.formal_ins = {}
        self.formal_outs = {}
        self.sites = []
        self.stmt_vertices = {}
        self._uid_map = None  # donor stmt uid -> target stmt uid

    def __getstate__(self):
        # The uid translation is relocation-local state, never stored.
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_uid_map"
        }

    def __setstate__(self, state):
        self._uid_map = None
        for slot, value in state.items():
            setattr(self, slot, value)

    def add_to(self, sdg, context):
        """Relocate this part into ``sdg``, drawing vertex ids from the
        graph and call-site labels from ``context`` in build order (the
        same order a :class:`~repro.sdg.pdg_builder.PDGBuilder` run for
        the procedure would draw them).

        Returns ``(vid_map, site_map)``: donor vid -> new vid and donor
        site label -> new site label.
        """
        name = self.name
        uid_map = self._uid_map or {}
        site_map = {}
        for site in self.sites:
            site_map[site[0]] = context.next_site_label()
        vid_map = {}
        for vertex in self.vertices:
            site_label = (
                site_map[vertex.site_label] if vertex.site_label is not None else None
            )
            vid_map[vertex.vid] = sdg.new_vertex(
                vertex.kind,
                name,
                vertex.label,
                stmt_uid=uid_map.get(vertex.stmt_uid, vertex.stmt_uid),
                site_label=site_label,
                role=vertex.role,
            )
        sdg.entry_vertex[name] = vid_map[self.entry]
        sdg.formal_ins[name] = {
            role: vid_map[vid] for role, vid in self.formal_ins.items()
        }
        sdg.formal_outs[name] = {
            role: vid_map[vid] for role, vid in self.formal_outs.items()
        }
        sdg.sites_in_proc.setdefault(name, [])
        for (label, callee, stmt_uid, call_vid, actual_ins, actual_outs) in self.sites:
            new_label = site_map[label]
            site = CallSiteInfo(
                new_label, name, callee, vid_map[call_vid],
                uid_map.get(stmt_uid, stmt_uid),
            )
            site.actual_ins = {role: vid_map[vid] for role, vid in actual_ins}
            site.actual_outs = {role: vid_map[vid] for role, vid in actual_outs}
            sdg.call_sites[new_label] = site
            sdg.sites_in_proc[name].append(new_label)
            sdg.sites_on_proc.setdefault(callee, []).append(new_label)
        for (src, dst, kind) in self.edges:
            sdg.add_edge(vid_map[src], vid_map[dst], kind)
        for uid, vid in self.stmt_vertices.items():
            sdg.vertex_of_stmt[uid_map.get(uid, uid)] = vid_map[vid]
        return vid_map, site_map

    def shape_key(self):
        """The part's dependence structure in position space (vertex ids
        replaced by build-order indices, site labels by site indices).
        Vertex labels, statement uids, and the AST are excluded: two
        parts with equal shape keys produce identical PDS rules when
        relocated at identical numbering."""
        pos = {vertex.vid: index for index, vertex in enumerate(self.vertices)}
        return (
            tuple((vertex.kind, vertex.role) for vertex in self.vertices),
            frozenset((pos[src], pos[dst], kind) for (src, dst, kind) in self.edges),
            pos[self.entry],
            tuple((role, pos[vid]) for role, vid in self.formal_ins.items()),
            tuple((role, pos[vid]) for role, vid in self.formal_outs.items()),
            tuple(
                (
                    callee,
                    pos[call_vid],
                    tuple((role, pos[vid]) for role, vid in actual_ins),
                    tuple((role, pos[vid]) for role, vid in actual_outs),
                )
                for (_label, callee, _uid, call_vid, actual_ins, actual_outs) in self.sites
            ),
        )

    def retarget_uids(self, new_proc):
        """Point the part at ``new_proc`` — the same procedure in a
        freshly parsed program.  The donor and target ASTs are
        token-identical (the part was looked up by content key), so
        their statement walks correspond one to one; the resulting uid
        translation is applied lazily during :meth:`add_to`, leaving
        the donor's vertices untouched (they may be shared with a live
        SDG).  Raises ValueError if the shapes do not line up."""
        donor_stmts = list(A.walk_stmts(self.proc_ast.body))
        target_stmts = list(A.walk_stmts(new_proc.body))
        if len(donor_stmts) != len(target_stmts) or any(
            type(a) is not type(b) for a, b in zip(donor_stmts, target_stmts)
        ):
            raise ValueError(
                "procedure %r does not structurally match its part" % self.name
            )
        self._uid_map = {
            donor.uid: target.uid for donor, target in zip(donor_stmts, target_stmts)
        }
        self.proc_ast = new_proc
        return self


def extract_part(sdg, name):
    """Lift procedure ``name`` out of a built SDG as a :class:`ProcPart`.

    The part references the SDG's :class:`Vertex` objects and the
    program's :class:`Proc` node; neither is mutated by extraction or
    relocation, so extracting from a live SDG is safe.
    """
    part = ProcPart()
    part.name = name
    part.proc_ast = sdg.program.proc(name) if sdg.program is not None else None
    vids = list(sdg.proc_vertices[name])
    part.vertices = [sdg.vertices[vid] for vid in vids]
    for vid in vids:
        for (src, dst, kind) in sdg.out_edges(vid):
            if kind in PART_EDGE_KINDS:
                part.edges.append((src, dst, kind))
    part.entry = sdg.entry_vertex[name]
    part.formal_ins = dict(sdg.formal_ins.get(name, {}))
    part.formal_outs = dict(sdg.formal_outs.get(name, {}))
    for label in sdg.sites_in_proc.get(name, ()):
        site = sdg.call_sites[label]
        part.sites.append(
            (
                label,
                site.callee,
                site.stmt_uid,
                site.call_vertex,
                tuple(site.actual_ins.items()),
                tuple(site.actual_outs.items()),
            )
        )
    part.stmt_vertices = {
        vertex.stmt_uid: vertex.vid
        for vertex in part.vertices
        if vertex.stmt_uid is not None and vertex.kind in _STMT_KINDS
    }
    return part
