"""System dependence graphs (Horwitz–Reps–Binkley) for TinyC.

The SDG is the input to the specialization-slicing algorithm: one
procedure dependence graph (PDG) per procedure — entry, statement,
predicate, call, actual-in/out and formal-in/out vertices with control
and flow dependence edges — connected by call, parameter-in and
parameter-out edges, plus the transitive summary edges used by the HRB
two-phase closure-slicing algorithm.
"""

from repro.sdg.graph import (
    CALL,
    CONTROL,
    FLOW,
    LIBRARY,
    PARAM_IN,
    PARAM_OUT,
    SUMMARY,
    CallSiteInfo,
    SystemDependenceGraph,
    Vertex,
    VertexKind,
)
from repro.sdg.parts import ProcPart, extract_part
from repro.sdg.sdg_builder import assemble_sdg, build_sdg
from repro.sdg.slice_ops import (
    backward_closure_slice,
    backward_reach,
    forward_closure_slice,
    forward_reach,
)
from repro.sdg.summary import compute_summary_edges

__all__ = [
    "CALL",
    "CONTROL",
    "CallSiteInfo",
    "FLOW",
    "LIBRARY",
    "PARAM_IN",
    "PARAM_OUT",
    "ProcPart",
    "SUMMARY",
    "SystemDependenceGraph",
    "Vertex",
    "VertexKind",
    "assemble_sdg",
    "backward_closure_slice",
    "backward_reach",
    "build_sdg",
    "extract_part",
    "compute_summary_edges",
    "forward_closure_slice",
    "forward_reach",
]
