"""Function-pointer lowering (§6.2).

Indirect calls cannot be represented in the SDG directly.  The paper's
transformation introduces, for each indirect call site, an explicit
dispatch procedure over the pointer's points-to set::

    x = p(1, 2);      ==>      x = indirect_1(p, 1, 2);

    int indirect_1(fnptr p, int a, int b) {
        if (p == f) { return f(a, b); }
        return g(a, b);
    }

The specialization-slicing algorithm then specializes ``indirect_1`` and
its targets like any other procedures.  The original target procedures
are preserved (possibly as empty stubs in the slice): their addresses
define the dispatch space.

Points-to sets come from the flow-insensitive Andersen-style analysis in
:mod:`repro.lang.sema`, matching the paper's use of Andersen's analysis
(with the same §6.2 caveat about uninitialized pointers: the dispatch
falls through to the last target).
"""

from repro.lang import ast_nodes as A
from repro.lang.errors import SemanticError
from repro.lang.sema import check


class LoweringError(Exception):
    """Raised when an indirect call cannot be lowered (empty points-to
    set, or targets with incompatible signatures)."""


def lower_indirect_calls(program, info):
    """Rewrite all indirect calls through dispatch procedures.

    Returns ``(new_program, new_info)``.  The input AST is not modified;
    if the program has no indirect calls it is returned unchanged (same
    object) with its info.
    """
    if not info.has_indirect_calls:
        return program, info

    lowering = _Lowering(program, info)
    new_program = lowering.run()
    return new_program, check(new_program)


class _Lowering(object):
    def __init__(self, program, info):
        self.program = program
        self.info = info
        self.dispatchers = []
        self.counter = 0

    def run(self):
        new_procs = [self._rewrite_proc(proc) for proc in self.program.procs]
        globals_ = [
            A.GlobalDecl(d.name, _copy_expr(d.init) if d.init else None, d.is_fnptr)
            for d in self.program.globals
        ]
        return A.Program(globals_, new_procs + self.dispatchers)

    def _rewrite_proc(self, proc):
        params = [A.Param(p.name, p.kind) for p in proc.params]
        body = self._rewrite_block(proc.body, proc.name)
        return A.Proc(proc.name, params, proc.ret, body)

    def _rewrite_block(self, block, proc_name):
        return A.Block([self._rewrite_stmt(stmt, proc_name) for stmt in block.stmts])

    def _rewrite_stmt(self, stmt, proc_name):
        if isinstance(stmt, A.Assign):
            return A.Assign(stmt.name, self._rewrite_rhs(stmt.expr, proc_name))
        if isinstance(stmt, A.LocalDecl):
            init = self._rewrite_rhs(stmt.init, proc_name) if stmt.init else None
            return A.LocalDecl(stmt.name, init, stmt.is_fnptr)
        if isinstance(stmt, A.CallStmt):
            return A.CallStmt(self._rewrite_rhs(stmt.call, proc_name))
        if isinstance(stmt, A.If):
            els = self._rewrite_block(stmt.els, proc_name) if stmt.els else None
            return A.If(_copy_expr(stmt.cond), self._rewrite_block(stmt.then, proc_name), els)
        if isinstance(stmt, A.While):
            return A.While(_copy_expr(stmt.cond), self._rewrite_block(stmt.body, proc_name))
        if isinstance(stmt, A.Return):
            return A.Return(_copy_expr(stmt.expr) if stmt.expr else None)
        if isinstance(stmt, A.Print):
            return A.Print([_copy_expr(a) for a in stmt.args], stmt.fmt)
        if isinstance(stmt, A.ExitStmt):
            return A.ExitStmt(_copy_expr(stmt.arg) if stmt.arg else None)
        raise AssertionError("unknown statement %r" % stmt)

    def _rewrite_rhs(self, expr, proc_name):
        if isinstance(expr, A.CallExpr) and expr.is_indirect:
            return self._lower_call(expr, proc_name)
        if isinstance(expr, A.CallExpr):
            return A.CallExpr(expr.callee, [_copy_expr(a) for a in expr.args])
        if isinstance(expr, A.InputExpr):
            return A.InputExpr()
        return _copy_expr(expr)

    def _lower_call(self, call, proc_name):
        targets = sorted(self.info.may_point_to(proc_name, call.callee))
        if not targets:
            raise LoweringError(
                "indirect call through %r has an empty points-to set" % call.callee
            )
        signature = self._signature(targets)
        dispatcher = self._make_dispatcher(targets, signature)
        args = [A.Var(call.callee)] + [_copy_expr(arg) for arg in call.args]
        return A.CallExpr(dispatcher.name, args)

    def _signature(self, targets):
        """All targets must agree on arity, parameter kinds, and return
        type — otherwise no single dispatcher (or C call) is well
        formed."""
        protos = []
        for name in targets:
            proc = self.program.proc(name)
            protos.append((tuple(p.kind for p in proc.params), proc.ret))
        if len(set(protos)) != 1:
            raise LoweringError(
                "function-pointer targets %r have incompatible signatures" % (targets,)
            )
        kinds, ret = protos[0]
        return kinds, ret

    def _make_dispatcher(self, targets, signature):
        kinds, ret = signature
        self.counter += 1
        name = "indirect_%d" % self.counter
        pointer = A.Param("fp", "fnptr")
        params = [pointer] + [
            A.Param("a%d" % index, kind) for index, kind in enumerate(kinds)
        ]
        args = [A.Var("a%d" % index) for index in range(len(kinds))]

        def branch_stmt(target):
            call = A.CallExpr(target, [_copy_expr(a) for a in args])
            if ret == "int":
                return A.Assign("r", call)
            return A.CallStmt(call)

        # Build: if (fp == t1) { r = t1(...); } else if ... else { r = tk(...); }
        stmts = []
        if ret == "int":
            stmts.append(A.LocalDecl("r", A.Num(0)))
        chain = None
        for target in reversed(targets):
            body = A.Block([branch_stmt(target)])
            if chain is None:
                chain = body
            else:
                cond = A.Bin("==", A.Var("fp"), A.FuncRef(target))
                chain = A.Block([A.If(cond, body, chain)])
        stmts.extend(chain.stmts)
        if ret == "int":
            stmts.append(A.Return(A.Var("r")))
        dispatcher = A.Proc(name, params, ret, A.Block(stmts))
        self.dispatchers.append(dispatcher)
        return dispatcher


def _copy_expr(expr):
    from repro.core.executable import _copy_expr as copier

    return copier(expr)
