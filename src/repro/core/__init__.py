"""The paper's contribution: specialization slicing and its companions.

* :mod:`repro.core.criteria` — query-automaton construction for slicing
  criteria (configuration sets, all-contexts, reachable-contexts).
* :mod:`repro.core.specialize` — Algorithm 1 end-to-end.
* :mod:`repro.core.readout` — reading the specialized SDG out of the
  MRD automaton (Alg. 1 lines 9–24).
* :mod:`repro.core.executable` — pretty-printing a specialized SDG back
  to a runnable TinyC program.
* :mod:`repro.core.binkley` — monovariant executable slicing baseline.
* :mod:`repro.core.weiser` — Weiser-style executable slicing baseline.
* :mod:`repro.core.flawed` — the flawed §1 candidate algorithm
  (ablation).
* :mod:`repro.core.feature_removal` — Algorithm 2 (§7).
* :mod:`repro.core.funcptr` — §6.2 function-pointer lowering.
* :mod:`repro.core.reslice` — the §8.3 reslicing validation check.
"""

from repro.core.binkley import binkley_slice
from repro.core.cleanup import clean_feature_removal, useless_code_elimination
from repro.core.bta import (
    BTAResult,
    binding_time_analysis,
    calling_context_slice,
    dynamic_input_vertices,
)
from repro.core.criteria import (
    configs_criterion,
    empty_stack_criterion,
    reachable_configs_automaton,
    reachable_contexts_criterion,
)
from repro.core.executable import executable_program
from repro.core.feature_removal import remove_feature
from repro.core.flawed import flawed_specialization_slice
from repro.core.funcptr import lower_indirect_calls
from repro.core.mono import monovariant_program
from repro.core.readout import SpecializedPDG
from repro.core.reslice import reslice_check
from repro.core.specialize import SpecializationResult, specialization_slice
from repro.core.weiser import weiser_slice

__all__ = [
    "BTAResult",
    "SpecializationResult",
    "SpecializedPDG",
    "binding_time_analysis",
    "binkley_slice",
    "calling_context_slice",
    "clean_feature_removal",
    "configs_criterion",
    "dynamic_input_vertices",
    "empty_stack_criterion",
    "executable_program",
    "flawed_specialization_slice",
    "lower_indirect_calls",
    "monovariant_program",
    "reachable_configs_automaton",
    "reachable_contexts_criterion",
    "remove_feature",
    "reslice_check",
    "specialization_slice",
    "useless_code_elimination",
    "weiser_slice",
]
