"""Feature removal for multi-procedure programs (§7, Algorithm 2).

A "feature" is the forward stack-configuration slice from a criterion
(e.g. everything influenced by ``prod = 1``).  For single-procedure
programs, the complement of a forward slice is a backward slice
(Obs. 7.1), so the feature can simply be subtracted; for multi-procedure
programs that fails on the SDG — but holds again on the *unrolled* SDG,
which the PDS machinery manipulates directly:

    A0 = Poststar(A_C)                       (the feature's configurations)
    A1 = Poststar(entry_main) ∩ ¬det(A0)     (reachable configs minus feature)
    ... continue at line 4 of Alg. 1 (MRD + read-out)

The read-out then produces a specialized program without the feature;
procedures like Fig. 16's ``tally`` lose the parameters that only served
the feature, while shared helpers like ``add`` survive because their
non-feature configurations remain.
"""

from repro.core.criteria import as_query_view, reachable_query_view
from repro.core.readout import read_out_sdg
from repro.core.specialize import SpecializationResult, resolve_criterion
from repro.fsa import complement, determinize, intersection, mrd
from repro.pds import encode_sdg, poststar


def feature_seeds(sdg, feature_text):
    """The statement/call vertices whose label contains
    ``feature_text`` — the seed set for textual feature selection
    (shared by ``repro remove``, :func:`repro.remove_feature_source`,
    and :meth:`repro.engine.SlicingSession.remove_feature`).

    Raises ValueError when nothing matches.
    """
    seeds = {
        vid
        for vid, vertex in sdg.vertices.items()
        if vertex.kind in ("statement", "call") and feature_text in vertex.label
    }
    if not seeds:
        raise ValueError("no statement matches %r" % feature_text)
    return seeds


def remove_feature(sdg, criterion, contexts="reachable", a0=None):
    """Run Algorithm 2.

    Args:
        sdg: the input SDG.
        criterion: a query automaton or an iterable of vertex ids whose
            forward slice is the feature to remove.
        contexts: how to contextualize a vertex-set criterion (as in
            :func:`specialization_slice`).
        a0: an optional precomputed ``Poststar(A_C)`` automaton (the
            feature's forward cone).  The
            :class:`repro.engine.SlicingSession` memo passes the
            saturation-artifact automaton here, so a repeated or
            store-warmed removal skips the cone saturation; must
            correspond to ``criterion``.

    Returns:
        a :class:`SpecializationResult` whose ``sdg`` is the
        feature-free specialized SDG and whose ``a1`` accepts the
        kept (non-feature, reachable) configurations.
    """
    result = SpecializationResult()
    result.source_sdg = sdg
    encoding = encode_sdg(sdg)
    result.encoding = encoding

    a_c = resolve_criterion(encoding, criterion, contexts)
    result.criterion = a_c

    # Line 4: the feature's configurations.
    if a0 is None:
        a0 = poststar(encoding.pds, a_c)
    feature_view = as_query_view(a0, encoding)

    # Line 5: reachable configurations not in the feature.
    reachable_view = reachable_query_view(encoding)
    alphabet = encoding.alphabet()
    kept = intersection(
        reachable_view, complement(determinize(feature_view), alphabet)
    ).trim()
    result.a1 = kept

    # Lines 4-8 of Alg. 1 on the kept language.
    a6 = mrd(kept)
    result.a6 = a6

    r_sdg, pdgs, bindings, map_back_vertex, map_back_site = read_out_sdg(
        sdg, a6, encoding
    )
    result.sdg = r_sdg
    result.pdgs = pdgs
    result.bindings = bindings
    result.map_back_vertex = map_back_vertex
    result.map_back_site = map_back_site
    result.stats = {
        "feature_states": len(feature_view.states),
        "kept_states": len(kept.states),
        "a6_states": len(a6.states),
    }
    return result
