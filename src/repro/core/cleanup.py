"""Interprocedural useless-code elimination (§7's suggested post-pass).

Feature removal keeps every configuration outside the feature, which
can leave behind *useless* residue — §7's example: a specialized
``mult`` whose result nobody reads, still called from ``tally``.  The
paper notes "the program could be cleaned up by performing an
interprocedural useless-code-elimination pass"; this module provides
that pass.

The observation: useless code is exactly code outside the backward
slice from the program's observable behaviour.  So the pass is
self-application — re-slice the output program with respect to all of
its own observable statements (prints and exits, under every reachable
context) and render the result.  Because Alg. 1 is idempotent on
already-minimal programs (§8.3), cleaning is a no-op when there is
nothing useless.
"""

from repro.core.executable import ExecutableSlice, executable_program
from repro.core.specialize import specialization_slice
from repro.lang import ast_nodes as A
from repro.lang.sema import check
from repro.sdg.graph import VertexKind
from repro.sdg.sdg_builder import build_sdg


def observable_criterion(sdg):
    """The vertices carrying observable behaviour: the actual-ins of
    every print, plus exit call vertices (termination and exit codes
    are observable), plus print call vertices with no arguments."""
    criterion = set()
    for vid, vertex in sdg.vertices.items():
        if vertex.kind != VertexKind.CALL:
            continue
        if vertex.label == "call print":
            criterion.add(vid)
            criterion.update(sdg.print_criterion([vid]))
        elif vertex.label == "call exit":
            criterion.add(vid)
    return criterion


def useless_code_elimination(program):
    """Remove interprocedurally useless code from ``program``.

    Args:
        program: a TinyC :class:`Program` AST (e.g. the output of
            feature removal).

    Returns:
        an :class:`ExecutableSlice` whose ``program`` contains only code
        that can affect observable behaviour.  ``stmt_map`` maps the
        cleaned statements back to ``program``'s uids.
    """
    info = check(program)
    sdg = build_sdg(program, info)
    criterion = observable_criterion(sdg)
    if not criterion:
        # No observable behaviour at all: the empty program.
        empty = A.Program([], [A.Proc("main", [], "int", A.Block([]))])
        check(empty)
        return ExecutableSlice(empty, {}, {})
    result = specialization_slice(sdg, criterion)
    return executable_program(result)


def clean_feature_removal(result):
    """Convenience: render a feature-removal
    :class:`SpecializationResult` and clean it in one step.  Returns
    ``(raw_slice, cleaned_slice)``; the composed statement map of
    ``cleaned_slice`` points back to the *original* program's uids."""
    raw = executable_program(result)
    cleaned = useless_code_elimination(raw.program)
    composed = {
        new_uid: raw.stmt_map[mid_uid]
        for new_uid, mid_uid in cleaned.stmt_map.items()
        if mid_uid in raw.stmt_map
    }
    return raw, ExecutableSlice(cleaned.program, composed, cleaned.spec_of_proc)
