"""Rendering a *monovariant* vertex set (Binkley / Weiser slices) as an
executable program.

Unlike the polyvariant renderer, every procedure has exactly one version
and keeps its original name; a parameter position survives if its
formal-in or formal-out vertex is in the set; a call argument is printed
iff the callee keeps that position.  The algorithms that produce these
sets (``binkley_slice``, ``weiser_slice``) guarantee the corresponding
actual-ins are present, so no parameter mismatch remains.
"""

from repro.core.executable import ExecutableSlice, _copy_expr
from repro.lang import ast_nodes as A


def monovariant_program(sdg, slice_set):
    """Render ``slice_set`` (a set of SDG vertex ids) as a program."""
    program, info = sdg.program, sdg.info
    if program is None or info is None:
        raise ValueError("SDG lacks program/info back-references")
    generator = _MonoGenerator(sdg, slice_set)
    return generator.run()


class _MonoGenerator(object):
    def __init__(self, sdg, slice_set):
        self.sdg = sdg
        self.slice_set = frozenset(slice_set)
        self.program = sdg.program
        self.info = sdg.info
        self.stmt_map = {}

    def run(self):
        new_procs = []
        kept_procs = set()
        for proc in self.program.procs:
            entry = self.sdg.entry_vertex[proc.name]
            if entry not in self.slice_set and proc.name != "main":
                continue
            kept_procs.add(proc.name)
            new_procs.append(self._render_proc(proc))

        funcrefs = self._collect_funcrefs(new_procs)
        for name in sorted(funcrefs - kept_procs):
            try:
                orig = self.program.proc(name)
            except KeyError:
                continue
            params = [A.Param(p.name, p.kind) for p in orig.params]
            new_procs.append(A.Proc(name, params, orig.ret, A.Block([])))

        globals_ = self._referenced_globals(new_procs)
        new_program = A.Program(globals_, new_procs)
        from repro.lang.sema import check

        check(new_program)
        return ExecutableSlice(new_program, self.stmt_map, {})

    # -- procedure-level filters -------------------------------------------------

    def _kept_positions(self, proc_name):
        kept = []
        for role, vid in self.sdg.formal_ins[proc_name].items():
            if role[0] == "param" and vid in self.slice_set:
                kept.append(role[1])
        for role, vid in self.sdg.formal_outs[proc_name].items():
            if role[0] == "param" and vid in self.slice_set and role[1] not in kept:
                kept.append(role[1])
        return sorted(kept)

    def _returns_value(self, proc_name):
        fo = self.sdg.formal_outs[proc_name].get(("ret",))
        return fo is not None and fo in self.slice_set

    def _render_proc(self, proc):
        positions = self._kept_positions(proc.name)
        params = [A.Param(proc.params[i].name, proc.params[i].kind) for i in positions]
        ret = "int" if self._returns_value(proc.name) else "void"
        body = A.Block(self._render_block(proc.body))
        self._ensure_local_decls(proc, body, params)
        return A.Proc(proc.name, params, ret, body)

    # -- statements -----------------------------------------------------------------

    def _render_block(self, block):
        rendered = []
        for stmt in block.stmts:
            new_stmt = self._render_stmt(stmt)
            if new_stmt is not None:
                rendered.append(new_stmt)
        return rendered

    def _render_stmt(self, stmt):
        vid = self.sdg.vertex_of_stmt.get(stmt.uid)
        in_slice = vid in self.slice_set

        call = _call_expr(stmt)
        if call is not None and not call.is_indirect:
            if not in_slice:
                return None
            return self._render_call(stmt, vid)

        if isinstance(stmt, A.If):
            if not in_slice:
                return None
            then = A.Block(self._render_block(stmt.then))
            els = None
            if stmt.els is not None:
                els_stmts = self._render_block(stmt.els)
                if els_stmts:
                    els = A.Block(els_stmts)
            new_stmt = A.If(_copy_expr(stmt.cond), then, els)
        elif isinstance(stmt, A.While):
            if not in_slice:
                return None
            new_stmt = A.While(_copy_expr(stmt.cond), A.Block(self._render_block(stmt.body)))
        elif not in_slice:
            return None
        elif isinstance(stmt, A.Assign):
            expr = A.InputExpr() if isinstance(stmt.expr, A.InputExpr) else _copy_expr(stmt.expr)
            new_stmt = A.Assign(stmt.name, expr)
        elif isinstance(stmt, A.LocalDecl):
            init = None
            if stmt.init is not None:
                init = A.InputExpr() if isinstance(stmt.init, A.InputExpr) else _copy_expr(stmt.init)
            new_stmt = A.LocalDecl(stmt.name, init, stmt.is_fnptr)
        elif isinstance(stmt, A.Return):
            proc_name = self.sdg.vertices[vid].proc
            if stmt.expr is not None and self._returns_value(proc_name):
                new_stmt = A.Return(_copy_expr(stmt.expr))
            else:
                new_stmt = A.Return(None)
        elif isinstance(stmt, A.Print):
            new_stmt = A.Print([_copy_expr(arg) for arg in stmt.args], stmt.fmt)
        elif isinstance(stmt, A.ExitStmt):
            new_stmt = A.ExitStmt(_copy_expr(stmt.arg) if stmt.arg else None)
        else:
            raise AssertionError("unknown statement %r" % stmt)
        self.stmt_map[new_stmt.uid] = stmt.uid
        return new_stmt

    def _render_call(self, stmt, call_vid):
        vertex = self.sdg.vertices[call_vid]
        site = self.sdg.call_sites[vertex.site_label]
        positions = self._kept_positions(site.callee)
        call = _call_expr(stmt)
        args = [_copy_expr(call.args[index]) for index in positions]
        new_call = A.CallExpr(site.callee, args)

        ret_ao = site.actual_outs.get(("ret",))
        captured = (
            ret_ao is not None
            and ret_ao in self.slice_set
            and self._returns_value(site.callee)
        )
        if captured and isinstance(stmt, A.Assign):
            new_stmt = A.Assign(stmt.name, new_call)
        elif captured and isinstance(stmt, A.LocalDecl):
            new_stmt = A.LocalDecl(stmt.name, new_call, stmt.is_fnptr)
        else:
            new_stmt = A.CallStmt(new_call)
        self.stmt_map[new_stmt.uid] = stmt.uid
        return new_stmt

    # -- post passes -----------------------------------------------------------------

    def _ensure_local_decls(self, orig_proc, body, params):
        proc_info = self.info.procs[orig_proc.name]
        param_names = {param.name for param in params}
        declared = {
            stmt.name for stmt in A.walk_stmts(body) if isinstance(stmt, A.LocalDecl)
        }
        mentioned = set()
        for stmt in A.walk_stmts(body):
            if isinstance(stmt, (A.Assign, A.LocalDecl)):
                mentioned.add(stmt.name)
            for expr in A.stmt_exprs(stmt):
                mentioned.update(A.expr_vars(expr))
        missing = []
        for name in sorted(mentioned - declared - param_names):
            if name in proc_info.locals:
                missing.append(A.LocalDecl(name, None, proc_info.locals[name]))
            elif name in proc_info.param_kinds:
                is_fnptr = proc_info.param_kinds[name] == "fnptr"
                missing.append(A.LocalDecl(name, None, is_fnptr))
        body.stmts[:0] = missing

    def _collect_funcrefs(self, procs):
        names = set()
        for proc in procs:
            for stmt in A.walk_stmts(proc.body):
                for expr in A.stmt_exprs(stmt):
                    for sub in A.walk_exprs(expr):
                        if isinstance(sub, A.FuncRef):
                            names.add(sub.name)
        return names

    def _referenced_globals(self, procs):
        mentioned = set()
        for proc in procs:
            for stmt in A.walk_stmts(proc.body):
                if isinstance(stmt, (A.Assign, A.LocalDecl)):
                    mentioned.add(stmt.name)
                for expr in A.stmt_exprs(stmt):
                    mentioned.update(A.expr_vars(expr))
        globals_ = []
        for decl in self.program.globals:
            if decl.name in mentioned:
                init = _copy_expr(decl.init) if decl.init is not None else None
                globals_.append(A.GlobalDecl(decl.name, init, decl.is_fnptr))
        return globals_


def _call_expr(stmt):
    if isinstance(stmt, A.CallStmt):
        return stmt.call
    if isinstance(stmt, A.Assign) and isinstance(stmt.expr, A.CallExpr):
        return stmt.expr
    if isinstance(stmt, A.LocalDecl) and isinstance(stmt.init, A.CallExpr):
        return stmt.init
    return None
