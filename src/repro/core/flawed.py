"""The flawed specialization-slicing candidate from §1 (ablation).

The method: compute the closure slice; for each call site whose actual
parameters mismatch the callee's sliced formals, specialize the callee
by copying its closure-sliced elements and *removing the forward slice
from the unneeded formal-ins*; iterate (with tabulation) until no
mismatches remain.

The paper shows this is complete but not sound: elements that are not in
the forward slice of the unneeded formals yet are dead in the
specialized variant survive — the ``int z = 3;`` statement in the §1
example remains in ``p_1`` even though ``p_1`` no longer needs it.

We reproduce it for the E14 ablation benchmark, measuring how many
extra elements it retains relative to Alg. 1's optimal output.
"""

from repro.sdg.graph import CALL, CONTROL, FLOW, LIBRARY, PARAM_IN, SUMMARY
from repro.sdg.slice_ops import backward_closure_slice, forward_reach

# "The forward slice from the unneeded formal-ins", as the §1 sketch
# intends it: downward-only — through the procedure and into its
# callees, never back up to callers (ascending and re-descending would
# remove elements other calling patterns still need, changing the
# example's behaviour).
_DOWNWARD = frozenset([CONTROL, FLOW, LIBRARY, SUMMARY, CALL, PARAM_IN])


class FlawedResult(object):
    """Specializations produced by the flawed method.

    Attributes:
        closure: the underlying closure slice.
        variants: dict (proc name, frozenset of needed formal-in roles)
            -> frozenset of that variant's vertices.
    """

    def __init__(self, closure, variants):
        self.closure = frozenset(closure)
        self.variants = variants

    def variant_vertices(self, proc, needed_roles):
        return self.variants[(proc, frozenset(needed_roles))]

    def total_vertices(self):
        return sum(len(vertices) for vertices in self.variants.values())


def flawed_specialization_slice(sdg, criterion):
    """Run the flawed §1 method; returns a :class:`FlawedResult`."""
    closure = backward_closure_slice(sdg, criterion)

    variants = {}
    worklist = []

    def proc_slice(proc):
        return {
            vid for vid in sdg.proc_vertices[proc] if vid in closure
        }

    def needed_roles_at(site, vertex_set):
        """Formal-in roles fed by actual-ins present in the caller's
        variant."""
        roles = set()
        for role, ai in site.actual_ins.items():
            if ai in vertex_set:
                roles.add(role)
        return frozenset(roles)

    def variant_for(proc, needed):
        key = (proc, needed)
        if key in variants:
            return variants[key]
        base = proc_slice(proc)
        sliced_formal_roles = {
            role
            for role, vid in sdg.formal_ins[proc].items()
            if vid in closure
        }
        unneeded = sliced_formal_roles - needed
        if unneeded:
            seeds = {sdg.formal_ins[proc][role] for role in unneeded}
            forward = forward_reach(sdg, seeds, _DOWNWARD)
            elements = frozenset(base - forward)
        else:
            elements = frozenset(base)
        variants[key] = elements
        worklist.append((proc, elements))
        return elements

    # Seed: main's variant needs all of its sliced formals (there are
    # none — main has no callers).
    main_roles = frozenset(
        role for role, vid in sdg.formal_ins["main"].items() if vid in closure
    )
    variant_for("main", main_roles)

    while worklist:
        proc, elements = worklist.pop()
        for label in sdg.sites_in_proc.get(proc, ()):
            site = sdg.call_sites[label]
            if site.call_vertex not in elements:
                continue
            needed = needed_roles_at(site, elements)
            variant_for(site.callee, needed)

    return FlawedResult(closure, variants)
