"""Polyvariant binding-time analysis (§9's partial-evaluation
application of the machinery).

Off-line partial evaluators need, for each procedure, the patterns of
static ("supplied") vs dynamic ("delayed") parameters that can arise —
per calling context.  The paper observes that the specialization-slicing
machinery computes exactly this: take the *forward* stack-configuration
slice (Poststar) from the program's dynamic inputs, build the minimal
reverse-deterministic automaton, and read the partition off its states.
Each partition element is one *binding-time division*: a set of program
elements that are dynamic under a regular language of calling contexts.

This module implements that sketch.  A program element not appearing in
any division is static everywhere.
"""

from repro.core.criteria import (
    as_query_view,
    empty_stack_criterion,
    reachable_contexts_criterion,
)
from repro.core.readout import ReadoutError
from repro.fsa import mrd
from repro.pds import encode_sdg, poststar
from repro.sdg.graph import VertexKind


class BindingTimeDivision(object):
    """One polyvariant division of a procedure.

    Attributes:
        proc: procedure name.
        state: the MRD-automaton state (opaque; distinct per division).
        dynamic_vertices: frozenset of PDG vertex ids dynamic under this
            division's contexts.
        dynamic_param_roles: roles of the formal-ins that are dynamic
            (the "delayed" parameters of this division).
    """

    def __init__(self, proc, state, dynamic_vertices, dynamic_param_roles):
        self.proc = proc
        self.state = state
        self.dynamic_vertices = frozenset(dynamic_vertices)
        self.dynamic_param_roles = frozenset(dynamic_param_roles)

    def __repr__(self):
        return "BindingTimeDivision(%s: %d dynamic elems, dynamic params %s)" % (
            self.proc,
            len(self.dynamic_vertices),
            sorted(self.dynamic_param_roles),
        )


class BTAResult(object):
    """Outcome of the polyvariant binding-time analysis."""

    def __init__(self, sdg, a6, divisions):
        self.sdg = sdg
        self.a6 = a6
        self.divisions = divisions  # proc name -> [BindingTimeDivision]

    def divisions_of(self, proc):
        return list(self.divisions.get(proc, ()))

    def division_counts(self):
        return {proc: len(items) for proc, items in self.divisions.items()}

    def is_dynamic_anywhere(self, vid):
        proc = self.sdg.vertices[vid].proc
        return any(
            vid in division.dynamic_vertices
            for division in self.divisions.get(proc, ())
        )

    def report(self):
        """Human-readable division summary."""
        lines = []
        for proc in sorted(self.divisions):
            lines.append("%s:" % proc)
            for index, division in enumerate(self.divisions[proc], 1):
                dynamic_params = sorted(
                    self.sdg.vertices[
                        self.sdg.formal_ins[proc][role]
                    ].label
                    for role in division.dynamic_param_roles
                )
                lines.append(
                    "  division %d: dynamic params %s (%d dynamic elements)"
                    % (index, dynamic_params or ["<none>"], len(division.dynamic_vertices))
                )
        return "\n".join(lines)


def binding_time_analysis(sdg, dynamic_inputs, contexts="reachable"):
    """Run the §9 polyvariant BTA.

    Args:
        sdg: the program's SDG.
        dynamic_inputs: vertex ids of the dynamic inputs (e.g. the
            ``input()`` statements, or formal-ins of ``main``'s data).
        contexts: ``"reachable"`` or ``"empty"``, as elsewhere.

    Returns:
        a :class:`BTAResult`.
    """
    encoding = encode_sdg(sdg)
    vids = sorted(dynamic_inputs)
    if contexts == "reachable":
        query = reachable_contexts_criterion(encoding, vids)
    elif contexts == "empty":
        query = empty_stack_criterion(encoding, vids)
    else:
        raise ValueError("contexts must be 'reachable' or 'empty'")

    forward = poststar(encoding.pds, query)
    view = as_query_view(forward, encoding)
    a6 = mrd(view).trim()

    divisions = {}
    if a6.states:
        if len(a6.initials) != 1:
            raise ReadoutError("MRD automaton must have a single initial state")
        q0 = next(iter(a6.initials))
        per_state = {}
        for (src, symbol, dst) in a6.transitions():
            if src != q0:
                continue
            if not encoding.is_vertex_symbol(symbol):
                raise ReadoutError("non-vertex symbol out of the initial state")
            per_state.setdefault(dst, set()).add(symbol)
        for state, vertices in per_state.items():
            procs = {sdg.vertices[vid].proc for vid in vertices}
            if len(procs) != 1:
                raise ReadoutError("division mixes procedures")
            proc = procs.pop()
            dynamic_roles = {
                role
                for role, fi in sdg.formal_ins[proc].items()
                if fi in vertices and role[0] == "param"
            }
            divisions.setdefault(proc, []).append(
                BindingTimeDivision(proc, state, vertices, dynamic_roles)
            )
        for items in divisions.values():
            items.sort(key=lambda d: tuple(sorted(d.dynamic_vertices)))
    return BTAResult(sdg, a6, divisions)


def dynamic_input_vertices(sdg):
    """The default dynamic-input criterion: every ``input()``
    statement's vertex."""
    result = set()
    for vid, vertex in sdg.vertices.items():
        if vertex.kind == VertexKind.STATEMENT and "input()" in vertex.label:
            result.add(vid)
    return result


def calling_context_slice(sdg, vertices, context):
    """Convenience: a *calling-context slice* (Binkley 1997 / Krinke
    2004) — the backward slice of ``vertices`` under one specific
    calling context, as the set of PDG elements.  Subsumed by the PDS
    machinery: a single-configuration Prestar query (§9)."""
    from repro.core.criteria import configs_criterion
    from repro.pds import prestar

    encoding = encode_sdg(sdg)
    query = configs_criterion(
        encoding, [(vid, tuple(context)) for vid in sorted(vertices)]
    )
    saturated = prestar(encoding.pds, query)
    return encoding.elems(saturated)
