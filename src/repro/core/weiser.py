"""Weiser-style executable slicing (Weiser 1984, as characterized in §5).

Weiser's algorithm is context-insensitive and treats call sites as
indivisible: "if a slice includes one parameter, it must include all
parameters" (Binkley 1993, p.32).  We realize those two properties on
the SDG substrate:

* context-insensitive backward reachability over all dependence edges
  (no summary edges, no phase discipline — descending and ascending
  freely, so including one call site on ``p`` effectively includes the
  effects of all call sites on ``p``);
* whenever a call vertex is in the slice, *all* of its actual-in and
  actual-out vertices join the slice (and their backward reachability in
  the next round).

The result is complete and executable but generally larger than both
Binkley's slice and the closure slice.
"""

from repro.core.binkley import MonovariantResult
from repro.sdg.slice_ops import backward_closure_slice, backward_reach


def weiser_slice(sdg, criterion):
    """Run the Weiser-style algorithm; returns a
    :class:`MonovariantResult` (``closure`` holds the HRB closure slice
    for size comparisons)."""
    closure = backward_closure_slice(sdg, criterion)
    slice_set = set(criterion)
    iterations = 0
    while True:
        iterations += 1
        slice_set = backward_reach(sdg, slice_set)
        additions = set()
        # Actual-outs are definitions; Weiser's relevant-set formulation
        # keeps a call's output assignments only when their targets are
        # live, which backward reachability already captures — the
        # indivisible call site adds the *inputs* unconditionally.
        for site in sdg.call_sites.values():
            if site.call_vertex in slice_set:
                for vid in site.actual_ins.values():
                    if vid not in slice_set:
                        additions.add(vid)
        # A procedure in the slice keeps all its formal-ins (whole-
        # procedure signature), forcing every included call site to pass
        # every argument.
        for proc, entry in sdg.entry_vertex.items():
            if entry in slice_set:
                for vid in sdg.formal_ins[proc].values():
                    if vid not in slice_set:
                        additions.add(vid)
        if not additions:
            break
        slice_set |= additions
    return MonovariantResult(slice_set, closure, iterations)
