"""Binkley's monovariant executable slicing (Binkley 1993; §5).

Start from the HRB closure slice; while some call site in the slice has
a parameter mismatch (the callee's formal-in is in the slice but the
site's matching actual-in is not), add the missing actual-in together
with *everything in its backward closure slice*; repeat to fixpoint.

The result is a single (monovariant) vertex set per procedure that
renders as an executable program — complete but not sound in the
paper's terminology: it may contain elements outside the closure slice
(the paper's Fig. 14(c) ``g2 = 100`` add-back).
"""

from repro.sdg.slice_ops import backward_closure_slice


class MonovariantResult(object):
    """Outcome of a monovariant executable-slicing run.

    Attributes:
        slice_set: the final vertex set.
        closure: the initial closure slice (for §8-style comparisons).
        added: vertices in ``slice_set`` but not in ``closure`` (the
            "extraneous" elements of Fig. 19).
        iterations: number of mismatch-repair rounds.
    """

    def __init__(self, slice_set, closure, iterations):
        self.slice_set = frozenset(slice_set)
        self.closure = frozenset(closure)
        self.added = self.slice_set - self.closure
        self.iterations = iterations

    def extra_percent(self):
        """Extra vertices relative to the closure slice, in percent."""
        if not self.closure:
            return 0.0
        return 100.0 * len(self.added) / len(self.closure)


def binkley_slice(sdg, criterion=None, closure_set=None):
    """Run Binkley's algorithm; returns a :class:`MonovariantResult`.

    Either pass a ``criterion`` vertex set (the HRB closure slice is
    computed from it), or pass ``closure_set`` directly — the paper's §8
    comparison starts both algorithms from the same element set (the
    Elems of the stack-configuration slice for call-stack criteria).
    """
    if closure_set is None:
        closure = backward_closure_slice(sdg, criterion)
    else:
        closure = set(closure_set)
    slice_set = set(closure)

    # The monovariant element set of each procedure is the union over
    # the whole slice, so a formal-in is "present" exactly when it is in
    # slice_set.
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        missing = set()
        for site in sdg.call_sites.values():
            if site.call_vertex not in slice_set:
                continue
            for role, fi in sdg.formal_ins[site.callee].items():
                if fi not in slice_set:
                    continue
                ai = site.actual_ins.get(role)
                if ai is not None and ai not in slice_set:
                    missing.add(ai)
        if missing:
            addition = backward_closure_slice(sdg, missing)
            before = len(slice_set)
            slice_set |= addition
            changed = len(slice_set) != before
    return MonovariantResult(slice_set, closure, iterations)
