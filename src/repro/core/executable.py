"""Generating an executable TinyC program from a specialized SDG.

This is step 5 of Alg. 1 (which the paper delegates to CodeSurfer's
pretty-printer).  Each :class:`SpecializedPDG` is rendered by walking
the *original* procedure's AST and keeping exactly the statements whose
vertices are in the partition element; call statements are re-targeted
to the specialization their call site is bound to, and argument lists
are filtered to the callee's surviving parameter positions (Cor. 3.19
guarantees the caller/callee filters agree).

Details the paper's examples imply:

* ``x = f(...)`` whose return actual-out was sliced away demotes to the
  call statement ``f(...);`` (the call's side effects remain relevant).
* A specialized procedure whose ``$ret`` formal-out was sliced away
  becomes ``void``; its kept ``return e;`` statements drop the value.
* A local whose declaration was sliced away (dead initial value) but
  which is still written/read gets a plain ``int x;`` re-inserted at the
  top of the body.
* Globals are emitted only if some kept statement mentions them; their
  (constant) initializers are preserved.
* Procedures referenced only as function-pointer values are emitted as
  empty stubs, preserving the address space (§6.2).
"""

from repro.lang import ast_nodes as A
from repro.sdg.graph import VertexKind


class ExecutableError(Exception):
    """The specialized SDG cannot be rendered as a program (e.g. a kept
    call site whose callee was sliced away entirely — impossible for
    criteria anchored at program points, but reachable with artificial
    configuration criteria)."""


class ExecutableSlice(object):
    """A runnable slice.

    Attributes:
        program: the new :class:`Program` AST (semantically checked).
        stmt_map: new statement uid -> original statement uid.
        spec_of_proc: new procedure name -> :class:`SpecializedPDG`.
    """

    def __init__(self, program, stmt_map, spec_of_proc):
        self.program = program
        self.stmt_map = stmt_map
        self.spec_of_proc = spec_of_proc

    def original_uids(self, new_uids):
        return {self.stmt_map[uid] for uid in new_uids if uid in self.stmt_map}


def executable_program(result):
    """Render a :class:`SpecializationResult` as a runnable program."""
    source_sdg = result.source_sdg
    program = source_sdg.program
    info = source_sdg.info
    if program is None or info is None:
        raise ExecutableError("source SDG lacks program/info back-references")

    generator = _Generator(result, program, info)
    return generator.run()


class _Generator(object):
    def __init__(self, result, program, info):
        self.result = result
        self.program = program
        self.info = info
        self.sdg = result.source_sdg
        self.stmt_map = {}
        self.spec_of_proc = {}
        self.funcref_names = set()

    # -- top level ------------------------------------------------------------

    def run(self):
        new_procs = []
        ordered = sorted(
            self.result.pdgs.values(),
            key=lambda spec: (
                [p.name for p in self.program.procs].index(spec.proc),
                spec.name,
            ),
        )
        for spec in ordered:
            new_procs.append(self._render_proc(spec))
            self.spec_of_proc[spec.name] = spec

        if "main" not in self.spec_of_proc:
            # Criterion unreachable or empty: the slice is the empty
            # program.
            empty_main = A.Proc("main", [], "int", A.Block([]))
            new_procs.append(empty_main)

        new_procs.extend(self._funcref_stubs({proc.name for proc in new_procs}))
        globals_ = self._referenced_globals(new_procs)
        new_program = A.Program(globals_, new_procs)

        from repro.lang.sema import check

        check(new_program)  # the slice must be a legal program
        return ExecutableSlice(new_program, self.stmt_map, self.spec_of_proc)

    # -- procedures ---------------------------------------------------------------

    def _kept_positions(self, spec):
        """Parameter positions surviving in a specialization."""
        roles = set(self.sdg.formal_ins[spec.proc]) | set(
            self.sdg.formal_outs[spec.proc]
        )
        kept = []
        for role in roles:
            if role[0] != "param":
                continue
            fi = self.sdg.formal_ins[spec.proc].get(role)
            fo = self.sdg.formal_outs[spec.proc].get(role)
            if (fi is not None and fi in spec.orig_vertices) or (
                fo is not None and fo in spec.orig_vertices
            ):
                kept.append(role[1])
        return sorted(kept)

    def _returns_value(self, spec):
        fo = self.sdg.formal_outs[spec.proc].get(("ret",))
        return fo is not None and fo in spec.orig_vertices

    def _render_proc(self, spec):
        proc = self.program.proc(spec.proc)
        positions = self._kept_positions(spec)
        params = [self._copy_param(proc.params[index]) for index in positions]
        ret = "int" if self._returns_value(spec) else "void"
        body_stmts = self._render_block(proc.body, spec)
        body = A.Block(body_stmts)
        self._ensure_local_decls(proc, body, params, spec)
        return A.Proc(spec.name, params, ret, body)

    @staticmethod
    def _copy_param(param):
        return A.Param(param.name, param.kind)

    # -- statements -----------------------------------------------------------------

    def _render_block(self, block, spec):
        rendered = []
        for stmt in block.stmts:
            new_stmt = self._render_stmt(stmt, spec)
            if new_stmt is not None:
                rendered.append(new_stmt)
        return rendered

    def _render_stmt(self, stmt, spec):
        kept = spec.orig_vertices
        vid = self.sdg.vertex_of_stmt.get(stmt.uid)
        vertex = self.sdg.vertices[vid] if vid is not None else None
        in_slice = vid in kept

        if isinstance(stmt, (A.Assign, A.LocalDecl)) and isinstance(
            _rhs(stmt), A.CallExpr
        ):
            if not in_slice:
                return None
            return self._render_call(stmt, vertex, spec)

        if isinstance(stmt, A.CallStmt):
            if not in_slice:
                return None
            return self._render_call(stmt, vertex, spec)

        if isinstance(stmt, A.If):
            if not in_slice:
                return None
            then = A.Block(self._render_block(stmt.then, spec))
            els = None
            if stmt.els is not None:
                els_stmts = self._render_block(stmt.els, spec)
                if els_stmts:
                    els = A.Block(els_stmts)
            new_stmt = A.If(_copy_expr(stmt.cond), then, els)
            self.stmt_map[new_stmt.uid] = stmt.uid
            return new_stmt

        if isinstance(stmt, A.While):
            if not in_slice:
                return None
            body = A.Block(self._render_block(stmt.body, spec))
            new_stmt = A.While(_copy_expr(stmt.cond), body)
            self.stmt_map[new_stmt.uid] = stmt.uid
            return new_stmt

        if not in_slice:
            return None

        if isinstance(stmt, A.Assign):
            expr = (
                A.InputExpr()
                if isinstance(stmt.expr, A.InputExpr)
                else _copy_expr(stmt.expr)
            )
            new_stmt = A.Assign(stmt.name, expr)
        elif isinstance(stmt, A.LocalDecl):
            init = None
            if stmt.init is not None:
                init = (
                    A.InputExpr()
                    if isinstance(stmt.init, A.InputExpr)
                    else _copy_expr(stmt.init)
                )
            new_stmt = A.LocalDecl(stmt.name, init, stmt.is_fnptr)
        elif isinstance(stmt, A.Return):
            if stmt.expr is not None and self._returns_value(spec):
                new_stmt = A.Return(_copy_expr(stmt.expr))
            else:
                new_stmt = A.Return(None)
        elif isinstance(stmt, A.Print):
            new_stmt = A.Print([_copy_expr(arg) for arg in stmt.args], stmt.fmt)
        elif isinstance(stmt, A.ExitStmt):
            arg = _copy_expr(stmt.arg) if stmt.arg is not None else None
            new_stmt = A.ExitStmt(arg)
        else:
            raise AssertionError("unknown statement %r" % stmt)
        self.stmt_map[new_stmt.uid] = stmt.uid
        self._note_funcrefs(new_stmt)
        return new_stmt

    def _render_call(self, stmt, call_vertex, spec):
        """A kept direct-call statement: retarget and filter arguments."""
        site = self.sdg.call_sites[call_vertex.site_label]
        callee_name = self.result.callee_name(spec, site.label)
        if callee_name is None:
            raise ExecutableError(
                "call site %s kept in %s but not bound to any specialization"
                % (site.label, spec.name)
            )
        callee_spec = next(
            s for s in self.result.pdgs.values() if s.name == callee_name
        )
        positions = self._kept_positions(callee_spec)
        call = _call_of_stmt(stmt)
        args = [_copy_expr(call.args[index]) for index in positions]
        new_call = A.CallExpr(callee_name, args)

        ret_ao = site.actual_outs.get(("ret",))
        captured = ret_ao is not None and ret_ao in spec.orig_vertices
        if captured and isinstance(stmt, A.Assign):
            new_stmt = A.Assign(stmt.name, new_call)
        elif captured and isinstance(stmt, A.LocalDecl):
            new_stmt = A.LocalDecl(stmt.name, new_call, stmt.is_fnptr)
        else:
            new_stmt = A.CallStmt(new_call)
        self.stmt_map[new_stmt.uid] = stmt.uid
        for arg in args:
            self._note_funcrefs_expr(arg)
        return new_stmt

    # -- post passes ---------------------------------------------------------------

    def _ensure_local_decls(self, orig_proc, body, params, spec):
        """Re-insert plain declarations for locals whose declaration was
        sliced away but which are still mentioned."""
        proc_info = self.info.procs[orig_proc.name]
        param_names = {param.name for param in params}
        declared = {
            stmt.name
            for stmt in A.walk_stmts(body)
            if isinstance(stmt, A.LocalDecl)
        }
        mentioned = set()
        for stmt in A.walk_stmts(body):
            if isinstance(stmt, (A.Assign, A.LocalDecl)):
                mentioned.add(stmt.name)
            for expr in A.stmt_exprs(stmt):
                mentioned.update(A.expr_vars(expr))
        missing = []
        for name in sorted(mentioned - declared - param_names):
            if name in proc_info.locals or name in proc_info.param_kinds:
                if name in proc_info.param_kinds:
                    # A parameter whose formal vertices were sliced away
                    # but which is still read: re-declare as a local
                    # (its value never matters to the slice).
                    is_fnptr = proc_info.param_kinds[name] == "fnptr"
                else:
                    is_fnptr = proc_info.locals[name]
                missing.append(A.LocalDecl(name, None, is_fnptr))
        body.stmts[:0] = missing

    def _funcref_stubs(self, existing_names):
        """Empty stubs for procedures referenced only as function-pointer
        values (§6.2: addresses define the dispatch space)."""
        stubs = []
        for name in sorted(self.funcref_names - existing_names):
            try:
                orig = self.program.proc(name)
            except KeyError:
                continue
            params = [self._copy_param(param) for param in orig.params]
            stubs.append(A.Proc(name, params, orig.ret, A.Block([])))
        return stubs

    def _referenced_globals(self, procs):
        mentioned = set()
        for proc in procs:
            for stmt in A.walk_stmts(proc.body):
                if isinstance(stmt, (A.Assign, A.LocalDecl)):
                    mentioned.add(stmt.name)
                for expr in A.stmt_exprs(stmt):
                    mentioned.update(A.expr_vars(expr))
        globals_ = []
        for decl in self.program.globals:
            if decl.name in mentioned and decl.name in self.info.global_names:
                init = _copy_expr(decl.init) if decl.init is not None else None
                globals_.append(A.GlobalDecl(decl.name, init, decl.is_fnptr))
        return globals_

    def _note_funcrefs(self, stmt):
        for expr in A.stmt_exprs(stmt):
            self._note_funcrefs_expr(expr)

    def _note_funcrefs_expr(self, expr):
        for sub in A.walk_exprs(expr):
            if isinstance(sub, A.FuncRef):
                self.funcref_names.add(sub.name)


def _rhs(stmt):
    if isinstance(stmt, A.Assign):
        return stmt.expr
    if isinstance(stmt, A.LocalDecl):
        return stmt.init
    return None


def _call_of_stmt(stmt):
    if isinstance(stmt, A.CallStmt):
        return stmt.call
    return _rhs(stmt)


def _copy_expr(expr):
    """Structural deep copy of an expression."""
    if isinstance(expr, A.Num):
        return A.Num(expr.value)
    if isinstance(expr, A.Var):
        return A.Var(expr.name)
    if isinstance(expr, A.FuncRef):
        return A.FuncRef(expr.name)
    if isinstance(expr, A.InputExpr):
        return A.InputExpr()
    if isinstance(expr, A.Bin):
        return A.Bin(expr.op, _copy_expr(expr.left), _copy_expr(expr.right))
    if isinstance(expr, A.Un):
        return A.Un(expr.op, _copy_expr(expr.operand))
    if isinstance(expr, A.CallExpr):
        copied = A.CallExpr(expr.callee, [_copy_expr(arg) for arg in expr.args])
        copied.is_indirect = expr.is_indirect
        return copied
    raise AssertionError("unknown expression %r" % expr)
