"""Algorithm 1: specialization slicing, end to end.

    1. encode the SDG as a PDS                         (Defn. 3.2)
    2. A1 = Prestar(A0)  — stack-configuration slice   (§3.2)
    3. A6 = MRD(A1)      — reverse; determinize; minimize; reverse;
                           remove-epsilon              (§3.3)
    4. read out the specialized SDG R from A6          (§3.4)

Step 5 (pretty-printing R as source text) lives in
:mod:`repro.core.executable`.
"""

import time

from repro import kernelcfg
from repro.core.criteria import (
    as_query_view,
    empty_stack_criterion,
    reachable_contexts_criterion,
)
from repro.core.readout import read_out_sdg
from repro.fsa import determinize, remove_epsilon, reverse
from repro.fsa.minimize import minimize
from repro.pds import encode_sdg, prestar


class SpecializationResult(object):
    """Everything Algorithm 1 produces, plus instrumentation.

    Attributes:
        source_sdg: the input SDG ``S``.
        criterion: the query automaton ``A0``.
        encoding: the :class:`SDGEncoding` of ``S``.
        a1: the Prestar automaton (stack-configuration slice).
        a6: the MRD automaton.
        sdg: the specialized SDG ``R``.
        pdgs: dict A6-state -> :class:`SpecializedPDG`.
        bindings: dict (caller state, orig site label) -> callee state.
        map_back_vertex / map_back_site: the mapping ``MC``.
        stats: dict of instrumentation (state counts, timings).
        footprint: the ownership footprint of ``a1`` — the frozenset of
            per-procedure content keys the result's cone touches (set
            by the session engine; see :mod:`repro.engine.artifacts`),
            or None outside a session.  What the incremental layer
            consults to decide whether the result survives an edit.
    """

    def __init__(self):
        self.source_sdg = None
        self.criterion = None
        self.encoding = None
        self.a1 = None
        self.a6 = None
        self.sdg = None
        self.pdgs = {}
        self.bindings = {}
        self.map_back_vertex = {}
        self.map_back_site = {}
        self.stats = {}
        self.footprint = None

    # -- convenience queries ----------------------------------------------------

    def specializations_of(self, proc):
        """The :class:`SpecializedPDG` list for an original procedure."""
        return sorted(
            (spec for spec in self.pdgs.values() if spec.proc == proc),
            key=lambda spec: spec.name,
        )

    def version_counts(self):
        """Map original procedure name -> number of specialized
        versions (0 for procedures sliced away entirely) — the Fig. 18
        statistic."""
        counts = {proc: 0 for proc in self.source_sdg.proc_vertices}
        for spec in self.pdgs.values():
            counts[spec.proc] += 1
        return counts

    def closure_elems(self):
        """``Elems`` of the stack-configuration slice (the closure-slice
        element set both §8 comparisons normalize against)."""
        return self.encoding.elems(self.a1)

    def specialized_vertex_total(self):
        """Total vertices in R (replicated elements counted once per
        copy)."""
        return self.sdg.vertex_count()

    def callee_name(self, caller_spec, orig_site_label):
        """The name of the specialization a call site is bound to, or
        None if the site is unbound (call vertex not in this variant)."""
        callee_state = self.bindings.get((caller_spec.state, orig_site_label))
        if callee_state is None:
            return None
        return self.pdgs[callee_state].name


def resolve_criterion(encoding, criterion, contexts="reachable", kernel=None):
    """Turn a criterion — a prepared query automaton or an iterable of
    PDG vertex ids — into the query automaton ``A0``.

    ``contexts`` completes a vertex set into a configuration language:
    ``"reachable"`` slices from every realizable calling context of the
    vertices (the wc/go style criterion); ``"empty"`` slices from the
    vertices with the empty stack only (the Fig. 9 style criterion —
    vertices must then be in ``main``).

    ``kernel`` selects the saturation kernel for the shared Poststar a
    ``"reachable"`` completion may have to run (see
    :mod:`repro.kernelcfg`).
    """
    if hasattr(criterion, "add_transition"):
        return criterion
    vids = sorted(criterion)
    if contexts == "reachable":
        return reachable_contexts_criterion(encoding, vids, kernel=kernel)
    if contexts == "empty":
        return empty_stack_criterion(encoding, vids)
    raise ValueError("contexts must be 'reachable' or 'empty'")


def specialization_slice(sdg, criterion, contexts="reachable", a1=None, kernel=None):
    """Run Algorithm 1.

    Args:
        sdg: the input :class:`SystemDependenceGraph`.
        criterion: either a prepared query automaton ``A0``, or an
            iterable of PDG vertex ids.
        contexts: how to complete a vertex-set criterion (see
            :func:`resolve_criterion`).
        a1: an optional precomputed ``Prestar(A0)`` automaton (the
            :class:`repro.engine.SlicingSession` memo passes this so a
            repeated criterion skips re-saturation); must correspond to
            ``criterion``.
        kernel: the saturation/automaton kernel (:mod:`repro.kernelcfg`;
            default: the ``REPRO_KERNEL`` environment knob).  Under
            ``"csr"``, Prestar runs on the flat integer kernel and
            lines 4–8 run as one fused pass over the int codec —
            structurally identical output, so ``result`` is
            byte-for-byte the same either way.

    Returns:
        a :class:`SpecializationResult`.
    """
    kernel = kernelcfg.resolve_kernel(kernel)
    result = SpecializationResult()
    result.source_sdg = sdg

    t0 = time.perf_counter()
    encoding = encode_sdg(sdg)
    result.encoding = encoding

    a0 = resolve_criterion(encoding, criterion, contexts, kernel=kernel)
    result.criterion = a0

    t1 = time.perf_counter()
    kernel_stats = {}
    if a1 is None:
        a1 = prestar(encoding.pds, a0, kernel=kernel, stats=kernel_stats)
    result.a1 = a1
    t2 = time.perf_counter()

    # Lines 4-8: the five automaton operations, instrumented separately
    # so experiments can report determinize input/output sizes (§4.2).
    view = as_query_view(a1, encoding, kernel=kernel)
    fused = None
    if kernel == kernelcfg.CSR:
        from repro.fsa.intops import mrd_int

        # One fused pass (reverse; determinize; minimize; reverse) over
        # the int codec; falls back below iff the view has epsilon
        # transitions, which saturation views never do.
        fused = mrd_int(view)
    if fused is not None:
        a6, a3_states, a4_states = fused
        a2_states = len(view.states)
    else:
        a2 = reverse(view)
        a2 = remove_epsilon(a2, kernel=kernel) if a2.has_epsilon() else a2
        a3 = determinize(a2, kernel=kernel)
        a4 = minimize(a3, kernel=kernel)
        a5 = reverse(a4)
        a6 = remove_epsilon(a5, kernel=kernel) if a5.has_epsilon() else a5
        a2_states = len(a2.states)
        a3_states = len(a3.states)
        a4_states = len(a4.states)
    result.a6 = a6
    t3 = time.perf_counter()

    r_sdg, pdgs, bindings, map_back_vertex, map_back_site = read_out_sdg(
        sdg, a6, encoding, kernel=kernel
    )
    t4 = time.perf_counter()

    result.sdg = r_sdg
    result.pdgs = pdgs
    result.bindings = bindings
    result.map_back_vertex = map_back_vertex
    result.map_back_site = map_back_site
    result.stats = {
        "kernel": kernel,
        "encode_seconds": t1 - t0,
        "prestar_seconds": t2 - t1,
        "automaton_seconds": t3 - t2,
        "readout_seconds": t4 - t3,
        "total_seconds": t4 - t0,
        "a1_states": len(view.states),
        "a2_states": a2_states,
        "a3_states": a3_states,
        "a4_states": a4_states,
        "a6_states": len(a6.states),
        "determinize_input_states": a2_states,
        "determinize_output_states": a3_states,
    }
    result.stats.update(kernel_stats)
    return result
