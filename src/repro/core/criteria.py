"""Query-automaton construction for slicing criteria.

A slicing criterion is a regular language of configurations ``(v, w)``:
PDG vertex ``v`` under calling context ``w`` (top of stack first).  The
query automaton reads the vertex symbol from the initial control
location ``p`` and then the context symbols.

Three constructors cover the paper's usage:

* :func:`empty_stack_criterion` — configurations ``(v, ε)``; the Fig. 9
  query (criterion vertices in ``main``).
* :func:`configs_criterion` — an explicit finite set of ``(v, w)``
  pairs; the bug-site criteria used for the Siemens/gzip/space/flex
  experiments (Horwitz et al. 2010 style).
* :func:`reachable_contexts_criterion` — ``(v, w)`` for every context
  ``w`` under which ``v`` can actually occur in the unrolled SDG; the
  "all calling contexts of printf" criterion used for wc and go.
  Computed as ``Poststar(entry_main) ∩ (v · Γ_c*)``.
"""

import itertools

from repro import kernelcfg
from repro.fsa import FiniteAutomaton, intersection
from repro.pds import poststar

_fresh = itertools.count(1)

FINAL = "m"


def empty_stack_criterion(encoding, vids):
    """Accepts exactly ``{(v, ε) : v in vids}``."""
    automaton = FiniteAutomaton(initials=[encoding.main_location], finals=[FINAL])
    for vid in vids:
        automaton.add_transition(encoding.main_location, vid, FINAL)
    return automaton


def all_contexts_criterion(encoding, vids):
    """Accepts ``{(v, w) : v in vids, w in Γ_c*}`` — every syntactically
    possible context, including unrealizable ones."""
    automaton = empty_stack_criterion(encoding, vids)
    for site in sorted(encoding.site_symbols):
        automaton.add_transition(FINAL, site, FINAL)
    return automaton


def configs_criterion(encoding, configs):
    """Accepts an explicit finite set of configurations.

    ``configs`` is an iterable of ``(vid, context)`` pairs where
    ``context`` is a tuple of call-site labels, top of stack first
    (innermost call first, ``main``'s site last).
    """
    automaton = FiniteAutomaton(initials=[encoding.main_location], finals=[FINAL])
    for vid, context in configs:
        symbols = (vid,) + tuple(context)
        previous = encoding.main_location
        for symbol in symbols[:-1]:
            state = "q%d" % next(_fresh)
            automaton.add_transition(previous, symbol, state)
            previous = state
        automaton.add_transition(previous, symbols[-1], FINAL)
    return automaton


def reachable_configs_automaton(encoding, kernel=None, stats=None):
    """An automaton for *all* configurations reachable in the unrolled
    SDG from ``(entry_main, ε)`` — the language
    ``Poststar[P](entry_main)`` used by Alg. 2 line 5 and by the
    reslicing check.  Criterion-independent, so cached per encoding
    (``kernel``/``stats`` reach the saturation only on the cold
    compute; both kernels cache structurally identical automata)."""
    cached = getattr(encoding, "_reachable_configs", None)
    if cached is not None:
        return cached
    sdg = encoding.sdg
    entry_main = sdg.entry_vertex["main"]
    query = empty_stack_criterion(encoding, [entry_main])
    result = poststar(encoding.pds, query, kernel=kernel, stats=stats)
    encoding._reachable_configs = result
    return result


def reachable_query_view(encoding, kernel=None, stats=None):
    """The reachable-configuration language as a trimmed single-initial
    query view (:func:`as_query_view` of
    :func:`reachable_configs_automaton`) — criterion-independent, so
    cached per encoding like the Poststar itself.  Every criterion
    construction and Algorithm 2 run reads the Poststar through this
    view; the session engine installs a store-loaded or edit-surviving
    Poststar artifact here directly, which is what lets a warm front
    half answer a brand-new criterion without any Poststar-sized work.
    """
    cached = getattr(encoding, "_reachable_view", None)
    if cached is None:
        cached = as_query_view(
            reachable_configs_automaton(encoding, kernel=kernel, stats=stats),
            encoding,
            kernel=kernel,
        )
        encoding._reachable_view = cached
    return cached


def reachable_contexts_criterion(encoding, vids, kernel=None):
    """Accepts ``{(v, w) : v in vids, (v, w) reachable}`` — the "slice
    from every calling context of these vertices" criterion.

    Built by intersecting the reachable-configuration language with
    ``vids · Γ_c*`` and rebasing the initial state back onto the control
    location so the result is a valid Prestar query automaton.
    """
    reachable_view = reachable_query_view(encoding, kernel=kernel)
    broad = all_contexts_criterion(encoding, vids)
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        # The product against the program-sized reachable view is the
        # read-out path's hot spot; the packed-row twin builds the same
        # trimmed automaton over bitsets.
        from repro.fsa.intops import intersection_int

        product = intersection_int(reachable_view, broad)
    else:
        product = intersection(reachable_view, broad).trim()
    if not product.states:
        # The criterion vertices are unreachable from main (dead code):
        # the slice is empty.  Return a valid query accepting nothing.
        return FiniteAutomaton(initials=[encoding.main_location])
    return rebase_initial(product, encoding.main_location)


def as_query_view(automaton, encoding, kernel=None):
    """Restrict a P-automaton to the language read from the main control
    location: same transitions, single initial state ``p``, trimmed.
    On the ``csr`` kernel the restriction runs over packed rows
    (:func:`repro.fsa.intops.query_view_int`) — identical result, no
    object-by-object copy of the saturation automaton."""
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.fsa.intops import query_view_int

        return query_view_int(automaton, encoding.main_location)
    view = FiniteAutomaton(initials=[encoding.main_location])
    for state in automaton.finals:
        view.add_final(state)
    for (src, symbol, dst) in automaton.transitions():
        view.add_transition(src, symbol, dst)
    return view.trim()


def rebase_initial(automaton, new_initial):
    """Rename the (single) initial state to ``new_initial`` so the
    automaton can serve as a Prestar/Poststar query.  Requires that no
    transition enters the initial state."""
    if len(automaton.initials) != 1:
        raise ValueError("rebase_initial requires exactly one initial state")
    old = next(iter(automaton.initials))
    if old == new_initial:
        return automaton
    for (_src, _symbol, dst) in automaton.transitions():
        if dst == old:
            raise ValueError("initial state has incoming transitions")
    result = FiniteAutomaton(initials=[new_initial])
    for state in automaton.finals:
        result.add_final(new_initial if state == old else state)
    for (src, symbol, dst) in automaton.transitions():
        result.add_transition(
            new_initial if src == old else src,
            symbol,
            new_initial if dst == old else dst,
        )
    return result
