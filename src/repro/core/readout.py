"""Reading the specialized SDG out of the MRD automaton.

This implements Alg. 1, lines 9–24.  In the MRD automaton ``A6``:

* words have the form ``vertex-symbol call-site*`` (a configuration,
  stack read top to bottom);
* each non-initial state ``q`` denotes one partition element of the
  configuration-partitioning problem, i.e. one specialized PDG; the
  vertex symbols on transitions ``(q0, v, q)`` are its program elements;
* a transition ``(q1, C, q2)`` between non-initial states says: the
  specialized procedure of ``q2`` contains call site ``C``, and that
  call is bound to the specialized procedure of ``q1`` (``q2`` is the
  caller — stacks are read top-down, so the symbol after the callee's
  vertices is the call site in the caller).

The read-out verifies Cor. 3.19 on the fly: parameter vertices must
match exactly across each bound call site, otherwise ``ReadoutError``
is raised (it never is, per the theorem — the check guards our own
implementation).
"""

from repro.sdg.graph import (
    CALL,
    CONTROL,
    FLOW,
    LIBRARY,
    PARAM_IN,
    PARAM_OUT,
    CallSiteInfo,
    SystemDependenceGraph,
    VertexKind,
)
from repro.sdg.summary import compute_summary_edges


class ReadoutError(AssertionError):
    """An internal invariant of Alg. 1 failed (e.g. a parameter
    mismatch, which Cor. 3.19 proves impossible)."""


class SpecializedPDG(object):
    """One specialized procedure: a partition element of Defn. 2.10."""

    def __init__(self, state, proc, orig_vertices):
        self.state = state  # the A6 state (opaque)
        self.proc = proc  # original procedure name
        self.orig_vertices = frozenset(orig_vertices)
        self.name = None  # assigned by the read-out ("p", "p_1", ...)
        self.vertex_map = {}  # orig vid -> new vid

    def __repr__(self):
        return "SpecializedPDG(%s from %s, %d vertices)" % (
            self.name,
            self.proc,
            len(self.orig_vertices),
        )


def read_out_sdg(source_sdg, a6, encoding, with_summary=False, kernel=None):
    """Construct the specialized SDG from the MRD automaton.

    Returns ``(R, pdgs, bindings, map_back_vertex, map_back_site)``:

    * ``R`` — the new :class:`SystemDependenceGraph`;
    * ``pdgs`` — dict: A6 state -> :class:`SpecializedPDG`;
    * ``bindings`` — dict: (caller state, original site label) ->
      callee state;
    * ``map_back_vertex`` — new vid -> original vid (the mapping ``MC``
      of Defn. 2.9, vertex part);
    * ``map_back_site`` — new site label -> original site label.

    ``kernel`` selects how the opening trim runs: on ``csr`` the
    reachability sweep happens on packed rows (``trim_int``), which
    matters when the MRD automaton arrives un-trimmed from a fused
    saturation pass.  The trimmed automaton is identical either way.
    """
    from repro import kernelcfg

    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.fsa.intops import trim_int

        a6 = trim_int(a6)
    else:
        a6 = a6.trim()
    result = SystemDependenceGraph()
    if not a6.states:
        return result, {}, {}, {}, {}
    if len(a6.initials) != 1:
        raise ReadoutError("MRD automaton must have a single initial state")
    q0 = next(iter(a6.initials))

    # -- identify partition elements (Alg. 1 lines 12-18) -------------------
    pdgs = {}
    for (src, symbol, dst) in a6.transitions():
        if src != q0:
            continue
        if not encoding.is_vertex_symbol(symbol):
            raise ReadoutError("non-vertex symbol %r out of the initial state" % (symbol,))
        pdgs.setdefault(dst, []).append(symbol)

    specialized = {}
    for state, vids in pdgs.items():
        procs = {source_sdg.vertices[vid].proc for vid in vids}
        if len(procs) != 1:
            raise ReadoutError(
                "partition element %r mixes procedures %r" % (state, sorted(procs))
            )
        specialized[state] = SpecializedPDG(state, procs.pop(), vids)

    _assign_names(source_sdg, specialized)

    # -- create vertices ------------------------------------------------------
    map_back_vertex = {}
    for spec in _ordered(specialized, source_sdg):
        result.formal_ins[spec.name] = {}
        result.formal_outs[spec.name] = {}
        result.sites_in_proc.setdefault(spec.name, [])
        for vid in sorted(spec.orig_vertices):
            vertex = source_sdg.vertices[vid]
            new_vid = result.new_vertex(
                vertex.kind,
                spec.name,
                vertex.label,
                stmt_uid=vertex.stmt_uid,
                site_label=vertex.site_label,
                role=vertex.role,
            )
            spec.vertex_map[vid] = new_vid
            map_back_vertex[new_vid] = vid
            if vertex.kind == VertexKind.ENTRY:
                result.entry_vertex[spec.name] = new_vid
            elif vertex.kind == VertexKind.FORMAL_IN:
                result.formal_ins[spec.name][vertex.role] = new_vid
            elif vertex.kind == VertexKind.FORMAL_OUT:
                result.formal_outs[spec.name][vertex.role] = new_vid
        if spec.proc in source_sdg.entry_vertex:
            if source_sdg.entry_vertex[spec.proc] not in spec.orig_vertices:
                raise ReadoutError(
                    "specialization %s lacks its entry vertex" % spec.name
                )

    # -- intra-PDG edges induced by each vertex set (line 15) ------------------
    intra = (CONTROL, FLOW, LIBRARY)
    for spec in specialized.values():
        for vid in spec.orig_vertices:
            for (src, dst, kind) in source_sdg.out_edges(vid):
                if kind in intra and dst in spec.orig_vertices:
                    result.add_edge(spec.vertex_map[src], spec.vertex_map[dst], kind)

    # -- call bindings and interprocedural edges (lines 19-24) ------------------
    bindings = {}
    map_back_site = {}
    site_counter = [0]
    for (src, symbol, dst) in a6.transitions():
        if src == q0 or not encoding.is_site_symbol(symbol):
            continue
        callee_state, site_label, caller_state = src, symbol, dst
        if caller_state not in specialized or callee_state not in specialized:
            raise ReadoutError("call transition between unknown states")
        bindings[(caller_state, site_label)] = callee_state
        _connect_site(
            source_sdg,
            result,
            specialized[caller_state],
            specialized[callee_state],
            site_label,
            map_back_site,
            site_counter,
        )

    if with_summary:
        # Only needed when R itself is to be closure-sliced with the HRB
        # two-phase algorithm; the PDS encoding (used by the reslicing
        # check) does not consume summary edges.
        compute_summary_edges(result)
    return result, specialized, bindings, map_back_vertex, map_back_site


def _ordered(specialized, source_sdg):
    """Specializations in a stable order: original program order of the
    procedure, then by name suffix."""
    proc_order = {name: index for index, name in enumerate(source_sdg.proc_vertices)}
    return sorted(
        specialized.values(), key=lambda spec: (proc_order.get(spec.proc, 0), spec.name)
    )


def _assign_names(source_sdg, specialized):
    """Name each specialization: a procedure with a single variant keeps
    its name; otherwise ``proc_1 .. proc_k`` in a deterministic order
    (by the sorted vertex sets)."""
    by_proc = {}
    for spec in specialized.values():
        by_proc.setdefault(spec.proc, []).append(spec)
    for proc, specs in by_proc.items():
        if len(specs) == 1:
            specs[0].name = proc
            continue
        specs.sort(key=lambda spec: tuple(sorted(spec.orig_vertices)))
        for index, spec in enumerate(specs):
            spec.name = "%s_%d" % (proc, index + 1)


def _connect_site(source_sdg, result, caller, callee, site_label, map_back_site, counter):
    """Instantiate one call site of the specialized SDG (lines 20-23),
    checking the Cor. 3.19 parameter-matching invariant."""
    site = source_sdg.call_sites[site_label]
    call_vid = site.call_vertex
    if call_vid not in caller.orig_vertices:
        raise ReadoutError(
            "call transition for site %s but call vertex not in caller %s"
            % (site_label, caller.name)
        )
    counter[0] += 1
    new_label = "%s.%d" % (site_label, counter[0])
    map_back_site[new_label] = site_label

    new_site = CallSiteInfo(
        new_label,
        caller.name,
        callee.name,
        caller.vertex_map[call_vid],
        site.stmt_uid,
    )
    # Record the specialized call-site label on the new call vertex so
    # re-encoding R as a PDS works.
    result.vertices[new_site.call_vertex].site_label = new_label
    result.call_sites[new_label] = new_site
    result.sites_in_proc.setdefault(caller.name, []).append(new_label)
    result.sites_on_proc.setdefault(callee.name, []).append(new_label)

    result.add_edge(new_site.call_vertex, result.entry_vertex[callee.name], CALL)

    # Parameter-in edges, with the mismatch check both ways.
    for role, ai in site.actual_ins.items():
        fi = source_sdg.formal_ins[site.callee].get(role)
        ai_in = ai in caller.orig_vertices
        fi_in = fi is not None and fi in callee.orig_vertices
        if ai_in != fi_in:
            raise ReadoutError(
                "parameter mismatch at %s role %r: actual-in %s, formal-in %s"
                % (site_label, role, ai_in, fi_in)
            )
        if ai_in:
            new_ai = caller.vertex_map[ai]
            result.vertices[new_ai].site_label = new_label
            new_site.actual_ins[role] = new_ai
            result.add_edge(new_ai, callee.vertex_map[fi], PARAM_IN)

    # Parameter-out edges.
    for role, fo in source_sdg.formal_outs[site.callee].items():
        ao = site.actual_outs.get(role)
        fo_in = fo in callee.orig_vertices
        ao_in = ao is not None and ao in caller.orig_vertices
        if ao is not None and fo_in != ao_in:
            raise ReadoutError(
                "parameter mismatch at %s role %r: formal-out %s, actual-out %s"
                % (site_label, role, fo_in, ao_in)
            )
        if fo_in and ao_in:
            new_ao = caller.vertex_map[ao]
            result.vertices[new_ao].site_label = new_label
            new_site.actual_outs[role] = new_ao
            result.add_edge(callee.vertex_map[fo], new_ao, PARAM_OUT)

    # Actual vertices not covered above (e.g. a captured return whose
    # formal-out the callee keeps but this caller drops) cannot occur —
    # verified by scanning the caller's remaining actual vertices.
    for role, ao in site.actual_outs.items():
        if ao in caller.orig_vertices and role not in new_site.actual_outs:
            raise ReadoutError(
                "dangling actual-out at %s role %r in %s" % (site_label, role, caller.name)
            )
