"""The reslicing validation check (§8.3).

Specialization slicing should be idempotent modulo renaming: slicing the
output SDG ``R`` with the (suitably transduced) criterion must give back
``R``'s own configurations.  Concretely, with ``T_C`` the transducer
mapping R's vertex and call-site symbols to the S symbols they
specialize:

    C' = T_C^{-1}(C) ∩ Poststar[P_R](entry_main)
    check  L(A6_S) == L(T_C(A6_R))

A failed check indicates an implementation bug (the paper's authors used
it the same way); the test suite runs it over every slice of the
benchmark suite.
"""

from repro.core.criteria import as_query_view, empty_stack_criterion, rebase_initial
from repro.core.specialize import specialization_slice
from repro.fsa import Transducer, intersection, language_equal
from repro.pds import poststar


def build_transducer(result):
    """``T_C``: maps R's vertex ids and call-site labels back to S's."""
    transducer = Transducer()
    for new_vid, orig_vid in result.map_back_vertex.items():
        transducer.add(new_vid, orig_vid)
    for new_label, orig_label in result.map_back_site.items():
        transducer.add(new_label, orig_label)
    return transducer


def reslice_check(result, return_details=False):
    """Run the §8.3 check on a :class:`SpecializationResult`.

    Returns True if the reslice of R equals the original slice (modulo
    the alphabet mapping).  With ``return_details`` returns
    ``(ok, a6_s_view, transduced_a6_r)`` for diagnosis.
    """
    # Deferred import: repro.engine sits on top of repro.core.
    from repro.engine import SlicingSession

    r_sdg = result.sdg
    transducer = build_transducer(result)

    if not result.pdgs:
        # Empty slice: trivially idempotent.
        return (True, None, None) if return_details else True

    # The session shares R's encoding and the criterion-independent
    # Poststar saturation across repeated checks of the same result (and
    # with any other analysis of R in the process).
    session = SlicingSession.for_sdg(r_sdg)
    encoding_r = session.encoding

    # C' = T^{-1}(C) ∩ Poststar[P_R](entry_main).
    inverse_c = transducer.apply_inverse(result.criterion)
    main_specs = [spec for spec in result.pdgs.values() if spec.proc == "main"]
    if not main_specs:
        return (True, None, None) if return_details else True
    main_name = main_specs[0].name
    if main_name == "main":
        # The usual case: main has one specialization, so the reachable
        # language is the session's shared Poststar(entry_main).
        reachable_r = session.reachable_configs()
    else:
        entry_r = r_sdg.entry_vertex[main_name]
        reachable_r = poststar(
            encoding_r.pds, empty_stack_criterion(encoding_r, [entry_r])
        )
    reachable_view = as_query_view(reachable_r, encoding_r)
    product = intersection(reachable_view, inverse_c.trim()).trim()
    criterion_r = rebase_initial(product, encoding_r.main_location)

    # Reslice R.  Deliberately *not* through the session memo: the
    # session lives as long as R, and pinning the full second-generation
    # SpecializationResult (its own SDG and automata) per checked
    # criterion would roughly double the memory retained by every slice
    # the benchmark suite holds.  Only the shared saturation is reused.
    result_r = specialization_slice(r_sdg, criterion_r)

    # Compare L(A6_S) with L(T_C(A6_R)).
    a6_s = result.a6
    a6_r_mapped = transducer.apply(result_r.a6)
    ok = language_equal(a6_s, a6_r_mapped)
    if return_details:
        return ok, a6_s, a6_r_mapped
    return ok
