"""The reslicing validation check (§8.3).

Specialization slicing should be idempotent modulo renaming: slicing the
output SDG ``R`` with the (suitably transduced) criterion must give back
``R``'s own configurations.  Concretely, with ``T_C`` the transducer
mapping R's vertex and call-site symbols to the S symbols they
specialize:

    C' = T_C^{-1}(C) ∩ Poststar[P_R](entry_main)
    check  L(A6_S) == L(T_C(A6_R))

A failed check indicates an implementation bug (the paper's authors used
it the same way); the test suite runs it over every slice of the
benchmark suite.
"""

from repro.core.criteria import as_query_view, empty_stack_criterion, rebase_initial
from repro.core.specialize import specialization_slice
from repro.fsa import Transducer, intersection, language_equal
from repro.pds import encode_sdg, poststar


def build_transducer(result):
    """``T_C``: maps R's vertex ids and call-site labels back to S's."""
    transducer = Transducer()
    for new_vid, orig_vid in result.map_back_vertex.items():
        transducer.add(new_vid, orig_vid)
    for new_label, orig_label in result.map_back_site.items():
        transducer.add(new_label, orig_label)
    return transducer


def reslice_check(result, return_details=False):
    """Run the §8.3 check on a :class:`SpecializationResult`.

    Returns True if the reslice of R equals the original slice (modulo
    the alphabet mapping).  With ``return_details`` returns
    ``(ok, a6_s_view, transduced_a6_r)`` for diagnosis.
    """
    source_sdg = result.source_sdg
    r_sdg = result.sdg
    transducer = build_transducer(result)

    if not result.pdgs:
        # Empty slice: trivially idempotent.
        return (True, None, None) if return_details else True

    encoding_r = encode_sdg(r_sdg)

    # C' = T^{-1}(C) ∩ Poststar[P_R](entry_main).
    inverse_c = transducer.apply_inverse(result.criterion)
    main_specs = [spec for spec in result.pdgs.values() if spec.proc == "main"]
    if not main_specs:
        return (True, None, None) if return_details else True
    entry_r = r_sdg.entry_vertex[main_specs[0].name]
    reachable_r = poststar(encoding_r.pds, empty_stack_criterion(encoding_r, [entry_r]))
    reachable_view = as_query_view(reachable_r, encoding_r)
    product = intersection(reachable_view, inverse_c.trim()).trim()
    criterion_r = rebase_initial(product, encoding_r.main_location)

    # Reslice R.
    result_r = specialization_slice(r_sdg, criterion_r)

    # Compare L(A6_S) with L(T_C(A6_R)).
    a6_s = result.a6
    a6_r_mapped = transducer.apply(result_r.a6)
    ok = language_equal(a6_s, a6_r_mapped)
    if return_details:
        return ok, a6_s, a6_r_mapped
    return ok
