"""Reaching definitions and flow dependence.

Generic over any :class:`ControlFlowGraph` plus DEF/USE maps: each CFG
node may define a set of variables and use a set of variables.  A node's
definitions *kill* other definitions of the same variable only when the
node is a *must*-def of that variable (weak updates, e.g. an actual-out
for a global the callee only may modify, do not kill).

The output is the flow-dependence relation: ``(def_node, use_node, var)``
triples where the definition of ``var`` at ``def_node`` reaches a use of
``var`` at ``use_node`` along a path with no intervening must-def.

Only *executable* CFG edges participate (Ball–Horwitz fall-through edges
carry no dataflow).
"""


def reaching_definitions(cfg, defs, uses, must_defs=None):
    """Compute the reaching-definition sets.

    Args:
        cfg: a :class:`ControlFlowGraph`.
        defs: mapping node -> iterable of variables defined (may-defs).
        uses: mapping node -> iterable of variables used.
        must_defs: mapping node -> iterable of variables definitely
            defined; defaults to ``defs`` (all defs are strong).

    Returns:
        mapping node -> set of ``(def_node, var)`` pairs reaching the
        *entry* of that node.
    """
    if must_defs is None:
        must_defs = defs

    def _set(mapping, node):
        return set(mapping.get(node, ()))

    # Definition sites: (node, var) pairs.
    gen = {node: frozenset((node, var) for var in _set(defs, node)) for node in cfg.nodes}
    kill_vars = {node: frozenset(_set(must_defs, node)) for node in cfg.nodes}

    in_sets = {node: set() for node in cfg.nodes}
    out_sets = {node: set() for node in cfg.nodes}

    worklist = list(cfg.nodes)
    in_worklist = set(worklist)
    while worklist:
        node = worklist.pop()
        in_worklist.discard(node)
        new_in = set()
        for pred in cfg.predecessors(node, include_fallthrough=False):
            new_in |= out_sets[pred]
        in_sets[node] = new_in
        survivors = {
            (site, var) for (site, var) in new_in if var not in kill_vars[node]
        }
        new_out = survivors | gen[node]
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in cfg.successors(node, include_fallthrough=False):
                if succ not in in_worklist:
                    worklist.append(succ)
                    in_worklist.add(succ)
    return in_sets


def flow_dependences(cfg, defs, uses, must_defs=None):
    """The flow-dependence relation induced by reaching definitions.

    A node that both uses and defines a variable (e.g. ``x = x + 1``)
    depends on definitions reaching its entry, including itself via a
    loop.  Returns a set of ``(def_node, use_node, var)`` triples.
    """
    in_sets = reaching_definitions(cfg, defs, uses, must_defs)
    deps = set()
    for node in cfg.nodes:
        used = set(uses.get(node, ()))
        if not used:
            continue
        for (site, var) in in_sets[node]:
            if var in used:
                deps.add((site, node, var))
    return deps
