"""Interprocedural side-effect analysis: MayRef / MayMod / MustMod.

Following Cooper & Kennedy (as the paper's SDG definition prescribes),
each procedure is summarized by the set of *caller-visible* locations it
may read, may write, and definitely writes.  Caller-visible locations
are global variables and ``ref`` parameters; value parameters and locals
are internal.

Effects propagate transitively over the call graph, translating a
callee's ``ref``-parameter effects to the caller's actual variables at
each call site (a global, one of the caller's own ``ref`` parameters, or
a caller-internal local — dropped from the caller's summary in the last
case, though the call site itself still defines/uses the local, which the
PDG builder models with actual-in/out vertices).

* MayRef / MayMod: least fixpoint (start empty, grow).
* MustMod: greatest fixpoint (start full, shrink), evaluated by a forward
  must-be-assigned dataflow pass over a statement-level CFG per procedure
  — must-definedness is path-sensitive ("assigned on every path that
  returns normally"), so a flow-insensitive union would be unsound in the
  presence of early returns.
"""

from repro.analysis.callgraph import _call_of, build_call_graph
from repro.lang import ast_nodes as A

#: Pseudo-location modeling the program's input stream.  Every
#: ``input()`` reads and advances the stream, so it both uses and
#: (strongly) defines ``$input``; the resulting def-use chain keeps all
#: earlier reads in any slice that keeps a later one — without it,
#: slicing away a read would shift the stream under the remaining ones.
INPUT = "$input"


class ModRefInfo(object):
    """Per-procedure side-effect summaries.

    Each summary is a set of names; a name is either a global variable
    or one of the procedure's own ``ref`` parameters (the two namespaces
    are disjoint — semantic analysis forbids shadowing).
    """

    def __init__(self):
        self.may_ref = {}  # flow-insensitive: any read anywhere
        self.may_mod = {}
        self.must_mod = {}
        self.exposed_ref = {}  # flow-sensitive: reads not preceded by a must-def

    def ref_in_globals(self, proc_name, global_names):
        """The globals needing an actual-in/formal-in for calls to
        ``proc_name``: MayRef ∪ (MayMod − MustMod), restricted to
        globals (Horwitz et al. 1990).  MayRef here means *upwards-
        exposed* reads — a global always overwritten before being read
        needs no formal-in (cf. Fig. 3, where ``p`` has no ``g2_in``
        despite ``g3 = g2``).  ``$input`` counts as a global."""
        names = set(global_names) | {INPUT}
        exposed = self.exposed_ref[proc_name] & names
        weak_mod = (self.may_mod[proc_name] - self.must_mod[proc_name]) & names
        return exposed | weak_mod

    def mod_out_globals(self, proc_name, global_names):
        """The globals needing an actual-out/formal-out for calls to
        ``proc_name``: MayMod, restricted to globals (plus ``$input``)."""
        return self.may_mod[proc_name] & (set(global_names) | {INPUT})


def compute_modref(program, info, call_graph=None):
    """Compute :class:`ModRefInfo` for a checked program."""
    if call_graph is None:
        call_graph = build_call_graph(program)
    result = ModRefInfo()
    ref_params = {
        proc.name: {p.name for p in proc.params if p.kind == "ref"}
        for proc in program.procs
    }
    universe = {
        proc.name: set(info.global_names) | {INPUT} | ref_params[proc.name]
        for proc in program.procs
    }

    _compute_may(program, info, call_graph, ref_params, result)
    _compute_must(program, info, call_graph, ref_params, universe, result)
    _compute_exposed(program, info, call_graph, universe, result)
    return result


# ---------------------------------------------------------------------------
# May analyses (flow-insensitive least fixpoint)
# ---------------------------------------------------------------------------


def _direct_effects(proc, info, ref_params):
    """(ref, mod) sets from the procedure's own statements, ignoring the
    effects of callees (those are translated during the fixpoint)."""
    visible = set(info.global_names) | ref_params[proc.name]
    ref, mod = set(), set()

    def note_reads(expr, skip_call_args=False):
        ref.update(A.expr_vars(expr, include_call_args=not skip_call_args) & visible)

    for stmt in A.walk_stmts(proc.body):
        call, _captures, _target = _call_of(stmt)
        if isinstance(stmt, (A.Assign, A.LocalDecl)):
            target = stmt.name if isinstance(stmt, A.Assign) else None
            if target in visible:
                mod.add(target)
            expr = stmt.expr if isinstance(stmt, A.Assign) else stmt.init
            if isinstance(expr, A.InputExpr):
                ref.add(INPUT)
                mod.add(INPUT)
            elif expr is not None and not isinstance(expr, A.CallExpr):
                note_reads(expr)
        elif isinstance(stmt, (A.If, A.While)):
            note_reads(stmt.cond)
        elif isinstance(stmt, A.Return):
            if stmt.expr is not None:
                note_reads(stmt.expr)
        elif isinstance(stmt, A.Print):
            for arg in stmt.args:
                note_reads(arg)
        elif isinstance(stmt, A.ExitStmt):
            if stmt.arg is not None:
                note_reads(stmt.arg)
        if call is not None:
            # Value arguments are read by the caller when evaluated;
            # ref arguments are read/written only per callee summaries.
            for arg, kind in _args_with_kinds(call, info):
                if kind != "ref":
                    note_reads(arg)
    return ref, mod


def _args_with_kinds(call, info):
    callee = info.procs[call.callee].proc
    return [(arg, param.kind) for arg, param in zip(call.args, callee.params)]


def _translate(names, site, info, caller_visible):
    """Translate a callee summary through a call site into the caller's
    name space, dropping caller-internal locals."""
    callee = info.procs[site.callee].proc
    param_kinds = {p.name: p.kind for p in callee.params}
    actual_of = {
        p.name: arg for p, arg in zip(callee.params, site.call.args)
    }
    out = set()
    for name in names:
        if name in info.global_names or name == INPUT:
            out.add(name)
        elif param_kinds.get(name) == "ref":
            actual = actual_of[name]
            if isinstance(actual, A.Var) and actual.name in caller_visible:
                out.add(actual.name)
    return out


def _compute_may(program, info, call_graph, ref_params, result):
    direct = {}
    for proc in program.procs:
        ref, mod = _direct_effects(proc, info, ref_params)
        direct[proc.name] = (ref, mod)
        result.may_ref[proc.name] = set(ref)
        result.may_mod[proc.name] = set(mod)

    changed = True
    while changed:
        changed = False
        for proc in program.procs:
            caller_visible = set(info.global_names) | ref_params[proc.name]
            new_ref = set(direct[proc.name][0])
            new_mod = set(direct[proc.name][1])
            for site in call_graph.calls_from[proc.name]:
                new_ref |= _translate(
                    result.may_ref[site.callee], site, info, caller_visible
                )
                new_mod |= _translate(
                    result.may_mod[site.callee], site, info, caller_visible
                )
            if new_ref != result.may_ref[proc.name]:
                result.may_ref[proc.name] = new_ref
                changed = True
            if new_mod != result.may_mod[proc.name]:
                result.may_mod[proc.name] = new_mod
                changed = True


# ---------------------------------------------------------------------------
# MustMod (flow-sensitive greatest fixpoint)
# ---------------------------------------------------------------------------


class _StmtGraph(object):
    """A small statement-level CFG used only for the must-mod dataflow.

    Nodes: ``"entry"``, ``"ret"`` (normal-return join), ``"halt"``
    (process termination via exit()), and statement uids.
    """

    def __init__(self, proc):
        self.succ = {"entry": [], "ret": [], "halt": []}
        self.stmts = {}
        last = self._wire_block(proc.body, ["entry"])
        for node in last:
            self._edge(node, "ret")

    def _edge(self, src, dst):
        self.succ.setdefault(src, [])
        self.succ.setdefault(dst, [])
        if dst not in self.succ[src]:
            self.succ[src].append(dst)

    def _wire_block(self, block, dangling):
        """Wire ``block`` after the ``dangling`` open ends; returns the
        new dangling ends."""
        for stmt in block.stmts:
            self.stmts[stmt.uid] = stmt
            for node in dangling:
                self._edge(node, stmt.uid)
            if isinstance(stmt, A.Return):
                self._edge(stmt.uid, "ret")
                dangling = []
            elif isinstance(stmt, A.ExitStmt):
                self._edge(stmt.uid, "halt")
                dangling = []
            elif isinstance(stmt, A.If):
                then_ends = self._wire_block(stmt.then, [stmt.uid])
                if stmt.els is not None:
                    else_ends = self._wire_block(stmt.els, [stmt.uid])
                else:
                    else_ends = [stmt.uid]
                dangling = then_ends + else_ends
            elif isinstance(stmt, A.While):
                body_ends = self._wire_block(stmt.body, [stmt.uid])
                for node in body_ends:
                    self._edge(node, stmt.uid)
                dangling = [stmt.uid]
            else:
                dangling = [stmt.uid]
            if not dangling:
                # Code after a return/exit is unreachable; stop wiring but
                # keep walking so nested uids register.
                remaining = block.stmts[block.stmts.index(stmt) + 1 :]
                for rest in remaining:
                    self.stmts[rest.uid] = rest
                break
        return dangling


def _must_defs_of_stmt(stmt, info, ref_params_of_caller, caller_name, must_mod, caller_visible):
    """Caller-visible names this statement definitely assigns."""
    call, captures, target = _call_of(stmt)
    out = set()
    if isinstance(stmt, A.Assign) and stmt.name in caller_visible:
        out.add(stmt.name)
    if isinstance(stmt, (A.Assign, A.LocalDecl)):
        expr = stmt.expr if isinstance(stmt, A.Assign) else stmt.init
        if isinstance(expr, A.InputExpr):
            out.add(INPUT)
    if call is not None:
        # Translate the callee's current must-mod estimate.
        callee = info.procs[call.callee].proc
        param_kinds = {p.name: p.kind for p in callee.params}
        actual_of = {p.name: arg for p, arg in zip(callee.params, call.args)}
        for name in must_mod[call.callee]:
            if name in info.global_names or name == INPUT:
                out.add(name)
            elif param_kinds.get(name) == "ref":
                actual = actual_of[name]
                if isinstance(actual, A.Var) and actual.name in caller_visible:
                    out.add(actual.name)
    return out


def _compute_must(program, info, call_graph, ref_params, universe, result):
    must_mod = {name: set(values) for name, values in universe.items()}
    graphs = {proc.name: _StmtGraph(proc) for proc in program.procs}

    changed = True
    while changed:
        changed = False
        for proc in program.procs:
            new = _must_at_return(proc, graphs[proc.name], info, must_mod, universe)
            if new != must_mod[proc.name]:
                must_mod[proc.name] = new
                changed = True
    result.must_mod = must_mod


def _must_at_return(proc, graph, info, must_mod, universe):
    """Run the forward must-be-assigned dataflow, returning the set of
    names definitely assigned at the normal-return join."""
    caller_visible = universe[proc.name]
    full = set(caller_visible)
    in_sets = {node: set(full) for node in graph.succ}
    in_sets["entry"] = set()
    out_sets = {}
    for node in graph.succ:
        out_sets[node] = set(full)

    worklist = ["entry"]
    while worklist:
        node = worklist.pop()
        if node in ("ret", "halt"):
            continue
        if node == "entry":
            defs = set()
        else:
            stmt = graph.stmts[node]
            defs = _must_defs_of_stmt(
                stmt, info, None, proc.name, must_mod, caller_visible
            )
        new_out = in_sets[node] | defs
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in graph.succ[node]:
                merged = None
                preds = [p for p in graph.succ if succ in graph.succ[p]]
                for pred in preds:
                    if merged is None:
                        merged = set(out_sets[pred])
                    else:
                        merged &= out_sets[pred]
                in_sets[succ] = merged if merged is not None else set()
                worklist.append(succ)

    preds_of_ret = [p for p in graph.succ if "ret" in graph.succ[p]]
    if not preds_of_ret:
        # The procedure never returns normally: must-mod is vacuous.
        return set(full)
    merged = None
    for pred in preds_of_ret:
        if merged is None:
            merged = set(out_sets[pred])
        else:
            merged &= out_sets[pred]
    return merged if merged is not None else set()


# ---------------------------------------------------------------------------
# Upwards-exposed references (flow-sensitive least fixpoint)
# ---------------------------------------------------------------------------


def _node_reads(stmt, info, caller_visible, exposed, must_in):
    """Caller-visible names this statement may read *exposed to entry*:
    its own expression reads, plus the callee's exposed reads translated
    through the call site — minus whatever is already must-defined on
    every path to this node."""
    reads = set()

    def note(expr, include_call_args=True):
        reads.update(
            A.expr_vars(expr, include_call_args=include_call_args) & caller_visible
        )

    call, _captures, _target = _call_of(stmt)
    if isinstance(stmt, (A.Assign, A.LocalDecl)):
        expr = stmt.expr if isinstance(stmt, A.Assign) else stmt.init
        if isinstance(expr, A.InputExpr):
            reads.add(INPUT)
        elif expr is not None and not isinstance(expr, A.CallExpr):
            note(expr)
    elif isinstance(stmt, (A.If, A.While)):
        note(stmt.cond)
    elif isinstance(stmt, A.Return):
        if stmt.expr is not None:
            note(stmt.expr)
    elif isinstance(stmt, A.Print):
        for arg in stmt.args:
            note(arg)
    elif isinstance(stmt, A.ExitStmt):
        if stmt.arg is not None:
            note(stmt.arg)
    if call is not None:
        callee = info.procs[call.callee].proc
        param_kinds = {p.name: p.kind for p in callee.params}
        actual_of = {p.name: arg for p, arg in zip(callee.params, call.args)}
        for arg, param in zip(call.args, callee.params):
            if param.kind != "ref":
                note(arg)
        for name in exposed[call.callee]:
            if name in info.global_names or name == INPUT:
                reads.add(name)
            elif param_kinds.get(name) == "ref":
                actual = actual_of[name]
                if isinstance(actual, A.Var) and actual.name in caller_visible:
                    reads.add(actual.name)
    return reads - must_in


def _must_in_per_node(proc, graph, info, must_mod, caller_visible):
    """Forward must-be-assigned dataflow, returning MUST_IN per node
    (set of names definitely assigned on every path reaching the node's
    entry)."""
    full = set(caller_visible)
    in_sets = {node: set(full) for node in graph.succ}
    in_sets["entry"] = set()
    out_sets = {node: set(full) for node in graph.succ}
    changed = True
    while changed:
        changed = False
        for node in graph.succ:
            if node == "entry":
                defs = set()
            elif node in ("ret", "halt"):
                continue
            else:
                defs = _must_defs_of_stmt(
                    graph.stmts[node], info, None, proc.name, must_mod, caller_visible
                )
            preds = [p for p in graph.succ if node in graph.succ[p]]
            if node != "entry":
                merged = None
                for pred in preds:
                    if merged is None:
                        merged = set(out_sets[pred])
                    else:
                        merged &= out_sets[pred]
                new_in = merged if merged is not None else set(full)
                if new_in != in_sets[node]:
                    in_sets[node] = new_in
                    changed = True
            new_out = in_sets[node] | defs
            if new_out != out_sets[node]:
                out_sets[node] = new_out
                changed = True
    return in_sets


def _compute_exposed(program, info, call_graph, universe, result):
    """Least fixpoint of the upwards-exposed reference sets."""
    graphs = {proc.name: _StmtGraph(proc) for proc in program.procs}
    must_in = {}
    for proc in program.procs:
        must_in[proc.name] = _must_in_per_node(
            proc, graphs[proc.name], info, result.must_mod, universe[proc.name]
        )

    exposed = {proc.name: set() for proc in program.procs}
    changed = True
    while changed:
        changed = False
        for proc in program.procs:
            visible = universe[proc.name]
            new = set()
            graph = graphs[proc.name]
            for uid, stmt in graph.stmts.items():
                node_must = must_in[proc.name].get(uid, set())
                new |= _node_reads(stmt, info, visible, exposed, node_must)
            if new != exposed[proc.name]:
                exposed[proc.name] = new
                changed = True
    result.exposed_ref = exposed
