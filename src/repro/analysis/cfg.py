"""A generic control-flow graph.

The PDG builder constructs one CFG per procedure whose nodes are the
future PDG vertices (statements, predicates, actual-in/out, formal-in/out
nodes), so dataflow results transfer directly onto dependence edges.

Two kinds of edges are distinguished:

* *executable* edges — real control flow;
* *fall-through* (non-executable) edges — the Ball–Horwitz augmentation
  for jump statements (``return``, ``exit``, and calls that may not
  return).  Control dependence is computed on the *augmented* graph
  (executable + fall-through) so that jump pseudo-predicates acquire the
  control-dependence successors slicing needs, while reaching definitions
  use only executable edges so no spurious dataflow crosses a jump.
"""


class ControlFlowGraph(object):
    """A directed graph with distinguished entry/exit and edge kinds."""

    def __init__(self, entry, exit):
        self.entry = entry
        self.exit = exit
        self.nodes = set([entry, exit])
        self._succ = {entry: [], exit: []}
        self._pred = {entry: [], exit: []}
        self._fallthrough = set()  # subset of edges, as (src, dst) pairs

    def add_node(self, node):
        if node not in self.nodes:
            self.nodes.add(node)
            self._succ[node] = []
            self._pred[node] = []

    def add_edge(self, src, dst, fallthrough=False):
        """Add edge ``src -> dst``.  ``fallthrough=True`` marks the edge as
        non-executable (Ball–Horwitz pseudo-edge).  If the same edge is
        added both ways, executable wins — real control flow subsumes
        the pseudo-edge."""
        self.add_node(src)
        self.add_node(dst)
        is_new = dst not in self._succ[src]
        if is_new:
            self._succ[src].append(dst)
            self._pred[dst].append(src)
        if fallthrough:
            if is_new:
                self._fallthrough.add((src, dst))
        else:
            self._fallthrough.discard((src, dst))

    def successors(self, node, include_fallthrough=True):
        if include_fallthrough:
            return list(self._succ[node])
        return [dst for dst in self._succ[node] if (node, dst) not in self._fallthrough]

    def predecessors(self, node, include_fallthrough=True):
        if include_fallthrough:
            return list(self._pred[node])
        return [src for src in self._pred[node] if (src, node) not in self._fallthrough]

    def edges(self, include_fallthrough=True):
        for src in self.nodes:
            for dst in self.successors(src, include_fallthrough):
                yield (src, dst)

    def reachable_from(self, start, include_fallthrough=True):
        """Nodes reachable from ``start`` (forward)."""
        seen = set([start])
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in self.successors(node, include_fallthrough):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return "ControlFlowGraph(%d nodes, %d edges)" % (
            len(self.nodes),
            sum(len(s) for s in self._succ.values()),
        )
