"""Postdominator computation.

Postdominators are computed as dominators of the reverse CFG with the
exit node as root, using the standard iterative dataflow formulation.
Nodes that cannot reach the exit (e.g. bodies of ``while (1)`` loops that
never terminate) keep the full node set as their postdominator set; the
control-dependence pass treats them conservatively.
"""


def postdominators(cfg):
    """Map each node to its set of postdominators (including itself)."""
    nodes = list(cfg.nodes)
    full = set(nodes)
    pdom = {node: (set([cfg.exit]) if node == cfg.exit else set(full)) for node in nodes}

    # Reverse postorder over the reverse graph gives fast convergence.
    order = _reverse_postorder_on_reverse(cfg)
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == cfg.exit:
                continue
            succs = cfg.successors(node)
            if succs:
                new = set(full)
                for succ in succs:
                    new &= pdom[succ]
            else:
                # Dead end that is not the exit: nothing postdominates it
                # except itself (conservative).
                new = set()
            new.add(node)
            if new != pdom[node]:
                pdom[node] = new
                changed = True
    return pdom


def _reverse_postorder_on_reverse(cfg):
    """DFS postorder starting from exit following predecessor edges,
    then extended with any nodes unreachable from exit."""
    seen = set()
    order = []

    def visit(start):
        stack = [(start, iter(cfg.predecessors(start)))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for pred in it:
                if pred not in seen:
                    seen.add(pred)
                    stack.append((pred, iter(cfg.predecessors(pred))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(cfg.exit)
    for node in cfg.nodes:
        if node not in seen:
            visit(node)
    order.reverse()
    return order


def immediate_postdominators(cfg, pdom=None):
    """Map each node to its immediate postdominator (or None).

    The immediate postdominator of ``n`` is the unique strict
    postdominator of ``n`` postdominated by every other strict
    postdominator of ``n``.
    """
    if pdom is None:
        pdom = postdominators(cfg)
    ipdom = {}
    for node in cfg.nodes:
        strict = pdom[node] - {node}
        ipdom[node] = None
        for candidate in strict:
            # ipdom is the closest strict postdominator: every other
            # strict postdominator of ``node`` postdominates it.
            if all(other in pdom[candidate] for other in strict):
                ipdom[node] = candidate
                break
    return ipdom
