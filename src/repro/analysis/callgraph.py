"""Call graph construction and the may-exit analysis.

The call graph records, per procedure, its direct call sites (indirect
calls must be lowered by the §6.2 transformation before SDG construction,
so the graph only ever sees direct calls).

``may_exit`` computes which procedures may transitively reach an
``exit()`` statement; calls to such procedures are modeled as potential
jumps (Ball–Horwitz pseudo-predicates) so that statements following the
call become control dependent on it — the interprocedural generalization
of the paper's §6.1 treatment of ``exit``.
"""

from repro.lang import ast_nodes as A


class CallSite(object):
    """One direct call occurrence.

    Attributes:
        caller: caller procedure name.
        callee: callee procedure name.
        stmt: the statement containing the call (CallStmt or Assign).
        call: the :class:`CallExpr` node.
        captures_return: True for ``x = f(...)``.
        target_var: the assigned variable for captured returns.
        label: a process-unique call-site label (set by the SDG builder).
    """

    def __init__(self, caller, callee, stmt, call, captures_return, target_var):
        self.caller = caller
        self.callee = callee
        self.stmt = stmt
        self.call = call
        self.captures_return = captures_return
        self.target_var = target_var
        self.label = None

    def __repr__(self):
        return "CallSite(%s -> %s at uid %d)" % (self.caller, self.callee, self.stmt.uid)


class CallGraph(object):
    """Direct call graph of a program."""

    def __init__(self):
        self.sites = []  # all CallSite objects, in program order
        self.calls_from = {}  # proc name -> list of CallSite
        self.calls_to = {}  # proc name -> list of CallSite
        self.exits_directly = set()  # procs containing an exit statement

    def add_proc(self, name):
        self.calls_from.setdefault(name, [])
        self.calls_to.setdefault(name, [])

    def add_site(self, site):
        self.sites.append(site)
        self.calls_from[site.caller].append(site)
        self.calls_to.setdefault(site.callee, []).append(site)

    def callees(self, name):
        return {site.callee for site in self.calls_from.get(name, ())}

    def callers(self, name):
        return {site.caller for site in self.calls_to.get(name, ())}

    def may_exit(self):
        """Procedures that may transitively execute ``exit()``."""
        result = set(self.exits_directly)
        changed = True
        while changed:
            changed = False
            for name, sites in self.calls_from.items():
                if name in result:
                    continue
                if any(site.callee in result for site in sites):
                    result.add(name)
                    changed = True
        return result

    def reachable_from(self, root="main"):
        """Procedures reachable from ``root`` in the call graph."""
        seen = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees(name) - seen)
        return seen


def build_call_graph(program):
    """Build the direct call graph of a semantically checked program.

    Raises ``ValueError`` on indirect calls — run the §6.2 lowering
    (:func:`repro.core.funcptr.lower_indirect_calls`) first.
    """
    graph = CallGraph()
    for proc in program.procs:
        graph.add_proc(proc.name)
    for proc in program.procs:
        for stmt in A.walk_stmts(proc.body):
            if isinstance(stmt, A.ExitStmt):
                graph.exits_directly.add(proc.name)
            call, captures, target = _call_of(stmt)
            if call is None:
                continue
            if call.is_indirect:
                raise ValueError(
                    "indirect call in %r (uid %d): lower function pointers "
                    "before building the call graph" % (proc.name, stmt.uid)
                )
            graph.add_site(CallSite(proc.name, call.callee, stmt, call, captures, target))
    return graph


def _call_of(stmt):
    """Extract ``(call_expr, captures_return, target_var)`` from a
    statement, or ``(None, False, None)``."""
    if isinstance(stmt, A.CallStmt):
        return stmt.call, False, None
    if isinstance(stmt, A.Assign) and isinstance(stmt.expr, A.CallExpr):
        return stmt.expr, True, stmt.name
    if isinstance(stmt, A.LocalDecl) and isinstance(stmt.init, A.CallExpr):
        return stmt.init, True, stmt.name
    return None, False, None
