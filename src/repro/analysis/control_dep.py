"""Control-dependence computation.

Two independent implementations:

* :func:`control_dependence` — the classic Ferrante–Ottenstein–Warren
  algorithm over a CFG and its immediate-postdominator tree.  This is the
  authoritative version the PDG builder uses; run on the Ball–Horwitz
  augmented CFG it also yields the control dependences of jump
  pseudo-predicates (``return`` / ``exit`` / may-exit calls).

* :func:`structural_control_dependence` — the syntax-directed rules for
  structured code (a statement is control dependent on its innermost
  enclosing predicate; a loop predicate additionally on itself).  Used as
  a cross-check: on programs without early exits the two must agree.
"""

from repro.analysis.postdom import immediate_postdominators, postdominators
from repro.lang import ast_nodes as A


def control_dependence(cfg, pdom=None):
    """Compute control dependences on ``cfg`` (FOW algorithm).

    Returns a set of ``(controller, dependent)`` pairs.  ``controller``
    is a branch node (>= 2 CFG successors).  For each CFG edge ``A -> B``
    where ``B`` does not postdominate ``A``, every node on the
    postdominator-tree path from ``B`` up to (but excluding)
    ``ipdom(A)`` is control dependent on ``A``; when the least common
    ancestor is ``A`` itself (loop back edges) this marks ``(A, A)``.
    """
    if pdom is None:
        pdom = postdominators(cfg)
    ipdom = immediate_postdominators(cfg, pdom)
    deps = set()
    for a in cfg.nodes:
        succs = cfg.successors(a)
        if len(succs) < 2:
            continue
        stop = ipdom.get(a)
        for b in succs:
            if a in pdom[b] and a != b:
                # B is postdominated by A only on paths that cannot reach
                # exit; walking would still terminate via the visited set,
                # but there is no control dependence to record on a
                # normal structured graph.  Fall through to the walk,
                # which handles it via the visited guard.
                pass
            node = b
            visited = set()
            while node is not None and node != stop and node not in visited:
                deps.add((a, node))
                visited.add(node)
                node = ipdom.get(node)
    return deps


def structural_control_dependence(proc, vertex_of_stmt, entry):
    """Syntax-directed control dependence for a structured procedure.

    ``vertex_of_stmt`` maps a statement uid to its vertex id; ``entry``
    is the entry vertex id.  Returns ``(controller, dependent)`` pairs
    over vertex ids.  Loop predicates are control dependent on
    themselves, matching FOW on the corresponding CFG.
    """
    deps = set()

    def visit_block(block, controller):
        for stmt in block.stmts:
            vertex = vertex_of_stmt(stmt.uid)
            deps.add((controller, vertex))
            if isinstance(stmt, A.If):
                visit_block(stmt.then, vertex)
                if stmt.els is not None:
                    visit_block(stmt.els, vertex)
            elif isinstance(stmt, A.While):
                deps.add((vertex, vertex))
                visit_block(stmt.body, vertex)

    visit_block(proc.body, entry)
    return deps
