"""Program analyses underlying SDG construction.

These are the classic compiler analyses the paper's SDG substrate
(CodeSurfer/C) provides internally:

* :mod:`repro.analysis.cfg` — a generic control-flow graph.
* :mod:`repro.analysis.postdom` — postdominators.
* :mod:`repro.analysis.control_dep` — control dependence
  (Ferrante–Ottenstein–Warren on the CFG, plus a structural variant used
  as a cross-check on structured programs).
* :mod:`repro.analysis.reaching` — reaching definitions / flow dependence.
* :mod:`repro.analysis.callgraph` — the direct call graph and the
  may-exit analysis used for §6.1-style termination modeling.
* :mod:`repro.analysis.modref` — interprocedural MayMod/MayRef/MustMod
  side-effect analysis (Cooper–Kennedy style, with translation through
  ``ref`` parameters).
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.control_dep import control_dependence, structural_control_dependence
from repro.analysis.modref import ModRefInfo, compute_modref
from repro.analysis.postdom import immediate_postdominators, postdominators
from repro.analysis.reaching import flow_dependences, reaching_definitions

__all__ = [
    "CallGraph",
    "ControlFlowGraph",
    "ModRefInfo",
    "build_call_graph",
    "compute_modref",
    "control_dependence",
    "flow_dependences",
    "immediate_postdominators",
    "postdominators",
    "reaching_definitions",
    "structural_control_dependence",
]
