"""Persistent slice storage (the cross-process, cross-restart cache).

The in-memory :class:`repro.engine.SlicingSession` memo dies with its
process; this package is the durable layer underneath it:

* :class:`SliceStore` — a content-addressed on-disk cache of front-half
  bundles (parsed program + SDG + PDS encoding), per-criterion
  results, per-procedure parts (``__procs__``), relocatable
  saturation artifacts plus per-revision saturation indexes
  (``__sats__``), keyed by source-text hash and the engine's canonical
  keys, with versioned checksummed entries and atomic writes.  The
  size cap evicts in *recompute-cost* order (slim results first,
  front-half bundles and indexes last; recency breaks ties within a
  tier), and the store degrades instead of failing: a write error is
  a counted no-op, a malformed ``$REPRO_CACHE_MAX_BYTES`` warns and
  falls back to the default, and every degradation is visible in
  :meth:`SliceStore.stats`.
* :func:`open_store` / :func:`default_cache_dir` — the conventional
  way to get a store (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).

Sessions use it transparently: ``repro.open_session(source,
cache_dir=...)`` loads the front half from the store when warm,
answers repeated criteria from disk with no saturation work at all,
answers *new* criteria against a warm front half by loading the
persisted ``Poststar(entry_main)`` artifact instead of re-saturating,
and — on *edited* source — adopts the previous revision's surviving
artifacts through the saturation index, with no live donor session.
CLI: ``repro cache stats [--json]`` / ``repro cache clear`` and
``repro slice-batch --cache-dir``.
"""

from repro.store.store import (
    DEFAULT_MAX_BYTES,
    STORE_VERSION,
    SliceStore,
    default_cache_dir,
    source_hash,
)


def open_store(cache_dir=None, max_bytes=None):
    """The :class:`SliceStore` at ``cache_dir`` (default:
    :func:`default_cache_dir`)."""
    return SliceStore(cache_dir=cache_dir, max_bytes=max_bytes)


__all__ = [
    "DEFAULT_MAX_BYTES",
    "STORE_VERSION",
    "SliceStore",
    "default_cache_dir",
    "open_store",
    "source_hash",
]
