"""The persistent slice store: a content-addressed on-disk cache.

Layout.  One directory per program (named by the sha256 of its source
text), one file per cached object inside it::

    <cache_dir>/
      <source_hash>/
        fronthalf.slc                  # pickled SDG (program+info+PDS encoding)
        slice-<key_digest>.slc         # pickled SpecializationResult
        feature-<key_digest>.slc       # pickled feature-removal result
        feature_clean-<key_digest>.slc # pickled (raw, cleaned) slice pair
      __procs__/
        proc-<content_key>.slc         # pickled per-procedure ProcPart
      __sats__/
        sat-<digest>.slc               # pickled SaturationArtifact

``key_digest`` is :func:`repro.engine.canonical.stable_key_digest` of
the same canonical criterion key the in-memory session memo uses, so
the two cache layers can never disagree about which queries are "the
same".  The ``__procs__`` table is content-addressed by
:func:`repro.engine.incremental.procedure_keys` digests: an edited
program whose whole-program bundle misses can still assemble its front
half from the unchanged procedures' parts (a *partial* hit, counted by
``proc_hits``/``proc_misses``).  The ``__sats__`` table holds
relocatable :class:`repro.engine.artifacts.SaturationArtifact` objects
— the shared Poststar and the per-criterion Prestar/Poststar automata
— keyed by front-half hash **plus** the saturation's stable key digest
(``sat-<sha256(front_half_hash : key_digest)>``); a fresh process
answering a *new* criterion against a warm front half loads the
Poststar artifact instead of re-saturating, and an incremental
``update_source`` re-files every surviving artifact under the edited
text's hash (footprint-aware survival, composing with ``__procs__``).

Entry format.  Every file is ``MAGIC | version | sha256(payload) |
payload`` with the payload a pickle.  Reads verify all three prefixes;
any mismatch — a truncated write, a flipped byte, a file written by an
older store version — makes the entry a *miss* and deletes it, so a
corrupted cache degrades to a cold one instead of failing or serving
bad results.

Writes are atomic (temp file + :func:`os.replace` in the same
directory), which also makes concurrent writers safe: the last
complete write wins and readers only ever observe whole entries.

Eviction.  The store is capped at ``max_bytes`` (default 256 MiB,
overridable via ``REPRO_CACHE_MAX_BYTES``).  Reads bump the entry's
mtime, and when a write pushes the store over the cap, entries are
dropped oldest-mtime-first — i.e. least-recently-used — until it fits.
"""

import hashlib
import os
import pickle
import struct
import tempfile
import threading

MAGIC = b"RSLC"
#: Bump on any incompatible change to the entry format *or* to the
#: pickled object graphs; old entries are then invalidated on read.
#: v2: results carry ownership footprints; saturations became
#: first-class SaturationArtifact entries in the __sats__ table.
STORE_VERSION = 2

_VERSION_STRUCT = struct.Struct(">H")
_HEADER_LEN = len(MAGIC) + _VERSION_STRUCT.size + hashlib.sha256().digest_size

_SUFFIX = ".slc"
_TMP_SUFFIX = ".tmp"
_FRONTHALF = "fronthalf"
#: the content-addressed per-procedure and saturation-artifact tables
#: live beside the per-program directories (source hashes are hex, so
#: no collision)
_PARTS_DIR = "__procs__"
_SATS_DIR = "__sats__"
_SPECIAL_DIRS = frozenset([_PARTS_DIR, _SATS_DIR])
#: orphaned temp files older than this are swept during eviction/clear
_TMP_GRACE_SECONDS = 60

DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def source_hash(source):
    """The store's program key: sha256 hex digest of the source text
    (the same key :func:`repro.open_session` uses in memory)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SliceStore(object):
    """A persistent cache of slicing results for many programs.

    All methods are safe against concurrent readers and writers in
    other threads and other processes; within one process the counters
    are guarded by a lock.  A store object is cheap — it holds only the
    directory path, the size cap, and hit/miss counters.

    Attributes:
        cache_dir: the root directory (created lazily on first write).
        max_bytes: LRU size cap over all entry files.
    """

    def __init__(self, cache_dir=None, max_bytes=None):
        self.cache_dir = os.path.abspath(
            os.path.expanduser(cache_dir or default_cache_dir())
        )
        if max_bytes is None:
            max_bytes = int(
                os.environ.get("REPRO_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES)
            )
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # Approximate on-disk total, maintained incrementally so writes
        # do not walk the store; None until the first write scans once.
        # Writers in other processes are invisible to the estimate, but
        # every full scan (triggered whenever the estimate crosses the
        # cap) resyncs it with the truth.
        self._approx_bytes = None
        self._counters = {
            "hits": 0,
            "misses": 0,
            "proc_hits": 0,
            "proc_misses": 0,
            "sat_hits": 0,
            "sat_misses": 0,
            "stores": 0,
            "evictions": 0,
            "invalid_dropped": 0,
        }

    # -- the generic object cache ----------------------------------------------

    def get(self, src_hash, table, key_digest):
        """The cached object for ``(program, table, criterion)``, or
        None.  Never raises on a bad entry: corrupted, truncated, and
        version-mismatched files count as misses and are deleted."""
        path = self._entry_path(src_hash, table, key_digest)
        value, ok = self._read(path)
        self._count("hits" if ok else "misses")
        return value

    def put(self, src_hash, table, key_digest, value):
        """Cache ``value``; atomic, last-writer-wins, then LRU-evict if
        the store grew past ``max_bytes``."""
        path = self._entry_path(src_hash, table, key_digest)
        written = self._write(path, value)
        self._count("stores")
        self._note_written(written)

    # -- the front-half bundle -------------------------------------------------

    def get_program(self, src_hash):
        """The cached front half (an SDG carrying program, semantic
        info, and PDS encoding) for a source hash, or None."""
        value, ok = self._read(self._entry_path(src_hash, _FRONTHALF, None))
        self._count("hits" if ok else "misses")
        return value

    def put_program(self, src_hash, sdg):
        written = self._write(self._entry_path(src_hash, _FRONTHALF, None), sdg)
        self._count("stores")
        self._note_written(written)

    def has_program(self, src_hash):
        """Whether a front-half bundle exists on disk for a source hash
        (existence only — the entry is still validated on read)."""
        return os.path.exists(self._entry_path(src_hash, _FRONTHALF, None))

    # -- the per-procedure table -------------------------------------------------

    def get_proc(self, content_key):
        """The cached :class:`~repro.sdg.parts.ProcPart` for a
        procedure content key, or None.  Parts are content-addressed —
        shared across every program (and every edit of one program)
        whose procedure hashes to the same key — which is what makes a
        *partial* front-half hit possible when the whole-program bundle
        misses.  ``proc_hits``/``proc_misses`` count these lookups."""
        value, ok = self._read(self._entry_path(_PARTS_DIR, "proc", content_key))
        self._count("proc_hits" if ok else "proc_misses")
        return value

    def put_proc(self, content_key, part):
        """Cache one procedure's part under its content key."""
        written = self._write(self._entry_path(_PARTS_DIR, "proc", content_key), part)
        self._count("stores")
        self._note_written(written)

    # -- the saturation-artifact table -----------------------------------------

    @staticmethod
    def sat_name(src_hash, key_digest):
        """The ``__sats__`` file key for a saturation: sha256 over the
        front-half hash and the saturation's stable key digest.  Both
        inputs are deterministic hex digests, so the combined name is
        stable across processes and interpreter runs."""
        return hashlib.sha256(
            ("%s:%s" % (src_hash, key_digest)).encode("utf-8")
        ).hexdigest()

    def get_sat(self, src_hash, key_digest):
        """The cached :class:`~repro.engine.artifacts.SaturationArtifact`
        for ``(front half, saturation key)``, or None.  Counted by
        ``sat_hits``/``sat_misses``."""
        value, ok = self._read(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest))
        )
        self._count("sat_hits" if ok else "sat_misses")
        return value

    def put_sat(self, src_hash, key_digest, artifact):
        """Cache one saturation artifact under its front-half hash and
        key digest."""
        written = self._write(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest)),
            artifact,
        )
        self._count("stores")
        self._note_written(written)

    def has_sat(self, src_hash, key_digest):
        """Whether a saturation artifact exists on disk for the given
        front-half hash and key digest (existence only — the entry is
        still validated on read).  Lets ``update_source`` skip
        re-serializing survivors the store already holds (the undo/redo
        editor loop)."""
        return os.path.exists(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest))
        )

    # -- maintenance -----------------------------------------------------------

    def clear(self):
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path, _size, _mtime in self._entries():
            if self._unlink(path):
                removed += 1
        self._sweep_stale_temp()
        for name in _listdir(self.cache_dir):
            _rmdir(os.path.join(self.cache_dir, name))
        with self._lock:
            self._approx_bytes = 0
        return removed

    def stats(self):
        """A snapshot: on-disk shape (programs, entries, bytes, and a
        per-table entry/byte breakdown) plus this process's
        hit/miss/store/eviction counters.

        ``tables`` maps table name (``fronthalf``, ``slice``,
        ``feature``, ``feature_clean``, ``proc``, ``sat``) to entry
        count; ``table_bytes`` maps the same names to total bytes, so
        the new ``__sats__`` table (and every other one) is observable
        from ``repro cache stats``.
        """
        entries = self._entries()
        programs = set()
        tables = {}
        table_bytes = {}
        for path, size, _mtime in entries:
            subdir = os.path.basename(os.path.dirname(path))
            if subdir not in _SPECIAL_DIRS:
                programs.add(subdir)
            table = os.path.basename(path).rsplit("-", 1)[0]
            if table.endswith(_SUFFIX):
                table = table[: -len(_SUFFIX)]
            tables[table] = tables.get(table, 0) + 1
            table_bytes[table] = table_bytes.get(table, 0) + size
        with self._lock:
            counters = dict(self._counters)
        counters.update(
            cache_dir=self.cache_dir,
            version=STORE_VERSION,
            max_bytes=self.max_bytes,
            programs=len(programs),
            entries=len(entries),
            total_bytes=sum(size for _path, size, _mtime in entries),
            tables=tables,
            table_bytes=table_bytes,
        )
        return counters

    # -- internals -------------------------------------------------------------

    def _entry_path(self, src_hash, table, key_digest):
        name = table if key_digest is None else "%s-%s" % (table, key_digest)
        return os.path.join(self.cache_dir, src_hash, name + _SUFFIX)

    def _read(self, path):
        """Returns ``(value, ok)``; drops the file on any defect."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None, False
        if len(blob) < _HEADER_LEN or not blob.startswith(MAGIC):
            self._drop_invalid(path)
            return None, False
        (version,) = _VERSION_STRUCT.unpack_from(blob, len(MAGIC))
        if version != STORE_VERSION:
            self._drop_invalid(path)
            return None, False
        offset = len(MAGIC) + _VERSION_STRUCT.size
        digest = blob[offset:_HEADER_LEN]
        payload = blob[_HEADER_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            self._drop_invalid(path)
            return None, False
        try:
            value = pickle.loads(payload)
        except Exception:
            self._drop_invalid(path)
            return None, False
        _touch(path)
        return value, True

    def _write(self, path, value):
        """Atomically write one entry; returns the bytes written."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            MAGIC
            + _VERSION_STRUCT.pack(STORE_VERSION)
            + hashlib.sha256(payload).digest()
            + payload
        )
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=_TMP_SUFFIX)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        except BaseException:
            _unlink_quiet(temp_path)
            raise
        return len(blob)

    def _drop_invalid(self, path):
        if self._unlink(path):
            self._count("invalid_dropped")

    def _note_written(self, nbytes):
        """Incremental size accounting: a write only triggers the
        O(entries) eviction walk when the running estimate crosses the
        cap (the estimate over-counts overwrites, which merely causes
        an early — and correcting — scan)."""
        with self._lock:
            unknown = self._approx_bytes is None
            if not unknown:
                self._approx_bytes += nbytes
                over = self._approx_bytes > self.max_bytes
        if unknown or over:
            self._evict_lru()

    def _evict_lru(self):
        self._sweep_stale_temp()
        entries = self._entries()
        total = sum(size for _path, size, _mtime in entries)
        if total > self.max_bytes:
            # Oldest mtime first; reads touch their entry, so this is LRU.
            entries.sort(key=lambda entry: entry[2])
            for path, size, _mtime in entries:
                if total <= self.max_bytes:
                    break
                if self._unlink(path):
                    total -= size
                    self._count("evictions")
        with self._lock:
            self._approx_bytes = total

    def _sweep_stale_temp(self):
        """Remove orphaned ``.tmp`` files (a writer killed between
        mkstemp and the atomic replace) once they are old enough that
        no live writer can still own them."""
        import time

        horizon = time.time() - _TMP_GRACE_SECONDS
        for sub in _listdir(self.cache_dir):
            subdir = os.path.join(self.cache_dir, sub)
            for name in _listdir(subdir):
                if not name.endswith(_TMP_SUFFIX):
                    continue
                path = os.path.join(subdir, name)
                try:
                    stale = os.stat(path).st_mtime < horizon
                except OSError:
                    continue
                if stale:
                    _unlink_quiet(path)

    def _entries(self):
        """All ``(path, size, mtime)`` entry triples currently on disk
        (tolerant of concurrent deletion)."""
        result = []
        for sub in _listdir(self.cache_dir):
            subdir = os.path.join(self.cache_dir, sub)
            for name in _listdir(subdir):
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(subdir, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                result.append((path, status.st_size, status.st_mtime))
        return result

    def _unlink(self, path):
        if _unlink_quiet(path):
            _rmdir(os.path.dirname(path))
            return True
        return False

    def _count(self, name):
        with self._lock:
            self._counters[name] += 1


def _listdir(path):
    try:
        return os.listdir(path)
    except OSError:
        return []


def _touch(path):
    try:
        os.utime(path, None)
    except OSError:
        pass


def _unlink_quiet(path):
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def _rmdir(path):
    """Remove a per-program directory if (and only if) it is empty."""
    try:
        os.rmdir(path)
    except OSError:
        pass
