"""The persistent slice store: a content-addressed on-disk cache.

Layout.  One directory per program (named by the sha256 of its source
text), one file per cached object inside it::

    <cache_dir>/
      <source_hash>/
        fronthalf.slc                  # pickled SDG (program+info+PDS encoding)
        slice-<key_digest>.slc         # pickled SpecializationResult
        feature-<key_digest>.slc       # pickled feature-removal result
        feature_clean-<key_digest>.slc # pickled (raw, cleaned) slice pair
      __procs__/
        proc-<content_key>.slc         # pickled per-procedure ProcPart
      __sats__/
        sat-<digest>.slc               # pickled SaturationArtifact
        idx-<source_hash>.slc          # per-revision saturation index

``key_digest`` is :func:`repro.engine.canonical.stable_key_digest` of
the same canonical criterion key the in-memory session memo uses, so
the two cache layers can never disagree about which queries are "the
same".  The ``__procs__`` table is content-addressed by
:func:`repro.engine.incremental.procedure_keys` digests: an edited
program whose whole-program bundle misses can still assemble its front
half from the unchanged procedures' parts (a *partial* hit, counted by
``proc_hits``/``proc_misses``).  The ``__sats__`` table holds
relocatable :class:`repro.engine.artifacts.SaturationArtifact` objects
— the shared Poststar and the per-criterion Prestar/Poststar automata
— keyed by front-half hash **plus** the saturation's stable key digest
(``sat-<sha256(front_half_hash : key_digest)>``); a fresh process
answering a *new* criterion against a warm front half loads the
Poststar artifact instead of re-saturating, and an incremental
``update_source`` re-files every surviving artifact under the edited
text's hash (footprint-aware survival, composing with ``__procs__``).

The saturation index.  Beside the artifacts, ``__sats__`` keeps one
small ``idx-<source_hash>.slc`` file per revision: the revision's
per-procedure symbol *layout* (each procedure's content key, dependence
shape digest, vertex ids, and call-site labels, in build order) plus
one record per filed
artifact (memo key, saturation kind, ownership footprint).  The index
is what makes artifacts discoverable **across revisions with no live
session**: a cold process opening edited text computes its procedure
content keys, scans the indexes of other revisions for artifacts whose
footprint is a subset of its unchanged keys, renumbers them through the
two layouts, and adopts them (see
:func:`repro.engine.incremental.discover_artifacts`).  The kind in
each record also tells the evictor how expensive the artifact is to
recompute without unpickling it.

Entry format.  Every file is ``MAGIC | version | sha256(payload) |
payload`` with the payload a pickle.  Reads verify all three prefixes;
any mismatch — a truncated write, a flipped byte, a file written by an
older store version — makes the entry a *miss* and deletes it, so a
corrupted cache degrades to a cold one instead of failing or serving
bad results.

Writes are atomic (temp file + :func:`os.replace` in the same
directory), which also makes concurrent writers safe: the last
complete write wins and readers only ever observe whole entries.
Writes are also *optional*: the store is an optimization, never a
dependency, so an ``OSError`` on the write path (ENOSPC, EACCES, a
read-only cache dir) degrades to a counted no-op (``write_errors``)
instead of failing the query whose answer already exists.

Eviction.  The store is capped at ``max_bytes`` (default 256 MiB,
overridable via ``REPRO_CACHE_MAX_BYTES``; a malformed value falls
back to the default with a warning rather than crashing every
session).  Eviction is **recompute-cost-aware**, not flat LRU: entries
are ranked by how expensive they are to rebuild — slim results first
(milliseconds, given warm saturations), then per-procedure parts, then
Prestar artifacts, then Poststar artifacts, and front-half bundles and
saturation indexes last — with oldest-mtime-first (reads bump mtime,
so LRU) as the tie-break *within* a tier.  A 256 MiB cache under
pressure therefore sheds cheap rendered results and keeps the shared
Poststar that costs seconds to re-saturate.  Every eviction walk also
garbage-collects the saturation indexes (records whose artifact file
is gone are pruned; ``gc_index_pruned``), and any walk that evicted or
pruned something bumps the lifetime counters persisted in the
``__sats__/meta`` sidecar, which ``repro cache stats`` reports across
processes.
"""

import hashlib
import os
import pickle
import struct
import tempfile
import threading
import warnings

MAGIC = b"RSLC"
#: Bump on any incompatible change to the entry format *or* to the
#: pickled object graphs; old entries are then invalidated on read.
#: v2: results carry ownership footprints; saturations became
#: first-class SaturationArtifact entries in the __sats__ table.
#: v3: per-revision saturation indexes (layout + artifact records)
#: beside __sats__ make artifacts discoverable across revisions.
#: v4: the relocatable compiled-PDS payload table (``__pds__``), keyed
#: by front-half hash, so process-pool workers adopt packed rule
#: arrays instead of recompiling.
STORE_VERSION = 4

_VERSION_STRUCT = struct.Struct(">H")
_HEADER_LEN = len(MAGIC) + _VERSION_STRUCT.size + hashlib.sha256().digest_size

_SUFFIX = ".slc"
_TMP_SUFFIX = ".tmp"
_FRONTHALF = "fronthalf"
#: the content-addressed per-procedure and saturation-artifact tables
#: live beside the per-program directories (source hashes are hex, so
#: no collision)
_PARTS_DIR = "__procs__"
_SATS_DIR = "__sats__"
#: the compiled-PDS payload table (one relocatable
#: ``repro.pds.kernel.compiled_payload`` tuple per front-half hash)
_PDS_DIR = "__pds__"
_SPECIAL_DIRS = frozenset([_PARTS_DIR, _SATS_DIR, _PDS_DIR])
#: the per-revision saturation-index table (files in __sats__)
_SAT_INDEX = "idx"
#: the lifetime-counter sidecar, kept in __sats__ under a non-entry
#: name (never evicted, invisible to _entries, removed only by clear())
_META_NAME = "meta"
#: the inverted revision index sidecar (same non-entry treatment):
#: content key -> revision hashes, and layout shape signature ->
#: revision hashes, so cross-revision discovery consults only the
#: revisions that can possibly donate instead of scanning every
#: ``idx-<hash>.slc`` in the store
_KEYMAP_NAME = "keymap"
#: orphaned temp files older than this are swept during eviction/clear
_TMP_GRACE_SECONDS = 60

DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Recompute-cost tiers for eviction, cheapest-to-rebuild first.  Slim
#: results are re-rendered in milliseconds once their saturation is
#: warm; a procedure part is one PDG build; a Prestar is one criterion
#: saturation; a Poststar (the shared reachable-configs one above all)
#: costs seconds on large programs; the front-half bundle and the
#: saturation indexes anchor everything else and go last.
TIER_RESULT = 0
TIER_PROC = 1
TIER_SAT_PRESTAR = 2
TIER_SAT_POSTSTAR = 3
TIER_PRECIOUS = 4

_TIER_BY_TABLE = {
    "slice": TIER_RESULT,
    "feature": TIER_RESULT,
    "feature_clean": TIER_RESULT,
    "proc": TIER_PROC,
    # a compiled-PDS payload rebuilds in one compile pass — cheap, like
    # a procedure part, and far cheaper than any saturation
    "pds": TIER_PROC,
    _FRONTHALF: TIER_PRECIOUS,
    _SAT_INDEX: TIER_PRECIOUS,
}

#: lifetime counters persisted across processes in __meta__.slc
_LIFETIME_COUNTERS = ("evictions", "compactions", "gc_index_pruned")


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def source_hash(source):
    """The store's program key: sha256 hex digest of the source text
    (the same key :func:`repro.open_session` uses in memory)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SliceStore(object):
    """A persistent cache of slicing results for many programs.

    All methods are safe against concurrent readers and writers in
    other threads and other processes; within one process the counters
    are guarded by a lock.  A store object is cheap — it holds only the
    directory path, the size cap, and hit/miss counters.

    Attributes:
        cache_dir: the root directory (created lazily on first write).
        max_bytes: size cap over all entry files (eviction is
            recompute-cost-aware; see the module docstring).
    """

    def __init__(self, cache_dir=None, max_bytes=None):
        self.cache_dir = os.path.abspath(
            os.path.expanduser(cache_dir or default_cache_dir())
        )
        self._lock = threading.Lock()
        self._index_lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "proc_hits": 0,
            "proc_misses": 0,
            "sat_hits": 0,
            "sat_misses": 0,
            "pds_hits": 0,
            "pds_misses": 0,
            "index_hits": 0,
            "index_misses": 0,
            "stores": 0,
            "evictions": 0,
            "invalid_dropped": 0,
            "write_errors": 0,
            "config_errors": 0,
            "gc_index_pruned": 0,
            "compactions": 0,
        }
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
            max_bytes = DEFAULT_MAX_BYTES
            if raw:
                try:
                    max_bytes = int(raw)
                except ValueError:
                    # A malformed knob (e.g. "256M") must degrade, not
                    # crash every session with a cache dir attached.
                    self._counters["config_errors"] += 1
                    warnings.warn(
                        "ignoring malformed REPRO_CACHE_MAX_BYTES=%r "
                        "(want a byte count, e.g. 268435456); using the "
                        "default %d" % (raw, DEFAULT_MAX_BYTES),
                        RuntimeWarning,
                        stacklevel=2,
                    )
        self.max_bytes = max_bytes
        # Approximate on-disk total, maintained incrementally so writes
        # do not walk the store; None until the first write scans once.
        # Writers in other processes are invisible to the estimate, but
        # every full scan (triggered whenever the estimate crosses the
        # cap) resyncs it with the truth.
        self._approx_bytes = None

    # -- the generic object cache ----------------------------------------------

    def get(self, src_hash, table, key_digest):
        """The cached object for ``(program, table, criterion)``, or
        None.  Never raises on a bad entry: corrupted, truncated, and
        version-mismatched files count as misses and are deleted."""
        path = self._entry_path(src_hash, table, key_digest)
        value, ok = self._read(path)
        self._count("hits" if ok else "misses")
        return value

    def put(self, src_hash, table, key_digest, value):
        """Cache ``value``; atomic, last-writer-wins, then cost-aware
        eviction if the store grew past ``max_bytes``.  A failing
        filesystem degrades to a counted no-op (``write_errors``)."""
        path = self._entry_path(src_hash, table, key_digest)
        written = self._write(path, value)
        self._count("stores")
        self._note_written(written)

    def has(self, src_hash, table, key_digest):
        """Whether a *plausibly valid* entry exists for ``(program,
        table, criterion)`` — the generic-table twin of
        :meth:`has_program`.  Only the header (magic + version) is
        checked, nothing is deserialized, and no hit/miss counter
        moves: this is a peek (the fused batch path uses it to leave
        persisted criteria to the ordinary memo path, whose own lookup
        does the counting)."""
        return self._has_valid_header(self._entry_path(src_hash, table, key_digest))

    # -- the front-half bundle -------------------------------------------------

    def get_program(self, src_hash):
        """The cached front half (an SDG carrying program, semantic
        info, and PDS encoding) for a source hash, or None."""
        value, ok = self._read(self._entry_path(src_hash, _FRONTHALF, None))
        self._count("hits" if ok else "misses")
        return value

    def put_program(self, src_hash, sdg):
        written = self._write(self._entry_path(src_hash, _FRONTHALF, None), sdg)
        self._count("stores")
        self._note_written(written)

    def has_program(self, src_hash):
        """Whether a *plausibly valid* front-half bundle exists on disk
        for a source hash: the header (magic + version) is checked
        cheaply, so a corrupt or stale-version file does not let a
        caller skip re-persisting over it.  The payload checksum is
        still verified on read."""
        return self._has_valid_header(self._entry_path(src_hash, _FRONTHALF, None))

    # -- the per-procedure table -------------------------------------------------

    def get_proc(self, content_key):
        """The cached :class:`~repro.sdg.parts.ProcPart` for a
        procedure content key, or None.  Parts are content-addressed —
        shared across every program (and every edit of one program)
        whose procedure hashes to the same key — which is what makes a
        *partial* front-half hit possible when the whole-program bundle
        misses.  ``proc_hits``/``proc_misses`` count these lookups."""
        value, ok = self._read(self._entry_path(_PARTS_DIR, "proc", content_key))
        self._count("proc_hits" if ok else "proc_misses")
        return value

    def put_proc(self, content_key, part):
        """Cache one procedure's part under its content key."""
        written = self._write(self._entry_path(_PARTS_DIR, "proc", content_key), part)
        self._count("stores")
        self._note_written(written)

    # -- the saturation-artifact table -----------------------------------------

    @staticmethod
    def sat_name(src_hash, key_digest):
        """The ``__sats__`` file key for a saturation: sha256 over the
        front-half hash and the saturation's stable key digest.  Both
        inputs are deterministic hex digests, so the combined name is
        stable across processes and interpreter runs."""
        return hashlib.sha256(
            ("%s:%s" % (src_hash, key_digest)).encode("utf-8")
        ).hexdigest()

    def get_sat(self, src_hash, key_digest):
        """The cached :class:`~repro.engine.artifacts.SaturationArtifact`
        for ``(front half, saturation key)``, or None.  Counted by
        ``sat_hits``/``sat_misses``."""
        value, ok = self._read(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest))
        )
        self._count("sat_hits" if ok else "sat_misses")
        return value

    def put_sat(self, src_hash, key_digest, artifact):
        """Cache one saturation artifact under its front-half hash and
        key digest."""
        written = self._write(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest)),
            artifact,
        )
        self._count("stores")
        self._note_written(written)

    def has_sat(self, src_hash, key_digest):
        """Whether a *plausibly valid* saturation artifact exists on
        disk for the given front-half hash and key digest.  Lets
        ``update_source`` skip re-persisting survivors the store
        already holds (the undo/redo editor loop) — but the header
        (magic + version) is validated cheaply, so a corrupt or
        stale-``STORE_VERSION`` file reads as absent and the survivor
        is re-persisted instead of being silently lost on the next
        read."""
        return self._has_valid_header(
            self._entry_path(_SATS_DIR, "sat", self.sat_name(src_hash, key_digest))
        )

    # -- the compiled-PDS payload table ----------------------------------------

    def get_pds(self, src_hash):
        """The persisted compiled-PDS payload tuple
        (:func:`repro.pds.kernel.compiled_payload`) for a front-half
        hash, or None.  Counted by ``pds_hits``/``pds_misses``.  The
        front half is deterministic from the source, so the payload is
        too — any process with the same source adopts the same packed
        arrays."""
        value, ok = self._read(self._entry_path(_PDS_DIR, "pds", src_hash))
        self._count("pds_hits" if ok else "pds_misses")
        return value

    def put_pds(self, src_hash, payload):
        """Cache one compiled-PDS payload under its front-half hash."""
        written = self._write(self._entry_path(_PDS_DIR, "pds", src_hash), payload)
        self._count("stores")
        self._note_written(written)

    def has_pds(self, src_hash):
        """Whether a plausibly valid payload exists (header-only check,
        like :meth:`has_sat`)."""
        return self._has_valid_header(self._entry_path(_PDS_DIR, "pds", src_hash))

    # -- the per-revision saturation index -------------------------------------

    def get_sat_index(self, src_hash):
        """The saturation index for one revision, or None: a dict with

        * ``"layout"`` — one ``(name, content key, shape digest,
          vertex ids, call-site labels)`` entry per procedure of the
          revision, in program order (the coordinate system artifacts
          are renumbered through), and
        * ``"artifacts"`` — saturation key digest -> ``(memo key,
          kind, footprint tuple)`` for every artifact filed under the
          revision.

        Indexes ride the same header/checksum format as entries, so a
        corrupt index degrades to "revision not discoverable"."""
        value, _ok = self._read(self._sat_index_path(src_hash))
        if isinstance(value, dict) and "layout" in value and "artifacts" in value:
            return value
        return None

    def merge_sat_index(self, src_hash, layout=None, records=None):
        """Merge ``records`` (key digest -> ``(memo key, kind,
        footprint)``) — and, the first time, the revision's ``layout``
        — into the revision's index file.  Read-modify-write under the
        in-process lock; cross-process races are last-writer-wins (a
        lost record only costs discoverability, never correctness)."""
        with self._index_lock:
            index = self.get_sat_index(src_hash)
            if index is None:
                index = {"layout": (), "artifacts": {}}
            if layout:
                index["layout"] = tuple(layout)
            if records:
                index["artifacts"].update(records)
            written = self._write(self._sat_index_path(src_hash), index)
            if layout:
                self._keymap_register(src_hash, index["layout"])
        self._note_written(written)
        return index

    @staticmethod
    def layout_signature(layout):
        """The shape signature of a procedure layout: a digest over
        everything *except* the content keys — procedure names, shape
        digests, vertex ids, call-site labels, in program order.  Two
        revisions are fast-equivalent with zero shared content keys
        exactly when a label edit touched every procedure, and then
        their shape signatures are equal — the second dimension the
        inverted keymap indexes revisions by, so such donors stay
        discoverable without a full index scan."""
        try:
            projected = tuple(
                (name, shape, tuple(vids), tuple(sites))
                for name, _key, shape, vids, sites in layout
            )
        except (TypeError, ValueError):
            return None
        return hashlib.sha256(repr(projected).encode("utf-8")).hexdigest()

    def sat_indexes_for(self, content_keys, shape_sig):
        """The readable ``(src_hash, index)`` pairs worth consulting
        for a revision with the given content keys and layout shape
        signature, most recently touched first — the exact candidate
        set of :meth:`sat_indexes` restricted through the inverted
        keymap.  Exactness: a donor adoptable by footprint subset
        shares a content key with the asker (footprints are nonempty
        subsets of both layouts' key sets), and a fast-equivalent donor
        either shares a key or matches the shape signature; either way
        it is in the candidate set.  When the keymap sidecar is missing
        or unreadable (an older store, a crashed writer) this falls
        back to the full scan and rebuilds the sidecar from what it
        finds."""
        with self._index_lock:
            keymap = self._read_keymap()
        if keymap is None:
            result = self.sat_indexes()
            with self._index_lock:
                self._rebuild_keymap(result)
            return result
        candidates = set()
        keys_dim = keymap.get("keys") or {}
        for content_key in content_keys:
            candidates.update(keys_dim.get(content_key, ()))
        if shape_sig is not None:
            candidates.update((keymap.get("shapes") or {}).get(shape_sig, ()))
        found = []
        for src_hash in candidates:
            path = self._sat_index_path(src_hash)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue
            found.append((mtime, src_hash))
        found.sort(reverse=True)
        result = []
        for _mtime, src_hash in found:
            index = self.get_sat_index(src_hash)
            if index is not None:
                result.append((src_hash, index))
        return result

    def _keymap_path(self):
        return os.path.join(self.cache_dir, _SATS_DIR, _KEYMAP_NAME)

    def _read_keymap(self):
        """The keymap sidecar, or None when absent/corrupt.  Caller
        holds ``_index_lock``."""
        value, _ok = self._read(self._keymap_path())
        if isinstance(value, dict) and "keys" in value and "shapes" in value:
            return value
        return None

    def _keymap_register(self, src_hash, layout):
        """Point the keymap at a revision under every content key of
        its layout and under its shape signature; no-op (and no write)
        when every pointer is already present.  Caller holds
        ``_index_lock``."""
        if not layout:
            return
        keymap = self._read_keymap()
        if keymap is None:
            keymap = {"keys": {}, "shapes": {}}
        changed = False
        keys_dim = keymap["keys"]
        for entry in layout:
            try:
                content_key = entry[1]
            except (TypeError, IndexError):
                continue
            hashes = keys_dim.setdefault(content_key, [])
            if src_hash not in hashes:
                hashes.append(src_hash)
                changed = True
        shape_sig = self.layout_signature(layout)
        if shape_sig is not None:
            hashes = keymap["shapes"].setdefault(shape_sig, [])
            if src_hash not in hashes:
                hashes.append(src_hash)
                changed = True
        if changed:
            self._write(self._keymap_path(), keymap)

    def _rebuild_keymap(self, indexes):
        """Rewrite the keymap sidecar from a full ``(src_hash, index)``
        listing — self-healing after corruption, version upgrades, and
        the compaction walk's index GC.  Caller holds ``_index_lock``."""
        keymap = {"keys": {}, "shapes": {}}
        for src_hash, index in indexes:
            layout = index.get("layout") or ()
            for entry in layout:
                try:
                    content_key = entry[1]
                except (TypeError, IndexError):
                    continue
                hashes = keymap["keys"].setdefault(content_key, [])
                if src_hash not in hashes:
                    hashes.append(src_hash)
            shape_sig = self.layout_signature(layout)
            if shape_sig is not None:
                hashes = keymap["shapes"].setdefault(shape_sig, [])
                if src_hash not in hashes:
                    hashes.append(src_hash)
        self._write(self._keymap_path(), keymap)

    def sat_indexes(self):
        """Every readable ``(src_hash, index)`` pair, most recently
        touched revision first — the candidate order cross-revision
        discovery scans in."""
        sats_dir = os.path.join(self.cache_dir, _SATS_DIR)
        prefix = _SAT_INDEX + "-"
        found = []
        for name in _listdir(sats_dir):
            if not (name.startswith(prefix) and name.endswith(_SUFFIX)):
                continue
            path = os.path.join(sats_dir, name)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue
            found.append((mtime, name[len(prefix):-len(_SUFFIX)]))
        found.sort(reverse=True)
        result = []
        for _mtime, src_hash in found:
            index = self.get_sat_index(src_hash)
            if index is not None:
                result.append((src_hash, index))
        return result

    def count_index(self, hit):
        """Count one cross-revision discovery attempt against the
        index (``index_hits``/``index_misses``)."""
        self._count("index_hits" if hit else "index_misses")

    # -- maintenance -----------------------------------------------------------

    def clear(self):
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path, _size, _mtime in self._entries():
            if self._unlink(path):
                removed += 1
        self._sweep_stale_temp()
        _unlink_quiet(self._meta_path())
        _unlink_quiet(self._keymap_path())
        for name in _listdir(self.cache_dir):
            _rmdir(os.path.join(self.cache_dir, name))
        with self._lock:
            self._approx_bytes = 0
        return removed

    def stats(self):
        """A snapshot: on-disk shape (programs, entries, bytes, and a
        per-table entry/byte breakdown), this process's
        hit/miss/store/eviction counters, and the cross-process
        ``lifetime`` GC/compaction totals from the ``__sats__/meta``
        sidecar.

        ``tables`` maps table name (``fronthalf``, ``slice``,
        ``feature``, ``feature_clean``, ``proc``, ``sat``, ``idx``,
        ``pds``) to entry count; ``table_bytes`` maps the same names to total
        bytes, so the new ``__sats__`` table (and every other one) is
        observable from ``repro cache stats``.
        """
        entries = self._entries()
        programs = set()
        tables = {}
        table_bytes = {}
        for path, size, _mtime in entries:
            subdir = os.path.basename(os.path.dirname(path))
            if subdir not in _SPECIAL_DIRS:
                programs.add(subdir)
            table = self._entry_table(path)
            tables[table] = tables.get(table, 0) + 1
            table_bytes[table] = table_bytes.get(table, 0) + size
        with self._lock:
            counters = dict(self._counters)
        counters.update(
            cache_dir=self.cache_dir,
            version=STORE_VERSION,
            max_bytes=self.max_bytes,
            programs=len(programs),
            entries=len(entries),
            total_bytes=sum(size for _path, size, _mtime in entries),
            tables=tables,
            table_bytes=table_bytes,
            lifetime=self._read_lifetime(),
        )
        return counters

    # -- internals -------------------------------------------------------------

    def _entry_path(self, src_hash, table, key_digest):
        name = table if key_digest is None else "%s-%s" % (table, key_digest)
        return os.path.join(self.cache_dir, src_hash, name + _SUFFIX)

    def _sat_index_path(self, src_hash):
        return self._entry_path(_SATS_DIR, _SAT_INDEX, src_hash)

    def _meta_path(self):
        return os.path.join(self.cache_dir, _SATS_DIR, _META_NAME)

    @staticmethod
    def _entry_table(path):
        """The stats/tier table an entry file belongs to (``slice``,
        ``sat``, ``idx``, ``fronthalf``, ...)."""
        table = os.path.basename(path).rsplit("-", 1)[0]
        if table.endswith(_SUFFIX):
            table = table[: -len(_SUFFIX)]
        return table

    def _read(self, path):
        """Returns ``(value, ok)``; drops the file on any defect."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None, False
        if len(blob) < _HEADER_LEN or not blob.startswith(MAGIC):
            self._drop_invalid(path)
            return None, False
        (version,) = _VERSION_STRUCT.unpack_from(blob, len(MAGIC))
        if version != STORE_VERSION:
            self._drop_invalid(path)
            return None, False
        offset = len(MAGIC) + _VERSION_STRUCT.size
        digest = blob[offset:_HEADER_LEN]
        payload = blob[_HEADER_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            self._drop_invalid(path)
            return None, False
        try:
            value = pickle.loads(payload)
        except Exception:
            self._drop_invalid(path)
            return None, False
        _touch(path)
        return value, True

    def _has_valid_header(self, path):
        """Cheap existence-plus-plausibility: the file starts with our
        magic and the current version.  The payload checksum is *not*
        read — that stays on the read path — but a truncated, foreign,
        or old-version file correctly reads as absent."""
        want = len(MAGIC) + _VERSION_STRUCT.size
        try:
            with open(path, "rb") as handle:
                head = handle.read(want)
        except OSError:
            return False
        if len(head) < want or not head.startswith(MAGIC):
            return False
        (version,) = _VERSION_STRUCT.unpack_from(head, len(MAGIC))
        return version == STORE_VERSION

    def _write(self, path, value):
        """Atomically write one entry; returns the bytes written, or 0
        when the filesystem refused (ENOSPC, EACCES, read-only dir) —
        the store is an optimization, so a failed write is a counted
        no-op (``write_errors``), never an exception on the query
        path.  Pickling errors (a programming bug) still raise."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            MAGIC
            + _VERSION_STRUCT.pack(STORE_VERSION)
            + hashlib.sha256(payload).digest()
            + payload
        )
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=_TMP_SUFFIX)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp_path, path)
            except BaseException:
                _unlink_quiet(temp_path)
                raise
        except OSError:
            self._count("write_errors")
            return 0
        return len(blob)

    def _drop_invalid(self, path):
        if self._unlink(path):
            self._count("invalid_dropped")

    def _note_written(self, nbytes):
        """Incremental size accounting: a write only triggers the
        O(entries) eviction walk when the running estimate crosses the
        cap (the estimate over-counts overwrites, which merely causes
        an early — and correcting — scan).  A degraded write (0 bytes)
        with a known total is a no-op."""
        with self._lock:
            unknown = self._approx_bytes is None
            over = False
            if not unknown:
                self._approx_bytes += nbytes
                over = self._approx_bytes > self.max_bytes
        if unknown or over:
            self._evict()

    def _evict(self):
        """The compaction walk: sweep stale temp files, GC the
        saturation indexes, and — when over the cap — drop entries in
        recompute-cost order (cheapest tier first, oldest mtime first
        within a tier) until the store fits."""
        self._sweep_stale_temp()
        entries = self._entries()
        self._count("compactions")
        sat_tiers, pruned = self._gc_sat_indexes(entries)
        total = sum(size for _path, size, _mtime in entries)
        evicted = 0
        if total > self.max_bytes:
            entries.sort(key=lambda entry: (self._entry_tier(entry[0], sat_tiers), entry[2]))
            for path, size, _mtime in entries:
                if total <= self.max_bytes:
                    break
                if self._unlink(path):
                    total -= size
                    evicted += 1
                    self._count("evictions")
        with self._lock:
            self._approx_bytes = total
        self._bump_lifetime(compactions=1, evictions=evicted, gc_index_pruned=pruned)

    def _entry_tier(self, path, sat_tiers):
        """The eviction tier of one entry file.  Saturation artifacts
        are classified through the index records (``sat_tiers``: file
        name -> tier); an unindexed artifact defaults to the Poststar
        tier — when in doubt, keep the thing that might cost seconds."""
        table = self._entry_table(path)
        if table == "sat":
            name = os.path.basename(path)[len("sat-"):-len(_SUFFIX)]
            return sat_tiers.get(name, TIER_SAT_POSTSTAR)
        return _TIER_BY_TABLE.get(table, TIER_RESULT)

    def _gc_sat_indexes(self, entries):
        """Prune index records whose artifact file is gone; drop an
        index outright when it has no records left *and* its revision's
        front half is gone too.  Returns ``(sat file name -> tier,
        pruned record count)`` — the classification the evictor needs,
        computed in the same pass."""
        live = set()
        for path, _size, _mtime in entries:
            name = os.path.basename(path)
            if (
                os.path.basename(os.path.dirname(path)) == _SATS_DIR
                and name.startswith("sat-")
            ):
                live.add(name[len("sat-"):-len(_SUFFIX)])
        sat_tiers = {}
        pruned = 0
        dropped_index = False
        for src_hash, index in self.sat_indexes():
            artifacts = index.get("artifacts") or {}
            stale = []
            for key_digest, (_key, kind, _footprint) in artifacts.items():
                file_name = self.sat_name(src_hash, key_digest)
                if file_name in live:
                    sat_tiers[file_name] = (
                        TIER_SAT_PRESTAR if kind == "prestar" else TIER_SAT_POSTSTAR
                    )
                else:
                    stale.append(key_digest)
            for key_digest in stale:
                artifacts.pop(key_digest, None)
            pruned += len(stale)
            if not artifacts and not self.has_program(src_hash):
                # Nothing left to translate and no front half to pair
                # with: the index is dead weight, even if it was
                # already empty before this walk.
                self._unlink(self._sat_index_path(src_hash))
                dropped_index = True
            elif stale:
                # Rewrite directly (no _note_written: we are inside the
                # compaction walk already).
                self._write(self._sat_index_path(src_hash), index)
        if dropped_index:
            # Dead revisions must leave the inverted keymap too, or
            # discovery would keep stat-ing their unlinked indexes.
            with self._index_lock:
                self._rebuild_keymap(self.sat_indexes())
        if pruned:
            with self._lock:
                self._counters["gc_index_pruned"] += pruned
        return sat_tiers, pruned

    def _sweep_stale_temp(self):
        """Remove orphaned ``.tmp`` files (a writer killed between
        mkstemp and the atomic replace) once they are old enough that
        no live writer can still own them."""
        import time

        horizon = time.time() - _TMP_GRACE_SECONDS
        for sub in _listdir(self.cache_dir):
            subdir = os.path.join(self.cache_dir, sub)
            for name in _listdir(subdir):
                if not name.endswith(_TMP_SUFFIX):
                    continue
                path = os.path.join(subdir, name)
                try:
                    stale = os.stat(path).st_mtime < horizon
                except OSError:
                    continue
                if stale:
                    _unlink_quiet(path)

    def _entries(self):
        """All ``(path, size, mtime)`` entry triples currently on disk
        (tolerant of concurrent deletion)."""
        result = []
        for sub in _listdir(self.cache_dir):
            subdir = os.path.join(self.cache_dir, sub)
            for name in _listdir(subdir):
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(subdir, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                result.append((path, status.st_size, status.st_mtime))
        return result

    def _read_lifetime(self):
        """The cross-process lifetime counters (all zero when the meta
        sidecar is missing or unreadable)."""
        value, _ok = self._read(self._meta_path())
        lifetime = {name: 0 for name in _LIFETIME_COUNTERS}
        if isinstance(value, dict):
            for name in _LIFETIME_COUNTERS:
                count = value.get(name)
                if isinstance(count, int):
                    lifetime[name] = count
        return lifetime

    def _bump_lifetime(self, **increments):
        """Fold this walk's eviction/GC work into the persisted
        lifetime counters.  Only walks that actually evicted or pruned
        something write the sidecar — pure scans leave the store's file
        set untouched.  Best-effort read-modify-write: a racing writer
        in another process can cost an increment, and a read-only cache
        dir costs the write — observability only, so both degrade
        silently."""
        if not (increments.get("evictions") or increments.get("gc_index_pruned")):
            return
        lifetime = self._read_lifetime()
        for name, count in increments.items():
            lifetime[name] = lifetime.get(name, 0) + count
        self._write(self._meta_path(), lifetime)

    def _unlink(self, path):
        if _unlink_quiet(path):
            _rmdir(os.path.dirname(path))
            return True
        return False

    def _count(self, name):
        with self._lock:
            self._counters[name] += 1


def _listdir(path):
    try:
        return os.listdir(path)
    except OSError:
        return []


def _touch(path):
    try:
        os.utime(path, None)
    except OSError:
        pass


def _unlink_quiet(path):
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def _rmdir(path):
    """Remove a per-program directory if (and only if) it is empty."""
    try:
        os.rmdir(path)
    except OSError:
        pass
