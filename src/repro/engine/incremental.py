"""Incremental re-slicing: per-procedure content keys and front-half
reuse across source edits.

The session engine's front half — parse, check, SDG build, PDS
encoding, ``Poststar(entry_main)`` — is keyed by whole-source hash, so
historically a one-token edit repaid all of it.  This module makes the
front half assemblable from per-procedure parts and teaches
:class:`~repro.engine.session.SlicingSession` to *update* in place:

* :func:`procedure_keys` content-addresses every procedure by the
  sha256 of its normalized lexeme stream
  (:func:`repro.lang.pretty.pretty_proc` of the checked, lowered AST),
  its own computed interface, the interfaces of its direct callees,
  and a program-level signature (rendered global declarations).  The
  interface captures exactly what the PDG builders consume across
  procedure boundaries — parameter kinds, which ref parameters are
  modified, formal-in/out globals (``MayRef``/``MayMod``/``MustMod``),
  return capture, and ``may_exit`` — so transitive analysis changes
  propagate into keys without diffing graphs.

* :func:`update_session` diffs old and new keys, lifts the unchanged
  procedures' PDGs out of the old graph (re-keyed onto the new parse's
  statement uids — content-key equality makes the ASTs token-identical),
  rebuilds only the changed PDGs via :func:`repro.sdg.assemble_sdg`
  (which numbers the result identically to a cold build), and prunes
  the session memo as a pure function of **artifact footprints**
  (:mod:`repro.engine.artifacts`) — every saturation's ownership
  footprint was emitted when it was created, so the update never
  re-derives procedure ownership from automata:

  - **fast path** — every rebuilt procedure has the same
    :meth:`~repro.sdg.parts.ProcPart.shape_key` as before (label-only
    edits: changed constants, renamed locals, reworded prints): the
    PDS is unchanged, the old encoding and *every* saturation artifact
    are kept (footprints re-addressed onto the new content keys), and
    slice / feature-removal / cleanup results survive whenever their
    footprint avoids every changed procedure;
  - **slow path** — dependence structure changed: the PDS is
    re-encoded, and a saturation artifact is kept (relocated through
    the renumbering maps) only when its footprint avoids every changed
    procedure's content key.  Prestar and feature-cone entries for
    ``contexts="reachable"`` criteria additionally require the shared
    Poststar to have survived, because their query automaton was
    derived from it.  Rendered results are conservatively recomputed
    (cheap: their saturation is the expensive part and it hits).

Why the keep-rule is sound: a saturation can only grow or shrink
through a rule that the edit added or removed, and every such rule
mentions a changed procedure's vertex or a call site in/on a changed
procedure either on its left-hand side or in its right-hand word.  The
first changed rule used in any new derivation therefore needs a
configuration *already accepted by the old automaton* that mentions
one of those symbols — and a footprint disjoint from every changed
procedure's content key means no such symbol is on any accepting path.
(The reachable-contexts caveat exists because those query automata
bake in the old Poststar language, which the footprint cannot see;
they are kept only when the Poststar itself is provably intact.)

With a store attached, every surviving artifact is re-filed into the
``__sats__`` table under the edited text's front-half hash, so the
on-disk saturation cache survives source edits the same way the
content-addressed ``__procs__`` table lets the front half survive
them.
"""

import hashlib
import time
from concurrent.futures import Future

from repro.analysis.callgraph import build_call_graph
from repro.analysis.modref import compute_modref
from repro.engine.artifacts import SaturationArtifact, translate_footprint
from repro.engine.canonical import (
    AUTOMATON,
    CONFIGS,
    REACHABLE_KEY,
    VERTICES,
    is_stable_key,
    stable_key_digest,
)
from repro.lang import check, parse
from repro.lang.pretty import pretty_global, pretty_proc
from repro.pds import encode_sdg
from repro.sdg.parts import ProcPart, extract_part
from repro.sdg.sdg_builder import assemble_sdg
from repro.store import source_hash


# -- the front end -----------------------------------------------------------------


def front_end(source):
    """Parse + check + lower indirect calls.  Returns ``(program,
    info)`` — the AST every content key is computed over (keys must see
    the *lowered* program, so a changed function-pointer target set
    shows up as changed dispatch-procedure text)."""
    program = parse(source)
    info = check(program)
    if info.has_indirect_calls:
        from repro.core import lower_indirect_calls

        program, info = lower_indirect_calls(program, info)
    return program, info


# -- content keys ------------------------------------------------------------------


def program_signature(program):
    """The program-level context a procedure's meaning depends on
    beyond its own text: the global declarations, in order (order
    matters — rendered slices emit globals in declaration order)."""
    return "\n".join(pretty_global(decl) for decl in program.globals)


def interface_signature(name, info, modref, may_exit):
    """Everything callers' PDGs consume about procedure ``name``: the
    shape of its call sites (actual-in/out inventory) and its own
    formal-in/out inventory.  Computed from the whole-program analyses,
    so a transitive side-effect change deep in the call graph changes
    the interfaces along the way up."""
    proc = info.procs[name].proc
    may_mod = modref.may_mod[name]
    return (
        proc.ret,
        tuple(
            (param.kind, param.kind == "ref" and param.name in may_mod)
            for param in proc.params
        ),
        tuple(sorted(modref.ref_in_globals(name, info.global_names))),
        tuple(sorted(modref.mod_out_globals(name, info.global_names))),
        name in may_exit,
    )


def procedure_keys(program, info, call_graph=None, modref=None):
    """Per-procedure content keys: name -> sha256 hex digest.

    A key covers the procedure's normalized lexeme stream, its own
    interface, its direct callees' interfaces (in sorted name order),
    and the program signature.  Two procedures get equal keys exactly
    when their PDGs — vertices, labels, dependences, and call-site
    wiring — are guaranteed identical, so keys are stable across
    whitespace/comment-only edits and across processes, and distinct
    under any semantic edit.
    """
    keys, _call_graph, _modref = keys_and_analyses(program, info, call_graph, modref)
    return keys


def keys_and_analyses(program, info, call_graph=None, modref=None):
    """:func:`procedure_keys` plus the whole-program analyses it
    computed along the way (callers feed them to
    :func:`repro.sdg.assemble_sdg` instead of recomputing)."""
    if call_graph is None:
        call_graph = build_call_graph(program)
    if modref is None:
        modref = compute_modref(program, info, call_graph)
    may_exit = call_graph.may_exit()
    prog_sig = program_signature(program)
    interfaces = {
        proc.name: interface_signature(proc.name, info, modref, may_exit)
        for proc in program.procs
    }
    keys = {}
    for proc in program.procs:
        payload = (
            prog_sig,
            pretty_proc(proc),
            interfaces[proc.name],
            tuple(
                (callee, interfaces[callee])
                for callee in sorted(call_graph.callees(proc.name))
            ),
        )
        keys[proc.name] = hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()
    return keys, call_graph, modref


def session_procedure_keys(session):
    """The (cached) content keys of a session's current front half."""
    if session._proc_keys is None:
        session._proc_keys = procedure_keys(
            session.program,
            session.info,
            getattr(session.sdg, "call_graph", None),
            getattr(session.sdg, "modref", None),
        )
    return session._proc_keys


# -- store-backed cold assembly ----------------------------------------------------


def load_front_half(source, store):
    """Build a front half, assembling per-procedure parts from the
    store's content-addressed table when one is attached.

    Returns ``(program, info, sdg, proc_keys, parts_hit, parts_total)``
    (``proc_keys`` is None without a store — sessions compute keys
    lazily on first update).
    """
    program, info = front_end(source)
    if store is None:
        sdg, _relocations = assemble_sdg(program, info)
        # parts_total 0: no store was consulted, so the stats must not
        # read as "N parts missed".
        return program, info, sdg, None, 0, 0
    keys, call_graph, modref = keys_and_analyses(program, info)
    parts = {}
    for proc in program.procs:
        part = store.get_proc(keys[proc.name])
        if isinstance(part, ProcPart) and part.name == proc.name:
            try:
                # The donor AST is token-identical (same content key);
                # re-key the part onto this parse's statement uids.
                parts[proc.name] = part.retarget_uids(proc)
            except ValueError:
                pass  # defensive: a mismatched part is just a miss
    sdg, _relocations = assemble_sdg(
        program, info, parts, call_graph=call_graph, modref=modref
    )
    for proc in program.procs:
        if proc.name not in parts:
            store.put_proc(keys[proc.name], extract_part(sdg, proc.name))
    return program, info, sdg, keys, len(parts), len(program.procs)


# -- memo remapping ----------------------------------------------------------------
#
# Which procedures a saturation or result can possibly observe is its
# artifact footprint, computed once at creation (repro.engine.artifacts)
# — the update only checks footprint disjointness and renames keys and
# symbols; it never re-trims an automaton to re-derive ownership.


def _remap_criterion_key(key, vid_map, site_map):
    """Rename a canonical criterion key through the relocation maps, or
    return None when it references a rebuilt procedure's symbols (the
    entry then has no counterpart in the new front half)."""
    kind = key[0]
    if kind == VERTICES:
        vids = []
        for vid in key[1]:
            if vid not in vid_map:
                return None
            vids.append(vid_map[vid])
        return (VERTICES, tuple(sorted(vids)), key[2])
    if kind == CONFIGS:
        configs = []
        for vid, context in key[1]:
            if vid not in vid_map:
                return None
            sites = []
            for site in context:
                if site not in site_map:
                    return None
                sites.append(site_map[site])
            configs.append((vid_map[vid], tuple(sites)))
        return (CONFIGS, tuple(sorted(configs)))
    if kind == AUTOMATON:
        transitions = set()
        for (src, symbol, dst) in key[3]:
            if isinstance(symbol, int):
                symbol = vid_map.get(symbol)
            elif isinstance(symbol, str):
                symbol = site_map.get(symbol)
            if symbol is None:
                return None
            transitions.add((src, symbol, dst))
        return (AUTOMATON, key[1], key[2], frozenset(transitions))
    return None


def _needs_poststar(key):
    """Whether a prestar memo key's query automaton was derived from
    the shared Poststar (reachable-contexts vertex criteria): such
    entries bake the old reachable-configuration language into their
    query and may only be kept while that language is provably
    unchanged.  Configuration-set and automaton criteria pin their
    contexts explicitly and are independent of the Poststar."""
    return key[0] == VERTICES and len(key) == 3 and key[2] == "reachable"


# -- cross-revision discovery ------------------------------------------------------
#
# update_session can only re-file surviving artifacts because it holds
# the *old* front half in memory.  A cold process opening edited text
# has no old session — what it has is the store's per-revision
# saturation indexes: each one records, for every artifact filed under
# a revision, the memo key, the saturation kind, and the ownership
# footprint, plus the revision's symbol *layout* (content key -> vertex
# ids and call-site labels in build order).  Discovery replays the
# exact survival check update_session performs, from the index alone:
#
#   footprint ⊆ new revision's content-key set
#     ⟺  footprint ∩ (candidate's keys \ new keys) = ∅
#     ⟺  footprint disjoint from every procedure the "edit" between the
#         two revisions changed or removed
#
# and the renumbering maps come from zipping the two layouts
# positionally (content-key equality makes the procedure ASTs
# token-identical, so the PDG builders emit their vertices and call
# sites in the same order on both sides).  Reachable-contexts Prestar
# entries are additionally gated on the candidate revision's Poststar
# *record* passing the same subset test — proving the baked-in
# reachable language unchanged without loading the Poststar's file.


def _shape_digest(sdg, name):
    """A process-stable digest of a procedure's
    :meth:`~repro.sdg.parts.ProcPart.shape_key` (the frozenset of
    positional edges is sorted first — its iteration order is not
    deterministic across interpreter runs, but its *contents* are)."""
    vertices, edges, entry, formal_ins, formal_outs, sites = extract_part(
        sdg, name
    ).shape_key()
    stable = (vertices, tuple(sorted(edges)), entry, formal_ins, formal_outs, sites)
    return hashlib.sha256(repr(stable).encode("utf-8")).hexdigest()


def session_layout(session):
    """The session's symbol layout, the coordinate system artifacts are
    renumbered through across revisions: one ``(name, content key,
    shape digest, vertex ids, call-site labels)`` entry per procedure,
    in program order, with the ids and labels in PDG build order.
    Cached per revision on the session (layouts are consulted on every
    artifact filing)."""
    cached = getattr(session, "_sat_layout", None)
    if cached is not None and cached[0] == session.source_hash:
        return cached[1]
    keys = session_procedure_keys(session)
    sdg = session.sdg
    layout = tuple(
        (
            proc.name,
            keys[proc.name],
            _shape_digest(sdg, proc.name),
            tuple(sdg.proc_vertices.get(proc.name, ())),
            tuple(sdg.sites_in_proc.get(proc.name, ())),
        )
        for proc in session.program.procs
    )
    session._sat_layout = (session.source_hash, layout)
    return layout


def _layouts_fast_equivalent(old_layout, new_layout):
    """:func:`update_session`'s fast path, replayed from two layouts
    alone: same procedure sequence, every procedure either
    content-identical or shape-identical, and identical numbering
    throughout — which together prove the two revisions' PDS are *the
    same system*, so every saturation transfers verbatim.  Returns the
    content-key translation (old -> new for the label-edited
    procedures), or None when the revisions are not fast-equivalent."""
    if len(old_layout) != len(new_layout):
        return None
    key_translation = {}
    for old_entry, new_entry in zip(old_layout, new_layout):
        try:
            old_name, old_key, old_shape, old_vids, old_sites = old_entry
            new_name, new_key, new_shape, new_vids, new_sites = new_entry
        except (TypeError, ValueError):
            return None
        if old_name != new_name or old_vids != new_vids or old_sites != new_sites:
            return None
        if old_key != new_key:
            if old_shape != new_shape:
                return None
            key_translation[old_key] = new_key
    return key_translation


def _layout_maps(old_layout, new_layout):
    """The ``(vid_map, site_map)`` renumbering between two revisions'
    layouts, covering every procedure whose content key appears in
    both.  None when the layouts disagree about a shared procedure's
    shape — impossible for honestly computed layouts (content-key
    equality fixes the vertex and site counts), so the whole candidate
    revision is distrusted rather than partially mapped."""
    new_by_key = {}
    for entry in new_layout:
        try:
            _name, content_key, _shape, vids, sites = entry
        except (TypeError, ValueError):
            return None
        new_by_key[content_key] = (vids, sites)
    vid_map, site_map = {}, {}
    for entry in old_layout:
        try:
            _name, content_key, _shape, old_vids, old_sites = entry
        except (TypeError, ValueError):
            return None
        new_entry = new_by_key.get(content_key)
        if new_entry is None:
            continue
        new_vids, new_sites = new_entry
        if len(old_vids) != len(new_vids) or len(old_sites) != len(new_sites):
            return None
        vid_map.update(zip(old_vids, new_vids))
        site_map.update(zip(old_sites, new_sites))
    return vid_map, site_map


def _poststar_record_intact(records, poststar_digest, new_key_set):
    """Whether a candidate revision's shared-Poststar *record* proves
    the reachable-configuration language unchanged under the new
    revision: the record exists and its footprint passes the subset
    test.  No artifact file is read."""
    record = records.get(poststar_digest)
    try:
        key, _kind, footprint = record
    except (TypeError, ValueError):
        return False
    return (
        key == REACHABLE_KEY
        and bool(footprint)
        and frozenset(footprint) <= new_key_set
    )


def discover_artifacts(session):
    """Adopt saturation artifacts filed under *other* revisions of this
    session's program, with no live donor session.

    Runs at session creation when a store is attached.  Skips instantly
    when this revision's own index already records a shared Poststar
    (the warm-reopen hot path: everything expensive is directly
    addressable).  Otherwise scans the store's saturation indexes,
    newest revision first, and for every record whose footprint is a
    subset of this revision's content keys: renumbers the memo key and
    the automaton through the two layouts, installs the survivor in the
    session memo, and re-files it (artifact + index record) under this
    revision's hash — so the adoption is paid once per edit, not once
    per process.  Adoptions count as ``index_hits`` on the store (and
    ``sats_adopted`` on the session); records whose artifact file was
    evicted or corrupted count as ``index_misses``.

    Returns the number of artifacts adopted.
    """
    store = session.store
    new_hash = session.source_hash
    poststar_digest = stable_key_digest(REACHABLE_KEY)
    own = store.get_sat_index(new_hash)
    if own is not None and poststar_digest in (own.get("artifacts") or {}):
        return 0
    t0 = time.perf_counter()
    new_keys = session_procedure_keys(session)
    new_key_set = frozenset(new_keys.values())
    new_layout = session_layout(session)
    adopted_records = {}
    adopted = 0
    # The inverted keymap narrows the scan to revisions that can
    # possibly donate — sharing a content key (footprint-subset
    # adoption needs one) or the full layout shape signature
    # (fast-equivalent label edits may share none) — so discovery
    # stays O(changed keys) however many revisions the store holds.
    candidates = store.sat_indexes_for(
        new_key_set, store.layout_signature(new_layout)
    )
    for src_hash, index in candidates:
        if src_hash == new_hash:
            continue
        records = index.get("artifacts") or {}
        if not records:
            continue
        old_layout = index.get("layout") or ()
        # Fast equivalence (a label-only edit between the revisions:
        # same shapes, same numbering => same PDS): every record
        # transfers verbatim, footprints re-addressed.  Otherwise fall
        # back to per-record footprint-subset survival — the same check
        # update_session's slow path runs, replayed from the index.
        translation = _layouts_fast_equivalent(old_layout, new_layout)
        maps = None  # built lazily, once per candidate revision
        poststar_ok = None
        for key_digest in sorted(records):
            try:
                key, _kind, footprint = records[key_digest]
            except (TypeError, ValueError):
                continue
            if translation is None:
                footprint = frozenset(footprint or ())
                if not footprint or not footprint <= new_key_set:
                    continue
                if maps is None:
                    maps = _layout_maps(old_layout, new_layout)
                    if maps is None:
                        break
                vid_map, site_map = maps
                if key == REACHABLE_KEY:
                    new_key = REACHABLE_KEY
                elif isinstance(key, tuple) and len(key) == 2:
                    if _needs_poststar(key[1]):
                        # Reachable-contexts queries bake in the donor's
                        # Poststar language; its *record* passing the
                        # subset test proves the language unchanged.
                        if poststar_ok is None:
                            poststar_ok = _poststar_record_intact(
                                records, poststar_digest, new_key_set
                            )
                        if not poststar_ok:
                            continue
                    inner = _remap_criterion_key(key[1], vid_map, site_map)
                    if inner is None:
                        continue
                    new_key = (key[0], inner)
                else:
                    continue
            else:
                new_key = key
            if not is_stable_key(new_key):
                continue
            new_digest = stable_key_digest(new_key)
            if new_digest in adopted_records:
                continue  # a newer revision already supplied this key
            with session._lock:
                if ("saturation", new_key) in session._futures:
                    continue
            artifact = store.get_sat(src_hash, key_digest)
            if not isinstance(artifact, SaturationArtifact) or artifact.key != key:
                # Stale record: the artifact file was evicted (or
                # corrupted) out from under its index entry.  The next
                # compaction walk GCs the record.
                store.count_index(False)
                continue
            if translation is not None:
                survivor = artifact.translated(translation)
            else:
                # Footprint keys are, by the subset test, unchanged
                # between the revisions — the content-key translation
                # is identity.
                survivor = artifact.relocated(new_key, vid_map, site_map, {})
            if survivor.footprint is None:
                continue
            session._install("saturation", new_key, survivor)
            if not store.has_sat(new_hash, new_digest):
                store.put_sat(new_hash, new_digest, survivor)
            adopted_records[new_digest] = (
                new_key,
                survivor.kind,
                tuple(sorted(survivor.footprint)),
            )
            store.count_index(True)
            adopted += 1
    if adopted_records:
        store.merge_sat_index(new_hash, layout=new_layout, records=adopted_records)
    with session._lock:
        session._stats["sats_adopted"] += adopted
        session._stats["discovery_seconds"] += time.perf_counter() - t0
    return adopted


# -- the update itself -------------------------------------------------------------


def update_session(session, new_source):
    """Re-point ``session`` at ``new_source``, reusing everything the
    edit provably left intact.  Raises (leaving the session untouched)
    if the new text does not parse or check.  Returns a summary dict
    (also stored as ``session.last_update``)."""
    if session.source is None:
        raise ValueError("update_source needs a session built from source text")
    t0 = time.perf_counter()
    new_hash = source_hash(new_source)
    if new_hash == session.source_hash:
        return _finish(session, t0, fast=True, noop=True)

    # Front end on the new text; any error propagates before the
    # session is touched.
    program, info = front_end(new_source)
    new_keys, call_graph, modref = keys_and_analyses(program, info)
    old_keys = session_procedure_keys(session)
    old_names = [proc.name for proc in session.program.procs]
    new_names = [proc.name for proc in program.procs]
    kept = set(
        name
        for name in new_names
        if name in old_keys and old_keys[name] == new_keys[name]
    )
    changed = [name for name in new_names if name not in kept]
    new_name_set = set(new_names)
    removed = [name for name in old_names if name not in new_name_set]

    # Lift the unchanged procedures' PDGs out of the old graph and
    # re-key them onto the new parse (token-identical by content key).
    old_sdg = session.sdg
    parts = {}
    for name in list(kept):
        try:
            parts[name] = extract_part(old_sdg, name).retarget_uids(
                program.proc(name)
            )
        except ValueError:  # defensive: rebuild rather than trust a bad part
            kept.discard(name)
            changed.append(name)
    new_sdg, relocations = assemble_sdg(
        program, info, parts, call_graph=call_graph, modref=modref
    )

    # Fast path: same procedure sequence (which rules out removals) and
    # every rebuilt procedure kept its dependence shape => the new PDS
    # is the old PDS.
    fast = new_names == old_names
    if fast:
        for name in changed:
            old_shape = extract_part(old_sdg, name).shape_key()
            if old_shape != extract_part(new_sdg, name).shape_key():
                fast = False
                break
    vid_map, site_map = {}, {}
    for part_vid_map, part_site_map in relocations.values():
        vid_map.update(part_vid_map)
        site_map.update(part_site_map)
    if fast:
        # Shape equality in program order implies identical numbering;
        # verify rather than assume.
        fast = all(old == new for old, new in vid_map.items()) and all(
            old == new for old, new in site_map.items()
        )

    if fast:
        encoding = session.encoding
        encoding.sdg = new_sdg
        new_sdg._pds_encoding = encoding
    else:
        encoding = encode_sdg(new_sdg)

    # The edit, expressed in footprint space: the old content keys of
    # every procedure the edit rebuilt or removed (a brand-new
    # procedure has no old key, but adding one edits its caller, whose
    # old key is here).  Survivors re-address their footprints through
    # the key translation — the procedures whose text (and key)
    # changed while staying shape-identical on the fast path.
    changed_content_keys = frozenset(
        old_keys[name]
        for name in list(changed) + list(removed)
        if name in old_keys
    )
    key_translation = {
        old_keys[name]: new_keys[name]
        for name in old_keys
        if name in new_keys and old_keys[name] != new_keys[name]
    }
    new_futures, counts = _prune_memo(
        session,
        new_sdg,
        encoding,
        fast,
        changed_content_keys,
        key_translation,
        vid_map,
        site_map,
    )

    with session._lock:
        old_hash = session.source_hash
        session.source = new_source
        session.source_hash = new_hash
        session.program = program
        session.info = info
        session.sdg = new_sdg
        session.encoding = encoding
        session._proc_keys = new_keys
        session._futures = new_futures
        session._stats["updates"] += 1
        session._stats["procs_reused"] += len(kept)
        session._stats["procs_rebuilt"] += len(changed)
        session._batch_queries.clear()
        for name, value in counts.items():
            session._stats[name] += value

    # Re-pin the compiled PDS: on the fast path the encoding object is
    # unchanged and this is a counted cache hit; otherwise the new
    # encoding compiles here, once, instead of inside the first
    # saturation after the edit.
    session._hold_compiled()

    if session.store is not None:
        if not session.store.has_program(new_hash):
            # Persist the bundle the way a cold build would: without
            # the Poststar (or its query view) cached on the encoding —
            # saturations are first-class ``__sats__`` entries now and
            # would bloat the bundle on the editor-loop hot path.
            reachable = encoding.__dict__.pop("_reachable_configs", None)
            view = encoding.__dict__.pop("_reachable_view", None)
            try:
                session.store.put_program(new_hash, new_sdg)
            finally:
                if reachable is not None:
                    encoding._reachable_configs = reachable
                if view is not None:
                    encoding._reachable_view = view
        for name in changed:
            session.store.put_proc(new_keys[name], extract_part(new_sdg, name))
        # Footprint-aware store survival: re-file every surviving
        # artifact under the edited text's front-half hash, so a fresh
        # process opening the new text finds its saturations warm —
        # composing with the __procs__ partial front-half hits.
        # Existence-gated like the bundle above: an undo/redo loop
        # returning to already-seen text skips the re-serialization.
        sat_records = {}
        for (cache_kind, memo_key), future in new_futures.items():
            if cache_kind == "saturation" and is_stable_key(memo_key):
                digest = stable_key_digest(memo_key)
                artifact = future.result()
                if not session.store.has_sat(new_hash, digest):
                    session.store.put_sat(new_hash, digest, artifact)
                if artifact.footprint is not None:
                    sat_records[digest] = (
                        memo_key,
                        artifact.kind,
                        tuple(sorted(artifact.footprint)),
                    )
        if sat_records:
            # The per-revision saturation index (layout + records) is
            # what lets a cold process discover these artifacts later
            # (see discover_artifacts).
            session.store.merge_sat_index(
                new_hash, layout=session_layout(session), records=sat_records
            )

    import repro

    repro._session_rekeyed(session, old_hash)
    return _finish(
        session,
        t0,
        fast=fast,
        noop=False,
        procs_reused=len(kept),
        procs_rebuilt=len(changed),
        procs_removed=len(removed),
        **counts
    )


def _completed(value):
    future = Future()
    future.set_result(value)
    return future


def _prune_memo(
    session, new_sdg, encoding, fast, changed_keys, key_translation, vid_map, site_map
):
    """Decide, entry by entry, what survives the update — a pure
    function of the artifact footprints the entries were created with
    (no automaton is trimmed or inspected here).  Returns the new
    futures table and the kept/dropped counters."""
    with session._lock:
        snapshot = dict(session._futures)
    new_futures = {}
    counts = {
        "saturations_kept": 0,
        "saturations_dropped": 0,
        "results_kept": 0,
        "results_dropped": 0,
    }
    kept_result_keys = {"slice": set(), "feature": set()}
    poststar_kept = False

    def done(future):
        return future.done() and future.exception() is None

    # Saturation artifacts first: the Poststar verdict gates every
    # reachable-contexts entry, and result survival gates the
    # executable/cleanup tables.
    saturations = [
        (key, future)
        for (cache_kind, key), future in snapshot.items()
        if cache_kind == "saturation" and done(future)
    ]
    saturations.sort(key=lambda item: item[0] != REACHABLE_KEY)
    for key, future in saturations:
        artifact = future.result()
        if fast:
            # The PDS is unchanged, so every saturation is still exact;
            # only the footprint addressing moves to the new content
            # keys of the label-edited procedures.
            new_futures[("saturation", key)] = _completed(
                artifact.translated(key_translation)
            )
            counts["saturations_kept"] += 1
            if key == REACHABLE_KEY:
                poststar_kept = True
            continue
        if key == REACHABLE_KEY:
            if not artifact.survives(changed_keys):
                counts["saturations_dropped"] += 1
                continue
            survivor = artifact.relocated(key, vid_map, site_map, key_translation)
            # The criterion constructors read the shared Poststar off
            # the encoding (as its query view); transplant the survivor.
            encoding._reachable_configs = survivor.automaton
            encoding._reachable_view = survivor.automaton
            poststar_kept = True
            new_key = key
        else:
            if _needs_poststar(key[1]) and not poststar_kept:
                # Reachable-contexts query automata bake in the old
                # Poststar language; without it the entry is
                # unverifiable (an edit can create contexts that an
                # empty or narrow cone never witnessed).
                counts["saturations_dropped"] += 1
                continue
            inner = _remap_criterion_key(key[1], vid_map, site_map)
            if inner is None or not artifact.survives(changed_keys):
                counts["saturations_dropped"] += 1
                continue
            new_key = (key[0], inner)
            survivor = artifact.relocated(new_key, vid_map, site_map, key_translation)
        new_futures[("saturation", new_key)] = _completed(survivor)
        counts["saturations_kept"] += 1

    for (cache_kind, key), future in snapshot.items():
        if cache_kind not in ("slice", "feature") or not done(future):
            continue
        value = future.result()
        footprint = getattr(value, "footprint", None)
        if fast and footprint is not None and footprint.isdisjoint(changed_keys):
            # The result's whole cone lies in unchanged procedures: the
            # result (and its rendered text) is still exact.  Re-point
            # its front-half references at the new graph.  Feature
            # removals qualify too — their footprint is the *kept*
            # cone, and on the fast path the kept language itself is
            # unchanged (same PDS, same query), so only edits the
            # residual program could render matter.
            value.source_sdg = new_sdg
            value.encoding = encoding
            value.footprint = translate_footprint(footprint, key_translation)
            new_futures[(cache_kind, key)] = future
            kept_result_keys[cache_kind].add(key)
            counts["results_kept"] += 1
        else:
            counts["results_dropped"] += 1

    for (cache_kind, key), future in snapshot.items():
        if not done(future):
            continue
        if cache_kind == "executable":
            # Rides its slice's fate; not counted separately (the
            # results_* counters tally logical results).
            if key in kept_result_keys["slice"]:
                new_futures[(cache_kind, key)] = future
        elif cache_kind == "feature_clean":
            # The §7 cleanup pair rides its feature removal's fate.
            if key in kept_result_keys["feature"]:
                new_futures[(cache_kind, key)] = future
                counts["results_kept"] += 1
            else:
                counts["results_dropped"] += 1

    return new_futures, counts


def _finish(session, t0, fast, noop, **extra):
    summary = {
        "noop": noop,
        "fast_path": fast,
        "procs_reused": extra.pop("procs_reused", len(session.program.procs)),
        "procs_rebuilt": extra.pop("procs_rebuilt", 0),
        "procs_removed": extra.pop("procs_removed", 0),
        "saturations_kept": extra.pop("saturations_kept", 0),
        "saturations_dropped": extra.pop("saturations_dropped", 0),
        "results_kept": extra.pop("results_kept", 0),
        "results_dropped": extra.pop("results_dropped", 0),
        "update_seconds": time.perf_counter() - t0,
    }
    summary.update(extra)
    session.last_update = summary
    return summary
