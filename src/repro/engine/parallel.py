"""Multi-program batch slicing: one worker per program.

:meth:`SlicingSession.slice_many` parallelizes criteria *within* one
program; this module parallelizes *across* programs — the corpus-
inspection shape (run every criterion of every file in a project)
where process-level parallelism pays off most, because the per-program
front half and saturations are completely independent and the GIL is
the only thing serializing them on the thread backend.

``slice_many_programs`` takes ``(source, criteria)`` jobs and returns
one result list per job, in order.  With ``cache_dir`` set, every
worker — thread or process — reads and writes the shared persistent
:class:`repro.store.SliceStore`: a warm corpus batch is answered from
disk without any saturation work, and even a half-warm one loads each
program's ``Poststar(entry_main)`` artifact from the shared
``__sats__`` table instead of re-saturating it per worker.
"""

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.engine.session import SlicingSession


def slice_many_programs(
    jobs, contexts="reachable", backend="thread", max_workers=None, cache_dir=None
):
    """Slice a batch of programs.

    Args:
        jobs: iterable of ``(source, criteria)`` pairs — TinyC source
            text plus the criterion specs to slice it by (any spec form
            :mod:`repro.engine.canonical` accepts, as long as it
            pickles for the process backend; ``("print", i)`` tuples
            and vertex-id tuples are the usual shapes).
        contexts: completes vertex criteria (``"reachable"``/``"empty"``).
        backend: ``"thread"`` or ``"process"`` — what kind of worker
            handles each program.
        max_workers: pool size (default: ``min(len(jobs), cpu_count)``).
        cache_dir: optional persistent-store directory shared by all
            workers.

    Returns:
        a list of lists of :class:`SpecializationResult`, one inner
        list per job, in input order.
    """
    jobs = [(source, list(criteria)) for source, criteria in jobs]
    if not jobs:
        return []
    if backend not in ("thread", "process"):
        raise ValueError("backend must be 'thread' or 'process'")
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 1)
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_slice_one_program, source, criteria, contexts, cache_dir)
            for source, criteria in jobs
        ]
    return [future.result() for future in futures]


def _slice_one_program(source, criteria, contexts, cache_dir):
    """One worker's whole job: build or store-load the session, then
    slice every criterion through the batch driver (the process-level
    parallelism is across programs; within one program the ``csr``
    kernel's fused saturation pass covers the whole criterion batch in
    a single worklist run)."""
    store = None
    if cache_dir is not None:
        from repro.store import SliceStore

        store = SliceStore(cache_dir)
    session = SlicingSession(source, store=store)
    return session.slice_many(criteria, contexts=contexts, max_workers=1)
