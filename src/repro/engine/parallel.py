"""Multi-program batch slicing: one worker per program.

:meth:`SlicingSession.slice_many` parallelizes criteria *within* one
program; this module parallelizes *across* programs — the corpus-
inspection shape (run every criterion of every file in a project)
where process-level parallelism pays off most, because the per-program
front half and saturations are completely independent and the GIL is
the only thing serializing them on the thread backend.

``slice_many_programs`` takes ``(source, criteria)`` jobs and returns
one result list per job, in order.  With ``cache_dir`` set, every
worker — thread or process — reads and writes the shared persistent
:class:`repro.store.SliceStore`: a warm corpus batch is answered from
disk without any saturation work, and even a half-warm one loads each
program's ``Poststar(entry_main)`` artifact from the shared
``__sats__`` table instead of re-saturating it per worker.

Each worker is *batch-aware*: on the ``csr`` kernel its program's cold
criteria saturate in one fused multi-criterion kernel pass (the
:meth:`~SlicingSession.slice_many` fused path), so a job costs one
front half plus one worklist run, not one per criterion.  Jobs are
submitted **largest first** — source length is the cheap proxy for
front-half size — so the most expensive program starts immediately
instead of landing on an almost-drained pool and stretching the
straggler tail; results still come back in input order.
"""

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.engine.session import SlicingSession


class ProgramSliceError(RuntimeError):
    """A job of :func:`slice_many_programs` failed.  Carries which one:
    ``job_index`` (the job's position in the input batch) and
    ``source_digest`` (sha256 prefix of its source text) identify the
    program without dumping corpus text into the traceback; the
    original exception rides along as ``__cause__``."""

    def __init__(self, job_index, source_digest, cause):
        super(ProgramSliceError, self).__init__(
            "slice_many_programs job %d (source sha256 %s) failed: %s"
            % (job_index, source_digest, cause)
        )
        self.job_index = job_index
        self.source_digest = source_digest


def slice_many_programs(
    jobs,
    contexts="reachable",
    backend="thread",
    max_workers=None,
    cache_dir=None,
    kernel=None,
    batch_saturation=None,
):
    """Slice a batch of programs.

    Args:
        jobs: iterable of ``(source, criteria)`` pairs — TinyC source
            text plus the criterion specs to slice it by (any spec form
            :mod:`repro.engine.canonical` accepts, as long as it
            pickles for the process backend; ``("print", i)`` tuples
            and vertex-id tuples are the usual shapes).
        contexts: completes vertex criteria (``"reachable"``/``"empty"``).
        backend: ``"thread"`` or ``"process"`` — what kind of worker
            handles each program.
        max_workers: pool size (default: ``min(len(jobs), cpu_count)``).
        cache_dir: optional persistent-store directory shared by all
            workers.
        kernel: saturation kernel for every worker session
            (:mod:`repro.kernelcfg`; default the ``REPRO_KERNEL`` knob).
        batch_saturation: fused-saturation mode for each worker's
            criterion batch (``auto``/``on``/``off``; default the
            ``REPRO_BATCH_SATURATION`` knob).

    Returns:
        a list of lists of :class:`SpecializationResult`, one inner
        list per job, in input order.

    Raises:
        ProgramSliceError: when any job fails — after every job has
            settled (a failing program never cancels its siblings' work
            mid-flight), naming the failing job's index and source
            digest, with the worker's exception as ``__cause__``.
    """
    jobs = [(source, list(criteria)) for source, criteria in jobs]
    if not jobs:
        return []
    if backend not in ("thread", "process"):
        raise ValueError("backend must be 'thread' or 'process'")
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 1)
    # Largest front half first (source length is the proxy: front-half
    # cost tracks program size far better than criterion count).  With
    # more jobs than workers this kills the straggler tail — the big
    # program overlaps everything else instead of starting last.
    order = sorted(
        range(len(jobs)), key=lambda i: len(jobs[i][0]), reverse=True
    )
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    futures = {}
    with pool_cls(max_workers=max_workers) as pool:
        for i in order:
            source, criteria = jobs[i]
            futures[i] = pool.submit(
                _slice_one_program,
                source,
                criteria,
                contexts,
                cache_dir,
                kernel,
                batch_saturation,
            )
        # Settle every job before raising: ``pool.shutdown`` inside the
        # context manager waits for all of them, so sibling results (and
        # their store writes) complete even when one program fails.
    results = []
    failure = None
    for i in range(len(jobs)):
        try:
            results.append(futures[i].result())
        except Exception as exc:
            results.append(None)
            if failure is None:
                digest = hashlib.sha256(
                    jobs[i][0].encode("utf-8")
                ).hexdigest()[:12]
                failure = ProgramSliceError(i, digest, exc)
                failure.__cause__ = exc
    if failure is not None:
        raise failure
    return results


def _slice_one_program(
    source, criteria, contexts, cache_dir, kernel=None, batch_saturation=None
):
    """One worker's whole job: build or store-load the session, then
    slice every criterion through the batch driver (the process-level
    parallelism is across programs; within one program the ``csr``
    kernel's fused saturation pass covers the whole criterion batch in
    a single worklist run)."""
    store = None
    if cache_dir is not None:
        from repro.store import SliceStore

        store = SliceStore(cache_dir)
    session = SlicingSession(source, store=store, kernel=kernel)
    # backend is pinned: this already *is* the worker — letting the
    # REPRO_SLICE_BACKEND knob leak in here would nest a process pool
    # inside each process-pool worker.
    return session.slice_many(
        criteria,
        contexts=contexts,
        max_workers=1,
        backend="thread",
        batch_saturation=batch_saturation,
    )
