"""The batched slicing engine (load a program once, serve many criteria).

* :mod:`repro.engine.session` — :class:`SlicingSession`: shared
  parse/SDG/encoding/saturation, per-criterion memoization, optional
  persistent-store backing, and the ``slice_many`` batch driver with
  thread and process backends.
* :mod:`repro.engine.artifacts` — :class:`SaturationArtifact`: the
  relocatable (trimmed automaton + canonical key + per-procedure
  ownership footprint) form every saturation takes — the single
  representation shared by the session memo, the store's ``__sats__``
  table, process-pool workers, and incremental invalidation.
* :mod:`repro.engine.canonical` — canonical cache keys for criterion
  specs and saturations, plus the stable digests the on-disk store
  names entries by.
* :mod:`repro.engine.incremental` — per-procedure content keys and the
  :meth:`SlicingSession.update_source` machinery: after a source edit,
  only changed procedures are rebuilt and memo entries are invalidated
  as a pure function of artifact footprints; plus
  :func:`discover_artifacts`, the cold-process counterpart that adopts
  saturations filed under *other* revisions via the store's per-revision
  footprint indexes.
* :mod:`repro.engine.parallel` — :func:`slice_many_programs`, the
  multi-program batch driver (one worker per program).

Most users reach this through :func:`repro.open_session`.
"""

from repro.engine.artifacts import SaturationArtifact, artifact_footprint
from repro.engine.canonical import (
    PRINTS,
    REACHABLE_KEY,
    automaton_key,
    canonical_key,
    is_stable_key,
    resolve_criterion_spec,
    saturation_key,
    stable_key_digest,
)
from repro.engine.incremental import discover_artifacts, procedure_keys
from repro.engine.parallel import ProgramSliceError, slice_many_programs
from repro.engine.session import SlicingSession

__all__ = [
    "PRINTS",
    "ProgramSliceError",
    "REACHABLE_KEY",
    "SaturationArtifact",
    "SlicingSession",
    "artifact_footprint",
    "automaton_key",
    "canonical_key",
    "discover_artifacts",
    "is_stable_key",
    "procedure_keys",
    "resolve_criterion_spec",
    "saturation_key",
    "slice_many_programs",
    "stable_key_digest",
]
