"""The batched slicing engine (load a program once, serve many criteria).

* :mod:`repro.engine.session` — :class:`SlicingSession`: shared
  parse/SDG/encoding/saturation, per-criterion memoization, and the
  ``slice_many`` batch driver.
* :mod:`repro.engine.canonical` — canonical cache keys for criterion
  specs.

Most users reach this through :func:`repro.open_session`.
"""

from repro.engine.canonical import (
    PRINTS,
    automaton_key,
    canonical_key,
    resolve_criterion_spec,
)
from repro.engine.session import SlicingSession

__all__ = [
    "PRINTS",
    "SlicingSession",
    "automaton_key",
    "canonical_key",
    "resolve_criterion_spec",
]
