"""The batched slicing engine (load a program once, serve many criteria).

* :mod:`repro.engine.session` — :class:`SlicingSession`: shared
  parse/SDG/encoding/saturation, per-criterion memoization, optional
  persistent-store backing, and the ``slice_many`` batch driver with
  thread and process backends.
* :mod:`repro.engine.canonical` — canonical cache keys for criterion
  specs, plus the stable digests the on-disk store names entries by.
* :mod:`repro.engine.incremental` — per-procedure content keys and the
  :meth:`SlicingSession.update_source` machinery: after a source edit,
  only changed procedures are rebuilt and only the saturations their
  PDS rules touch are invalidated.
* :mod:`repro.engine.parallel` — :func:`slice_many_programs`, the
  multi-program batch driver (one worker per program).

Most users reach this through :func:`repro.open_session`.
"""

from repro.engine.canonical import (
    PRINTS,
    automaton_key,
    canonical_key,
    is_stable_key,
    resolve_criterion_spec,
    stable_key_digest,
)
from repro.engine.incremental import procedure_keys
from repro.engine.parallel import slice_many_programs
from repro.engine.session import SlicingSession

__all__ = [
    "PRINTS",
    "SlicingSession",
    "automaton_key",
    "canonical_key",
    "is_stable_key",
    "procedure_keys",
    "resolve_criterion_spec",
    "slice_many_programs",
    "stable_key_digest",
]
