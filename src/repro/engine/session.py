"""The batched slicing engine: one program, many criteria.

Algorithm 1 is a pipeline whose front half (parse, check, SDG build,
PDS encoding, and the Poststar reachable-configurations saturation) is
criterion-independent; only Prestar, the MRD automaton operations, and
the read-out depend on the query.  :class:`SlicingSession` loads a
program once and serves arbitrarily many criteria against the shared
front half:

* the parsed program, semantic info, SDG, and :class:`SDGEncoding` are
  built once at session creation — or loaded from the persistent
  :class:`repro.store.SliceStore` when one is attached and warm;
* every saturation — the shared ``Poststar(entry_main)``, each
  per-criterion Prestar, each feature's forward-cone Poststar — is
  memoized as a relocatable
  :class:`repro.engine.artifacts.SaturationArtifact` (trimmed
  automaton + canonical key + per-procedure ownership footprint), the
  one representation the memo, the store's ``__sats__`` table, the
  process backend, and the incremental layer all share;
* full :class:`SpecializationResult`s, feature removals, and the §7
  cleanup pass are memoized per canonicalized criterion (see
  :mod:`repro.engine.canonical`), so resubmitting a criterion is a
  dictionary lookup;
* with a store attached, slice / feature / cleanup results *and*
  saturation artifacts are persisted on disk under the same canonical
  keys (digested by :func:`repro.engine.canonical.stable_key_digest`),
  so a fresh process answering a repeated batch does no saturation
  work at all — and one answering a *new* criterion against a warm
  front half loads the Poststar artifact instead of re-saturating;
* :meth:`SlicingSession.slice_many` fans independent criteria out over
  a thread pool (``backend="thread"``, sharing the read-only encoding)
  or a process pool (``backend="process"``, each worker rebuilding or
  store-loading the front half once and computing true CPU-parallel
  slices), deduplicating identical criteria either way; warm
  saturation artifacts are shipped to the workers so none of them
  re-saturates what the parent already knows;
* :meth:`SlicingSession.update_source` re-points the session at an
  edited text in place: per-procedure content keys decide which PDGs
  are rebuilt, and memo entries are invalidated as a pure function of
  artifact footprints (see :mod:`repro.engine.incremental`).

Sessions are thread-safe: the memo tables hold one future per key, so
concurrent submissions of the same criterion compute it exactly once.
"""

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from repro import kernelcfg
from repro.core.criteria import configs_criterion
from repro.core.executable import executable_program
from repro.core.specialize import resolve_criterion, specialization_slice
from repro.engine.artifacts import SaturationArtifact, make_artifact
from repro.engine.canonical import (
    AUTOMATON,
    CONFIGS,
    PRINTS,
    REACHABLE_KEY,
    SAT_POSTSTAR,
    SAT_PRESTAR,
    VERTICES,
    canonical_key,
    is_stable_key,
    resolve_criterion_spec,
    saturation_key,
    stable_key_digest,
)
from repro.pds import encode_sdg, poststar, poststar_many, prestar, prestar_many
from repro.store import source_hash as _source_hash

#: memo tables whose values are persisted when a store is attached
#: (saturation artifacts are persisted too, through the store's
#: dedicated ``__sats__`` table rather than the per-program one)
PERSISTED_TABLES = frozenset(["slice", "feature", "feature_clean"])


class SlicingSession(object):
    """A long-lived slicing engine over one program.

    Construct from TinyC source (``SlicingSession(source)``) or from an
    already-built SDG (``SlicingSession.for_sdg(sdg)``).  All query
    methods are memoized and thread-safe.

    Pass ``store`` (a :class:`repro.store.SliceStore`) to read and
    write the persistent cache: the front half is loaded from disk when
    warm, and slice/feature results are stored under their canonical
    criterion keys.  Store-less sessions behave exactly as before.

    Attributes:
        source: the source text, or None when built from an SDG.
        source_hash: sha256 of the source text (the store's program
            key), or None.
        store: the attached :class:`SliceStore`, or None.
        program / info / sdg / encoding: the shared front half.
        kernel: the saturation/automaton kernel every query runs on
            (:mod:`repro.kernelcfg`; default the ``REPRO_KERNEL``
            environment knob).  Kernels are byte-identical, so this
            never affects results, memo keys, or store entries — only
            speed and the ``kernel_*`` counters in :attr:`stats`.
    """

    def __init__(
        self,
        source=None,
        program=None,
        info=None,
        sdg=None,
        store=None,
        kernel=None,
        compiled_payload=None,
    ):
        t0 = time.perf_counter()
        self.store = store
        self.kernel = kernelcfg.resolve_kernel(kernel)
        self.source_hash = None
        self._proc_keys = None  # per-procedure content keys, computed lazily
        self.last_update = None  # summary of the most recent update_source
        front_half_cached = False
        parts_hit, parts_total = 0, 0
        if source is not None:
            self.source_hash = _source_hash(source)
            if sdg is None and store is not None:
                cached = store.get_program(self.source_hash)
                if cached is not None:
                    sdg = cached
                    program, info = cached.program, cached.info
                    front_half_cached = True
            if sdg is None:
                from repro.engine.incremental import load_front_half

                # With a store attached this assembles the front half
                # from content-addressed per-procedure parts where warm
                # (a partial hit even when the whole-program bundle
                # misses); storeless it is a plain cold build.
                (
                    program,
                    info,
                    sdg,
                    self._proc_keys,
                    parts_hit,
                    parts_total,
                ) = load_front_half(source, store)
        if sdg is None:
            raise ValueError("SlicingSession needs source text or an SDG")
        self.source = source
        self.program = program if program is not None else sdg.program
        self.info = info if info is not None else sdg.info
        self.sdg = sdg
        self.encoding = encode_sdg(sdg)
        if store is not None and self.source_hash is not None and not front_half_cached:
            # Persist after encoding so the bundle includes the PDS
            # (encode_sdg caches it on the graph, and SDG.__getstate__
            # keeps it).
            store.put_program(self.source_hash, sdg)
        self._lock = threading.Lock()
        self._futures = {}  # (cache kind, criterion key) -> Future
        # Query automata built by a fused batch pass, stashed for the
        # per-criterion slice compute so criterion construction runs
        # exactly once per criterion (CONFIGS criteria mint fresh query
        # states per construction; the saturation and the read-out must
        # see the same automaton object, as the sequential path does).
        self._batch_queries = {}  # saturation key -> (encoding, automaton)
        self._stats = {
            "kernel": self.kernel,
            "kernel_rules_compiled": 0,
            "kernel_worklist_pops": 0,
            "kernel_compile_hits": 0,
            "kernel_compile_misses": 0,
            "pds_payload_hits": 0,
            "pds_payload_misses": 0,
            "fused_batches": 0,
            "fused_criteria": 0,
            "fused_process_batches": 0,
            "fused_process_subbatch_sizes": (),
            "load_seconds": time.perf_counter() - t0,
            "front_half_from_store": front_half_cached,
            "front_half_parts_hits": parts_hit,
            "front_half_parts_total": parts_total,
            "updates": 0,
            "procs_reused": 0,
            "procs_rebuilt": 0,
            "saturations_kept": 0,
            "saturations_dropped": 0,
            "results_kept": 0,
            "results_dropped": 0,
            "slice_hits": 0,
            "slice_misses": 0,
            "saturation_hits": 0,
            "saturation_misses": 0,
            "feature_hits": 0,
            "feature_misses": 0,
            "feature_clean_hits": 0,
            "feature_clean_misses": 0,
            "executable_hits": 0,
            "executable_misses": 0,
            "persist_hits": 0,
            "persist_misses": 0,
            "sat_persist_hits": 0,
            "sat_persist_misses": 0,
            "sats_adopted": 0,
            "discovery_seconds": 0.0,
        }
        self._hold_compiled(compiled_payload)
        if store is not None and self.source_hash is not None:
            # Cross-revision discovery: adopt saturations filed under
            # other revisions of this program (see
            # :func:`repro.engine.incremental.discover_artifacts`).
            # Skips instantly when this revision's own index already
            # records the shared Poststar.
            from repro.engine.incremental import discover_artifacts

            discover_artifacts(self)
            self._stats["load_seconds"] = time.perf_counter() - t0

    @classmethod
    def for_sdg(cls, sdg):
        """The session for an already-built SDG, cached on the SDG
        itself (the :func:`repro.pds.encode_sdg` idiom) so repeated
        analyses of one graph share saturations."""
        session = getattr(sdg, "_slicing_session", None)
        if session is None:
            session = cls(sdg=sdg)
            sdg._slicing_session = session
        return session

    # -- queries ---------------------------------------------------------------

    def slice(self, criterion=PRINTS, contexts="reachable"):
        """Algorithm 1 for one criterion; memoized.

        ``criterion`` accepts every spec form described in
        :mod:`repro.engine.canonical`; ``contexts`` completes vertex
        criteria (``"reachable"`` or ``"empty"``).
        """
        kind, payload = resolve_criterion_spec(self.sdg, criterion)
        return self._slice_resolved(kind, payload, contexts)

    def _slice_resolved(self, kind, payload, contexts):
        key = canonical_key(kind, payload, contexts)

        def compute():
            sat_key = saturation_key(SAT_PRESTAR, key)
            a0 = self._pop_batch_query(sat_key)
            if a0 is None:
                a0 = self._query_automaton(kind, payload, contexts)
            # The saturation is memoized one layer below the result so
            # that a failure later in the pipeline (MRD/read-out) evicts
            # the result entry but keeps the saturation for the retry.
            artifact = self._memoized(
                "saturation",
                sat_key,
                lambda: self._make_artifact(
                    SAT_PRESTAR,
                    sat_key,
                    self._saturate(prestar, a0, trim=True),
                ),
            )
            result = specialization_slice(
                self.sdg, a0, contexts=contexts, a1=artifact.automaton,
                kernel=self.kernel,
            )
            result.footprint = artifact.footprint
            return result

        return self._memoized("slice", key, compute)

    def slice_many(
        self,
        criteria,
        contexts="reachable",
        max_workers=None,
        backend=None,
        batch_saturation=None,
    ):
        """The batch driver: slice each criterion, fanning independent
        queries out over a worker pool.  Duplicate criteria are computed
        once.  Returns results in input order.

        ``backend`` defaults to the ``REPRO_SLICE_BACKEND`` environment
        knob (``thread`` when unset).
        ``backend="thread"`` shares this session's read-only
        encoding across a thread pool — cheap, but saturation work
        serializes on the GIL.  ``backend="process"`` runs criteria in
        a :class:`ProcessPoolExecutor`: each worker builds (or, with a
        store attached, disk-loads) the front half once via a pool
        initializer and computes slices truly in parallel; results come
        back pickled and are installed in this session's memo.  The
        process backend needs the session's source text.

        ``batch_saturation`` (default: the ``REPRO_BATCH_SATURATION``
        environment knob, ``auto`` when unset) controls the fused
        saturation path under the thread backend on the ``csr`` kernel:
        criteria with no memoized or persisted answer are saturated in
        *one* multi-criterion kernel pass
        (:func:`repro.pds.prestar_many`) before the pool fans out, so
        each PDS rule fires once for the whole batch instead of once
        per criterion.  ``auto`` fuses when at least two criteria are
        cold, ``on`` forces fusing, ``off`` disables it.  Results,
        artifacts, memo entries, and store bytes are identical either
        way.
        """
        criteria = list(criteria)
        if not criteria:
            return []
        mode = kernelcfg.resolve_batch(batch_saturation)
        backend = kernelcfg.resolve_backend(backend)
        # Resolve each spec exactly once, up front: specs may be one-
        # shot iterables, and early validation beats a worker traceback.
        specs = [resolve_criterion_spec(self.sdg, c) for c in criteria]
        if backend == kernelcfg.PROCESS:
            return self._slice_many_process(specs, contexts, max_workers, mode)
        if mode != kernelcfg.BATCH_OFF and self.kernel == kernelcfg.CSR:
            self._fused_batch(
                [
                    (canonical_key(kind, payload, contexts), kind, payload)
                    for kind, payload in specs
                ],
                contexts,
                mode,
                SAT_PRESTAR,
                "slice",
                prestar_many,
            )
        if max_workers is None:
            max_workers = min(len(criteria), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(self._slice_resolved, kind, payload, contexts)
                for kind, payload in specs
            ]
        return [future.result() for future in futures]

    def executable(self, criterion=PRINTS, contexts="reachable"):
        """The runnable :class:`ExecutableSlice` for a criterion;
        memoized on top of :meth:`slice`.  The slice's
        :class:`SpecializationResult` rides along as ``.result``."""
        kind, payload = resolve_criterion_spec(self.sdg, criterion)
        result = self._slice_resolved(kind, payload, contexts)
        key = canonical_key(kind, payload, contexts)

        def compute():
            executable = executable_program(result)
            executable.result = result
            return executable

        return self._memoized("executable", key, compute)

    def remove_feature(self, feature, contexts="reachable"):
        """Algorithm 2 through the session: ``feature`` is either a
        label substring (as in ``repro remove --feature``) or any
        criterion spec; memoized like :meth:`slice`.

        The feature's forward-cone saturation ``Poststar(A_C)`` — the
        expensive half of Algorithm 2 — is memoized (and persisted,
        with a store) as its own :class:`SaturationArtifact`, so a
        repeated removal after an incremental update that dropped the
        rendered result still skips the saturation."""
        kind, payload = self._feature_spec(feature)
        return self._remove_feature_resolved(kind, payload, contexts)

    def _remove_feature_resolved(self, kind, payload, contexts):
        from repro.core.feature_removal import remove_feature

        key = canonical_key(kind, payload, contexts)

        def compute():
            # Algorithm 2 consults the reachable-configuration language
            # in every contexts mode; route it through the artifact
            # memo so it is shared, shipped, and persisted like any
            # other saturation.
            self.reachable_configs()
            sat_key = saturation_key(SAT_POSTSTAR, key)
            a_c = self._pop_batch_query(sat_key)
            if a_c is None:
                a_c = self._query_automaton(kind, payload, contexts)
            cone = self._memoized(
                "saturation",
                sat_key,
                lambda: self._make_artifact(
                    SAT_POSTSTAR,
                    sat_key,
                    self._saturate(poststar, a_c, trim=True),
                ),
            )
            result = remove_feature(self.sdg, a_c, a0=cone.automaton)
            # The result's own footprint is its *kept* cone (what the
            # rendered residual program can mention), not the removed
            # feature's: result.a1 is already trimmed by Algorithm 2.
            result.footprint = self._footprint_of(result.a1)
            return result

        return self._memoized("feature", key, compute)

    def remove_features_many(
        self, features, contexts="reachable", batch_saturation=None
    ):
        """Batch driver for :meth:`remove_feature`: results in input
        order, duplicates computed once.  On the ``csr`` kernel (unless
        ``batch_saturation`` resolves to ``off``) the cold features'
        forward-cone Poststars run as one fused multi-criterion pass
        (:func:`repro.pds.poststar_many`) before the per-feature
        removals — the cone analogue of the :meth:`slice_many` fused
        path, with identical results and artifacts either way."""
        features = list(features)
        if not features:
            return []
        mode = kernelcfg.resolve_batch(batch_saturation)
        specs = [self._feature_spec(feature) for feature in features]
        if mode != kernelcfg.BATCH_OFF and self.kernel == kernelcfg.CSR:
            # Algorithm 2 consults the reachable-configuration language
            # in every contexts mode (remove_feature does this first);
            # pull it in before the fused pass so the cone saturations
            # batch cleanly.
            self.reachable_configs()
            self._fused_batch(
                [
                    (canonical_key(kind, payload, contexts), kind, payload)
                    for kind, payload in specs
                ],
                contexts,
                mode,
                SAT_POSTSTAR,
                "feature",
                poststar_many,
            )
        return [
            self._remove_feature_resolved(kind, payload, contexts)
            for kind, payload in specs
        ]

    def remove_feature_cleaned(self, feature, contexts="reachable"):
        """Feature removal followed by the §7 interprocedural
        useless-code-elimination pass (:mod:`repro.core.cleanup`),
        memoized in its own table on top of :meth:`remove_feature`.

        Returns ``(raw, cleaned)`` :class:`ExecutableSlice` pair, as
        :func:`repro.core.cleanup.clean_feature_removal` does; the
        underlying :class:`SpecializationResult` rides along as
        ``cleaned.result``.
        """
        from repro.core.cleanup import clean_feature_removal

        kind, payload = self._feature_spec(feature)
        key = canonical_key(kind, payload, contexts)
        result = self.remove_feature(feature, contexts)

        def compute():
            return clean_feature_removal(result)

        raw, cleaned = self._memoized("feature_clean", key, compute)
        # The back-reference is attached here, outside the memoized
        # value, so store entries stay slim (the result is already
        # persisted in the "feature" table) and store-loaded cleanups
        # point at this session's memoized result object.
        if getattr(cleaned, "result", None) is not result:
            cleaned.result = result
        return raw, cleaned

    def reachable_configs(self):
        """The shared ``Poststar(entry_main)`` saturation (computed —
        or store-loaded — at most once per session), as the trimmed
        single-initial query view every consumer reads it through.

        The memo holds it as a :class:`SaturationArtifact`
        (:meth:`reachable_configs_artifact`); whichever way the
        artifact arrived — saturation, ``__sats__`` load, process-pool
        shipping, incremental survival — its automaton is installed as
        the encoding's cached reachable-configuration language *and*
        query view, so the criterion constructors and Algorithm 2 do no
        Poststar-sized work at all."""
        artifact = self.reachable_configs_artifact()
        automaton = artifact.automaton
        encoding = self.encoding
        if getattr(encoding, "_reachable_configs", None) is not automaton:
            encoding._reachable_configs = automaton
            encoding._reachable_view = automaton
        return automaton

    def reachable_configs_artifact(self):
        """The shared Poststar as a relocatable artifact.

        The artifact's automaton is the *query view* of the saturation
        (language read from the main control location, trimmed): the
        configuration language ``Poststar(entry_main)`` denotes — and
        the only part any consumer reads — in its slimmest form."""
        from repro.core.criteria import reachable_query_view

        def compute():
            sink = {}
            view = reachable_query_view(self.encoding, kernel=self.kernel, stats=sink)
            self._absorb_kernel_stats(sink)
            self.encoding._reachable_configs = view
            return self._make_artifact(SAT_POSTSTAR, REACHABLE_KEY, view)

        return self._memoized("saturation", REACHABLE_KEY, compute)

    def update_source(self, new_source):
        """Re-point this session at an edited version of its program,
        reusing everything the edit provably left intact (see
        :mod:`repro.engine.incremental`).

        Procedures whose content key — normalized lexeme stream plus
        computed interface plus direct callees' interfaces — is
        unchanged keep their PDGs (and their vertex ids, when no
        earlier procedure changed size); only changed procedures are
        rebuilt, the interprocedural edges are re-stitched, and exactly
        the memoized saturations whose automata touch a changed
        procedure's PDS rules are invalidated.  The assembled front
        half is numbered identically to a cold build of the new text,
        so subsequent queries are byte-identical to a fresh session's.

        Raises on unparseable/ill-typed text, leaving the session
        untouched.  Not linearizable with in-flight queries: criteria
        being computed concurrently finish against the old front half
        and are dropped from the memo.

        Returns a summary dict (``procs_reused``, ``procs_rebuilt``,
        ``saturations_kept``, ``fast_path``, ...), also kept as
        ``session.last_update``.
        """
        from repro.engine.incremental import update_session

        return update_session(self, new_source)

    @property
    def stats(self):
        """A snapshot of cache/timing counters (hit and miss counts per
        memo table, ``load_seconds`` for the front half, persistent-
        store hits/misses when a store is attached)."""
        with self._lock:
            return dict(self._stats)

    # -- internals -------------------------------------------------------------

    def _content_keys(self):
        """The per-procedure content keys of this session's front half
        (the addressing footprints are expressed in), or None for
        sessions built from a bare SDG — their artifacts get unknown
        footprints, which is sound because such sessions cannot
        :meth:`update_source` anyway."""
        if self._proc_keys is None:
            if self.source is None:
                return None
            from repro.engine.incremental import session_procedure_keys

            session_procedure_keys(self)
        return self._proc_keys

    def _footprint_of(self, automaton):
        """The ownership footprint of a trimmed automaton over this
        front half (see :func:`repro.engine.artifacts
        .artifact_footprint`)."""
        from repro.engine.artifacts import artifact_footprint

        return artifact_footprint(self.sdg, self._content_keys(), automaton)

    def _saturate(self, saturation, query, trim=False):
        """Run a saturation (``prestar``/``poststar``) on the session's
        kernel, folding its counters into :attr:`stats`."""
        sink = {}
        result = saturation(
            self.encoding.pds, query, trim=trim, kernel=self.kernel, stats=sink
        )
        self._absorb_kernel_stats(sink)
        return result

    def _absorb_kernel_stats(self, sink):
        """Accumulate one call's ``kernel_*`` counters into the session
        totals (thread-safe: queries run concurrently)."""
        if not sink:
            return
        with self._lock:
            for name, value in sink.items():
                if name.startswith("kernel_"):
                    self._stats[name] = self._stats.get(name, 0) + value

    def _make_artifact(self, sat_kind, sat_key, automaton):
        """Package a freshly computed (already trimmed) saturation as a
        relocatable artifact."""
        return make_artifact(
            sat_kind, sat_key, automaton, self.sdg, self._content_keys()
        )

    def _feature_spec(self, feature):
        from repro.core.feature_removal import feature_seeds

        if isinstance(feature, str):
            return VERTICES, tuple(sorted(feature_seeds(self.sdg, feature)))
        return resolve_criterion_spec(self.sdg, feature)

    def _query_automaton(self, kind, payload, contexts):
        if kind == AUTOMATON:
            return payload
        if kind == CONFIGS:
            return configs_criterion(self.encoding, payload)
        if contexts == "reachable":
            self.reachable_configs()
        return resolve_criterion(self.encoding, payload, contexts, kernel=self.kernel)

    def _hold_compiled(self, payload=None):
        """Pin the compiled form of this front half's PDS on the
        session (``csr`` kernel only): compilation happens here, once,
        and every saturation — batched, single, or feature-cone — finds
        it in the kernel's cache for as long as the session (and thus
        the PDS object) lives.  Re-run by ``update_source`` when an
        edit re-encodes the PDS; the hit/miss economics land in
        ``kernel_compile_hits`` / ``kernel_compile_misses``.

        Before compiling, a relocatable payload is *adopted* when one
        is at hand — passed explicitly (process-pool workers get the
        parent's through the pool initializer) or read from the store's
        ``__pds__`` table under the front-half hash — so the packed
        arrays are rebuilt from flat ints instead of re-derived from
        the rule objects.  A consult that comes up empty, corrupt, or
        mismatched degrades to a plain compile; both outcomes land in
        ``pds_payload_hits`` / ``pds_payload_misses``.  A fresh compile
        with a store attached persists its payload for the next
        process."""
        if self.kernel != kernelcfg.CSR:
            self._compiled = None
            return
        from repro.pds import kernel as _kernel

        pds = self.encoding.pds
        sink = {}
        consulted = payload is not None
        if (
            payload is None
            and self.store is not None
            and self.source_hash is not None
        ):
            consulted = True
            payload = self.store.get_pds(self.source_hash)
        adopted = False
        if payload is not None:
            adopted = _kernel.adopt_payload(pds, payload, sink)
        elif consulted:
            _kernel.count_payload(sink, False)
        self._compiled = _kernel.compiled_pds(pds, sink)
        with self._lock:
            for name, value in sink.items():
                self._stats[name] = self._stats.get(name, 0) + value
        if (
            not adopted
            and self.store is not None
            and self.source_hash is not None
        ):
            try:
                self.store.put_pds(
                    self.source_hash, _kernel.compiled_payload(self._compiled)
                )
            except ValueError:
                # A PDS outside the SDG encoding's location/symbol
                # universe has no payload form; skip persistence.
                pass

    def _pop_batch_query(self, sat_key):
        """Claim the query automaton a fused batch pass stashed for
        this saturation key, if any — discarded (never reused) when an
        ``update_source`` re-encoded the front half in between."""
        with self._lock:
            entry = self._batch_queries.pop(sat_key, None)
        if entry is not None and entry[0] is self.encoding:
            return entry[1]
        return None

    def _fused_batch(self, keyed_specs, contexts, mode, sat_kind, result_table, saturate_many):
        """Saturate a batch's cold criteria in one fused kernel pass.

        ``keyed_specs`` is ``[(canonical key, kind, payload), ...]``;
        ``sat_kind``/``saturate_many`` pick the saturation
        (Prestar for slices, Poststar for feature cones) and
        ``result_table`` the memo table whose persisted entries make a
        criterion warm.  The pass only *pre-fills* the saturation memo:
        criteria already answered — a live future, or a persisted
        result / saturation artifact in the store — are left for the
        ordinary per-criterion path, with byte-identical artifacts and
        the exact counter trace that path would produce.  Anything
        fewer than two cold criteria (one, under ``mode="on"``) is not
        worth a fused pass and falls through untouched.
        """
        candidates = {}  # saturation key -> (kind, payload)
        for key, kind, payload in keyed_specs:
            sat_key = saturation_key(sat_kind, key)
            if sat_key not in candidates:
                candidates[sat_key] = (key, kind, payload)
        cold = {}
        with self._lock:
            for sat_key, (key, kind, payload) in candidates.items():
                if (result_table, key) in self._futures:
                    continue
                if ("saturation", sat_key) in self._futures:
                    continue
                cold[sat_key] = (key, kind, payload)
        if self.store is not None and self.source_hash is not None:
            # A criterion whose *result* is persisted never saturates on
            # the sequential path either — peek (no counters; the memo
            # miss and persist hit are counted later, by the ordinary
            # path) and leave it out of the fused pass.
            for sat_key in list(cold):
                key, kind, payload = cold[sat_key]
                digest = self._persist_digest(result_table, key)
                if digest is not None and self.store.has(
                    self.source_hash, result_table, digest
                ):
                    del cold[sat_key]
        if len(cold) < (1 if mode == kernelcfg.BATCH_ON else 2):
            return
        src_hash = self.source_hash
        claimed = []
        with self._lock:
            for sat_key, (key, kind, payload) in cold.items():
                full_key = ("saturation", sat_key)
                if full_key in self._futures:
                    continue
                future = Future()
                self._futures[full_key] = future
                self._stats["saturation_misses"] += 1
                claimed.append((sat_key, kind, payload, future))
        if not claimed:
            return
        try:
            # Warm ``__sats__`` artifacts answer without saturating,
            # exactly as _saturation_through_store would.
            pending = []
            for sat_key, kind, payload, future in claimed:
                digest = self._persist_digest(
                    "saturation", sat_key, table_check=False
                )
                if digest is not None:
                    value = self.store.get_sat(src_hash, digest)
                    loaded = (
                        isinstance(value, SaturationArtifact)
                        and value.key == sat_key
                    )
                    with self._lock:
                        self._stats[
                            "sat_persist_hits" if loaded else "sat_persist_misses"
                        ] += 1
                    if loaded:
                        future.set_result(value)
                        continue
                pending.append((sat_key, kind, payload, future, digest))
            if not pending:
                return
            automata = []
            for sat_key, kind, payload, future, digest in pending:
                a0 = self._query_automaton(kind, payload, contexts)
                automata.append(a0)
                with self._lock:
                    self._batch_queries[sat_key] = (self.encoding, a0)
            sink = {}
            saturated = saturate_many(
                self.encoding.pds, automata, trim=True,
                kernel=self.kernel, stats=sink,
            )
            self._absorb_kernel_stats(sink)
            with self._lock:
                self._stats["fused_batches"] += 1
                self._stats["fused_criteria"] += len(pending)
            for entry, automaton in zip(pending, saturated):
                sat_key, kind, payload, future, digest = entry
                artifact = self._make_artifact(sat_kind, sat_key, automaton)
                if digest is not None:
                    self.store.put_sat(src_hash, digest, artifact)
                    self._index_filed(src_hash, digest, artifact)
                future.set_result(artifact)
        except BaseException as exc:
            with self._lock:
                for sat_key, kind, payload, future in claimed:
                    if not future.done():
                        self._futures.pop(("saturation", sat_key), None)
                        self._batch_queries.pop(sat_key, None)
            for sat_key, kind, payload, future in claimed:
                if not future.done():
                    future.set_exception(exc)
            raise

    def _memoized(self, cache_kind, key, compute):
        """One-future-per-key memoization: the first submitter computes,
        concurrent duplicates block on the same future, and failures are
        evicted so a later retry can succeed.  Tables named in
        :data:`PERSISTED_TABLES` consult and fill the attached store
        around the computation."""
        full_key = (cache_kind, key)
        with self._lock:
            future = self._futures.get(full_key)
            owner = future is None
            if owner:
                future = Future()
                self._futures[full_key] = future
                self._stats[cache_kind + "_misses"] += 1
            else:
                self._stats[cache_kind + "_hits"] += 1
        if not owner:
            return future.result()
        try:
            value = self._compute_through_store(cache_kind, key, compute)
        except BaseException as exc:
            with self._lock:
                self._futures.pop(full_key, None)
            future.set_exception(exc)
            raise
        future.set_result(value)
        return value

    def _compute_through_store(self, cache_kind, key, compute):
        # The hash is snapshotted before the (possibly long) compute: a
        # concurrent update_source may re-point the session mid-flight,
        # and a value computed against the old front half must never be
        # filed under the edited text's hash.
        src_hash = self.source_hash
        if cache_kind == "saturation":
            return self._saturation_through_store(src_hash, key, compute)
        digest = self._persist_digest(cache_kind, key)
        if digest is not None:
            value = self.store.get(src_hash, cache_kind, digest)
            with self._lock:
                self._stats[
                    "persist_hits" if value is not None else "persist_misses"
                ] += 1
            if value is not None:
                return self._rehydrate(value)
        value = compute()
        if digest is not None:
            self.store.put(src_hash, cache_kind, digest, self._slim(value))
        return value

    def _saturation_through_store(self, src_hash, key, compute):
        """Saturation artifacts go through the store's ``__sats__``
        table (front-half hash + stable key digest): a warm store hands
        back the relocatable artifact — a new criterion against a warm
        front half skips Poststar entirely and loads any Prestar
        sibling whose key matches — and freshly computed artifacts are
        persisted for the next process.  ``src_hash`` is the caller's
        pre-compute snapshot of the front-half hash."""
        digest = self._persist_digest("saturation", key, table_check=False)
        if digest is not None:
            value = self.store.get_sat(src_hash, digest)
            loaded = isinstance(value, SaturationArtifact) and value.key == key
            with self._lock:
                self._stats[
                    "sat_persist_hits" if loaded else "sat_persist_misses"
                ] += 1
            if loaded:
                return value
        value = compute()
        if digest is not None:
            self.store.put_sat(src_hash, digest, value)
            self._index_filed(src_hash, digest, value)
        return value

    def _index_filed(self, src_hash, digest, artifact):
        """Record a freshly filed saturation artifact in its revision's
        saturation index (layout + one record), making it discoverable
        by cold sessions on *other* revisions.  Skipped when ownership
        is unknown or a concurrent ``update_source`` re-pointed the
        session mid-compute (the snapshot hash no longer names this
        front half, so this session's layout would be the wrong one)."""
        if artifact.footprint is None or src_hash != self.source_hash:
            return
        from repro.engine.incremental import session_layout

        self.store.merge_sat_index(
            src_hash,
            layout=session_layout(self),
            records={
                digest: (
                    artifact.key,
                    artifact.kind,
                    tuple(sorted(artifact.footprint)),
                )
            },
        )

    def _slim(self, value):
        """A shallow copy of a result with the shared front half nulled
        out, for storage or IPC: every entry would otherwise embed its
        own pickled copy of the session's SDG and PDS encoding (the
        bulk of the bytes, already stored once as the front-half
        bundle).  Handles the ``(raw, cleaned)`` tuples of
        :meth:`remove_feature_cleaned`, whose cleaned slice carries a
        ``result`` back-reference (dropped here, re-linked by the
        caller)."""
        import copy

        from repro.core.executable import ExecutableSlice
        from repro.core.specialize import SpecializationResult

        if isinstance(value, SpecializationResult):
            slim = copy.copy(value)
            slim.source_sdg = None
            slim.encoding = None
            return slim
        if isinstance(value, tuple):
            return tuple(self._slim(item) for item in value)
        if isinstance(value, ExecutableSlice) and isinstance(
            getattr(value, "result", None), SpecializationResult
        ):
            slim = copy.copy(value)
            del slim.result
            return slim
        return value

    def _rehydrate(self, value):
        """The inverse of :meth:`_slim`: point a store-loaded or
        worker-computed result at this session's front half (also
        restoring the storeless invariant that ``result.source_sdg is
        session.sdg``)."""
        from repro.core.specialize import SpecializationResult

        if isinstance(value, SpecializationResult):
            if value.source_sdg is None:
                value.source_sdg = self.sdg
                value.encoding = self.encoding
            return value
        if isinstance(value, tuple):
            return tuple(self._rehydrate(item) for item in value)
        return value

    def _persist_digest(self, cache_kind, key, table_check=True):
        """The on-disk digest for a memo entry, or None when the entry
        is not persistable (no store, SDG-only session, or a criterion
        key — e.g. a user automaton with exotic states — that has no
        process-independent rendering).  Saturation entries pass
        ``table_check=False``: they persist through the dedicated
        ``__sats__`` table, not the per-program result tables."""
        if (
            self.store is None
            or self.source_hash is None
            or (table_check and cache_kind not in PERSISTED_TABLES)
            or not is_stable_key(key)
        ):
            return None
        return stable_key_digest(key)

    def _install(self, cache_kind, key, value):
        """Install an externally computed value (a process-pool worker's
        result) into the memo; a concurrent computation's value wins."""
        full_key = (cache_kind, key)
        with self._lock:
            existing = self._futures.get(full_key)
            if existing is None:
                future = Future()
                future.set_result(value)
                self._futures[full_key] = future
        return value

    def _slice_many_process(self, specs, contexts, max_workers, mode=None):
        if self.source is None:
            raise ValueError(
                "backend='process' needs the session's source text "
                "(sessions built from an SDG cannot ship work to workers)"
            )
        if mode is None:
            mode = kernelcfg.resolve_batch(None)
        keys = [canonical_key(kind, payload, contexts) for kind, payload in specs]
        unique = {}
        for spec, key in zip(specs, keys):
            unique.setdefault(key, spec)
        # Criteria this session already has (finished or in flight) are
        # not resubmitted; only genuinely new keys go to the pool.
        with self._lock:
            known = {
                key: self._futures.get(("slice", key))
                for key in unique
            }
            for key, future in known.items():
                if future is not None:
                    self._stats["slice_hits"] += 1
                else:
                    self._stats["slice_misses"] += 1
        computed = {}
        to_compute = []
        for key, future in known.items():
            if future is not None:
                continue
            # A warm store answers here, in the parent, before any
            # worker processes are spawned at all.
            digest = self._persist_digest("slice", key)
            if digest is not None:
                value = self.store.get(self.source_hash, "slice", digest)
                with self._lock:
                    self._stats[
                        "persist_hits" if value is not None else "persist_misses"
                    ] += 1
                if value is not None:
                    computed[key] = self._install("slice", key, self._rehydrate(value))
                    continue
            to_compute.append((key, unique[key]))
        if to_compute:
            cache_dir = self.store.cache_dir if self.store is not None else None
            max_bytes = self.store.max_bytes if self.store is not None else None
            workers = max_workers or min(len(to_compute), os.cpu_count() or 1)
            artifacts = self._export_artifacts(
                [key for key, _spec in to_compute]
            )
            pds_payload = self._export_payload()
            fused = (
                mode != kernelcfg.BATCH_OFF and self.kernel == kernelcfg.CSR
            )
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_process_worker_init,
                initargs=(
                    self.source,
                    cache_dir,
                    max_bytes,
                    artifacts,
                    self.kernel,
                    pds_payload,
                ),
            ) as pool:
                if fused:
                    # Partition the cold criteria into one sub-batch
                    # per worker (round-robin stripes, so sizes differ
                    # by at most one); each worker saturates its whole
                    # sub-batch in one fused kernel pass over the
                    # shipped compiled PDS — the PR 7 thread-path
                    # semantics, per worker.
                    chunks = [
                        to_compute[i::workers]
                        for i in range(min(workers, len(to_compute)))
                    ]
                    with self._lock:
                        self._stats["fused_process_batches"] += len(chunks)
                        self._stats["fused_process_subbatch_sizes"] = self._stats[
                            "fused_process_subbatch_sizes"
                        ] + tuple(len(chunk) for chunk in chunks)
                    batch_futures = [
                        pool.submit(
                            _process_worker_slice_batch,
                            [spec for _key, spec in chunk],
                            contexts,
                            mode,
                        )
                        for chunk in chunks
                    ]
                    futures = {}
                    for chunk, batch_future in zip(chunks, batch_futures):
                        for position, (key, _spec) in enumerate(chunk):
                            futures[key] = (batch_future, position)
                    for key, (batch_future, position) in futures.items():
                        computed[key] = self._install(
                            "slice",
                            key,
                            self._rehydrate(batch_future.result()[position]),
                        )
                else:
                    futures = {
                        key: pool.submit(
                            _process_worker_slice, kind, payload, contexts
                        )
                        for key, (kind, payload) in to_compute
                    }
                    for key, future in futures.items():
                        # Workers ship slim results (no embedded front
                        # half); re-attach this session's SDG/encoding
                        # on install.
                        computed[key] = self._install(
                            "slice", key, self._rehydrate(future.result())
                        )
        results = {}
        for key in unique:
            future = known.get(key)
            results[key] = future.result() if future is not None else computed[key]
        return [results[key] for key in keys]

    def _export_artifacts(self, slice_keys):
        """The warm saturation artifacts worth shipping to process-pool
        workers: the shared Poststar (every reachable-contexts worker
        needs it) plus any Prestar whose criterion is in the batch —
        the editor-loop case where an update dropped the rendered
        results but their saturations survived.  Artifacts pickle
        deterministically and carry no front-half references, so
        shipping is cheap relative to one worker re-saturating."""
        wanted = {saturation_key(SAT_PRESTAR, key) for key in slice_keys}
        wanted.add(REACHABLE_KEY)
        artifacts = []
        with self._lock:
            for (cache_kind, key), future in self._futures.items():
                if (
                    cache_kind == "saturation"
                    and key in wanted
                    and future.done()
                    and future.exception() is None
                ):
                    artifacts.append(future.result())
        return artifacts

    def _export_payload(self):
        """This session's compiled PDS as a relocatable payload tuple,
        for the process-pool initializer — or None (object kernel, or a
        PDS outside the payload universe), in which case workers
        compile for themselves."""
        if self._compiled is None:
            return None
        from repro.pds.kernel import compiled_payload

        try:
            return compiled_payload(self._compiled)
        except ValueError:
            return None


#: the per-process session a ProcessPoolExecutor worker slices through,
#: built once by the pool initializer.
_WORKER_SESSION = None


def _process_worker_init(
    source, cache_dir, max_bytes, artifacts=(), kernel=None, pds_payload=None
):
    global _WORKER_SESSION
    store = None
    if cache_dir is not None:
        from repro.store import SliceStore

        store = SliceStore(cache_dir, max_bytes=max_bytes)
    # The parent's compiled PDS rides in as packed ints: the worker
    # adopts it (``pds_payload_hits``) instead of recompiling — and a
    # torn payload degrades to a recompile inside the session.
    _WORKER_SESSION = SlicingSession(
        source, store=store, kernel=kernel, compiled_payload=pds_payload
    )
    # Warm artifacts shipped from the parent: install them into the
    # fresh memo so this worker never re-saturates what the parent (or
    # a sibling update) already computed.  The front half is rebuilt
    # deterministically from the same source text, so symbols line up.
    for artifact in artifacts:
        _WORKER_SESSION._install("saturation", artifact.key, artifact)


def _process_worker_slice(kind, payload, contexts):
    # Slim the result before it is pickled back: the parent has its own
    # front half and rehydrates on install.
    result = _WORKER_SESSION._slice_resolved(kind, payload, contexts)
    return _WORKER_SESSION._slim(result)


def _process_worker_slice_batch(specs, contexts, mode):
    """One worker's whole sub-batch: fuse the cold criteria into one
    kernel pass (same exclusion and counter semantics as the thread
    path — :meth:`SlicingSession._fused_batch`), then compute each
    slice; returns slim results in ``specs`` order."""
    session = _WORKER_SESSION
    if mode != kernelcfg.BATCH_OFF and session.kernel == kernelcfg.CSR:
        session._fused_batch(
            [
                (canonical_key(kind, payload, contexts), kind, payload)
                for kind, payload in specs
            ],
            contexts,
            mode,
            SAT_PRESTAR,
            "slice",
            prestar_many,
        )
    return [
        session._slim(session._slice_resolved(kind, payload, contexts))
        for kind, payload in specs
    ]
