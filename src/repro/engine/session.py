"""The batched slicing engine: one program, many criteria.

Algorithm 1 is a pipeline whose front half (parse, check, SDG build,
PDS encoding, and the Poststar reachable-configurations saturation) is
criterion-independent; only Prestar, the MRD automaton operations, and
the read-out depend on the query.  :class:`SlicingSession` loads a
program once and serves arbitrarily many criteria against the shared
front half:

* the parsed program, semantic info, SDG, and :class:`SDGEncoding` are
  built once at session creation;
* ``Poststar(entry_main)`` — needed by every reachable-contexts
  criterion, by feature removal, and by the reslicing check — is
  saturated once and shared;
* Prestar/Poststar saturations and full :class:`SpecializationResult`s
  are memoized per canonicalized criterion (see
  :mod:`repro.engine.canonical`), so resubmitting a criterion is a
  dictionary lookup;
* :meth:`SlicingSession.slice_many` fans independent criteria out over
  a thread pool against the read-only encoding, deduplicating identical
  criteria in flight via per-key futures.

Sessions are thread-safe: the memo tables hold one future per key, so
concurrent submissions of the same criterion compute it exactly once.
"""

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.core.criteria import (
    configs_criterion,
    reachable_configs_automaton,
)
from repro.core.executable import executable_program
from repro.core.specialize import resolve_criterion, specialization_slice
from repro.engine.canonical import (
    AUTOMATON,
    CONFIGS,
    PRINTS,
    VERTICES,
    canonical_key,
    resolve_criterion_spec,
)
from repro.pds import encode_sdg, prestar


class SlicingSession(object):
    """A long-lived slicing engine over one program.

    Construct from TinyC source (``SlicingSession(source)``) or from an
    already-built SDG (``SlicingSession.for_sdg(sdg)``).  All query
    methods are memoized and thread-safe.

    Attributes:
        source: the source text, or None when built from an SDG.
        program / info / sdg / encoding: the shared front half.
    """

    def __init__(self, source=None, program=None, info=None, sdg=None):
        t0 = time.perf_counter()
        if source is not None:
            import repro

            program, info, sdg = repro.load_source(source)
        if sdg is None:
            raise ValueError("SlicingSession needs source text or an SDG")
        self.source = source
        self.program = program if program is not None else sdg.program
        self.info = info if info is not None else sdg.info
        self.sdg = sdg
        self.encoding = encode_sdg(sdg)
        self._lock = threading.Lock()
        self._futures = {}  # (cache kind, criterion key) -> Future
        self._stats = {
            "load_seconds": time.perf_counter() - t0,
            "slice_hits": 0,
            "slice_misses": 0,
            "saturation_hits": 0,
            "saturation_misses": 0,
            "feature_hits": 0,
            "feature_misses": 0,
            "executable_hits": 0,
            "executable_misses": 0,
        }

    @classmethod
    def for_sdg(cls, sdg):
        """The session for an already-built SDG, cached on the SDG
        itself (the :func:`repro.pds.encode_sdg` idiom) so repeated
        analyses of one graph share saturations."""
        session = getattr(sdg, "_slicing_session", None)
        if session is None:
            session = cls(sdg=sdg)
            sdg._slicing_session = session
        return session

    # -- queries ---------------------------------------------------------------

    def slice(self, criterion=PRINTS, contexts="reachable"):
        """Algorithm 1 for one criterion; memoized.

        ``criterion`` accepts every spec form described in
        :mod:`repro.engine.canonical`; ``contexts`` completes vertex
        criteria (``"reachable"`` or ``"empty"``).
        """
        kind, payload = resolve_criterion_spec(self.sdg, criterion)
        return self._slice_resolved(kind, payload, contexts)

    def _slice_resolved(self, kind, payload, contexts):
        key = canonical_key(kind, payload, contexts)

        def compute():
            a0 = self._query_automaton(kind, payload, contexts)
            # The saturation is memoized one layer below the result so
            # that a failure later in the pipeline (MRD/read-out) evicts
            # the result entry but keeps the saturation for the retry.
            a1 = self._memoized(
                "saturation",
                ("prestar", key),
                lambda: prestar(self.encoding.pds, a0),
            )
            return specialization_slice(self.sdg, a0, contexts=contexts, a1=a1)

        return self._memoized("slice", key, compute)

    def slice_many(self, criteria, contexts="reachable", max_workers=None):
        """The batch driver: slice each criterion, fanning independent
        queries out over a thread pool with the shared read-only
        encoding.  Duplicate criteria are computed once (per-key
        futures).  Returns results in input order."""
        criteria = list(criteria)
        if not criteria:
            return []
        # Resolve each spec exactly once, up front: specs may be one-
        # shot iterables, and early validation beats a worker traceback.
        specs = [resolve_criterion_spec(self.sdg, c) for c in criteria]
        if max_workers is None:
            max_workers = min(len(criteria), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(self._slice_resolved, kind, payload, contexts)
                for kind, payload in specs
            ]
        return [future.result() for future in futures]

    def executable(self, criterion=PRINTS, contexts="reachable"):
        """The runnable :class:`ExecutableSlice` for a criterion;
        memoized on top of :meth:`slice`.  The slice's
        :class:`SpecializationResult` rides along as ``.result``."""
        kind, payload = resolve_criterion_spec(self.sdg, criterion)
        result = self._slice_resolved(kind, payload, contexts)
        key = canonical_key(kind, payload, contexts)

        def compute():
            executable = executable_program(result)
            executable.result = result
            return executable

        return self._memoized("executable", key, compute)

    def remove_feature(self, feature, contexts="reachable"):
        """Algorithm 2 through the session: ``feature`` is either a
        label substring (as in ``repro remove --feature``) or any
        criterion spec; memoized like :meth:`slice`."""
        from repro.core.feature_removal import feature_seeds, remove_feature

        if isinstance(feature, str):
            kind, payload = VERTICES, tuple(sorted(feature_seeds(self.sdg, feature)))
        else:
            kind, payload = resolve_criterion_spec(self.sdg, feature)
        key = canonical_key(kind, payload, contexts)

        def compute():
            a_c = self._query_automaton(kind, payload, contexts)
            return remove_feature(self.sdg, a_c)

        return self._memoized("feature", key, compute)

    def reachable_configs(self):
        """The shared ``Poststar(entry_main)`` saturation (computed at
        most once per session)."""
        return self._memoized(
            "saturation",
            ("reachable-configs",),
            lambda: reachable_configs_automaton(self.encoding),
        )

    @property
    def stats(self):
        """A snapshot of cache/timing counters (hit and miss counts per
        memo table, ``load_seconds`` for the front half)."""
        with self._lock:
            return dict(self._stats)

    # -- internals -------------------------------------------------------------

    def _query_automaton(self, kind, payload, contexts):
        if kind == AUTOMATON:
            return payload
        if kind == CONFIGS:
            return configs_criterion(self.encoding, payload)
        if contexts == "reachable":
            self.reachable_configs()
        return resolve_criterion(self.encoding, payload, contexts)

    def _memoized(self, cache_kind, key, compute):
        """One-future-per-key memoization: the first submitter computes,
        concurrent duplicates block on the same future, and failures are
        evicted so a later retry can succeed."""
        full_key = (cache_kind, key)
        with self._lock:
            future = self._futures.get(full_key)
            owner = future is None
            if owner:
                future = Future()
                self._futures[full_key] = future
                self._stats[cache_kind + "_misses"] += 1
            else:
                self._stats[cache_kind + "_hits"] += 1
        if not owner:
            return future.result()
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                self._futures.pop(full_key, None)
            future.set_exception(exc)
            raise
        future.set_result(value)
        return value
