"""Relocatable saturation artifacts: the one representation every
saturation consumer shares.

A PDS saturation (``Poststar(entry_main)``, a per-criterion Prestar,
a feature's forward-cone Poststar) used to live only as a raw automaton
inside one session's memo; the store could not persist it, process-pool
workers re-saturated it, and the incremental layer re-derived its
procedure ownership by trimming at every update.  A
:class:`SaturationArtifact` packages the saturation once, in the form
all five consumers — memo, store, pool workers, ``update_source``
survival, and cross-revision discovery
(:func:`repro.engine.incremental.discover_artifacts`, which replays
the survival decision from the store's per-revision saturation
indexes with no live donor session) — need:

* ``automaton`` — the *trimmed* saturation automaton (the useful part
  only; trimming preserves the configuration language read from every
  initial state, which is all any consumer reads).  Slim by
  construction: symbols are vertex ids and call-site labels, states
  are small tuples — no SDG or encoding references.
* ``key`` — the canonical memo/store key: :data:`REACHABLE_KEY` for the
  shared Poststar, ``(SAT_PRESTAR | SAT_POSTSTAR, criterion_key)`` for
  per-criterion saturations (see :mod:`repro.engine.canonical`).
* ``footprint`` — the *ownership footprint*: the frozenset of
  per-procedure content keys (:func:`repro.engine.incremental
  .procedure_keys` digests) whose PDS rules the automaton touches.  A
  symbol is owned by the procedure containing it — and, for a call-site
  label, by the callee as well — exactly mirroring which procedures
  contribute PDS rules mentioning it.  ``None`` means "unknown, treat
  as touching everything" (sessions built from a bare SDG).

The footprint is what makes the artifact *relocatable*: an artifact
survives a source edit iff its footprint avoids every changed
procedure's content key, because any PDS rule the edit added or removed
mentions a changed procedure's vertex or call site, and the first
changed rule usable in a new derivation needs a configuration the old
automaton already accepted that mentions such a symbol.  (Reachable-
contexts criteria additionally require the shared Poststar to survive,
because their query automata bake in its language — the caller's gate,
not the artifact's.)  Content keys, not names, so the check composes
with the store's content-addressed tables and stays meaningful across
processes.

Artifacts pickle deterministically: ``__getstate__`` renders the
automaton through :func:`repro.fsa.serialize.automaton_to_payload` and
then collapses equal values to one representative object
(:func:`_intern_values`), so equal artifacts serialize to equal bytes
in any interpreter — the property the ``__sats__`` store table and the
process backend rely on.  The interning pass matters because pickle
memoizes by object *identity*: a product state like ``('m', 'm')``
pairs the criterion module's ``'m'`` with an ``'m'`` that may have been
unpickled from a store-loaded Poststar, and whether those are one
object or two depends on which worker persisted the Poststar first.
"""

from repro.fsa.serialize import automaton_from_payload, automaton_to_payload


def _intern_values(value, memo):
    """Rebuild a payload-shaped value (ints, strings, bytes, bools,
    None, nested tuples/frozensets thereof) with every equal sub-value
    collapsed to a single representative object, so pickle's
    identity-keyed memo sees the same sharing structure for equal
    values regardless of where each object came from.  Only the kinds
    pickle stores by reference need interning; ints, bools, and None
    are serialized inline at every occurrence, so they pass through
    untouched (payloads are mostly ints — skipping them keeps this
    pass off the warm-query profile)."""
    if isinstance(value, tuple):
        value = tuple(_intern_values(item, memo) for item in value)
    elif isinstance(value, frozenset):
        value = frozenset(_intern_values(item, memo) for item in value)
    elif not isinstance(value, (str, bytes)):
        return value
    # Keyed by (class, value) so equal-comparing values of different
    # types (e.g. a str-subclass) stay distinct.
    return memo.setdefault((value.__class__, value), value)


def translate_footprint(footprint, key_translation):
    """A footprint re-addressed through ``{old content key -> new
    content key}`` — how footprints follow procedures whose text (and
    therefore key) changed across an update.  None stays None."""
    if footprint is None or not key_translation:
        return footprint
    return frozenset(
        key_translation.get(content_key, content_key) for content_key in footprint
    )


class SaturationArtifact(object):
    """One saturation result, relocatable across sessions, processes,
    the persistent store, and source edits.

    Attributes:
        kind: ``"poststar"`` or ``"prestar"`` (which saturation
            procedure produced the automaton).
        key: the canonical memo/store key.
        automaton: the trimmed saturation :class:`FiniteAutomaton`.
        footprint: frozenset of procedure content keys the automaton's
            useful part touches, or None when unknown.
    """

    __slots__ = ("kind", "key", "automaton", "footprint")

    def __init__(self, kind, key, automaton, footprint):
        self.kind = kind
        self.key = key
        self.automaton = automaton
        self.footprint = footprint

    def __getstate__(self):
        memo = {}
        return _intern_values(
            (
                self.kind,
                self.key,
                automaton_to_payload(self.automaton),
                None if self.footprint is None else tuple(sorted(self.footprint)),
            ),
            memo,
        )

    def __setstate__(self, state):
        kind, key, payload, footprint = state
        self.kind = kind
        self.key = key
        self.automaton = automaton_from_payload(payload)
        self.footprint = None if footprint is None else frozenset(footprint)

    def __repr__(self):
        return "SaturationArtifact(%s, %r, %d procs)" % (
            self.kind,
            self.key,
            -1 if self.footprint is None else len(self.footprint),
        )

    # -- edit survival ---------------------------------------------------------

    def survives(self, changed_content_keys):
        """Whether this saturation is provably unaffected by an edit
        that changed (or removed) exactly the procedures with the given
        old content keys.  An unknown footprint never survives."""
        return self.footprint is not None and self.footprint.isdisjoint(
            changed_content_keys
        )

    def translated(self, key_translation):
        """This artifact with its footprint re-addressed through
        ``{old content key -> new content key}`` — the fast-path update
        case, where a procedure's text (and therefore key) changed but
        its PDS rules did not, so the automaton itself is still exact."""
        footprint = translate_footprint(self.footprint, key_translation)
        if footprint == self.footprint:
            return self
        return SaturationArtifact(self.kind, self.key, self.automaton, footprint)

    def relocated(self, new_key, vid_map, site_map, key_translation):
        """This artifact renamed into an edited front half: transition
        symbols are renumbered through the relocation maps and the
        footprint through the content-key translation.  Callers must
        have already checked :meth:`survives` — transitions on symbols
        absent from the maps belong to rebuilt procedures, are off
        every accepting path, and are dropped."""
        return SaturationArtifact(
            self.kind,
            new_key,
            remap_automaton(self.automaton, vid_map, site_map),
            translate_footprint(self.footprint, key_translation),
        )


def symbol_owner_procs(sdg, automaton):
    """The procedures whose PDS rules the automaton's useful part can
    mention: the owner of each vertex symbol, plus — for call-site
    symbols — both the caller (the rule pushing the site) and the
    callee (the param-out rules popping it)."""
    procs = set()
    vertices = sdg.vertices
    call_sites = sdg.call_sites
    for (_src, symbol, _dst) in automaton.transitions():
        if symbol is None:
            continue
        if isinstance(symbol, int):
            vertex = vertices.get(symbol)
            if vertex is not None:
                procs.add(vertex.proc)
        else:
            site = call_sites.get(symbol)
            if site is not None:
                procs.add(site.caller)
                procs.add(site.callee)
    return procs


def artifact_footprint(sdg, proc_keys, automaton, trimmed=True):
    """The ownership footprint of an automaton over a front half: the
    content keys of every procedure owning a symbol on the automaton's
    useful part.  ``proc_keys`` is the ``name -> content key`` map of
    the front half; None when unavailable (footprint unknown).

    ``trimmed=False`` trims first (saturations produced with
    ``trim=True`` skip it)."""
    if proc_keys is None:
        return None
    if not trimmed:
        automaton = automaton.trim()
    return frozenset(
        proc_keys[name]
        for name in symbol_owner_procs(sdg, automaton)
        if name in proc_keys
    )


def make_artifact(kind, key, automaton, sdg, proc_keys, trimmed=True):
    """Package a saturation automaton as an artifact over the given
    front half (see :func:`artifact_footprint` for the arguments)."""
    if not trimmed:
        automaton = automaton.trim()
    return SaturationArtifact(
        kind, key, automaton, artifact_footprint(sdg, proc_keys, automaton)
    )


def remap_automaton(automaton, vid_map, site_map):
    """Rename an automaton's transition symbols through the relocation
    maps of an incremental update.  Transitions labeled by symbols of
    rebuilt procedures (absent from the maps) are dropped; callers must
    have already checked, via the artifact footprint, that no such
    symbol is on an accepting path, so the accepted language is
    preserved.  States are opaque and kept as-is."""
    from repro.fsa.automaton import FiniteAutomaton

    result = FiniteAutomaton(initials=automaton.initials, finals=automaton.finals)
    for state in automaton.states:
        result.add_state(state)
    for (src, symbol, dst) in automaton.transitions():
        if symbol is None:
            result.add_transition(src, symbol, dst)
            continue
        if isinstance(symbol, int):
            new_symbol = vid_map.get(symbol)
        else:
            new_symbol = site_map.get(symbol)
        if new_symbol is not None:
            result.add_transition(src, new_symbol, dst)
    return result
