"""Canonicalization of slicing-criterion specifications.

The session engine memoizes saturation and slice results *per
criterion*, so every way of spelling the same criterion must map to the
same hashable cache key.  A criterion spec is any of:

* ``"prints"`` (or ``None``, or ``("print", None)``) — the actual
  parameters of every ``print`` in the program (the default criterion
  throughout the repo);
* ``("print", i)`` — the actual parameters of the i-th print statement,
  in program order;
* an ``int`` vertex id, or an iterable of vertex ids — a vertex
  criterion, completed into a configuration language by the session's
  ``contexts`` mode;
* an iterable of ``(vid, context)`` pairs — an explicit configuration
  set (the bug-site criteria the §8 experiments use), where ``context``
  is a tuple of call-site labels, top of stack first;
* a prepared query automaton (anything with ``add_transition``) — keyed
  structurally, so two automata with identical transitions share one
  cache entry.

``resolve_criterion_spec`` normalizes a spec into ``(kind, payload)``
with hashable payload; ``canonical_key`` turns that into the cache key;
``stable_key_digest`` turns a cache key into a deterministic hex digest
that is stable across processes and interpreter runs, which is what the
persistent :class:`repro.store.SliceStore` files are named by.
"""

import hashlib

from repro.fsa.serialize import stable_render as _stable_render

PRINTS = "prints"

#: kinds a spec normalizes to
VERTICES = "vertices"
CONFIGS = "configs"
AUTOMATON = "automaton"

#: saturation-artifact kinds (see :mod:`repro.engine.artifacts`); the
#: session memo, the store's ``__sats__`` table, and the incremental
#: invalidation pass all spell saturation keys with these.
SAT_PRESTAR = "prestar"
SAT_POSTSTAR = "poststar"

#: the canonical key of the shared ``Poststar(entry_main)`` saturation
REACHABLE_KEY = ("reachable-configs",)


def saturation_key(sat_kind, criterion_key):
    """The memo/store key of a per-criterion saturation: the saturation
    kind (:data:`SAT_PRESTAR` or :data:`SAT_POSTSTAR`) paired with the
    criterion's canonical key.  The shared program-wide Poststar uses
    :data:`REACHABLE_KEY` instead (it has no criterion)."""
    return (sat_kind, criterion_key)


def resolve_criterion_spec(sdg, criterion):
    """Normalize a criterion spec against ``sdg``.

    Returns ``(kind, payload)`` where ``kind`` is one of
    :data:`VERTICES`, :data:`CONFIGS`, :data:`AUTOMATON` and ``payload``
    is a hashable canonical form (sorted tuples; the automaton itself
    for ``AUTOMATON``).
    """
    if criterion is None or (isinstance(criterion, str) and criterion == PRINTS):
        return VERTICES, tuple(sorted(sdg.print_criterion()))
    if isinstance(criterion, str):
        # Catch typos like "print" before the generic-iterable fallback
        # tries to unpack the string's characters.
        raise ValueError(
            "unknown criterion string %r (did you mean %r or ('print', i)?)"
            % (criterion, PRINTS)
        )
    if hasattr(criterion, "add_transition"):
        return AUTOMATON, criterion
    if isinstance(criterion, int):
        _require_vertices(sdg, (criterion,))
        return VERTICES, (criterion,)
    if (
        isinstance(criterion, tuple)
        and len(criterion) == 2
        and criterion[0] == "print"
    ):
        index = criterion[1]
        if index is None:
            return VERTICES, tuple(sorted(sdg.print_criterion()))
        prints = sdg.print_call_vertices()
        if not 0 <= index < len(prints):
            raise ValueError(
                "print index %d out of range (program has %d prints)"
                % (index, len(prints))
            )
        return VERTICES, tuple(sorted(sdg.print_criterion([prints[index]])))
    items = list(criterion)
    if all(isinstance(item, int) for item in items):
        _require_vertices(sdg, items)
        return VERTICES, tuple(sorted(set(items)))
    configs = set()
    for item in items:
        vid, context = item
        if not isinstance(vid, int):
            raise ValueError("configuration criterion needs (vid, context) pairs")
        configs.add((vid, tuple(context)))
    _require_vertices(sdg, (vid for vid, _context in configs))
    return CONFIGS, tuple(sorted(configs))


def canonical_key(kind, payload, contexts):
    """The memo key for a normalized criterion.

    ``contexts`` only disambiguates vertex criteria (configuration-set
    and automaton criteria already pin their contexts down).
    """
    if kind == AUTOMATON:
        return (AUTOMATON,) + automaton_key(payload)
    if kind == VERTICES:
        return (VERTICES, payload, contexts)
    return (CONFIGS, payload)


def automaton_key(automaton):
    """A structural key: two automata with the same states/transitions
    canonicalize identically regardless of construction order."""
    return (
        frozenset(automaton.initials),
        frozenset(automaton.finals),
        frozenset(automaton.transitions()),
    )


def stable_key_digest(key):
    """A process-independent sha256 hex digest of a canonical cache key.

    In-memory memo keys are plain hashable tuples, but Python's ``hash``
    is salted per interpreter run, so the on-disk store needs its own
    deterministic serialization.  The rendering is
    :func:`repro.fsa.serialize.stable_render` — the same total order
    saturation-artifact payloads use — so the two layers cannot drift:
    frozensets (the automaton-key case) are ordered by their elements'
    renderings; everything else in a canonical key (ints, strings,
    None, nested tuples) already has a deterministic ``repr``.
    """
    return hashlib.sha256(_stable_render(key).encode("utf-8")).hexdigest()


def is_stable_key(key):
    """Whether a canonical key has a process-independent rendering.

    Vertex and configuration keys are built from ints and strings and
    always qualify.  Automaton keys qualify when every state and symbol
    is itself renderable — a user automaton whose states are arbitrary
    objects (default ``repr`` includes a memory address) is memoizable
    in process but must not be persisted, since its digest would not
    survive, or could collide across, interpreter runs.
    """
    if isinstance(key, (frozenset, set, tuple, list)):
        return all(is_stable_key(item) for item in key)
    return key is None or isinstance(key, (int, float, str, bytes, bool))


def _require_vertices(sdg, vids):
    for vid in vids:
        if vid not in sdg.vertices:
            raise ValueError("unknown SDG vertex id %r" % (vid,))
