"""Command-line interface: ``python -m repro <command> file.tc``.

Commands:

* ``info``      — parse a TinyC file and print SDG statistics.
* ``slice``     — specialization slice w.r.t. a print statement
  (``--print N``, default 0: the N-th print in the program) and emit
  the executable slice.
* ``slice-batch`` — many criteria in one session: load the program
  once, slice w.r.t. each requested print statement (``--prints
  0,2,5`` or ``--prints all``) through a shared
  :class:`repro.engine.SlicingSession`, fanning out over ``--jobs``
  workers (``--backend thread`` or ``process``), and report
  per-criterion sizes plus cache stats.  ``--cache-dir DIR`` backs the
  session with the persistent on-disk store, so re-running the batch
  in a new process answers from disk.  ``--reuse-from PREV_FILE``
  opens the session for a previous revision of the file and
  incrementally updates it to the current text (unchanged procedures
  keep their PDGs and saturations; see
  :mod:`repro.engine.incremental`).  ``--kernel {object,csr}`` picks
  the saturation kernel (default the ``REPRO_KERNEL`` environment
  knob; byte-identical results either way, see
  :mod:`repro.kernelcfg`).
* ``cache``     — manage the persistent store: ``cache stats``
  (``--json`` for machine-readable output; both forms break entries
  and bytes down per table, including the ``__procs__`` and
  ``__sats__`` shared tables, and report the active saturation kernel
  plus this process's kernel counters) and ``cache clear`` (all honor
  ``--cache-dir``, default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
* ``mono``      — the same criterion, Binkley's monovariant slice.
* ``remove``    — feature removal from a statement matched by
  ``--feature TEXT`` (substring of the statement's label).
* ``run``       — interpret the program; inputs from ``--inputs``.
* ``bta``       — polyvariant binding-time analysis from the
  ``input()`` statements.

The CLI is a thin veneer over the library API; each command returns the
text it prints so tests can drive it directly.
"""

import argparse
import sys

from repro.core import (
    binding_time_analysis,
    binkley_slice,
    dynamic_input_vertices,
    executable_program,
    lower_indirect_calls,
    monovariant_program,
    remove_feature,
    specialization_slice,
)
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg


def _load(path):
    with open(path) as handle:
        source = handle.read()
    program = parse(source)
    info = check(program)
    if info.has_indirect_calls:
        program, info = lower_indirect_calls(program, info)
    sdg = build_sdg(program, info)
    return program, info, sdg


def _print_criterion(sdg, index):
    prints = sdg.print_call_vertices()
    if not prints:
        raise SystemExit("error: the program has no print statements")
    if not 0 <= index < len(prints):
        raise SystemExit(
            "error: --print %d out of range (program has %d prints)"
            % (index, len(prints))
        )
    return sdg.print_criterion([prints[index]])


def cmd_info(args):
    program, _info, sdg = _load(args.file)
    kinds = {}
    for vertex in sdg.vertices.values():
        kinds[vertex.kind] = kinds.get(vertex.kind, 0) + 1
    lines = [
        "procedures:   %d" % len(program.procs),
        "vertices:     %d" % sdg.vertex_count(),
        "edges:        %d" % sdg.edge_count(),
        "call sites:   %d" % len(sdg.call_sites),
        "prints:       %d" % len(sdg.print_call_vertices()),
    ]
    for kind in sorted(kinds):
        lines.append("  %-12s %d" % (kind, kinds[kind]))
    return "\n".join(lines)


def cmd_slice(args):
    _program, _info, sdg = _load(args.file)
    criterion = _print_criterion(sdg, args.print_index)
    result = specialization_slice(sdg, criterion)
    executable = executable_program(result)
    header = "// specialization slice w.r.t. print #%d\n" % args.print_index
    versions = {
        proc: count for proc, count in result.version_counts().items() if count
    }
    header += "// versions: %s\n" % versions
    return header + pretty(executable.program)


def cmd_slice_batch(args):
    import time

    import repro

    with open(args.file) as handle:
        source = handle.read()
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("error: --jobs must be at least 1")
    update = None
    if args.reuse_from:
        # Incremental path: open (or revive) the session for the
        # previous revision of the file and update it to the current
        # text — unchanged procedures keep their PDGs and saturations.
        try:
            with open(args.reuse_from) as handle:
                previous = handle.read()
            session = repro.open_session(
                previous, cache_dir=args.cache_dir, kernel=args.kernel
            )
            update = session.update_source(source)
        except Exception as exc:
            raise SystemExit("error: --reuse-from update failed: %s" % exc)
    else:
        session = repro.open_session(
            source, cache_dir=args.cache_dir, kernel=args.kernel
        )
    prints = session.sdg.print_call_vertices()
    if not prints:
        raise SystemExit("error: the program has no print statements")
    if args.prints == "all":
        indices = list(range(len(prints)))
    else:
        try:
            indices = [int(chunk) for chunk in args.prints.split(",") if chunk]
        except ValueError:
            raise SystemExit("error: --prints expects 'all' or e.g. '0,2,5'")
    criteria = [("print", index) for index in indices]
    t0 = time.perf_counter()
    try:
        # Range validation lives in the engine's criterion resolution.
        results = session.slice_many(
            criteria,
            max_workers=args.jobs,
            backend=args.backend,
            batch_saturation=args.batch_saturation,
        )
    except ValueError as exc:
        raise SystemExit("error: %s" % exc)
    elapsed = time.perf_counter() - t0
    lines = []
    for index, result in zip(indices, results):
        versions = {
            proc: count for proc, count in result.version_counts().items() if count
        }
        lines.append(
            "print #%d: %d vertices, versions %s"
            % (index, result.sdg.vertex_count(), versions)
        )
    stats = session.stats
    lines.append(
        "batch: %d criteria in %.3fs (load %.3fs; slice hits/misses %d/%d)"
        % (
            len(criteria),
            elapsed,
            stats["load_seconds"],
            stats["slice_hits"],
            stats["slice_misses"],
        )
    )
    lines.append(
        "kernel: %s (%d rules compiled, %d worklist pops)"
        % (
            stats["kernel"],
            stats["kernel_rules_compiled"],
            stats["kernel_worklist_pops"],
        )
    )
    if stats.get("fused_batches"):
        lines.append(
            "fused: %d criteria saturated in %d batch pass%s"
            % (
                stats["fused_criteria"],
                stats["fused_batches"],
                "" if stats["fused_batches"] == 1 else "es",
            )
        )
    if stats.get("fused_process_batches"):
        lines.append(
            "fused process: %d worker sub-batch%s (sizes %s); "
            "compiled-PDS payload hits/misses %d/%d"
            % (
                stats["fused_process_batches"],
                "" if stats["fused_process_batches"] == 1 else "es",
                ",".join(str(n) for n in stats["fused_process_subbatch_sizes"]),
                stats.get("pds_payload_hits", 0),
                stats.get("pds_payload_misses", 0),
            )
        )
    if update is not None:
        lines.append(
            "reuse: %d/%d procedures kept, %d saturations kept / %d dropped (%s path)"
            % (
                update["procs_reused"],
                update["procs_reused"] + update["procs_rebuilt"],
                update.get("saturations_kept", 0),
                update.get("saturations_dropped", 0),
                "fast" if update["fast_path"] else "slow",
            )
        )
    if session.store is not None:
        lines.append(
            "store: %s (front half %s, %d/%d procedure parts; "
            "persist hits/misses %d/%d; saturations %d/%d; adopted %d)"
            % (
                session.store.cache_dir,
                "warm" if stats["front_half_from_store"] else "cold",
                stats["front_half_parts_hits"],
                stats["front_half_parts_total"],
                stats["persist_hits"],
                stats["persist_misses"],
                stats["sat_persist_hits"],
                stats["sat_persist_misses"],
                stats["sats_adopted"],
            )
        )
    return "\n".join(lines)


#: how the stats tables are spelled for users: the on-disk directory
#: name for the shared content-addressed tables, the role for the rest.
_TABLE_LABELS = {
    "fronthalf": "front-half",
    "proc": "__procs__",
    "sat": "__sats__",
    "idx": "__sats__ idx",
    "pds": "__pds__",
}


def cmd_cache(args):
    from repro import kernelcfg
    from repro.pds.kernel import KERNEL_TOTALS
    from repro.store import open_store

    store = open_store(args.cache_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        # The saturation kernel in effect and this process's kernel
        # counters ride along so batch drivers scraping the JSON see
        # which kernel produced the entries they are about to reuse.
        stats["kernel"] = {
            "name": kernelcfg.resolve_kernel(None),
            "rules_compiled": KERNEL_TOTALS["rules_compiled"],
            "worklist_pops": KERNEL_TOTALS["worklist_pops"],
            "compile_hits": KERNEL_TOTALS["compile_hits"],
            "compile_misses": KERNEL_TOTALS["compile_misses"],
            "payload_hits": KERNEL_TOTALS["payload_hits"],
            "payload_misses": KERNEL_TOTALS["payload_misses"],
        }
        if getattr(args, "as_json", False):
            import json

            return json.dumps(stats, indent=2, sort_keys=True)
        lines = [
            "cache dir:    %s" % stats["cache_dir"],
            "version:      %d" % stats["version"],
            "programs:     %d" % stats["programs"],
            "entries:      %d" % stats["entries"],
            "total bytes:  %d" % stats["total_bytes"],
            "size cap:     %d" % stats["max_bytes"],
            "kernel:       %s" % stats["kernel"]["name"],
            "lifetime:     %d evictions, %d compactions, %d index records pruned"
            % (
                stats["lifetime"]["evictions"],
                stats["lifetime"]["compactions"],
                stats["lifetime"]["gc_index_pruned"],
            ),
            "this process: %d write errors, %d config errors, "
            "%d index hits / %d misses"
            % (
                stats["write_errors"],
                stats["config_errors"],
                stats["index_hits"],
                stats["index_misses"],
            ),
        ]
        for table in sorted(stats["tables"]):
            lines.append(
                "  %-14s %5d entries  %10d bytes"
                % (
                    _TABLE_LABELS.get(table, table),
                    stats["tables"][table],
                    stats["table_bytes"].get(table, 0),
                )
            )
        return "\n".join(lines)
    removed = store.clear()
    return "removed %d entries from %s" % (removed, store.cache_dir)


def cmd_mono(args):
    _program, _info, sdg = _load(args.file)
    criterion = _print_criterion(sdg, args.print_index)
    result = binkley_slice(sdg, criterion)
    executable = monovariant_program(sdg, result.slice_set)
    header = (
        "// monovariant (Binkley) slice w.r.t. print #%d; %d extra elements\n"
        % (args.print_index, len(result.added))
    )
    return header + pretty(executable.program)


def cmd_remove(args):
    from repro.core.feature_removal import feature_seeds

    _program, _info, sdg = _load(args.file)
    try:
        seeds = feature_seeds(sdg, args.feature)
    except ValueError as exc:
        raise SystemExit("error: %s" % exc)
    result = remove_feature(sdg, seeds)
    executable = executable_program(result)
    return "// feature %r removed\n" % args.feature + pretty(executable.program)


def cmd_run(args):
    program, _info, _sdg = _load(args.file)
    inputs = [int(chunk) for chunk in args.inputs.split(",")] if args.inputs else []
    result = run_program(program, inputs, max_steps=args.max_steps)
    out = result.render()
    out += "[%d steps]" % result.steps
    if result.exit_code is not None:
        out += " [exit %d]" % result.exit_code
    return out


def cmd_bta(args):
    _program, _info, sdg = _load(args.file)
    dynamic = dynamic_input_vertices(sdg)
    result = binding_time_analysis(sdg, dynamic)
    if not result.divisions:
        return "program is fully static (no input() reached)"
    return result.report()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Specialization slicing (Aung, Horwitz, Joiner, Reps; PLDI 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="SDG statistics")
    p_info.add_argument("file")
    p_info.set_defaults(func=cmd_info)

    p_slice = sub.add_parser("slice", help="polyvariant executable slice")
    p_slice.add_argument("file")
    p_slice.add_argument("--print", dest="print_index", type=int, default=0)
    p_slice.set_defaults(func=cmd_slice)

    p_batch = sub.add_parser(
        "slice-batch", help="many slices through one shared session"
    )
    p_batch.add_argument("file")
    p_batch.add_argument(
        "--prints",
        default="all",
        help="comma-separated print indices, or 'all' (default)",
    )
    p_batch.add_argument("--jobs", type=int, default=None)
    p_batch.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="worker pool kind (process = true CPU parallelism; "
        "default: the REPRO_SLICE_BACKEND env knob, thread when unset)",
    )
    p_batch.add_argument(
        "--cache-dir",
        default=None,
        help="back the session with the persistent slice store at DIR",
    )
    p_batch.add_argument(
        "--reuse-from",
        dest="reuse_from",
        default=None,
        metavar="PREV_FILE",
        help="incrementally update the session for PREV_FILE (a previous "
        "revision of FILE) instead of building from scratch",
    )
    p_batch.add_argument(
        "--kernel",
        choices=("object", "csr"),
        default=None,
        help="saturation kernel (default: $REPRO_KERNEL or 'object'; "
        "results are byte-identical either way)",
    )
    p_batch.add_argument(
        "--batch-saturation",
        dest="batch_saturation",
        choices=("auto", "on", "off"),
        default=None,
        help="fuse the batch's cold saturations into one csr kernel "
        "pass (default: $REPRO_BATCH_SATURATION or 'auto'; results "
        "are byte-identical either way)",
    )
    p_batch.set_defaults(func=cmd_slice_batch)

    p_cache = sub.add_parser("cache", help="manage the persistent slice store")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser("stats", help="store shape and counters")
    p_cache_stats.add_argument("--cache-dir", default=None)
    p_cache_stats.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the full stats dict (per-table entry and byte "
        "counts included) as JSON",
    )
    p_cache_stats.set_defaults(func=cmd_cache)
    p_cache_clear = cache_sub.add_parser("clear", help="delete every entry")
    p_cache_clear.add_argument("--cache-dir", default=None)
    p_cache_clear.set_defaults(func=cmd_cache)

    p_mono = sub.add_parser("mono", help="monovariant (Binkley) slice")
    p_mono.add_argument("file")
    p_mono.add_argument("--print", dest="print_index", type=int, default=0)
    p_mono.set_defaults(func=cmd_mono)

    p_remove = sub.add_parser("remove", help="feature removal")
    p_remove.add_argument("file")
    p_remove.add_argument("--feature", required=True)
    p_remove.set_defaults(func=cmd_remove)

    p_run = sub.add_parser("run", help="interpret the program")
    p_run.add_argument("file")
    p_run.add_argument("--inputs", default="")
    p_run.add_argument("--max-steps", type=int, default=1_000_000)
    p_run.set_defaults(func=cmd_run)

    p_bta = sub.add_parser("bta", help="binding-time analysis")
    p_bta.add_argument("file")
    p_bta.set_defaults(func=cmd_bta)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    output = args.func(args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
