"""Pushdown-system data structures (Defn. 3.1).

A rule ``<p, γ> ↪ <p', w>`` with ``|w| ≤ 2`` is a *pop* rule (``w = ε``),
an *internal* rule (``|w| = 1``), or a *push* rule (``|w| = 2``).
"""


class Rule(object):
    """One PDS rule ``<p, gamma> -> <p2, w>`` with ``w`` a tuple of 0-2
    stack symbols."""

    __slots__ = ("p", "gamma", "p2", "w")

    def __init__(self, p, gamma, p2, w):
        w = tuple(w)
        if len(w) > 2:
            raise ValueError("PDS rules are restricted to |w| <= 2")
        self.p = p
        self.gamma = gamma
        self.p2 = p2
        self.w = w

    @property
    def kind(self):
        return ("pop", "internal", "push")[len(self.w)]

    def __repr__(self):
        return "<%r, %r> -> <%r, %r>" % (self.p, self.gamma, self.p2, self.w)

    def __eq__(self, other):
        if not isinstance(other, Rule):
            return NotImplemented
        return (self.p, self.gamma, self.p2, self.w) == (
            other.p,
            other.gamma,
            other.p2,
            other.w,
        )

    def __hash__(self):
        return hash((self.p, self.gamma, self.p2, self.w))


class PushdownSystem(object):
    """A PDS: control locations, stack symbols, rules, with the indexes
    the saturation procedures need."""

    def __init__(self):
        self.control_locations = set()
        self.stack_symbols = set()
        self.rules = []
        # Indexes for Prestar: match rules by their *right-hand side*.
        self.internal_by_rhs = {}  # (p2, w0) -> [rule]
        self.push_by_rhs_head = {}  # (p2, w0) -> [rule]
        self.pop_rules = []
        # Indexes for Poststar: match rules by their *left-hand side*.
        self.by_lhs = {}  # (p, gamma) -> [rule]

    def add_rule(self, p, gamma, p2, w):
        rule = Rule(p, gamma, p2, w)
        self.rules.append(rule)
        self.control_locations.add(p)
        self.control_locations.add(p2)
        self.stack_symbols.add(gamma)
        self.stack_symbols.update(rule.w)
        if rule.kind == "pop":
            self.pop_rules.append(rule)
        elif rule.kind == "internal":
            self.internal_by_rhs.setdefault((p2, rule.w[0]), []).append(rule)
        else:
            self.push_by_rhs_head.setdefault((p2, rule.w[0]), []).append(rule)
        self.by_lhs.setdefault((p, gamma), []).append(rule)
        return rule

    def rule_count(self):
        return len(self.rules)

    def step(self, config):
        """All one-step successors of a configuration ``(p, stack)``
        where ``stack`` is a tuple with the top at index 0.  Used by
        tests to cross-check saturation results against brute-force
        reachability."""
        p, stack = config
        if not stack:
            return []
        gamma, rest = stack[0], stack[1:]
        result = []
        for rule in self.by_lhs.get((p, gamma), ()):
            result.append((rule.p2, rule.w + rest))
        return result

    def __repr__(self):
        return "PushdownSystem(%d locations, %d symbols, %d rules)" % (
            len(self.control_locations),
            len(self.stack_symbols),
            len(self.rules),
        )
