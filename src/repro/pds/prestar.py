"""The Prestar saturation procedure (Defn. 3.6).

Given a PDS ``P`` and a P-automaton ``A`` accepting a regular set of
configurations ``C``, produces a P-automaton accepting ``pre*(C)`` — for
an SDG-encoding PDS, the *stack-configuration slice* (the closure slice
of the unrolled SDG).

This is the efficient worklist algorithm of Esparza–Hansel–Rossmanith–
Schwoon (2000), O(|Q|^2 |Δ|) time: transitions are added according to

    Pre1:  t ∈ A                            =>  t ∈ A_pre*
    Pre2:  <p,γ> ↪ <p',w> ∈ Δ, p' -w->* q   =>  (p,γ,q) ∈ A_pre*

Push rules ``<p,γ> ↪ <p',γ'γ''>`` are matched incrementally: when a
transition ``(p',γ',q1)`` appears, a *pending* entry ``(q1,γ'') ->
(p,γ)`` is recorded; when ``(q1,γ'',q2)`` appears (before or after), the
transition ``(p,γ,q2)`` is emitted.
"""

from collections import deque

from repro import kernelcfg
from repro.fsa.automaton import FiniteAutomaton


def prestar(pds, automaton, trim=False, kernel=None, stats=None):
    """Saturate ``automaton`` with pre* transitions; returns a new
    :class:`FiniteAutomaton` (the input is not modified).

    The input automaton must not have transitions *into* initial
    (control-location) states, and must be epsilon-free — both hold for
    query automata built by :mod:`repro.core.criteria`.

    ``trim=True`` restricts the result to its useful part before
    returning it (language-preserving from every initial state) — the
    form :class:`repro.engine.artifacts.SaturationArtifact` carries, so
    the symbol footprint is emitted by the saturation itself rather
    than recomputed post-hoc at invalidation time.

    ``kernel`` selects the implementation (:mod:`repro.kernelcfg`;
    default: the ``REPRO_KERNEL`` environment knob): ``"object"`` runs
    the dict-of-sets loop below, ``"csr"`` the flat integer kernel of
    :mod:`repro.pds.kernel` — both produce structurally identical
    automata.  ``stats``, when given, accumulates the kernel counters
    (``kernel_worklist_pops``, ``kernel_rules_compiled``).
    """
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.pds.kernel import prestar_csr

        return prestar_csr(pds, automaton, trim=trim, stats=stats)
    rel = set()
    by_source_symbol = {}  # (q, γ) -> set of q2 with (q, γ, q2) ∈ rel
    pending = {}  # (q, γ) -> list of (p, γp) waiting for (q, γ, ·)
    trans = deque()

    for triple in automaton.transitions():
        trans.append(triple)
    for rule in pds.pop_rules:
        # <p,γ> ↪ <p',ε>:  p' -ε->* p'  =>  (p, γ, p')
        trans.append((rule.p, rule.gamma, rule.p2))

    pops = 0
    while trans:
        pops += 1
        q, gamma, q1 = trans.popleft()
        if (q, gamma, q1) in rel:
            continue
        rel.add((q, gamma, q1))
        by_source_symbol.setdefault((q, gamma), set()).add(q1)

        # Internal rules <p,γp> ↪ <q,γ>: new transition (p, γp, q1).
        for rule in pds.internal_by_rhs.get((q, gamma), ()):
            trans.append((rule.p, rule.gamma, q1))

        # Push rules <p,γp> ↪ <q, γ γ2>: need q1 -γ2-> q2.
        for rule in pds.push_by_rhs_head.get((q, gamma), ()):
            gamma2 = rule.w[1]
            pending.setdefault((q1, gamma2), []).append((rule.p, rule.gamma))
            for q2 in by_source_symbol.get((q1, gamma2), ()):
                trans.append((rule.p, rule.gamma, q2))

        # This transition may complete earlier partial push matches.
        for (p, gamma_p) in pending.get((q, gamma), ()):
            trans.append((p, gamma_p, q1))

    if stats is not None:
        stats["kernel_worklist_pops"] = (
            stats.get("kernel_worklist_pops", 0) + pops
        )

    result = FiniteAutomaton()
    for state in pds.control_locations:
        result.add_initial(state)
    for state in automaton.initials:
        result.add_initial(state)
    for state in automaton.finals:
        result.add_final(state)
    for state in automaton.states:
        result.add_state(state)
    for (q, gamma, q1) in rel:
        result.add_transition(q, gamma, q1)
    return result.trim() if trim else result


def prestar_many(pds, automata, trim=False, kernel=None, stats=None):
    """Saturate a batch of query automata against one ``pds``.

    Under the ``csr`` kernel this runs the *fused* multi-criterion
    saturation (:func:`repro.pds.kernel.prestar_many_csr`): one worklist
    pass with criterion-membership bitsets, sharing every rule lookup
    across the batch.  The object kernel has no fused form — it falls
    back to one :func:`prestar` per automaton.  Either way the result
    list is positionally aligned with ``automata`` and each element is
    structurally identical to the corresponding single-criterion call.
    """
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.pds.kernel import prestar_many_csr

        return prestar_many_csr(pds, automata, trim=trim, stats=stats)
    return [
        prestar(pds, automaton, trim=trim, kernel=kernelcfg.OBJECT, stats=stats)
        for automaton in automata
    ]
