"""Encoding an SDG as a PDS (Defn. 3.2, Fig. 8).

Stack symbols are SDG vertex ids (ints) and call-site labels (strings
"C1", "C2", ...), which are disjoint.  A single main control location
``p`` is used everywhere except for parameter-out edges, which introduce
one control location per formal-out vertex:

    flow/control/library edge u -> v      <p, u>   ↪ <p, v>
    call edge c -> e at site C            <p, c>   ↪ <p, e C>
    param-in edge ai -> fi at site C      <p, ai>  ↪ <p, fi C>
    param-out edge fo -> ao at site C     <p, fo>  ↪ <p_fo, ε>
                                          <p_fo, C> ↪ <p, ao>

Summary edges are *not* encoded (the PDS machinery subsumes them).
The transition relation of the encoded PDS is the unrolled SDG
(Defn. 3.4): a configuration ``(p, v C_k ... C_1)`` is the unrolled-SDG
vertex for PDG vertex ``v`` in calling context ``C_k ... C_1`` (top of
stack first, ``main`` at the bottom).
"""

from repro.sdg.graph import CALL, CONTROL, FLOW, LIBRARY, PARAM_IN, PARAM_OUT
from repro.pds.system import PushdownSystem

MAIN_LOCATION = "p"


class SDGEncoding(object):
    """The PDS encoding of an SDG, with the bookkeeping needed to
    interpret automaton states and symbols back in SDG terms."""

    def __init__(self, sdg):
        self.sdg = sdg
        self.pds = PushdownSystem()
        self.main_location = MAIN_LOCATION
        self.fo_location = {}  # formal-out vid -> control location
        self.vertex_symbols = set()
        self.site_symbols = set()
        self._build()

    def _build(self):
        sdg, pds = self.sdg, self.pds
        pds.control_locations.add(MAIN_LOCATION)
        self.vertex_symbols = set(sdg.vertices)
        self.site_symbols = set(sdg.call_sites)

        for (src, dst, kind) in sdg.edges():
            if kind in (CONTROL, FLOW, LIBRARY):
                pds.add_rule(MAIN_LOCATION, src, MAIN_LOCATION, (dst,))
            elif kind == CALL:
                site = sdg.vertices[src].site_label
                pds.add_rule(MAIN_LOCATION, src, MAIN_LOCATION, (dst, site))
            elif kind == PARAM_IN:
                site = sdg.vertices[src].site_label
                pds.add_rule(MAIN_LOCATION, src, MAIN_LOCATION, (dst, site))
            elif kind == PARAM_OUT:
                fo, ao = src, dst
                site = sdg.vertices[ao].site_label
                loc = self._fo_loc(fo)
                pds.add_rule(loc, site, MAIN_LOCATION, (ao,))
            # SUMMARY edges intentionally skipped.

        # One pop rule per formal-out vertex that has outgoing param-out
        # edges (added above lazily via _fo_loc).
        for fo, loc in self.fo_location.items():
            pds.add_rule(MAIN_LOCATION, fo, loc, ())

    def _fo_loc(self, fo):
        if fo not in self.fo_location:
            self.fo_location[fo] = ("p_fo", fo)
        return self.fo_location[fo]

    # -- interpretation helpers ------------------------------------------------

    def alphabet(self):
        """All stack symbols (vertex ids and call-site labels)."""
        return self.vertex_symbols | self.site_symbols

    def is_vertex_symbol(self, symbol):
        return symbol in self.vertex_symbols

    def is_site_symbol(self, symbol):
        return symbol in self.site_symbols

    def elems(self, automaton):
        """``Elems``: the PDG vertices appearing as the first symbol of
        an accepted configuration word — i.e., labels of transitions out
        of the main control location that can reach a final state.

        Works on any P-automaton whose configuration language is read
        from the ``p`` initial state.
        """
        trimmed = automaton.trim()
        result = set()
        for (src, symbol, _dst) in trimmed.transitions():
            if src == self.main_location and symbol in self.vertex_symbols:
                result.add(symbol)
        return result


def encode_sdg(sdg):
    """Encode ``sdg`` as a PDS; returns an :class:`SDGEncoding`.

    The encoding is cached on the SDG (it is criterion-independent), so
    taking many slices of one program pays the encoding cost once.
    """
    cached = getattr(sdg, "_pds_encoding", None)
    if cached is None:
        cached = SDGEncoding(sdg)
        sdg._pds_encoding = cached
    return cached
