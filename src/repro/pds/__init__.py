"""Pushdown systems (the WALi substitute).

* :mod:`repro.pds.system` — PDS rules and classification.
* :mod:`repro.pds.prestar` / :mod:`repro.pds.poststar` — the
  Bouajjani–Esparza–Maler / Finkel–Willems–Wolper saturation procedures,
  in the efficient formulations of Esparza et al. (2000) / Schwoon
  (2002).
* :mod:`repro.pds.encode` — the Fig. 8 encoding of an SDG as a PDS,
  whose transition relation *is* the unrolled SDG (Defn. 3.4).
"""

from repro.pds.encode import SDGEncoding, encode_sdg
from repro.pds.poststar import poststar, poststar_many
from repro.pds.prestar import prestar, prestar_many
from repro.pds.system import PushdownSystem, Rule

__all__ = [
    "PushdownSystem",
    "Rule",
    "SDGEncoding",
    "encode_sdg",
    "poststar",
    "poststar_many",
    "prestar",
    "prestar_many",
]
