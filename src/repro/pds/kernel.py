"""The ``csr`` saturation kernel: flat, integer-indexed ``post*`` /
``pre*``.

The object saturations (:mod:`repro.pds.poststar`,
:mod:`repro.pds.prestar`) spend their inner loops hashing tuples: every
worklist item is a ``(state, symbol, state)`` triple of arbitrary
objects, every rule lookup a dict probe on an object pair.  This module
runs the same algorithms over machine ints:

* the PDS is *compiled* once per :class:`~repro.pds.system
  .PushdownSystem` — rules sorted into CSR-style parallel arrays
  (``rule_kind`` / ``rule_p2`` / ``rule_w0`` / ``rule_w1`` /
  ``rule_mid``) indexed by a row table keyed on the packed
  ``control-state * nsyms + stack-symbol`` left-hand-side code, plus
  packed right-hand-side indexes for Prestar and a precomputed table of
  Poststar mid states;
* per call, automaton states and any symbols the query introduces
  beyond the PDS alphabet get dense ids after the compiled ones, and
  every transition becomes one int ``(src * NS + sym) * NQ + dst``
  (epsilon transitions ride as negative codes), with successor sets as
  int bitsets;
* the saturation worklists then push, pop, dedup, and index nothing
  but ints; only the final fixpoint is decoded back into a
  :class:`~repro.fsa.automaton.FiniteAutomaton`.

Both saturations compute least fixpoints, so the decoded result is
*structurally identical* to the object kernel's — same state objects
(control locations, query states, ``("__post__", p, γ)`` mid states),
same transition sets — and everything downstream (serialization, store
digests, artifact footprints) is byte-for-byte unchanged.  That
contract is pinned by ``tests/test_kernel_differential.py`` and
``tests/test_kernel_properties.py``.

The compiled form is cached in a :class:`weakref.WeakKeyDictionary`
keyed by the PDS object — deliberately *not* as a PDS attribute,
because the PDS travels inside pickled SDG store bundles
(``SDG.__getstate__`` keeps the encoding) and the compiled arrays must
never leak into store bytes.
"""

import hashlib
import weakref
from collections import deque

from repro.fsa.automaton import EPSILON
from repro.fsa.intcodec import decode_packed_rows, iter_bits, trim_packed_rows
from repro.fsa.intops import eliminate_epsilon_rows

#: process-wide kernel counters (diagnostics; ``repro cache stats
#: --json`` and the benchmarks read session-level copies instead).
#: ``compile_hits``/``compile_misses`` count how often a saturation
#: found its PDS already compiled versus had to compile it;
#: ``payload_hits``/``payload_misses`` count relocatable-payload
#: adoptions (:func:`adopt_payload`) versus consults that fell back to
#: a fresh compile (absent, corrupt, or mismatched payload).
KERNEL_TOTALS = {
    "rules_compiled": 0,
    "worklist_pops": 0,
    "compile_hits": 0,
    "compile_misses": 0,
    "payload_hits": 0,
    "payload_misses": 0,
}

#: Layout version of the relocatable payload tuple
#: (:func:`compiled_payload`).  Bump on any shape change — persisted
#: payloads from other versions then fail decode and degrade to a
#: recompile.
PAYLOAD_VERSION = 1


class CompiledPDS(object):
    """A :class:`PushdownSystem` flattened to int arrays (see the
    module docstring).  State ids: control locations first
    (``[0, nlocs)``), then the Poststar mid states
    (``[nlocs, nlocs + nmids)``); per-call query states are appended
    after these.  Symbol ids: the PDS stack symbols ``[0, nsyms)``;
    query-only symbols are appended per call."""

    __slots__ = (
        "nlocs",
        "nsyms",
        "nmids",
        "rule_count",
        "loc_list",
        "loc_index",
        "sym_list",
        "sym_index",
        "mid_states",
        "post_rows",
        "rule_kind",
        "rule_p2",
        "rule_w0",
        "rule_w1",
        "rule_mid",
        "internal_rows",
        "push_rows",
        "pop_rules",
        "_encoded",
    )

    def __init__(self, pds):
        loc_index = self.loc_index = {}
        loc_list = self.loc_list = []
        sym_index = self.sym_index = {}
        sym_list = self.sym_list = []

        def loc_id(location):
            lid = loc_index.get(location)
            if lid is None:
                lid = loc_index[location] = len(loc_list)
                loc_list.append(location)
            return lid

        def sym_id(symbol):
            sid = sym_index.get(symbol)
            if sid is None:
                sid = sym_index[symbol] = len(sym_list)
                sym_list.append(symbol)
            return sid

        # Rules name every control location and stack symbol the PDS
        # has (``add_rule`` is the only way either set grows).
        encoded = []
        for rule in pds.rules:
            p = loc_id(rule.p)
            gamma = sym_id(rule.gamma)
            p2 = loc_id(rule.p2)
            w = tuple(sym_id(symbol) for symbol in rule.w)
            encoded.append((p, gamma, p2, w))
        self._derive(tuple(encoded))

    @classmethod
    def _from_tables(cls, loc_list, sym_list, encoded):
        """Rebuild from the id tables and encoded rules alone (the
        relocatable-payload path — no PDS object on this side of the
        process boundary).  The derived tables are a pure function of
        these inputs, so the result is indistinguishable from a fresh
        compile of the originating PDS."""
        comp = cls.__new__(cls)
        comp.loc_list = list(loc_list)
        comp.loc_index = {loc: i for i, loc in enumerate(comp.loc_list)}
        comp.sym_list = list(sym_list)
        comp.sym_index = {sym: i for i, sym in enumerate(comp.sym_list)}
        comp._derive(tuple(encoded))
        return comp

    def _derive(self, encoded):
        loc_list = self.loc_list
        sym_list = self.sym_list
        self._encoded = encoded
        nlocs = self.nlocs = len(loc_list)
        nsyms = self.nsyms = len(sym_list)
        self.rule_count = len(encoded)

        # Poststar mid states, precomputed per distinct push right-hand
        # side head so the saturation allocates nothing: the object
        # kernel's ``("__post__", p2, gamma1)`` keys, ids after the
        # control locations.
        mid_states = self.mid_states = []
        mid_of = {}
        for p, gamma, p2, w in encoded:
            if len(w) == 2 and (p2, w[0]) not in mid_of:
                mid_of[(p2, w[0])] = nlocs + len(mid_states)
                mid_states.append(
                    ("__post__", loc_list[p2], sym_list[w[0]])
                )
        self.nmids = len(mid_states)

        # Poststar index: rules in CSR layout, sorted by packed
        # left-hand side, with a row table mapping each occupied
        # ``p * nsyms + gamma`` code to its [start, end) slice.
        order = sorted(
            range(len(encoded)),
            key=lambda i: encoded[i][0] * nsyms + encoded[i][1],
        )
        kind = self.rule_kind = []
        rp2 = self.rule_p2 = []
        rw0 = self.rule_w0 = []
        rw1 = self.rule_w1 = []
        rmid = self.rule_mid = []
        rows = self.post_rows = {}
        for position, i in enumerate(order):
            p, gamma, p2, w = encoded[i]
            code = p * nsyms + gamma
            start, _end = rows.get(code, (position, position))
            rows[code] = (start, position + 1)
            kind.append(len(w))
            rp2.append(p2)
            rw0.append(w[0] if w else -1)
            rw1.append(w[1] if len(w) == 2 else -1)
            rmid.append(mid_of[(p2, w[0])] if len(w) == 2 else -1)

        # Prestar indexes: left-hand sides to fire, keyed by the packed
        # right-hand-side (head) code.
        internal_rows = self.internal_rows = {}
        push_rows = self.push_rows = {}
        pop_rules = self.pop_rules = []
        for p, gamma, p2, w in encoded:
            lhs = p * nsyms + gamma
            if not w:
                pop_rules.append((lhs, p2))
            elif len(w) == 1:
                internal_rows.setdefault(p2 * nsyms + w[0], []).append(lhs)
            else:
                push_rows.setdefault(p2 * nsyms + w[0], []).append((lhs, w[1]))


_COMPILED = weakref.WeakKeyDictionary()


def compiled_pds(pds, stats=None):
    """The compiled form of ``pds``, built on first use and cached for
    the PDS object's lifetime.  Every lookup is counted
    (``compile_hits``/``compile_misses`` in :data:`KERNEL_TOTALS` and,
    with a ``stats`` sink, ``kernel_compile_hits``/``_misses``), so the
    one-compile-per-PDS economics are observable end to end."""
    comp = _COMPILED.get(pds)
    if comp is None:
        comp = CompiledPDS(pds)
        _COMPILED[pds] = comp
        KERNEL_TOTALS["rules_compiled"] += comp.rule_count
        KERNEL_TOTALS["compile_misses"] += 1
        if stats is not None:
            stats["kernel_rules_compiled"] = (
                stats.get("kernel_rules_compiled", 0) + comp.rule_count
            )
            stats["kernel_compile_misses"] = (
                stats.get("kernel_compile_misses", 0) + 1
            )
    else:
        KERNEL_TOTALS["compile_hits"] += 1
        if stats is not None:
            stats["kernel_compile_hits"] = (
                stats.get("kernel_compile_hits", 0) + 1
            )
    return comp


# -- relocatable payload form ------------------------------------------------
#
# The compiled form never crosses a process boundary as an object graph
# (the WeakKeyDictionary cache above is process-local by construction,
# and the derived tables reference live location/symbol objects).  The
# payload form below is the portable twin: a flat tuple of ints and
# strings — deterministic for a given PDS, picklable, checksummable —
# from which ``compiled_from_payload`` rebuilds a CompiledPDS without
# ever seeing the PDS, the SDG, or the source.  The engine persists it
# in the store's ``__pds__`` table keyed by front-half hash and ships
# it to process-pool workers through the pool initializer.
#
# The universe it covers is exactly the Fig. 8 encoding's
# (:mod:`repro.pds.encode`): control locations are strings (``"p"``)
# or ``("p_fo", vid)`` pairs; stack symbols are vertex ids (ints ≥ 0)
# or site-label strings.  Anything else — arbitrary test PDSs — raises
# :class:`ValueError` and the caller simply skips persistence.
#
# Layout (PAYLOAD_VERSION 1)::
#
#     ("cpds", version, loc_codes, loc_strs, sym_codes, sym_strs, rule_ints)
#
# ``loc_codes[i]``: ``v >= 0`` ⇔ ``("p_fo", v)``; ``-(k+1)`` ⇔
# ``loc_strs[k]``.  ``sym_codes[i]``: ``v >= 0`` ⇔ vertex id ``v``;
# ``-(k+1)`` ⇔ ``sym_strs[k]``.  ``rule_ints`` is the encoded rule
# list at stride 6: ``p, gamma, p2, |w|, w0, w1`` with ``-1`` fillers.


def compiled_payload(comp):
    """The relocatable flat-tuple form of a :class:`CompiledPDS` (see
    the section comment above).  Deterministic: equal compiled forms
    yield equal payloads, across processes and machines.  Raises
    :class:`ValueError` for location/symbol shapes outside the SDG
    encoding's universe."""
    loc_codes = []
    loc_strs = []
    loc_str_index = {}
    for location in comp.loc_list:
        if (
            type(location) is tuple
            and len(location) == 2
            and location[0] == "p_fo"
            and type(location[1]) is int
            and location[1] >= 0
        ):
            loc_codes.append(location[1])
        elif type(location) is str:
            k = loc_str_index.setdefault(location, len(loc_strs))
            if k == len(loc_strs):
                loc_strs.append(location)
            loc_codes.append(-(k + 1))
        else:
            raise ValueError(
                "control location %r has no payload form" % (location,)
            )
    sym_codes = []
    sym_strs = []
    sym_str_index = {}
    for symbol in comp.sym_list:
        if type(symbol) is int and symbol >= 0:
            sym_codes.append(symbol)
        elif type(symbol) is str:
            k = sym_str_index.setdefault(symbol, len(sym_strs))
            if k == len(sym_strs):
                sym_strs.append(symbol)
            sym_codes.append(-(k + 1))
        else:
            raise ValueError(
                "stack symbol %r has no payload form" % (symbol,)
            )
    rule_ints = []
    for p, gamma, p2, w in comp._encoded:
        rule_ints.extend(
            (
                p,
                gamma,
                p2,
                len(w),
                w[0] if w else -1,
                w[1] if len(w) == 2 else -1,
            )
        )
    return (
        "cpds",
        PAYLOAD_VERSION,
        tuple(loc_codes),
        tuple(loc_strs),
        tuple(sym_codes),
        tuple(sym_strs),
        tuple(rule_ints),
    )


def payload_digest(payload):
    """A stable hex digest of a payload tuple — equal across processes
    for equal payloads (everything in the tuple has a deterministic
    ``repr``)."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def compiled_from_payload(payload):
    """Rebuild a :class:`CompiledPDS` from :func:`compiled_payload`'s
    tuple.  Strict: any malformed shape — wrong tag or version, codes
    out of range, duplicate table entries, torn rule stride — raises
    :class:`ValueError` so callers degrade to a recompile instead of
    saturating over garbage."""
    return CompiledPDS._from_tables(*_payload_tables(payload))


def _payload_tables(payload):
    """Decode and validate a payload into ``(loc_list, sym_list,
    encoded)`` — the raw tables :meth:`CompiledPDS._from_tables`
    derives from.  Raises :class:`ValueError` on any malformation."""
    if type(payload) is not tuple or len(payload) != 7:
        raise ValueError("not a compiled-PDS payload")
    tag, version, loc_codes, loc_strs, sym_codes, sym_strs, rule_ints = payload
    if tag != "cpds" or version != PAYLOAD_VERSION:
        raise ValueError("unknown compiled-PDS payload version")
    for part in (loc_codes, loc_strs, sym_codes, sym_strs, rule_ints):
        if type(part) is not tuple:
            raise ValueError("malformed compiled-PDS payload")
    if not all(type(s) is str for s in loc_strs) or not all(
        type(s) is str for s in sym_strs
    ):
        raise ValueError("malformed compiled-PDS string table")

    loc_list = []
    for code in loc_codes:
        if type(code) is not int:
            raise ValueError("malformed location code %r" % (code,))
        if code >= 0:
            loc_list.append(("p_fo", code))
        elif -code - 1 < len(loc_strs):
            loc_list.append(loc_strs[-code - 1])
        else:
            raise ValueError("location code %d out of range" % code)
    sym_list = []
    for code in sym_codes:
        if type(code) is not int:
            raise ValueError("malformed symbol code %r" % (code,))
        if code >= 0:
            sym_list.append(code)
        elif -code - 1 < len(sym_strs):
            sym_list.append(sym_strs[-code - 1])
        else:
            raise ValueError("symbol code %d out of range" % code)
    if len(set(loc_list)) != len(loc_list) or len(set(sym_list)) != len(sym_list):
        raise ValueError("duplicate entries in compiled-PDS id tables")

    nlocs = len(loc_list)
    nsyms = len(sym_list)
    if len(rule_ints) % 6:
        raise ValueError("torn compiled-PDS rule array")
    encoded = []
    for r in range(0, len(rule_ints), 6):
        p, gamma, p2, wlen, w0, w1 = rule_ints[r : r + 6]
        if not all(type(v) is int for v in (p, gamma, p2, wlen, w0, w1)):
            raise ValueError("malformed compiled-PDS rule")
        if not (0 <= p < nlocs and 0 <= p2 < nlocs and 0 <= gamma < nsyms):
            raise ValueError("compiled-PDS rule indexes out of range")
        if wlen == 0:
            w = ()
        elif wlen == 1 and 0 <= w0 < nsyms:
            w = (w0,)
        elif wlen == 2 and 0 <= w0 < nsyms and 0 <= w1 < nsyms:
            w = (w0, w1)
        else:
            raise ValueError("malformed compiled-PDS rule right-hand side")
        encoded.append((p, gamma, p2, w))
    return loc_list, sym_list, encoded


def adopt_compiled(pds, comp):
    """Install a rebuilt compiled form as ``pds``'s cached compilation.
    Verifies first that ``comp`` really encodes ``pds`` — every rule is
    re-encoded through ``comp``'s id tables and compared — and returns
    ``False`` (cache untouched) on any mismatch, so a wrong-but-
    well-formed payload degrades to a recompile rather than corrupting
    results."""
    if comp.rule_count != len(pds.rules):
        return False
    loc_index = comp.loc_index
    sym_index = comp.sym_index
    encoded = comp._encoded
    try:
        for i, rule in enumerate(pds.rules):
            p, gamma, p2, w = encoded[i]
            if (
                loc_index[rule.p] != p
                or sym_index[rule.gamma] != gamma
                or loc_index[rule.p2] != p2
                or tuple(sym_index[s] for s in rule.w) != w
            ):
                return False
    except KeyError:
        return False
    _COMPILED[pds] = comp
    return True


def count_payload(stats, hit):
    """Bump the payload-adoption counters — process-wide
    (:data:`KERNEL_TOTALS`) and, with a ``stats`` sink, the session's
    ``pds_payload_hits``/``pds_payload_misses``."""
    key = "payload_hits" if hit else "payload_misses"
    KERNEL_TOTALS[key] += 1
    if stats is not None:
        skey = "pds_payload_hits" if hit else "pds_payload_misses"
        stats[skey] = stats.get(skey, 0) + 1


def adopt_payload(pds, payload, stats=None):
    """Decode ``payload`` and adopt it for ``pds``; returns ``True`` on
    success.  Corrupt, stale-version, or mismatched payloads return
    ``False`` — never raise — and both outcomes are counted
    (:func:`count_payload`), so degrade-to-recompile is observable.

    Before deriving, the decoded tables are re-anchored onto ``pds``'s
    own location/symbol objects (equal values, but the identities a
    local compile would have used).  This keeps everything the adopted
    compile decodes — saturation automata and the artifacts pickled
    from them — *byte*-identical to a locally compiled session's:
    pickle memoizes by object identity, so payload-unpickled copies of
    the same strings would serialize the same value to different
    bytes."""
    comp = None
    try:
        loc_list, sym_list, encoded = _payload_tables(payload)
        canonical = {loc: loc for loc in pds.control_locations}
        canonical.update((sym, sym) for sym in pds.stack_symbols)
        comp = CompiledPDS._from_tables(
            [canonical[loc] for loc in loc_list],
            [canonical[sym] for sym in sym_list],
            encoded,
        )
    except (KeyError, ValueError):
        # KeyError: a well-formed payload naming locations/symbols this
        # PDS does not have — some other program's compile.
        comp = None
    ok = comp is not None and adopt_compiled(pds, comp)
    count_payload(stats, ok)
    return ok


def _batch_tables(comp, automata, with_mids):
    """Shared per-call state/symbol tables over a *batch* of query
    automata: the compiled ids extended with every automaton's states
    and any symbols outside the PDS alphabet (foreign symbols never
    match a rule — the packed lookups are gated on ``sym < nsyms`` —
    but flow through the fixpoint like any other).  Criteria that share
    state objects (the common final state, Poststar-view product
    states) share ids, which is exactly the overlap the fused
    saturations exploit."""
    state_index = dict(comp.loc_index)
    state_list = list(comp.loc_list)
    if with_mids:
        for mid in comp.mid_states:
            state_index[mid] = len(state_list)
            state_list.append(mid)
    sym_index = dict(comp.sym_index)
    sym_list = list(comp.sym_list)
    for automaton in automata:
        for state in automaton.states:
            if state not in state_index:
                state_index[state] = len(state_list)
                state_list.append(state)
        for _src, symbol, _dst in automaton.transitions():
            if symbol not in sym_index:
                sym_index[symbol] = len(sym_list)
                sym_list.append(symbol)
    return state_index, state_list, sym_index, sym_list


def _call_tables(comp, automaton, with_mids):
    """Per-call tables for a single query automaton."""
    return _batch_tables(comp, (automaton,), with_mids)


def _count_pops(stats, pops):
    KERNEL_TOTALS["worklist_pops"] += pops
    if stats is not None:
        stats["kernel_worklist_pops"] = (
            stats.get("kernel_worklist_pops", 0) + pops
        )


def poststar_csr(pds, automaton, trim=False, stats=None):
    """Int-kernel ``post*`` (Schwoon Alg. 3.4); same contract and
    — decoded — the same result as :func:`repro.pds.poststar.poststar`.
    """
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _call_tables(
        comp, automaton, with_mids=True
    )
    nq = len(state_list)
    ns = len(sym_list)
    base = ns * nq

    trans = deque()
    for src, symbol, dst in automaton.transitions():
        if symbol is EPSILON:
            raise ValueError("poststar requires an epsilon-free query automaton")
        trans.append(
            (state_index[src] * ns + sym_index[symbol]) * nq + state_index[dst]
        )

    rel = set()
    eps_rel = set()
    by_source = {}  # src id -> list of tails (sym * nq + dst)
    eps_into = {}  # dst id -> list of eps sources
    post_rows = comp.post_rows
    rule_kind = comp.rule_kind
    rule_p2 = comp.rule_p2
    rule_w0 = comp.rule_w0
    rule_w1 = comp.rule_w1
    rule_mid = comp.rule_mid
    pops = 0

    while trans:
        pops += 1
        code = trans.popleft()
        if code >= 0:
            if code in rel:
                continue
            rel.add(code)
            q = code % nq
            head = code // nq
            p = head // ns
            tail = code - p * base
            bucket = by_source.get(p)
            if bucket is None:
                bucket = by_source[p] = []
            bucket.append(tail)
            # Epsilon transitions already pointing at ``p`` skip over
            # it: (p1, ε, p) + (p, γ, q) => (p1, γ, q).
            for p1 in eps_into.get(p, ()):
                trans.append(p1 * base + tail)
            if p < nlocs:
                sym = head - p * ns
                if sym < nsyms:
                    row = post_rows.get(p * nsyms + sym)
                    if row is not None:
                        for r in range(row[0], row[1]):
                            kind = rule_kind[r]
                            p2 = rule_p2[r]
                            if kind == 0:  # pop: (p2, ε, q)
                                trans.append(-(p2 * nq + q) - 1)
                            elif kind == 1:  # internal: (p2, w0, q)
                                trans.append(p2 * base + rule_w0[r] * nq + q)
                            else:  # push: via the mid state
                                qmid = rule_mid[r]
                                trans.append(p2 * base + rule_w0[r] * nq + qmid)
                                trans.append(qmid * base + rule_w1[r] * nq + q)
        else:
            ecode = -code - 1
            if ecode in eps_rel:
                continue
            eps_rel.add(ecode)
            q = ecode % nq
            p1 = ecode // nq
            bucket = eps_into.get(q)
            if bucket is None:
                bucket = eps_into[q] = []
            bucket.append(p1)
            for tail in by_source.get(q, ()):
                trans.append(p1 * base + tail)
    _count_pops(stats, pops)

    # Assemble the fixpoint rows.  The result's state set matches the
    # object kernel's: every control location, every query state, and
    # whatever the saturation touched (mid states only if their push
    # rule fired).
    out_rows = [{} for _ in range(nq)]
    eps_out = [0] * nq
    present = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.states:
        present |= 1 << state_index[state]
    for code in rel:
        q = code % nq
        head = code // nq
        p = head // ns
        sym = head - p * ns
        row = out_rows[p]
        row[sym] = row.get(sym, 0) | (1 << q)
        present |= (1 << p) | (1 << q)
    for ecode in eps_rel:
        q = ecode % nq
        p = ecode // nq
        eps_out[p] |= 1 << q
        present |= (1 << p) | (1 << q)

    # Epsilon elimination (the object kernel's closing
    # ``remove_epsilon``): states unchanged, finals extended through
    # closures, transitions unioned over closures.
    finals_bits = 0
    for state in automaton.finals:
        finals_bits |= 1 << state_index[state]
    initials_bits = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.initials:
        initials_bits |= 1 << state_index[state]
    if eps_rel:
        out_rows, finals_bits = eliminate_epsilon_rows(
            out_rows, eps_out, present, finals_bits
        )

    keep = present
    if trim:
        keep = trim_packed_rows(out_rows, initials_bits, finals_bits, present)
    return decode_packed_rows(
        state_list, sym_list, out_rows, None, initials_bits, finals_bits, keep
    )


def prestar_csr(pds, automaton, trim=False, stats=None):
    """Int-kernel ``pre*`` (Esparza et al. 2000); same contract and —
    decoded — the same result as :func:`repro.pds.prestar.prestar`."""
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _call_tables(
        comp, automaton, with_mids=False
    )
    nq = len(state_list)
    ns = len(sym_list)

    trans = deque()
    for src, symbol, dst in automaton.transitions():
        trans.append(
            (state_index[src] * ns + sym_index[symbol]) * nq + state_index[dst]
        )
    for lhs, p2 in comp.pop_rules:
        # <p,γ> ↪ <p',ε>: (p, γ, p') seeds the fixpoint.
        p, gamma = divmod(lhs, nsyms)
        trans.append((p * ns + gamma) * nq + p2)

    rel = set()
    by_head = {}  # packed (q * ns + γ) -> target bitset
    pending = {}  # packed (q1 * ns + γ2) -> list of lhs heads to fire
    internal_rows = comp.internal_rows
    push_rows = comp.push_rows
    pops = 0

    while trans:
        pops += 1
        code = trans.popleft()
        if code in rel:
            continue
        rel.add(code)
        q1 = code % nq
        head = code // nq
        by_head[head] = by_head.get(head, 0) | (1 << q1)
        q = head // ns
        if q < nlocs:
            sym = head - q * ns
            if sym < nsyms:
                rhs = q * nsyms + sym
                # Internal rules <p,γp> ↪ <q,γ>: (p, γp, q1).
                for lhs in internal_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    trans.append((p * ns + gamma) * nq + q1)
                # Push rules <p,γp> ↪ <q,γ γ2>: need q1 -γ2-> q2.
                for lhs, gamma2 in push_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    lhs_head = p * ns + gamma
                    key = q1 * ns + gamma2
                    pending.setdefault(key, []).append(lhs_head)
                    for q2 in iter_bits(by_head.get(key, 0)):
                        trans.append(lhs_head * nq + q2)
        # This transition may complete earlier partial push matches.
        for lhs_head in pending.get(head, ()):
            trans.append(lhs_head * nq + q1)
    _count_pops(stats, pops)

    out_rows = [{} for _ in range(nq)]
    for code in rel:
        q1 = code % nq
        head = code // nq
        q = head // ns
        sym = head - q * ns
        row = out_rows[q]
        row[sym] = row.get(sym, 0) | (1 << q1)
    initials_bits = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.initials:
        initials_bits |= 1 << state_index[state]
    finals_bits = 0
    for state in automaton.finals:
        finals_bits |= 1 << state_index[state]
    present = (1 << nq) - 1 if nq else 0
    keep = present
    if trim:
        keep = trim_packed_rows(out_rows, initials_bits, finals_bits, present)
    return decode_packed_rows(
        state_list, sym_list, out_rows, None, initials_bits, finals_bits, keep
    )


# -- fused multi-criterion saturation ----------------------------------------------
#
# A batch of N criteria saturates against ONE pushdown system; running
# prestar_csr N times re-fires every rule once per criterion even
# though the expensive part — the rule lookups and the worklist churn —
# is identical across the batch wherever the criteria's automata
# overlap (and they overlap a lot: every criterion shares the control
# locations, the common final state, and — in reachable-contexts mode —
# the Poststar-view product states).  The fused forms below run one
# worklist over the whole batch: every transition carries a
# *criterion-membership bitset* (bit i set ⟺ the transition belongs to
# criterion i's fixpoint), seeded from each criterion's query automaton
# with its own bit (and, for Prestar's pop-rule seeds, with the full
# mask — pop seeds start every sequential run).  Rule firing intersects
# the memberships of its premise transitions, so a conclusion is
# derived for exactly the criteria whose sequential runs would derive
# it; the worklist is semi-naive (items are ``(transition, new bits)``
# deltas, a transition re-enters only when its membership grows), so
# the pass does the work of the *union* of the N fixpoints instead of
# their sum.
#
# Correctness (why projecting bit i is byte-identical to run i): by
# induction over derivations, a transition has bit i iff criterion i's
# sequential saturation derives it — seeds trivially, and every rule
# firing intersects premise bits exactly as the sequential run requires
# both premises to exist.  Every bit-i transition's endpoints lie in
# ``control locations ∪ A_i.states`` (∪ the touched mid states for
# Poststar), which is precisely the sequential run's state table, so
# restricting decode to those states loses nothing.  The projections
# then trim and decode through the very same helpers
# (:func:`repro.fsa.intcodec.trim_packed_rows` /
# :func:`decode_packed_rows`, and
# :func:`repro.fsa.intops.eliminate_epsilon_rows` for Poststar) the
# single-criterion saturations use — pinned by
# ``tests/test_batched_saturation.py``.


def prestar_many_csr(pds, automata, trim=False, stats=None):
    """Fused int-kernel ``pre*`` for a batch of query automata: one
    worklist pass over one :class:`CompiledPDS`, membership bitsets per
    transition (see the section comment above).  Returns one automaton
    per input, each structurally identical to
    ``prestar_csr(pds, automata[i], trim=trim)``."""
    automata = list(automata)
    if not automata:
        return []
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _batch_tables(
        comp, automata, with_mids=False
    )
    nq = len(state_list)
    ns = len(sym_list)
    n = len(automata)
    full = (1 << n) - 1

    trans = deque()
    for i, automaton in enumerate(automata):
        bit = 1 << i
        for src, symbol, dst in automaton.transitions():
            trans.append(
                (
                    (state_index[src] * ns + sym_index[symbol]) * nq
                    + state_index[dst],
                    bit,
                )
            )
    for lhs, p2 in comp.pop_rules:
        # <p,γ> ↪ <p',ε> seeds every sequential run: full mask.
        p, gamma = divmod(lhs, nsyms)
        trans.append(((p * ns + gamma) * nq + p2, full))

    done = {}  # packed transition code -> processed criterion bitset
    by_head = {}  # packed (q * ns + γ) -> {target: processed bits}
    pending = {}  # packed (q1 * ns + γ2) -> {lhs head: premise-1 bits}
    internal_rows = comp.internal_rows
    push_rows = comp.push_rows
    pops = 0

    while trans:
        pops += 1
        code, bits = trans.popleft()
        have = done.get(code, 0)
        new = bits & ~have
        if not new:
            continue
        done[code] = have | new
        q1 = code % nq
        head = code // nq
        row = by_head.get(head)
        if row is None:
            row = by_head[head] = {}
        row[q1] = row.get(q1, 0) | new
        q = head // ns
        if q < nlocs:
            sym = head - q * ns
            if sym < nsyms:
                rhs = q * nsyms + sym
                # Internal rules <p,γp> ↪ <q,γ>: (p, γp, q1) inherits
                # exactly the delta bits.
                for lhs in internal_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    trans.append(((p * ns + gamma) * nq + q1, new))
                # Push rules <p,γp> ↪ <q,γ γ2>: need q1 -γ2-> q2 *in
                # the same criterion* — the conclusion's membership is
                # the intersection of the two premises'.
                for lhs, gamma2 in push_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    lhs_head = p * ns + gamma
                    key = q1 * ns + gamma2
                    partial = pending.get(key)
                    if partial is None:
                        partial = pending[key] = {}
                    partial[lhs_head] = partial.get(lhs_head, 0) | new
                    partner = by_head.get(key)
                    if partner:
                        lhs_base = lhs_head * nq
                        for q2, m2 in partner.items():
                            m = new & m2
                            if m:
                                trans.append((lhs_base + q2, m))
        # This delta may complete earlier partial push matches.
        partial = pending.get(head)
        if partial:
            for lhs_head, m1 in partial.items():
                m = m1 & new
                if m:
                    trans.append((lhs_head * nq + q1, m))
    _count_pops(stats, pops)

    # Project: distribute the fused fixpoint into per-criterion rows.
    rows_all = [[{} for _ in range(nq)] for _ in range(n)]
    for code, bits in done.items():
        q1 = code % nq
        head = code // nq
        q = head // ns
        sym = head - q * ns
        target = 1 << q1
        for i in iter_bits(bits):
            row = rows_all[i][q]
            row[sym] = row.get(sym, 0) | target
    locs_bits = (1 << nlocs) - 1 if nlocs else 0
    results = []
    for i, automaton in enumerate(automata):
        # Criterion i's state table is the sequential run's: control
        # locations plus its own query states.
        present = locs_bits
        initials_bits = locs_bits
        finals_bits = 0
        for state in automaton.states:
            present |= 1 << state_index[state]
        for state in automaton.initials:
            initials_bits |= 1 << state_index[state]
        for state in automaton.finals:
            finals_bits |= 1 << state_index[state]
        out_rows = rows_all[i]
        keep = present
        if trim:
            keep = trim_packed_rows(out_rows, initials_bits, finals_bits, present)
        results.append(
            decode_packed_rows(
                state_list, sym_list, out_rows, None,
                initials_bits, finals_bits, keep,
            )
        )
    return results


def poststar_many_csr(pds, automata, trim=False, stats=None):
    """Fused int-kernel ``post*`` for a batch of query automata (the
    feature-cone sibling of :func:`prestar_many_csr`): one worklist,
    membership bitsets on both the ordinary and the epsilon
    transitions.  Returns one epsilon-free automaton per input, each
    structurally identical to ``poststar_csr(pds, automata[i],
    trim=trim)``."""
    automata = list(automata)
    if not automata:
        return []
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _batch_tables(
        comp, automata, with_mids=True
    )
    nq = len(state_list)
    ns = len(sym_list)
    base = ns * nq
    n = len(automata)

    trans = deque()
    for i, automaton in enumerate(automata):
        bit = 1 << i
        for src, symbol, dst in automaton.transitions():
            if symbol is EPSILON:
                raise ValueError(
                    "poststar requires an epsilon-free query automaton"
                )
            trans.append(
                (
                    (state_index[src] * ns + sym_index[symbol]) * nq
                    + state_index[dst],
                    bit,
                )
            )

    done = {}  # packed transition code -> processed criterion bitset
    eps_done = {}  # packed (p1 * nq + q) epsilon code -> processed bits
    by_source = {}  # src id -> {tail (sym * nq + dst): bits}
    eps_into = {}  # dst id -> {eps source: bits}
    post_rows = comp.post_rows
    rule_kind = comp.rule_kind
    rule_p2 = comp.rule_p2
    rule_w0 = comp.rule_w0
    rule_w1 = comp.rule_w1
    rule_mid = comp.rule_mid
    pops = 0

    while trans:
        pops += 1
        code, bits = trans.popleft()
        if code >= 0:
            have = done.get(code, 0)
            new = bits & ~have
            if not new:
                continue
            done[code] = have | new
            q = code % nq
            head = code // nq
            p = head // ns
            tail = code - p * base
            bucket = by_source.get(p)
            if bucket is None:
                bucket = by_source[p] = {}
            bucket[tail] = bucket.get(tail, 0) | new
            # Epsilon transitions already pointing at ``p`` skip over
            # it — for the criteria both premises belong to.
            sources = eps_into.get(p)
            if sources:
                for p1, m1 in sources.items():
                    m = m1 & new
                    if m:
                        trans.append((p1 * base + tail, m))
            if p < nlocs:
                sym = head - p * ns
                if sym < nsyms:
                    row = post_rows.get(p * nsyms + sym)
                    if row is not None:
                        for r in range(row[0], row[1]):
                            kind = rule_kind[r]
                            p2 = rule_p2[r]
                            if kind == 0:  # pop: (p2, ε, q)
                                trans.append((-(p2 * nq + q) - 1, new))
                            elif kind == 1:  # internal: (p2, w0, q)
                                trans.append(
                                    (p2 * base + rule_w0[r] * nq + q, new)
                                )
                            else:  # push: via the mid state
                                qmid = rule_mid[r]
                                trans.append(
                                    (p2 * base + rule_w0[r] * nq + qmid, new)
                                )
                                trans.append(
                                    (qmid * base + rule_w1[r] * nq + q, new)
                                )
        else:
            ecode = -code - 1
            have = eps_done.get(ecode, 0)
            new = bits & ~have
            if not new:
                continue
            eps_done[ecode] = have | new
            q = ecode % nq
            p1 = ecode // nq
            sources = eps_into.get(q)
            if sources is None:
                sources = eps_into[q] = {}
            sources[p1] = sources.get(p1, 0) | new
            bucket = by_source.get(q)
            if bucket:
                for tail, m2 in bucket.items():
                    m = new & m2
                    if m:
                        trans.append((p1 * base + tail, m))
    _count_pops(stats, pops)

    # Project: per-criterion rows, epsilon rows, and present sets (a
    # mid state is present for criterion i only if run i touched it —
    # exactly the sequential state-set rule).
    locs_bits = (1 << nlocs) - 1 if nlocs else 0
    rows_all = [[{} for _ in range(nq)] for _ in range(n)]
    eps_all = [[0] * nq for _ in range(n)]
    present_all = [locs_bits] * n
    has_eps = [False] * n
    for code, bits in done.items():
        q = code % nq
        head = code // nq
        p = head // ns
        sym = head - p * ns
        endpoints = (1 << p) | (1 << q)
        target = 1 << q
        for i in iter_bits(bits):
            row = rows_all[i][p]
            row[sym] = row.get(sym, 0) | target
            present_all[i] |= endpoints
    for ecode, bits in eps_done.items():
        q = ecode % nq
        p = ecode // nq
        endpoints = (1 << p) | (1 << q)
        target = 1 << q
        for i in iter_bits(bits):
            eps_all[i][p] |= target
            present_all[i] |= endpoints
            has_eps[i] = True

    results = []
    for i, automaton in enumerate(automata):
        present = present_all[i]
        initials_bits = locs_bits
        finals_bits = 0
        for state in automaton.states:
            present |= 1 << state_index[state]
        for state in automaton.initials:
            initials_bits |= 1 << state_index[state]
        for state in automaton.finals:
            finals_bits |= 1 << state_index[state]
        out_rows = rows_all[i]
        if has_eps[i]:
            out_rows, finals_bits = eliminate_epsilon_rows(
                out_rows, eps_all[i], present, finals_bits
            )
        keep = present
        if trim:
            keep = trim_packed_rows(out_rows, initials_bits, finals_bits, present)
        results.append(
            decode_packed_rows(
                state_list, sym_list, out_rows, None,
                initials_bits, finals_bits, keep,
            )
        )
    return results
