"""The ``csr`` saturation kernel: flat, integer-indexed ``post*`` /
``pre*``.

The object saturations (:mod:`repro.pds.poststar`,
:mod:`repro.pds.prestar`) spend their inner loops hashing tuples: every
worklist item is a ``(state, symbol, state)`` triple of arbitrary
objects, every rule lookup a dict probe on an object pair.  This module
runs the same algorithms over machine ints:

* the PDS is *compiled* once per :class:`~repro.pds.system
  .PushdownSystem` — rules sorted into CSR-style parallel arrays
  (``rule_kind`` / ``rule_p2`` / ``rule_w0`` / ``rule_w1`` /
  ``rule_mid``) indexed by a row table keyed on the packed
  ``control-state * nsyms + stack-symbol`` left-hand-side code, plus
  packed right-hand-side indexes for Prestar and a precomputed table of
  Poststar mid states;
* per call, automaton states and any symbols the query introduces
  beyond the PDS alphabet get dense ids after the compiled ones, and
  every transition becomes one int ``(src * NS + sym) * NQ + dst``
  (epsilon transitions ride as negative codes), with successor sets as
  int bitsets;
* the saturation worklists then push, pop, dedup, and index nothing
  but ints; only the final fixpoint is decoded back into a
  :class:`~repro.fsa.automaton.FiniteAutomaton`.

Both saturations compute least fixpoints, so the decoded result is
*structurally identical* to the object kernel's — same state objects
(control locations, query states, ``("__post__", p, γ)`` mid states),
same transition sets — and everything downstream (serialization, store
digests, artifact footprints) is byte-for-byte unchanged.  That
contract is pinned by ``tests/test_kernel_differential.py`` and
``tests/test_kernel_properties.py``.

The compiled form is cached in a :class:`weakref.WeakKeyDictionary`
keyed by the PDS object — deliberately *not* as a PDS attribute,
because the PDS travels inside pickled SDG store bundles
(``SDG.__getstate__`` keeps the encoding) and the compiled arrays must
never leak into store bytes.
"""

import weakref
from collections import deque

from repro.fsa.automaton import EPSILON
from repro.fsa.intcodec import assemble_automaton, iter_bits

#: process-wide kernel counters (diagnostics; ``repro cache stats
#: --json`` and the benchmarks read session-level copies instead).
KERNEL_TOTALS = {
    "rules_compiled": 0,
    "worklist_pops": 0,
}


class CompiledPDS(object):
    """A :class:`PushdownSystem` flattened to int arrays (see the
    module docstring).  State ids: control locations first
    (``[0, nlocs)``), then the Poststar mid states
    (``[nlocs, nlocs + nmids)``); per-call query states are appended
    after these.  Symbol ids: the PDS stack symbols ``[0, nsyms)``;
    query-only symbols are appended per call."""

    __slots__ = (
        "nlocs",
        "nsyms",
        "nmids",
        "rule_count",
        "loc_list",
        "loc_index",
        "sym_list",
        "sym_index",
        "mid_states",
        "post_rows",
        "rule_kind",
        "rule_p2",
        "rule_w0",
        "rule_w1",
        "rule_mid",
        "internal_rows",
        "push_rows",
        "pop_rules",
    )

    def __init__(self, pds):
        loc_index = self.loc_index = {}
        loc_list = self.loc_list = []
        sym_index = self.sym_index = {}
        sym_list = self.sym_list = []

        def loc_id(location):
            lid = loc_index.get(location)
            if lid is None:
                lid = loc_index[location] = len(loc_list)
                loc_list.append(location)
            return lid

        def sym_id(symbol):
            sid = sym_index.get(symbol)
            if sid is None:
                sid = sym_index[symbol] = len(sym_list)
                sym_list.append(symbol)
            return sid

        # Rules name every control location and stack symbol the PDS
        # has (``add_rule`` is the only way either set grows).
        encoded = []
        for rule in pds.rules:
            p = loc_id(rule.p)
            gamma = sym_id(rule.gamma)
            p2 = loc_id(rule.p2)
            w = tuple(sym_id(symbol) for symbol in rule.w)
            encoded.append((p, gamma, p2, w))
        nlocs = self.nlocs = len(loc_list)
        nsyms = self.nsyms = len(sym_list)
        self.rule_count = len(encoded)

        # Poststar mid states, precomputed per distinct push right-hand
        # side head so the saturation allocates nothing: the object
        # kernel's ``("__post__", p2, gamma1)`` keys, ids after the
        # control locations.
        mid_states = self.mid_states = []
        mid_of = {}
        for p, gamma, p2, w in encoded:
            if len(w) == 2 and (p2, w[0]) not in mid_of:
                mid_of[(p2, w[0])] = nlocs + len(mid_states)
                mid_states.append(
                    ("__post__", loc_list[p2], sym_list[w[0]])
                )
        self.nmids = len(mid_states)

        # Poststar index: rules in CSR layout, sorted by packed
        # left-hand side, with a row table mapping each occupied
        # ``p * nsyms + gamma`` code to its [start, end) slice.
        order = sorted(
            range(len(encoded)),
            key=lambda i: encoded[i][0] * nsyms + encoded[i][1],
        )
        kind = self.rule_kind = []
        rp2 = self.rule_p2 = []
        rw0 = self.rule_w0 = []
        rw1 = self.rule_w1 = []
        rmid = self.rule_mid = []
        rows = self.post_rows = {}
        for position, i in enumerate(order):
            p, gamma, p2, w = encoded[i]
            code = p * nsyms + gamma
            start, _end = rows.get(code, (position, position))
            rows[code] = (start, position + 1)
            kind.append(len(w))
            rp2.append(p2)
            rw0.append(w[0] if w else -1)
            rw1.append(w[1] if len(w) == 2 else -1)
            rmid.append(mid_of[(p2, w[0])] if len(w) == 2 else -1)

        # Prestar indexes: left-hand sides to fire, keyed by the packed
        # right-hand-side (head) code.
        internal_rows = self.internal_rows = {}
        push_rows = self.push_rows = {}
        pop_rules = self.pop_rules = []
        for p, gamma, p2, w in encoded:
            lhs = p * nsyms + gamma
            if not w:
                pop_rules.append((lhs, p2))
            elif len(w) == 1:
                internal_rows.setdefault(p2 * nsyms + w[0], []).append(lhs)
            else:
                push_rows.setdefault(p2 * nsyms + w[0], []).append((lhs, w[1]))


_COMPILED = weakref.WeakKeyDictionary()


def compiled_pds(pds, stats=None):
    """The compiled form of ``pds``, built on first use and cached for
    the PDS object's lifetime."""
    comp = _COMPILED.get(pds)
    if comp is None:
        comp = CompiledPDS(pds)
        _COMPILED[pds] = comp
        KERNEL_TOTALS["rules_compiled"] += comp.rule_count
        if stats is not None:
            stats["kernel_rules_compiled"] = (
                stats.get("kernel_rules_compiled", 0) + comp.rule_count
            )
    return comp


def _call_tables(comp, automaton, with_mids):
    """Per-call state/symbol tables: the compiled ids extended with the
    query automaton's states and any symbols outside the PDS alphabet
    (foreign symbols never match a rule — the packed lookups are gated
    on ``sym < nsyms`` — but flow through the fixpoint like any
    other)."""
    state_index = dict(comp.loc_index)
    state_list = list(comp.loc_list)
    if with_mids:
        for mid in comp.mid_states:
            state_index[mid] = len(state_list)
            state_list.append(mid)
    sym_index = dict(comp.sym_index)
    sym_list = list(comp.sym_list)
    for state in automaton.states:
        if state not in state_index:
            state_index[state] = len(state_list)
            state_list.append(state)
    for _src, symbol, _dst in automaton.transitions():
        if symbol not in sym_index:
            sym_index[symbol] = len(sym_list)
            sym_list.append(symbol)
    return state_index, state_list, sym_index, sym_list


def _decode(
    state_list, sym_list, out_rows, eps_out, initials_bits, finals_bits, keep
):
    """Rebuild a :class:`FiniteAutomaton` from packed saturation rows,
    restricted to the ``keep`` state bitset."""
    triples = []
    for sid in iter_bits(keep):
        src = state_list[sid]
        for sym, bits in out_rows[sid].items():
            symbol = sym_list[sym]
            for dst in iter_bits(bits & keep):
                triples.append((src, symbol, state_list[dst]))
        if eps_out is not None and eps_out[sid]:
            for dst in iter_bits(eps_out[sid] & keep):
                triples.append((src, EPSILON, state_list[dst]))
    return assemble_automaton(
        [state_list[sid] for sid in iter_bits(keep)],
        [state_list[sid] for sid in iter_bits(initials_bits & keep)],
        [state_list[sid] for sid in iter_bits(finals_bits & keep)],
        triples,
    )


def _trim_mask(out_rows, initials_bits, finals_bits, present):
    """Useful-part bitset over packed rows (the int form of
    :meth:`FiniteAutomaton.trim`)."""
    forward = 0
    todo = initials_bits & present
    while todo:
        low = todo & -todo
        todo ^= low
        if forward & low:
            continue
        forward |= low
        succ = 0
        for bits in out_rows[low.bit_length() - 1].values():
            succ |= bits
        todo |= succ & present & ~forward
    rin = {}
    for sid in iter_bits(forward):
        succ = 0
        for bits in out_rows[sid].values():
            succ |= bits
        low = 1 << sid
        for dst in iter_bits(succ & forward):
            rin[dst] = rin.get(dst, 0) | low
    backward = 0
    todo = finals_bits & forward
    while todo:
        low = todo & -todo
        todo ^= low
        if backward & low:
            continue
        backward |= low
        todo |= rin.get(low.bit_length() - 1, 0) & ~backward
    return forward & backward


def _count_pops(stats, pops):
    KERNEL_TOTALS["worklist_pops"] += pops
    if stats is not None:
        stats["kernel_worklist_pops"] = (
            stats.get("kernel_worklist_pops", 0) + pops
        )


def poststar_csr(pds, automaton, trim=False, stats=None):
    """Int-kernel ``post*`` (Schwoon Alg. 3.4); same contract and
    — decoded — the same result as :func:`repro.pds.poststar.poststar`.
    """
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _call_tables(
        comp, automaton, with_mids=True
    )
    nq = len(state_list)
    ns = len(sym_list)
    base = ns * nq

    trans = deque()
    for src, symbol, dst in automaton.transitions():
        if symbol is EPSILON:
            raise ValueError("poststar requires an epsilon-free query automaton")
        trans.append(
            (state_index[src] * ns + sym_index[symbol]) * nq + state_index[dst]
        )

    rel = set()
    eps_rel = set()
    by_source = {}  # src id -> list of tails (sym * nq + dst)
    eps_into = {}  # dst id -> list of eps sources
    post_rows = comp.post_rows
    rule_kind = comp.rule_kind
    rule_p2 = comp.rule_p2
    rule_w0 = comp.rule_w0
    rule_w1 = comp.rule_w1
    rule_mid = comp.rule_mid
    pops = 0

    while trans:
        pops += 1
        code = trans.popleft()
        if code >= 0:
            if code in rel:
                continue
            rel.add(code)
            q = code % nq
            head = code // nq
            p = head // ns
            tail = code - p * base
            bucket = by_source.get(p)
            if bucket is None:
                bucket = by_source[p] = []
            bucket.append(tail)
            # Epsilon transitions already pointing at ``p`` skip over
            # it: (p1, ε, p) + (p, γ, q) => (p1, γ, q).
            for p1 in eps_into.get(p, ()):
                trans.append(p1 * base + tail)
            if p < nlocs:
                sym = head - p * ns
                if sym < nsyms:
                    row = post_rows.get(p * nsyms + sym)
                    if row is not None:
                        for r in range(row[0], row[1]):
                            kind = rule_kind[r]
                            p2 = rule_p2[r]
                            if kind == 0:  # pop: (p2, ε, q)
                                trans.append(-(p2 * nq + q) - 1)
                            elif kind == 1:  # internal: (p2, w0, q)
                                trans.append(p2 * base + rule_w0[r] * nq + q)
                            else:  # push: via the mid state
                                qmid = rule_mid[r]
                                trans.append(p2 * base + rule_w0[r] * nq + qmid)
                                trans.append(qmid * base + rule_w1[r] * nq + q)
        else:
            ecode = -code - 1
            if ecode in eps_rel:
                continue
            eps_rel.add(ecode)
            q = ecode % nq
            p1 = ecode // nq
            bucket = eps_into.get(q)
            if bucket is None:
                bucket = eps_into[q] = []
            bucket.append(p1)
            for tail in by_source.get(q, ()):
                trans.append(p1 * base + tail)
    _count_pops(stats, pops)

    # Assemble the fixpoint rows.  The result's state set matches the
    # object kernel's: every control location, every query state, and
    # whatever the saturation touched (mid states only if their push
    # rule fired).
    out_rows = [{} for _ in range(nq)]
    eps_out = [0] * nq
    present = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.states:
        present |= 1 << state_index[state]
    for code in rel:
        q = code % nq
        head = code // nq
        p = head // ns
        sym = head - p * ns
        row = out_rows[p]
        row[sym] = row.get(sym, 0) | (1 << q)
        present |= (1 << p) | (1 << q)
    for ecode in eps_rel:
        q = ecode % nq
        p = ecode // nq
        eps_out[p] |= 1 << q
        present |= (1 << p) | (1 << q)

    # Epsilon elimination (the object kernel's closing
    # ``remove_epsilon``): states unchanged, finals extended through
    # closures, transitions unioned over closures.
    finals_bits = 0
    for state in automaton.finals:
        finals_bits |= 1 << state_index[state]
    initials_bits = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.initials:
        initials_bits |= 1 << state_index[state]
    if eps_rel:
        closed_rows = [None] * nq
        closed_finals = finals_bits
        for sid in iter_bits(present):
            bit = 1 << sid
            closure = bit
            todo = eps_out[sid]
            while todo:
                low = todo & -todo
                todo ^= low
                if closure & low:
                    continue
                closure |= low
                todo |= eps_out[low.bit_length() - 1] & ~closure
            if closure & finals_bits:
                closed_finals |= bit
            if closure == bit:
                closed_rows[sid] = out_rows[sid]
                continue
            row = dict(out_rows[sid])
            for mid in iter_bits(closure ^ bit):
                for sym, bits in out_rows[mid].items():
                    row[sym] = row.get(sym, 0) | bits
            closed_rows[sid] = row
        out_rows = closed_rows
        finals_bits = closed_finals

    keep = present
    if trim:
        keep = _trim_mask(out_rows, initials_bits, finals_bits, present)
    return _decode(
        state_list, sym_list, out_rows, None, initials_bits, finals_bits, keep
    )


def prestar_csr(pds, automaton, trim=False, stats=None):
    """Int-kernel ``pre*`` (Esparza et al. 2000); same contract and —
    decoded — the same result as :func:`repro.pds.prestar.prestar`."""
    comp = compiled_pds(pds, stats)
    nlocs = comp.nlocs
    nsyms = comp.nsyms
    state_index, state_list, sym_index, sym_list = _call_tables(
        comp, automaton, with_mids=False
    )
    nq = len(state_list)
    ns = len(sym_list)

    trans = deque()
    for src, symbol, dst in automaton.transitions():
        trans.append(
            (state_index[src] * ns + sym_index[symbol]) * nq + state_index[dst]
        )
    for lhs, p2 in comp.pop_rules:
        # <p,γ> ↪ <p',ε>: (p, γ, p') seeds the fixpoint.
        p, gamma = divmod(lhs, nsyms)
        trans.append((p * ns + gamma) * nq + p2)

    rel = set()
    by_head = {}  # packed (q * ns + γ) -> target bitset
    pending = {}  # packed (q1 * ns + γ2) -> list of lhs heads to fire
    internal_rows = comp.internal_rows
    push_rows = comp.push_rows
    pops = 0

    while trans:
        pops += 1
        code = trans.popleft()
        if code in rel:
            continue
        rel.add(code)
        q1 = code % nq
        head = code // nq
        by_head[head] = by_head.get(head, 0) | (1 << q1)
        q = head // ns
        if q < nlocs:
            sym = head - q * ns
            if sym < nsyms:
                rhs = q * nsyms + sym
                # Internal rules <p,γp> ↪ <q,γ>: (p, γp, q1).
                for lhs in internal_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    trans.append((p * ns + gamma) * nq + q1)
                # Push rules <p,γp> ↪ <q,γ γ2>: need q1 -γ2-> q2.
                for lhs, gamma2 in push_rows.get(rhs, ()):
                    p, gamma = divmod(lhs, nsyms)
                    lhs_head = p * ns + gamma
                    key = q1 * ns + gamma2
                    pending.setdefault(key, []).append(lhs_head)
                    for q2 in iter_bits(by_head.get(key, 0)):
                        trans.append(lhs_head * nq + q2)
        # This transition may complete earlier partial push matches.
        for lhs_head in pending.get(head, ()):
            trans.append(lhs_head * nq + q1)
    _count_pops(stats, pops)

    out_rows = [{} for _ in range(nq)]
    for code in rel:
        q1 = code % nq
        head = code // nq
        q = head // ns
        sym = head - q * ns
        row = out_rows[q]
        row[sym] = row.get(sym, 0) | (1 << q1)
    initials_bits = (1 << nlocs) - 1 if nlocs else 0
    for state in automaton.initials:
        initials_bits |= 1 << state_index[state]
    finals_bits = 0
    for state in automaton.finals:
        finals_bits |= 1 << state_index[state]
    present = (1 << nq) - 1 if nq else 0
    keep = present
    if trim:
        keep = _trim_mask(out_rows, initials_bits, finals_bits, present)
    return _decode(
        state_list, sym_list, out_rows, None, initials_bits, finals_bits, keep
    )
