"""The Poststar saturation procedure (Defn. 3.7).

Given a PDS ``P`` and a P-automaton ``A`` accepting configurations
``C``, produces a P-automaton accepting ``post*(C)`` — for an
SDG-encoding PDS, the *forward* stack-configuration slice (used by the
feature-removal algorithm, Alg. 2, and by reachable-context criteria).

Efficient formulation (Schwoon 2002, Alg. 3.4): a fresh state
``q_{p',γ'}`` is created for each push-rule right-hand-side head; the
saturation rules are

    Post1: t ∈ A                               => t ∈ A_post*
    Post2: <p,γ> ↪ <p',ε>,   p -γ->> q         => (p', ε, q)
    Post3: <p,γ> ↪ <p',γ'>,  p -γ->> q         => (p', γ', q)
    Post4: <p,γ> ↪ <p',γ'γ''>, p -γ->> q       => (p', γ', q_{p'γ'}),
                                                  (q_{p'γ'}, γ'', q)

where ``->>`` allows skipping epsilon transitions.  The returned
automaton has had its epsilon transitions eliminated.
"""

from collections import deque

from repro import kernelcfg
from repro.fsa.automaton import EPSILON, FiniteAutomaton
from repro.fsa.ops import remove_epsilon


def poststar(pds, automaton, trim=False, kernel=None, stats=None):
    """Saturate ``automaton`` with post* transitions; returns a new,
    epsilon-free :class:`FiniteAutomaton`.

    The input automaton must be epsilon-free and must have no
    transitions into initial (control-location) states.

    With ``trim=True`` the result is restricted to its useful part
    (states reachable from an initial state and co-reachable to a final
    one) before it is returned.  Trimming preserves the configuration
    language read from every initial state; the saturation engine uses
    this form so a :class:`repro.engine.artifacts.SaturationArtifact`'s
    symbol footprint falls straight out of the saturation instead of
    being recomputed by every invalidation pass.

    ``kernel`` selects the implementation (:mod:`repro.kernelcfg`;
    default: the ``REPRO_KERNEL`` environment knob): ``"object"`` runs
    the dict-of-sets loop below, ``"csr"`` the flat integer kernel of
    :mod:`repro.pds.kernel` — both produce structurally identical
    automata.  ``stats``, when given, accumulates the kernel counters
    (``kernel_worklist_pops``, ``kernel_rules_compiled``).
    """
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.pds.kernel import poststar_csr

        return poststar_csr(pds, automaton, trim=trim, stats=stats)
    mid_state = {}

    def mid(p2, gamma1):
        key = ("__post__", p2, gamma1)
        mid_state[(p2, gamma1)] = key
        return key

    rel = set()  # non-epsilon transitions
    eps_rel = set()  # (p, q) epsilon transitions
    by_source = {}  # q -> set of (γ, q2) for rel
    eps_into = {}  # q -> set of p with (p, ε, q)
    trans = deque()

    for triple in automaton.transitions():
        if triple[1] is EPSILON:
            raise ValueError("poststar requires an epsilon-free query automaton")
        trans.append(triple)

    def add_rel(p, gamma, q):
        if (p, gamma, q) in rel:
            return False
        rel.add((p, gamma, q))
        by_source.setdefault(p, set()).add((gamma, q))
        # Epsilon transitions already pointing at ``p`` skip over it:
        # (p1, ε, p) and (p, γ, q) combine to (p1, γ, q).
        for p1 in eps_into.get(p, ()):
            trans.append((p1, gamma, q))
        return True

    pops = 0
    while trans:
        pops += 1
        p, gamma, q = trans.popleft()
        if gamma is not EPSILON:
            if not add_rel(p, gamma, q):
                continue
            for rule in pds.by_lhs.get((p, gamma), ()):
                if rule.kind == "pop":
                    trans.append((rule.p2, EPSILON, q))
                elif rule.kind == "internal":
                    trans.append((rule.p2, rule.w[0], q))
                else:
                    gamma1, gamma2 = rule.w
                    qmid = mid(rule.p2, gamma1)
                    trans.append((rule.p2, gamma1, qmid))
                    add_rel(qmid, gamma2, q)
        else:
            if (p, q) in eps_rel:
                continue
            eps_rel.add((p, q))
            eps_into.setdefault(q, set()).add(p)
            for (gamma1, q2) in by_source.get(q, set()).copy():
                trans.append((p, gamma1, q2))

    if stats is not None:
        stats["kernel_worklist_pops"] = (
            stats.get("kernel_worklist_pops", 0) + pops
        )

    result = FiniteAutomaton()
    for state in pds.control_locations:
        result.add_initial(state)
    for state in automaton.initials:
        result.add_initial(state)
    for state in automaton.finals:
        result.add_final(state)
    for state in automaton.states:
        result.add_state(state)
    for (p, gamma, q) in rel:
        result.add_transition(p, gamma, q)
    for (p, q) in eps_rel:
        result.add_transition(p, EPSILON, q)
    result = remove_epsilon(result, kernel=kernelcfg.OBJECT)
    return result.trim() if trim else result


def poststar_many(pds, automata, trim=False, kernel=None, stats=None):
    """Saturate a batch of query automata against one ``pds`` (the
    feature-cone sibling of :func:`repro.pds.prestar.prestar_many`).

    Under the ``csr`` kernel this runs the fused multi-criterion
    saturation (:func:`repro.pds.kernel.poststar_many_csr`); the object
    kernel falls back to one :func:`poststar` per automaton.  The result
    list is positionally aligned with ``automata`` and each element is
    structurally identical to the corresponding single-criterion call.
    """
    if kernelcfg.resolve_kernel(kernel) == kernelcfg.CSR:
        from repro.pds.kernel import poststar_many_csr

        return poststar_many_csr(pds, automata, trim=trim, stats=stats)
    return [
        poststar(pds, automaton, trim=trim, kernel=kernelcfg.OBJECT, stats=stats)
        for automaton in automata
    ]
