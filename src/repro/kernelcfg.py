"""Saturation-kernel selection.

Two interchangeable kernels compute every PDS saturation and the hot
FSA operations behind them:

* ``object`` — the original dict-of-sets implementations
  (:mod:`repro.pds.poststar`, :mod:`repro.pds.prestar`,
  :mod:`repro.fsa.determinize`, :mod:`repro.fsa.minimize`,
  :func:`repro.fsa.ops.remove_epsilon`), states and symbols as
  arbitrary hashable objects.
* ``csr`` — the flat integer kernel (:mod:`repro.pds.kernel`,
  :mod:`repro.fsa.intops`): PDS rules compiled once per
  :class:`~repro.pds.system.PushdownSystem` into CSR-style arrays
  indexed by packed ``(control state, stack symbol)`` codes, automaton
  transitions as packed int triples, successor/state sets as int
  bitsets, and the worklists running entirely over machine ints.  The
  decoded results are *structurally identical* to the object kernel's
  (same state objects, same transition sets), so everything downstream
  — serialization, store digests, artifact footprints, rendered slices
  — is byte-for-byte unchanged.  The equivalence is pinned by
  ``tests/test_kernel_differential.py`` and the property suite.

Selection: the ``REPRO_KERNEL`` environment variable (read per call, so
tests can flip it), overridden per session by
``repro.open_session(source, kernel=...)``.  This module is a leaf —
no repro imports — so both :mod:`repro.fsa` and :mod:`repro.pds` can
consult it without cycles.

Batched saturation has its own knob, ``REPRO_BATCH_SATURATION``:
whether ``SlicingSession.slice_many`` fuses the cold criteria of a
batch into one multi-criterion kernel pass
(:func:`repro.pds.kernel.prestar_many_csr`) instead of saturating them
one by one.  ``auto`` (the default) fuses when the ``csr`` kernel is
active and at least two criteria are cold; ``on`` forces the fused
path even for a single cold criterion; ``off`` disables it.  The knob
never changes results — fused projections are byte-identical to
sequential runs — only how the work is scheduled.

The ``slice_many`` worker-pool backend has a third knob,
``REPRO_SLICE_BACKEND`` (``thread``/``process``, default ``thread``):
the default backend used when no explicit ``backend=`` is passed, so a
CI lane can run the whole suite through the process tier.  Like the
others it only reschedules work — results and store bytes are pinned
identical across backends.
"""

import os

OBJECT = "object"
CSR = "csr"
KERNELS = (OBJECT, CSR)

#: environment knob consulted when no explicit kernel is passed
ENV_VAR = "REPRO_KERNEL"


BATCH_AUTO = "auto"
BATCH_ON = "on"
BATCH_OFF = "off"
BATCH_MODES = (BATCH_AUTO, BATCH_ON, BATCH_OFF)

#: environment knob for the fused multi-criterion saturation path
BATCH_ENV_VAR = "REPRO_BATCH_SATURATION"


THREAD = "thread"
PROCESS = "process"
BACKENDS = (THREAD, PROCESS)

#: environment knob for the ``slice_many`` worker-pool backend
BACKEND_ENV_VAR = "REPRO_SLICE_BACKEND"


def current_kernel():
    """The kernel selected by the environment (``object`` when unset)."""
    return resolve_kernel(None)


def resolve_kernel(kernel):
    """Validate an explicit kernel name, or fall back to the
    environment default.  Raises ``ValueError`` on unknown names so a
    typo in ``REPRO_KERNEL`` fails loudly instead of silently running
    the wrong kernel."""
    if kernel is None:
        kernel = os.environ.get(ENV_VAR) or OBJECT
    if kernel not in KERNELS:
        raise ValueError(
            "unknown saturation kernel %r (expected one of %s)"
            % (kernel, ", ".join(KERNELS))
        )
    return kernel


def resolve_backend(backend):
    """Validate an explicit ``slice_many`` backend name, or fall back
    to the ``REPRO_SLICE_BACKEND`` environment default (``thread`` when
    unset).  Raises ``ValueError`` on unknown names, mirroring
    :func:`resolve_kernel`.  The knob exists so a CI lane can force the
    process backend across a whole test run without touching call
    sites; code that *must not* fork (e.g. work already running inside
    a process-pool worker) pins ``backend="thread"`` explicitly."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or THREAD
    if backend not in BACKENDS:
        raise ValueError(
            "unknown slice_many backend %r (expected one of %s)"
            % (backend, ", ".join(BACKENDS))
        )
    return backend


def resolve_batch(mode):
    """Validate an explicit batch-saturation mode, or fall back to the
    ``REPRO_BATCH_SATURATION`` environment default (``auto`` when
    unset).  Raises ``ValueError`` on unknown names, mirroring
    :func:`resolve_kernel`."""
    if mode is None:
        mode = os.environ.get(BATCH_ENV_VAR) or BATCH_AUTO
    if mode not in BATCH_MODES:
        raise ValueError(
            "unknown batch-saturation mode %r (expected one of %s)"
            % (mode, ", ".join(BATCH_MODES))
        )
    return mode
