"""Specialization slicing (Aung, Horwitz, Joiner, Reps; PLDI 2014).

A from-scratch reproduction: TinyC front end, SDG construction,
pushdown-system machinery, and the polyvariant specialization-slicing
algorithm with all of the paper's companions (feature removal,
function-pointer support, baselines, binding-time analysis).

The subpackages expose the full API; this module adds the one-call
conveniences most users want:

    import repro
    sliced = repro.slice_source(source)      # polyvariant slice, ready to run
    print(repro.pretty(sliced.program))

Sessions — many criteria, one program
-------------------------------------

``slice_source`` re-runs the whole pipeline per call.  When a program is
sliced repeatedly (a slicing service, the differential-testing harness,
the §8 experiments), open a :class:`repro.engine.SlicingSession`
instead:

    session = repro.open_session(source)
    results = session.slice_many([("print", 0), ("print", 1), vid_set])
    runnable = session.executable(("print", 0))
    session.stats                            # cache hit/miss counters

The session builds the parse tree, SDG, and PDS encoding once, saturates
``Poststar(entry_main)`` once, and memoizes Prestar saturations and
slice results per *canonicalized* criterion — the cache key is the
sorted criterion vertex tuple plus the contexts mode (or the structural
automaton key / sorted configuration set for the other criterion forms;
see :mod:`repro.engine.canonical`).  ``open_session`` itself caches
sessions by a hash of the source text, so a mutated source always gets
a fresh session and can never observe stale SDG or automaton results.
``slice_many`` fans independent criteria out over a thread pool against
the shared read-only encoding, or over a process pool with
``backend="process"``.  The batch CLI::

    python -m repro slice-batch prog.tc --prints all --jobs 4

The persistent store — across processes and restarts
----------------------------------------------------

Pass ``cache_dir`` to keep the cache on disk (see :mod:`repro.store`):

    session = repro.open_session(source, cache_dir="~/.cache/repro")

A warm store hands a fresh process the parsed program, SDG, and PDS
encoding by unpickling one file, and answers repeated criteria without
any saturation work; entries are checksummed, versioned, written
atomically, and LRU-capped.  ``repro cache stats`` / ``repro cache
clear`` manage it from the command line.

Incremental re-slicing — across source edits
--------------------------------------------

Editing the source no longer means rebuilding.  Sessions update in
place::

    session = repro.open_session(source)
    session.slice_many(criteria)
    session.update_source(edited_source)     # diff, rebuild, re-stitch
    session.slice_many(criteria)             # mostly cache hits

``update_source`` content-addresses every procedure (normalized lexeme
stream + computed interface; :mod:`repro.engine.incremental`), rebuilds
only the changed PDGs, and invalidates exactly the memoized saturations
whose automata touch a changed procedure's PDS rules.  Results are
byte-identical to a cold session on the edited text — pinned by the
mutation-differential suite.  The store keeps a content-addressed
per-procedure table, so even a fresh process assembles the front half
of an edited program from the unchanged procedures' parts.  CLI:
``repro slice-batch FILE --reuse-from PREV_FILE``.
"""

__version__ = "1.3.0"

import threading

from repro.lang import check, parse, pretty
from repro.lang.interp import run_program


def load_source(source):
    """Parse + check + build the SDG for TinyC ``source``; lowers
    indirect calls if present.  Returns ``(program, info, sdg)``."""
    from repro.engine.incremental import front_end
    from repro.sdg import build_sdg

    program, info = front_end(source)
    sdg = build_sdg(program, info)
    return program, info, sdg


_session_lock = threading.Lock()
_session_cache = {}  # (sha256(source), cache dir, kernel) -> SlicingSession, insertion-ordered
_SESSION_CACHE_MAX = 32


def open_session(source, cache_dir=None, kernel=None):
    """Open (or return the cached) :class:`repro.engine.SlicingSession`
    for ``source``.

    Sessions are keyed by a hash of the source *text*: re-opening after
    mutating the source yields a fresh session (no stale SDG/automaton
    results), while re-opening with identical text reuses the loaded
    program, SDG, encoding, and every memoized saturation and slice.
    The cache keeps the most recent ``32`` programs (FIFO eviction).

    With ``cache_dir``, the session is backed by the persistent
    :class:`repro.store.SliceStore` there: the front half is loaded
    from disk when warm and slice results survive process restarts.

    ``kernel`` picks the saturation/automaton kernel the session runs on
    (``"object"`` or ``"csr"``; default the ``REPRO_KERNEL`` environment
    knob — see :mod:`repro.kernelcfg`).  Kernels are byte-identical, so
    the choice is part of the cache key only to keep each session's
    ``kernel_*`` stat counters meaningful."""
    from repro import kernelcfg
    from repro.engine import SlicingSession
    from repro.store import SliceStore, source_hash

    store = SliceStore(cache_dir) if cache_dir is not None else None
    kernel = kernelcfg.resolve_kernel(kernel)
    # One hash implementation for the in-memory session cache and the
    # on-disk store (repro.store.source_hash), so the two layers can
    # never disagree about which sources are "the same program".
    key = (
        source_hash(source),
        store.cache_dir if store is not None else None,
        kernel,
    )
    with _session_lock:
        session = _session_cache.get(key)
    if session is not None:
        return session
    session = SlicingSession(source, store=store, kernel=kernel)
    with _session_lock:
        # A concurrent opener may have won the race; keep its session so
        # callers converge on one memo table.
        existing = _session_cache.get(key)
        if existing is not None:
            return existing
        while len(_session_cache) >= _SESSION_CACHE_MAX:
            _session_cache.pop(next(iter(_session_cache)))
        _session_cache[key] = session
    return session


def _session_rekeyed(session, old_hash):
    """Hook called by :meth:`SlicingSession.update_source`: move the
    session's registry entries from its old source hash to the new one,
    so ``open_session(new_text)`` finds the updated session instead of
    rebuilding from scratch."""
    with _session_lock:
        for key in [k for k in _session_cache if _session_cache[k] is session]:
            _session_cache.pop(key)
            _session_cache[(session.source_hash,) + key[1:]] = session


def slice_source(source, print_index=None, contexts="reachable"):
    """One-call specialization slicing.

    Args:
        source: TinyC source text.
        print_index: slice w.r.t. the N-th print statement (all prints
            if None).
        contexts: ``"reachable"`` or ``"empty"``.

    Returns:
        an :class:`repro.core.executable.ExecutableSlice` with the
        runnable slice and a ``result`` attribute holding the full
        :class:`repro.core.SpecializationResult`.
    """
    from repro.core import executable_program, specialization_slice

    _program, _info, sdg = load_source(source)
    prints = sdg.print_call_vertices()
    if print_index is None:
        criterion = sdg.print_criterion()
    else:
        criterion = sdg.print_criterion([prints[print_index]])
    result = specialization_slice(sdg, criterion, contexts=contexts)
    executable = executable_program(result)
    executable.result = result
    return executable


def remove_feature_source(source, feature_text, clean=True):
    """One-call feature removal: delete everything influenced by the
    statements whose label contains ``feature_text``; optionally run
    the §7 useless-code-elimination post-pass.

    Routed through :func:`open_session`, so both the removal and the
    cleanup pass are memoized (and persisted, when the session has a
    store) — repeating a removal is a cache lookup.

    Returns an :class:`ExecutableSlice`.
    """
    from repro.core.executable import executable_program

    session = open_session(source)
    if clean:
        _raw, cleaned = session.remove_feature_cleaned(feature_text)
        return cleaned
    result = session.remove_feature(feature_text)
    executable = executable_program(result)
    executable.result = result
    return executable


__all__ = [
    "__version__",
    "check",
    "load_source",
    "open_session",
    "parse",
    "pretty",
    "remove_feature_source",
    "run_program",
    "slice_source",
]
