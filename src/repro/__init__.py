"""Specialization slicing (Aung, Horwitz, Joiner, Reps; PLDI 2014).

A from-scratch reproduction: TinyC front end, SDG construction,
pushdown-system machinery, and the polyvariant specialization-slicing
algorithm with all of the paper's companions (feature removal,
function-pointer support, baselines, binding-time analysis).

The subpackages expose the full API; this module adds the one-call
conveniences most users want:

    import repro
    sliced = repro.slice_source(source)      # polyvariant slice, ready to run
    print(repro.pretty(sliced.program))
"""

__version__ = "1.0.0"

from repro.lang import check, parse, pretty
from repro.lang.interp import run_program


def load_source(source):
    """Parse + check + build the SDG for TinyC ``source``; lowers
    indirect calls if present.  Returns ``(program, info, sdg)``."""
    from repro.core import lower_indirect_calls
    from repro.sdg import build_sdg

    program = parse(source)
    info = check(program)
    if info.has_indirect_calls:
        program, info = lower_indirect_calls(program, info)
    sdg = build_sdg(program, info)
    return program, info, sdg


def slice_source(source, print_index=None, contexts="reachable"):
    """One-call specialization slicing.

    Args:
        source: TinyC source text.
        print_index: slice w.r.t. the N-th print statement (all prints
            if None).
        contexts: ``"reachable"`` or ``"empty"``.

    Returns:
        an :class:`repro.core.executable.ExecutableSlice` with the
        runnable slice and a ``result`` attribute holding the full
        :class:`repro.core.SpecializationResult`.
    """
    from repro.core import executable_program, specialization_slice

    _program, _info, sdg = load_source(source)
    prints = sdg.print_call_vertices()
    if print_index is None:
        criterion = sdg.print_criterion()
    else:
        criterion = sdg.print_criterion([prints[print_index]])
    result = specialization_slice(sdg, criterion, contexts=contexts)
    executable = executable_program(result)
    executable.result = result
    return executable


def remove_feature_source(source, feature_text, clean=True):
    """One-call feature removal: delete everything influenced by the
    statements whose label contains ``feature_text``; optionally run
    the §7 useless-code-elimination post-pass.

    Returns an :class:`ExecutableSlice`.
    """
    from repro.core import remove_feature
    from repro.core.cleanup import clean_feature_removal
    from repro.core.executable import executable_program

    _program, _info, sdg = load_source(source)
    seeds = {
        vid
        for vid, vertex in sdg.vertices.items()
        if vertex.kind in ("statement", "call") and feature_text in vertex.label
    }
    if not seeds:
        raise ValueError("no statement matches %r" % feature_text)
    result = remove_feature(sdg, seeds)
    if clean:
        _raw, cleaned = clean_feature_removal(result)
        cleaned.result = result
        return cleaned
    executable = executable_program(result)
    executable.result = result
    return executable


__all__ = [
    "__version__",
    "check",
    "load_source",
    "parse",
    "pretty",
    "remove_feature_source",
    "run_program",
    "slice_source",
]
