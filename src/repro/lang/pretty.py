"""Pretty-printer: TinyC AST back to source text.

The specialization pipeline produces new ASTs (specialized procedures with
renamed call targets and reduced parameter lists); this module renders them
as compilable TinyC source.  ``parse(pretty(ast))`` round-trips.
"""

from repro.lang import ast_nodes as A

_INDENT = "  "

# Binding strengths for minimal parenthesization.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


def _expr(expr, parent_prec=0):
    if isinstance(expr, A.Num):
        return str(expr.value)
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.FuncRef):
        return "&" + expr.name
    if isinstance(expr, A.InputExpr):
        return "input()"
    if isinstance(expr, A.CallExpr):
        return "%s(%s)" % (expr.callee, ", ".join(_expr(arg) for arg in expr.args))
    if isinstance(expr, A.Un):
        inner = _expr(expr.operand, 6)
        return "%s%s" % (expr.op, inner)
    if isinstance(expr, A.Bin):
        prec = _PRECEDENCE[expr.op]
        # Comparisons are non-associative in the grammar (no chained
        # a < b < c), so a comparison operand at the same precedence
        # level must be parenthesized even on the left.
        non_associative = expr.op in ("==", "!=", "<", "<=", ">", ">=")
        left = _expr(expr.left, prec + 1 if non_associative else prec)
        right = _expr(expr.right, prec + 1)  # left-associative
        text = "%s %s %s" % (left, expr.op, right)
        if prec < parent_prec:
            return "(%s)" % text
        return text
    raise AssertionError("unknown expression %r" % expr)


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )


def _stmt(stmt, depth, lines):
    pad = _INDENT * depth
    if isinstance(stmt, A.LocalDecl):
        keyword = "fnptr" if stmt.is_fnptr else "int"
        if stmt.init is not None:
            lines.append("%s%s %s = %s;" % (pad, keyword, stmt.name, _expr(stmt.init)))
        else:
            lines.append("%s%s %s;" % (pad, keyword, stmt.name))
    elif isinstance(stmt, A.Assign):
        lines.append("%s%s = %s;" % (pad, stmt.name, _expr(stmt.expr)))
    elif isinstance(stmt, A.CallStmt):
        lines.append("%s%s;" % (pad, _expr(stmt.call)))
    elif isinstance(stmt, A.If):
        lines.append("%sif (%s) {" % (pad, _expr(stmt.cond)))
        _block(stmt.then, depth + 1, lines)
        if stmt.els is not None:
            lines.append("%s} else {" % pad)
            _block(stmt.els, depth + 1, lines)
        lines.append("%s}" % pad)
    elif isinstance(stmt, A.While):
        lines.append("%swhile (%s) {" % (pad, _expr(stmt.cond)))
        _block(stmt.body, depth + 1, lines)
        lines.append("%s}" % pad)
    elif isinstance(stmt, A.Return):
        if stmt.expr is not None:
            lines.append("%sreturn %s;" % (pad, _expr(stmt.expr)))
        else:
            lines.append("%sreturn;" % pad)
    elif isinstance(stmt, A.Print):
        parts = []
        if stmt.fmt is not None:
            parts.append('"%s"' % _escape(stmt.fmt))
        parts.extend(_expr(arg) for arg in stmt.args)
        lines.append("%sprint(%s);" % (pad, ", ".join(parts)))
    elif isinstance(stmt, A.ExitStmt):
        if stmt.arg is not None:
            lines.append("%sexit(%s);" % (pad, _expr(stmt.arg)))
        else:
            lines.append("%sexit();" % pad)
    else:
        raise AssertionError("unknown statement %r" % stmt)


def _block(block, depth, lines):
    for stmt in block.stmts:
        _stmt(stmt, depth, lines)


def _param(param):
    if param.kind == "ref":
        return "ref int %s" % param.name
    if param.kind == "fnptr":
        return "fnptr %s" % param.name
    return "int %s" % param.name


def pretty_global(decl):
    """Render one global declaration as a source line."""
    keyword = "fnptr" if decl.is_fnptr else "int"
    if decl.init is not None:
        return "%s %s = %s;" % (keyword, decl.name, _expr(decl.init))
    return "%s %s;" % (keyword, decl.name)


def pretty_proc(proc):
    """Render one procedure as source text.

    This is the *normalized lexeme stream* of the procedure: whitespace
    and comments are gone, and expressions carry only structurally
    necessary parentheses — the rendering the incremental engine's
    per-procedure content keys hash.
    """
    lines = [
        "%s %s(%s) {"
        % (proc.ret, proc.name, ", ".join(_param(param) for param in proc.params))
    ]
    _block(proc.body, 1, lines)
    lines.append("}")
    return "\n".join(lines)


def pretty(program):
    """Render ``program`` as TinyC source text."""
    lines = []
    for decl in program.globals:
        lines.append(pretty_global(decl))
    if program.globals:
        lines.append("")
    for proc in program.procs:
        lines.append(pretty_proc(proc))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
