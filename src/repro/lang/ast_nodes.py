"""Abstract syntax tree node classes for TinyC.

Every node carries a ``pos`` attribute (``(line, col)`` or ``None``) and
statement nodes additionally receive a stable integer ``uid`` assigned by
the parser; the uid is what dependence-graph vertices refer back to.

AST nodes are deliberately plain mutable objects rather than frozen
dataclasses: the specialization pipeline builds new programs by copying
and editing trees (dropping statements, renaming call targets), and plain
objects keep that straightforward.
"""

import itertools

_uid_counter = itertools.count(1)


def fresh_uid():
    """Allocate a process-unique statement id."""
    return next(_uid_counter)


class Node(object):
    """Base class; provides positional equality helpers for tests."""

    pos = None

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name in getattr(self, "_repr_fields", ())
        )
        return "%s(%s)" % (type(self).__name__, fields)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""


class Num(Expr):
    _repr_fields = ("value",)

    def __init__(self, value, pos=None):
        self.value = value
        self.pos = pos


class Var(Expr):
    _repr_fields = ("name",)

    def __init__(self, name, pos=None):
        self.name = name
        self.pos = pos


class FuncRef(Expr):
    """A reference to a procedure used as a value (function-pointer init,
    or comparison ``p == f``).  Produced by the parser for ``&f`` and by
    semantic analysis when a bare name resolves to a procedure."""

    _repr_fields = ("name",)

    def __init__(self, name, pos=None):
        self.name = name
        self.pos = pos


class Bin(Expr):
    _repr_fields = ("op", "left", "right")

    def __init__(self, op, left, right, pos=None):
        self.op = op
        self.left = left
        self.right = right
        self.pos = pos


class Un(Expr):
    _repr_fields = ("op", "operand")

    def __init__(self, op, operand, pos=None):
        self.op = op
        self.operand = operand
        self.pos = pos


class CallExpr(Expr):
    """A call used as the entire right-hand side of an assignment or as a
    statement.  ``callee`` is the syntactic name; semantic analysis marks
    ``is_indirect`` when the name resolves to a function-pointer variable
    rather than a procedure."""

    _repr_fields = ("callee", "args")

    def __init__(self, callee, args, pos=None):
        self.callee = callee
        self.args = args
        self.pos = pos
        self.is_indirect = False


class InputExpr(Expr):
    """``input()`` — reads the next integer from the program input."""

    _repr_fields = ()

    def __init__(self, pos=None):
        self.pos = pos


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements; every statement has a ``uid``."""

    def __init__(self, pos=None):
        self.pos = pos
        self.uid = fresh_uid()


class Block(Node):
    _repr_fields = ("stmts",)

    def __init__(self, stmts, pos=None):
        self.stmts = list(stmts)
        self.pos = pos


class LocalDecl(Stmt):
    _repr_fields = ("name", "init", "is_fnptr")

    def __init__(self, name, init=None, is_fnptr=False, pos=None):
        Stmt.__init__(self, pos)
        self.name = name
        self.init = init
        self.is_fnptr = is_fnptr


class Assign(Stmt):
    _repr_fields = ("name", "expr")

    def __init__(self, name, expr, pos=None):
        Stmt.__init__(self, pos)
        self.name = name
        self.expr = expr


class CallStmt(Stmt):
    _repr_fields = ("call",)

    def __init__(self, call, pos=None):
        Stmt.__init__(self, pos)
        self.call = call


class If(Stmt):
    _repr_fields = ("cond",)

    def __init__(self, cond, then, els=None, pos=None):
        Stmt.__init__(self, pos)
        self.cond = cond
        self.then = then
        self.els = els


class While(Stmt):
    _repr_fields = ("cond",)

    def __init__(self, cond, body, pos=None):
        Stmt.__init__(self, pos)
        self.cond = cond
        self.body = body


class Return(Stmt):
    _repr_fields = ("expr",)

    def __init__(self, expr=None, pos=None):
        Stmt.__init__(self, pos)
        self.expr = expr


class Print(Stmt):
    """``print("fmt", e1, ..., en);`` — the canonical library call and the
    usual slicing-criterion anchor.  The format string is optional and has
    no semantics beyond labeling output."""

    _repr_fields = ("fmt", "args")

    def __init__(self, args, fmt=None, pos=None):
        Stmt.__init__(self, pos)
        self.args = list(args)
        self.fmt = fmt


class ExitStmt(Stmt):
    """``exit(e);`` — terminates the program (library call, §6.1)."""

    _repr_fields = ("arg",)

    def __init__(self, arg=None, pos=None):
        Stmt.__init__(self, pos)
        self.arg = arg


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Param(Node):
    """A formal parameter.  ``kind`` is ``"value"``, ``"ref"`` or
    ``"fnptr"``."""

    _repr_fields = ("name", "kind")

    def __init__(self, name, kind="value", pos=None):
        self.name = name
        self.kind = kind
        self.pos = pos


class GlobalDecl(Node):
    _repr_fields = ("name", "init", "is_fnptr")

    def __init__(self, name, init=None, is_fnptr=False, pos=None):
        self.name = name
        self.init = init
        self.is_fnptr = is_fnptr
        self.pos = pos


class Proc(Node):
    """A procedure declaration.  ``ret`` is ``"int"`` or ``"void"``."""

    _repr_fields = ("name", "params", "ret")

    def __init__(self, name, params, ret, body, pos=None):
        self.name = name
        self.params = list(params)
        self.ret = ret
        self.body = body
        self.pos = pos


class Program(Node):
    _repr_fields = ("globals", "procs")

    def __init__(self, globals, procs, pos=None):
        self.globals = list(globals)
        self.procs = list(procs)
        self.pos = pos

    def proc(self, name):
        """Look up a procedure by name; raises ``KeyError`` if absent."""
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def proc_names(self):
        return [proc.name for proc in self.procs]


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def walk_stmts(block):
    """Yield every statement in ``block``, recursing into nested blocks."""
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, If):
            for inner in walk_stmts(stmt.then):
                yield inner
            if stmt.els is not None:
                for inner in walk_stmts(stmt.els):
                    yield inner
        elif isinstance(stmt, While):
            for inner in walk_stmts(stmt.body):
                yield inner


def walk_exprs(expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, Bin):
        for sub in walk_exprs(expr.left):
            yield sub
        for sub in walk_exprs(expr.right):
            yield sub
    elif isinstance(expr, Un):
        for sub in walk_exprs(expr.operand):
            yield sub
    elif isinstance(expr, CallExpr):
        for arg in expr.args:
            for sub in walk_exprs(arg):
                yield sub


def stmt_exprs(stmt):
    """Yield the top-level expressions contained in a statement."""
    if isinstance(stmt, LocalDecl):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, Assign):
        yield stmt.expr
    elif isinstance(stmt, CallStmt):
        yield stmt.call
    elif isinstance(stmt, (If, While)):
        yield stmt.cond
    elif isinstance(stmt, Return):
        if stmt.expr is not None:
            yield stmt.expr
    elif isinstance(stmt, Print):
        for arg in stmt.args:
            yield arg
    elif isinstance(stmt, ExitStmt):
        if stmt.arg is not None:
            yield stmt.arg


def expr_vars(expr, include_call_args=True):
    """The set of variable names read by ``expr``.

    With ``include_call_args=False``, does not descend into call argument
    lists — dependence-graph construction models call arguments as
    separate actual-in vertices, so the statement owning the call must not
    claim the argument reads for itself.
    """
    names = set()
    stack = [expr]
    while stack:
        sub = stack.pop()
        if isinstance(sub, Var):
            names.add(sub.name)
        elif isinstance(sub, Bin):
            stack.append(sub.left)
            stack.append(sub.right)
        elif isinstance(sub, Un):
            stack.append(sub.operand)
        elif isinstance(sub, CallExpr):
            if include_call_args:
                stack.extend(sub.args)
            if sub.is_indirect:
                # The function-pointer variable itself is read to dispatch.
                names.add(sub.callee)
    return names
