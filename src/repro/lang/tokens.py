"""Token definitions and the lexer for TinyC.

The lexer is a straightforward single-pass scanner.  Tokens carry their
line/column so later phases can produce positioned diagnostics.
"""

from repro.lang.errors import LexError

# Token kinds.  Keywords get their own kind so the parser can match on
# ``kind`` alone.
KEYWORDS = frozenset(
    [
        "int",
        "void",
        "ref",
        "fnptr",
        "if",
        "else",
        "while",
        "return",
        "print",
        "input",
        "exit",
    ]
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    "&",
]


class Token(object):
    """A single lexical token.

    ``kind`` is one of: a keyword string, an operator string, ``"ident"``,
    ``"num"``, ``"string"``, or ``"eof"``.  ``value`` holds the identifier
    name, the integer value, or the string contents.
    """

    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%r, %r, %d:%d)" % (self.kind, self.value, self.line, self.col)

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __hash__(self):
        return hash((self.kind, self.value))


class Lexer(object):
    """Scans TinyC source text into a list of tokens.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    String literals (used only as ``print`` format strings) support the
    escapes ``\\n``, ``\\t``, ``\\\\`` and ``\\"``.
    """

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self):
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance()
                self._advance()
                while True:
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start_line, start_col)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _lex_string(self):
        line, col = self.line, self.col
        self._advance()  # opening quote
        chars = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance() if self.pos < len(self.source) else ""
                mapping = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}
                if esc not in mapping:
                    raise LexError("bad escape \\%s" % esc, line, col)
                chars.append(mapping[esc])
            else:
                chars.append(ch)
        return Token("string", "".join(chars), line, col)

    def tokens(self):
        """Return the full token list, ending with an ``eof`` token."""
        result = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                result.append(Token("eof", None, self.line, self.col))
                return result
            ch = self._peek()
            line, col = self.line, self.col
            # ASCII-only classes: unicode "digits" like '¹' satisfy
            # str.isdigit() but are not valid int() literals.
            if ch in "0123456789":
                start = self.pos
                while self.pos < len(self.source) and self._peek() in "0123456789":
                    self._advance()
                result.append(Token("num", int(self.source[start : self.pos]), line, col))
            elif ("a" <= ch <= "z") or ("A" <= ch <= "Z") or ch == "_":
                start = self.pos
                while self.pos < len(self.source) and (
                    ("a" <= self._peek() <= "z")
                    or ("A" <= self._peek() <= "Z")
                    or self._peek() in "0123456789_"
                ):
                    self._advance()
                name = self.source[start : self.pos]
                if name in KEYWORDS:
                    result.append(Token(name, name, line, col))
                else:
                    result.append(Token("ident", name, line, col))
            elif ch == '"':
                result.append(self._lex_string())
            else:
                for op in OPERATORS:
                    if self.source.startswith(op, self.pos):
                        for _ in op:
                            self._advance()
                        result.append(Token(op, op, line, col))
                        break
                else:
                    raise LexError("unexpected character %r" % ch, line, col)


def tokenize(source):
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
