"""TinyC: the subject language for the specialization-slicing reproduction.

TinyC is a small C-like language with exactly the features the paper's
examples exercise: global integer variables, procedures with value and
``ref`` parameters, integer expressions, ``if``/``while`` control flow,
direct and recursive calls, function pointers with indirect calls, and the
library calls ``print``/``input``/``exit``.

The public surface:

* :func:`parse` — source text to :class:`~repro.lang.ast_nodes.Program`.
* :func:`check` — semantic analysis (returns a :class:`~repro.lang.sema.ProgramInfo`).
* :func:`pretty` — AST back to source text.
* :class:`~repro.lang.interp.Interpreter` — a tree-walking interpreter used
  to validate that executable slices are semantically faithful.
"""

from repro.lang.ast_nodes import (
    Assign,
    Bin,
    Block,
    CallExpr,
    CallStmt,
    ExitStmt,
    FuncRef,
    GlobalDecl,
    If,
    InputExpr,
    LocalDecl,
    Num,
    Param,
    Print,
    Proc,
    Program,
    Return,
    Un,
    Var,
    While,
)
from repro.lang.errors import LexError, ParseError, SemanticError, TinyCError
from repro.lang.interp import ExecutionLimitExceeded, Interpreter, RunResult
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.sema import ProcInfo, ProgramInfo, check

__all__ = [
    "Assign",
    "Bin",
    "Block",
    "CallExpr",
    "CallStmt",
    "ExitStmt",
    "ExecutionLimitExceeded",
    "FuncRef",
    "GlobalDecl",
    "If",
    "InputExpr",
    "Interpreter",
    "LexError",
    "LocalDecl",
    "Num",
    "Param",
    "ParseError",
    "Print",
    "Proc",
    "ProcInfo",
    "Program",
    "ProgramInfo",
    "Return",
    "RunResult",
    "SemanticError",
    "TinyCError",
    "Un",
    "Var",
    "While",
    "check",
    "parse",
    "pretty",
]
