"""Semantic analysis for TinyC.

Responsibilities:

* build symbol tables (globals, procedures, per-procedure params/locals);
* resolve names — in particular, rewrite bare identifiers that refer to
  procedures into :class:`FuncRef` nodes, and mark indirect calls
  (``CallExpr.is_indirect``) whose callee is a function-pointer variable;
* enforce the structural restrictions the SDG model relies on:

  - calls appear only in statement position or as the *entire* right-hand
    side of an assignment (never nested inside a larger expression);
  - ``input()`` likewise only as an entire right-hand side;
  - arguments bound to ``ref`` parameters are plain variables;
  - direct calls match the callee's arity and parameter kinds;
  - a procedure used as a value (function pointer) exists;

* collect, for the function-pointer extension (§6.2), the set of
  procedures that may flow into each function-pointer variable
  (flow-insensitive, Andersen-style — matching the paper's use of
  Andersen's analysis).
"""

from repro.lang import ast_nodes as A
from repro.lang.errors import SemanticError


class ProcInfo(object):
    """Semantic summary of one procedure."""

    def __init__(self, proc):
        self.proc = proc
        self.name = proc.name
        self.params = [param.name for param in proc.params]
        self.param_kinds = {param.name: param.kind for param in proc.params}
        self.locals = {}  # name -> is_fnptr
        self.returns_value = proc.ret == "int"

    def is_local_name(self, name):
        return name in self.locals or name in self.param_kinds

    def is_fnptr_name(self, name, program_info):
        if name in self.locals:
            return self.locals[name]
        if name in self.param_kinds:
            return self.param_kinds[name] == "fnptr"
        return name in program_info.fnptr_globals


class ProgramInfo(object):
    """Semantic summary of a whole program.

    Attributes:
        program: the (possibly rewritten) AST.
        procs: mapping of procedure name to :class:`ProcInfo`.
        global_names: set of all global variable names.
        fnptr_globals: subset of global_names holding function pointers.
        fnptr_targets: mapping of function-pointer variable *key* to the
            set of procedure names that may flow into it.  Keys are
            ``("global", name)`` or ``(proc_name, name)`` for locals and
            parameters.
        has_indirect_calls: True if any indirect call exists.
    """

    def __init__(self, program):
        self.program = program
        self.procs = {}
        self.global_names = set()
        self.fnptr_globals = set()
        self.fnptr_targets = {}
        self.has_indirect_calls = False

    def fnptr_key(self, proc_name, var_name):
        """Canonical key for a function-pointer variable occurrence."""
        proc_info = self.procs.get(proc_name)
        if proc_info is not None and proc_info.is_local_name(var_name):
            return (proc_name, var_name)
        return ("global", var_name)

    def may_point_to(self, proc_name, var_name):
        """Procedures that may flow into function-pointer ``var_name`` as
        seen inside ``proc_name`` (flow-insensitive)."""
        return frozenset(self.fnptr_targets.get(self.fnptr_key(proc_name, var_name), ()))


def _error(message, node):
    pos = node.pos or (None, None)
    raise SemanticError(message, pos[0], pos[1])


class _Checker(object):
    def __init__(self, program):
        self.program = program
        self.info = ProgramInfo(program)

    # -- entry point ---------------------------------------------------------

    def run(self):
        self._collect_globals()
        self._collect_procs()
        for proc in self.program.procs:
            self._check_proc(proc)
        self._resolve_fnptr_flow()
        if "main" not in self.info.procs:
            raise SemanticError("program has no procedure named 'main'")
        if self.info.procs["main"].params:
            _error("'main' must not take parameters", self.info.procs["main"].proc)
        return self.info

    # -- symbol collection -----------------------------------------------------

    def _collect_globals(self):
        for decl in self.program.globals:
            if decl.name in self.info.global_names:
                _error("duplicate global %r" % decl.name, decl)
            self.info.global_names.add(decl.name)
            if decl.is_fnptr:
                self.info.fnptr_globals.add(decl.name)
            if decl.init is not None and not isinstance(decl.init, (A.Num, A.FuncRef)):
                _error("global initializer must be a constant", decl)

    def _collect_procs(self):
        for proc in self.program.procs:
            if proc.name in self.info.procs:
                _error("duplicate procedure %r" % proc.name, proc)
            if proc.name in self.info.global_names:
                _error("procedure %r shadows a global" % proc.name, proc)
            seen = set()
            for param in proc.params:
                if param.name in seen:
                    _error("duplicate parameter %r" % param.name, proc)
                if param.name in self.info.global_names:
                    # Shadowing would make the mod/ref name spaces overlap.
                    _error("parameter %r shadows a global" % param.name, proc)
                seen.add(param.name)
            self.info.procs[proc.name] = ProcInfo(proc)

    # -- per-procedure checks ----------------------------------------------------

    def _check_proc(self, proc):
        proc_info = self.info.procs[proc.name]
        self._check_block(proc.body, proc_info)

    def _check_block(self, block, proc_info):
        for stmt in block.stmts:
            self._check_stmt(stmt, proc_info)

    def _check_stmt(self, stmt, proc_info):
        if isinstance(stmt, A.LocalDecl):
            if (
                stmt.name in proc_info.locals
                or stmt.name in proc_info.param_kinds
            ):
                _error("duplicate local %r" % stmt.name, stmt)
            if stmt.name in self.info.procs:
                _error("local %r shadows a procedure" % stmt.name, stmt)
            if stmt.name in self.info.global_names:
                _error("local %r shadows a global" % stmt.name, stmt)
            proc_info.locals[stmt.name] = stmt.is_fnptr
            if stmt.init is not None:
                stmt.init = self._check_rhs(stmt.init, proc_info, stmt)
        elif isinstance(stmt, A.Assign):
            self._check_var_target(stmt.name, proc_info, stmt)
            stmt.expr = self._check_rhs(stmt.expr, proc_info, stmt)
        elif isinstance(stmt, A.CallStmt):
            self._check_call(stmt.call, proc_info)
        elif isinstance(stmt, A.If):
            stmt.cond = self._check_expr(stmt.cond, proc_info)
            self._check_block(stmt.then, proc_info)
            if stmt.els is not None:
                self._check_block(stmt.els, proc_info)
        elif isinstance(stmt, A.While):
            stmt.cond = self._check_expr(stmt.cond, proc_info)
            self._check_block(stmt.body, proc_info)
        elif isinstance(stmt, A.Return):
            if stmt.expr is not None:
                if not proc_info.returns_value:
                    _error(
                        "void procedure %r returns a value" % proc_info.name, stmt
                    )
                stmt.expr = self._check_expr(stmt.expr, proc_info)
            elif proc_info.returns_value:
                _error(
                    "int procedure %r returns no value" % proc_info.name, stmt
                )
        elif isinstance(stmt, A.Print):
            stmt.args = [self._check_expr(arg, proc_info) for arg in stmt.args]
        elif isinstance(stmt, A.ExitStmt):
            if stmt.arg is not None:
                stmt.arg = self._check_expr(stmt.arg, proc_info)
        else:
            raise AssertionError("unknown statement %r" % stmt)

    def _check_var_target(self, name, proc_info, stmt):
        if not proc_info.is_local_name(name) and name not in self.info.global_names:
            _error("assignment to undeclared variable %r" % name, stmt)

    # -- expression checks -------------------------------------------------------

    def _check_rhs(self, expr, proc_info, stmt):
        """Check an assignment right-hand side, where a call or input() is
        permitted as the entire expression."""
        if isinstance(expr, A.CallExpr):
            self._check_call(expr, proc_info, needs_value=True)
            return expr
        if isinstance(expr, A.InputExpr):
            return expr
        return self._check_expr(expr, proc_info)

    def _check_expr(self, expr, proc_info):
        """Check a general expression; calls and input() are rejected here
        because the SDG models them only at statement level."""
        if isinstance(expr, A.Num):
            return expr
        if isinstance(expr, A.CallExpr):
            _error("calls may only appear as a statement or entire RHS", expr)
        if isinstance(expr, A.InputExpr):
            _error("input() may only appear as an entire RHS", expr)
        if isinstance(expr, A.FuncRef):
            if expr.name not in self.info.procs:
                _error("unknown procedure %r" % expr.name, expr)
            return expr
        if isinstance(expr, A.Var):
            if proc_info.is_local_name(expr.name) or expr.name in self.info.global_names:
                return expr
            if expr.name in self.info.procs:
                # A bare procedure name used as a value.
                return A.FuncRef(expr.name, pos=expr.pos)
            _error("undeclared variable %r" % expr.name, expr)
        if isinstance(expr, A.Bin):
            expr.left = self._check_expr(expr.left, proc_info)
            expr.right = self._check_expr(expr.right, proc_info)
            return expr
        if isinstance(expr, A.Un):
            expr.operand = self._check_expr(expr.operand, proc_info)
            return expr
        raise AssertionError("unknown expression %r" % expr)

    def _check_call(self, call, proc_info, needs_value=False):
        if call.callee in self.info.procs:
            callee = self.info.procs[call.callee]
            if len(call.args) != len(callee.params):
                _error(
                    "call to %r passes %d argument(s); %d expected"
                    % (call.callee, len(call.args), len(callee.params)),
                    call,
                )
            if needs_value and not callee.returns_value:
                _error("void procedure %r used as a value" % call.callee, call)
            call.args = [
                self._check_arg(arg, callee.param_kinds[param], proc_info, call)
                for arg, param in zip(call.args, callee.params)
            ]
            # No-alias discipline (the dependence model assumes distinct
            # storage for each ref parameter and for globals): a ref
            # argument must be a non-global variable, and no variable may
            # be passed by reference twice in one call.
            ref_names = [
                arg.name
                for arg, param in zip(call.args, callee.proc.params)
                if param.kind == "ref"
            ]
            for name in ref_names:
                if name in self.info.global_names:
                    _error(
                        "global %r passed by reference (would alias the "
                        "callee's direct accesses)" % name,
                        call,
                    )
            if len(ref_names) != len(set(ref_names)):
                _error(
                    "variable passed by reference twice in one call "
                    "(aliasing)", call
                )
        elif proc_info.is_fnptr_name(call.callee, self.info) or (
            call.callee in self.info.fnptr_globals
        ):
            call.is_indirect = True
            self.info.has_indirect_calls = True
            call.args = [self._check_expr(arg, proc_info) for arg in call.args]
        else:
            _error("call to unknown procedure %r" % call.callee, call)

    def _check_arg(self, arg, kind, proc_info, call):
        if kind == "ref":
            if not isinstance(arg, A.Var):
                _error("argument bound to a 'ref' parameter must be a variable", call)
            return self._check_expr(arg, proc_info)
        if kind == "fnptr":
            checked = self._check_expr(arg, proc_info)
            if not isinstance(checked, (A.FuncRef, A.Var)):
                _error("argument bound to a 'fnptr' parameter must name a procedure or pointer", call)
            return checked
        return self._check_expr(arg, proc_info)

    # -- function-pointer flow (Andersen-style, flow-insensitive) -----------------

    def _resolve_fnptr_flow(self):
        """Propagate procedure references through function-pointer copies
        until fixpoint.  Assignments considered: ``p = &f``/``p = f``,
        ``p = q``, fnptr arguments at direct call sites, and fnptr global
        initializers."""
        targets = {}
        copies = []  # (dst_key, src_key)

        def add(key, proc_name):
            targets.setdefault(key, set()).add(proc_name)

        for decl in self.program.globals:
            if decl.is_fnptr and isinstance(decl.init, A.FuncRef):
                add(("global", decl.name), decl.init.name)

        for proc in self.program.procs:
            proc_info = self.info.procs[proc.name]
            for stmt in A.walk_stmts(proc.body):
                if isinstance(stmt, (A.Assign, A.LocalDecl)):
                    target = stmt.name
                    expr = stmt.expr if isinstance(stmt, A.Assign) else stmt.init
                    if expr is not None and proc_info.is_fnptr_name(
                        target, self.info
                    ):
                        dst = self.info.fnptr_key(proc.name, target)
                        if isinstance(expr, A.FuncRef):
                            add(dst, expr.name)
                        elif isinstance(expr, A.Var):
                            copies.append(
                                (dst, self.info.fnptr_key(proc.name, expr.name))
                            )
                for expr in A.stmt_exprs(stmt):
                    if isinstance(expr, A.CallExpr) and not expr.is_indirect:
                        callee = self.info.procs.get(expr.callee)
                        if callee is None:
                            continue
                        for arg, param in zip(expr.args, callee.proc.params):
                            if param.kind != "fnptr":
                                continue
                            dst = (callee.name, param.name)
                            if isinstance(arg, A.FuncRef):
                                add(dst, arg.name)
                            elif isinstance(arg, A.Var):
                                copies.append(
                                    (dst, self.info.fnptr_key(proc.name, arg.name))
                                )

        changed = True
        while changed:
            changed = False
            for dst, src in copies:
                source_set = targets.get(src, set())
                dest_set = targets.setdefault(dst, set())
                before = len(dest_set)
                dest_set.update(source_set)
                changed = changed or len(dest_set) != before

        self.info.fnptr_targets = {key: frozenset(value) for key, value in targets.items()}


def check(program):
    """Run semantic analysis on ``program``; returns a :class:`ProgramInfo`.

    The AST is rewritten in place (procedure-name references become
    :class:`FuncRef`, indirect calls are marked).
    """
    return _Checker(program).run()
