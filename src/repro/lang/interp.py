"""A tree-walking interpreter for TinyC.

The interpreter exists to *validate slices*: an executable slice must, on
every input, print the same sequence of values at the slicing-criterion
print statements as the original program (Weiser's correctness condition).
It also powers the §5 ``wc`` speedup experiment, where we compare the
number of interpreter steps executed by a slice against the original.

Semantics notes:

* Integer division/modulo by zero evaluate to 0 (total semantics — keeps
  property-based testing free of input preconditions).
* ``&&``/``||`` are strict (expressions are side-effect free in TinyC, so
  short-circuiting is unobservable).
* ``input()`` reads the next integer from the supplied input list and
  returns 0 once the list is exhausted.
* ``ref`` parameters alias the caller's variable (call-by-reference,
  implemented with shared cells).
* Function-pointer values are procedure names.
"""

from repro.lang import ast_nodes as A


class ExecutionLimitExceeded(Exception):
    """Raised when a run exceeds its step budget (defends against
    non-terminating generated programs)."""


class _ExitSignal(Exception):
    def __init__(self, code):
        self.code = code


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _Cell(object):
    """A mutable variable slot; ``ref`` parameters share the caller's cell."""

    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value


class RunResult(object):
    """Outcome of one program run.

    Attributes:
        prints: list of ``(stmt_uid, fmt, tuple_of_values)`` in emission
            order — one entry per executed ``print``.
        steps: number of statements executed (the §5 work metric).
        exit_code: value passed to ``exit`` or None for normal completion.
    """

    def __init__(self, prints, steps, exit_code):
        self.prints = prints
        self.steps = steps
        self.exit_code = exit_code

    @property
    def values(self):
        """The flat sequence of printed values (ignores uids/format)."""
        flat = []
        for _uid, _fmt, args in self.prints:
            flat.extend(args)
        return flat

    def prints_at(self, uids):
        """Printed value tuples restricted to the given statement uids
        (slice-equivalence checks compare these)."""
        wanted = set(uids)
        return [(uid, args) for uid, _fmt, args in self.prints if uid in wanted]

    def render(self):
        """Human-readable output text, mimicking printf."""
        chunks = []
        for _uid, fmt, args in self.prints:
            if fmt is not None:
                chunks.append(fmt % tuple(args) if args else fmt)
            else:
                chunks.append(" ".join(str(value) for value in args) + "\n")
        return "".join(chunks)


class Interpreter(object):
    """Interprets a semantically checked TinyC program."""

    def __init__(self, program, max_steps=1_000_000):
        self.program = program
        self.max_steps = max_steps
        self._procs = {proc.name: proc for proc in program.procs}

    # -- public API -----------------------------------------------------------

    def run(self, inputs=()):
        """Execute ``main`` with the given input integers."""
        self._inputs = list(inputs)
        self._input_pos = 0
        self._prints = []
        self._steps = 0
        self._globals = {}
        for decl in self.program.globals:
            if decl.init is None:
                value = 0
            elif isinstance(decl.init, A.FuncRef):
                value = decl.init.name
            else:
                value = decl.init.value
            self._globals[decl.name] = _Cell(value)
        exit_code = None
        try:
            self._call(self._procs["main"], [])
        except _ExitSignal as signal:
            exit_code = signal.code
        return RunResult(self._prints, self._steps, exit_code)

    # -- execution ------------------------------------------------------------

    def _tick(self):
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(
                "exceeded %d interpreter steps" % self.max_steps
            )

    def _call(self, proc, arg_cells_and_values):
        frame = {}
        for param, arg in zip(proc.params, arg_cells_and_values):
            if param.kind == "ref":
                frame[param.name] = arg  # shared cell
            else:
                frame[param.name] = _Cell(arg)
        try:
            self._exec_block(proc.body, frame)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    def _exec_block(self, block, frame):
        for stmt in block.stmts:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt, frame):
        self._tick()
        if isinstance(stmt, A.LocalDecl):
            value = self._eval_rhs(stmt.init, frame) if stmt.init is not None else 0
            frame[stmt.name] = _Cell(value)
        elif isinstance(stmt, A.Assign):
            value = self._eval_rhs(stmt.expr, frame)
            self._cell(stmt.name, frame).value = value
        elif isinstance(stmt, A.CallStmt):
            self._eval_call(stmt.call, frame)
        elif isinstance(stmt, A.If):
            if self._eval(stmt.cond, frame):
                self._exec_block(stmt.then, frame)
            elif stmt.els is not None:
                self._exec_block(stmt.els, frame)
        elif isinstance(stmt, A.While):
            while True:
                self._tick()  # each condition evaluation costs a step
                if not self._eval(stmt.cond, frame):
                    break
                self._exec_block(stmt.body, frame)
        elif isinstance(stmt, A.Return):
            value = self._eval(stmt.expr, frame) if stmt.expr is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(stmt, A.Print):
            values = tuple(self._eval(arg, frame) for arg in stmt.args)
            self._prints.append((stmt.uid, stmt.fmt, values))
        elif isinstance(stmt, A.ExitStmt):
            code = self._eval(stmt.arg, frame) if stmt.arg is not None else 0
            raise _ExitSignal(code)
        else:
            raise AssertionError("unknown statement %r" % stmt)

    # -- evaluation -------------------------------------------------------------

    def _cell(self, name, frame):
        if name in frame:
            return frame[name]
        return self._globals[name]

    def _eval_rhs(self, expr, frame):
        if isinstance(expr, A.CallExpr):
            return self._eval_call(expr, frame)
        if isinstance(expr, A.InputExpr):
            if self._input_pos < len(self._inputs):
                value = self._inputs[self._input_pos]
                self._input_pos += 1
                return value
            return 0
        return self._eval(expr, frame)

    def _eval_call(self, call, frame):
        if call.is_indirect:
            target_name = self._cell(call.callee, frame).value
            if not isinstance(target_name, str):
                # Call through an uninitialized pointer: undefined behavior
                # in C; we make it a clean runtime error.
                raise RuntimeError(
                    "indirect call through non-pointer value %r" % (target_name,)
                )
            proc = self._procs[target_name]
        else:
            proc = self._procs[call.callee]
        args = []
        for arg, param in zip(call.args, proc.params):
            if param.kind == "ref":
                args.append(self._cell(arg.name, frame))
            else:
                args.append(self._eval(arg, frame))
        return self._call(proc, args)

    def _eval(self, expr, frame):
        if isinstance(expr, A.Num):
            return expr.value
        if isinstance(expr, A.Var):
            return self._cell(expr.name, frame).value
        if isinstance(expr, A.FuncRef):
            return expr.name
        if isinstance(expr, A.Un):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if value else 1
            raise AssertionError("unknown unary %r" % expr.op)
        if isinstance(expr, A.Bin):
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            return self._binop(expr.op, left, right)
        raise AssertionError("unexpected expression %r" % expr)

    @staticmethod
    def _binop(op, left, right):
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return 0
            return int(left / right) if (left < 0) != (right < 0) else left // right
        if op == "%":
            if right == 0:
                return 0
            return left - right * (
                int(left / right) if (left < 0) != (right < 0) else left // right
            )
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&&":
            return 1 if (left and right) else 0
        if op == "||":
            return 1 if (left or right) else 0
        raise AssertionError("unknown operator %r" % op)


def run_program(program, inputs=(), max_steps=1_000_000):
    """One-shot helper: interpret ``program`` on ``inputs``."""
    return Interpreter(program, max_steps=max_steps).run(inputs)
