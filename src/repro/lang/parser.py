"""Recursive-descent parser for TinyC.

Grammar (EBNF; ``{x}`` = repetition, ``[x]`` = option)::

    program     = { global_decl | proc_decl } ;
    global_decl = ("int" | "fnptr") ident [ "=" expr ] ";" ;
    proc_decl   = ("void" | "int") ident "(" [ params ] ")" block ;
    params      = param { "," param } ;
    param       = "int" ident | "ref" "int" ident | "fnptr" ident ;
    block       = "{" { stmt } "}" ;
    stmt        = ("int" | "fnptr") ident [ "=" expr ] ";"
                | ident "=" expr ";"
                | ident "(" [ args ] ")" ";"
                | "if" "(" expr ")" block [ "else" (block | if_stmt) ]
                | "while" "(" expr ")" block
                | "return" [ expr ] ";"
                | "print" "(" [ string "," ] [ args ] ")" ";"
                | "exit" "(" [ expr ] ")" ";" ;
    expr        = or_expr ;
    or_expr     = and_expr { "||" and_expr } ;
    and_expr    = cmp_expr { "&&" cmp_expr } ;
    cmp_expr    = add_expr [ ("=="|"!="|"<"|"<="|">"|">=") add_expr ] ;
    add_expr    = mul_expr { ("+"|"-") mul_expr } ;
    mul_expr    = unary { ("*"|"/"|"%") unary } ;
    unary       = ("-"|"!") unary | primary ;
    primary     = num | ident | ident "(" [ args ] ")" | "&" ident
                | "input" "(" ")" | "(" expr ")" ;

Calls may appear anywhere an expression is allowed syntactically; the
semantic checker restricts them to statement position or the entire
right-hand side of an assignment (which is how the SDG models calls).
"""

from repro.lang import ast_nodes as A
from repro.lang.errors import ParseError
from repro.lang.tokens import tokenize


class Parser(object):
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, *kinds):
        return self._peek().kind in kinds

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _expect(self, kind):
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                "expected %r but found %r" % (kind, token.kind), token.line, token.col
            )
        return self._advance()

    @staticmethod
    def _pos(token):
        return (token.line, token.col)

    # -- declarations ------------------------------------------------------

    def parse_program(self):
        globals_, procs = [], []
        while not self._at("eof"):
            token = self._peek()
            if token.kind == "fnptr":
                globals_.append(self._parse_global())
            elif token.kind in ("int", "void"):
                # Distinguish "int g = ..;" / "int g;" from "int f(..) {..}".
                if self._peek(1).kind != "ident":
                    raise ParseError(
                        "expected a name after type", token.line, token.col
                    )
                if self._peek(2).kind == "(":
                    procs.append(self._parse_proc())
                else:
                    globals_.append(self._parse_global())
            else:
                raise ParseError(
                    "expected a declaration, found %r" % token.kind,
                    token.line,
                    token.col,
                )
        return A.Program(globals_, procs)

    def _parse_global(self):
        type_token = self._advance()
        is_fnptr = type_token.kind == "fnptr"
        name = self._expect("ident")
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_expr()
        self._expect(";")
        return A.GlobalDecl(name.value, init, is_fnptr, pos=self._pos(type_token))

    def _parse_proc(self):
        ret_token = self._advance()  # "int" or "void"
        name = self._expect("ident")
        self._expect("(")
        params = []
        if not self._at(")"):
            params.append(self._parse_param())
            while self._at(","):
                self._advance()
                params.append(self._parse_param())
        self._expect(")")
        body = self._parse_block()
        return A.Proc(name.value, params, ret_token.kind, body, pos=self._pos(ret_token))

    def _parse_param(self):
        token = self._peek()
        if token.kind == "ref":
            self._advance()
            self._expect("int")
            name = self._expect("ident")
            return A.Param(name.value, "ref", pos=self._pos(token))
        if token.kind == "fnptr":
            self._advance()
            name = self._expect("ident")
            return A.Param(name.value, "fnptr", pos=self._pos(token))
        self._expect("int")
        name = self._expect("ident")
        return A.Param(name.value, "value", pos=self._pos(token))

    # -- statements --------------------------------------------------------

    def _parse_block(self):
        open_token = self._expect("{")
        stmts = []
        while not self._at("}"):
            stmts.append(self._parse_stmt())
        self._expect("}")
        return A.Block(stmts, pos=self._pos(open_token))

    def _parse_stmt(self):
        token = self._peek()
        if token.kind in ("int", "fnptr"):
            return self._parse_local_decl()
        if token.kind == "if":
            return self._parse_if()
        if token.kind == "while":
            return self._parse_while()
        if token.kind == "return":
            return self._parse_return()
        if token.kind == "print":
            return self._parse_print()
        if token.kind == "exit":
            return self._parse_exit()
        if token.kind == "ident":
            if self._peek(1).kind == "=":
                return self._parse_assign()
            if self._peek(1).kind == "(":
                call = self._parse_call_expr()
                self._expect(";")
                return A.CallStmt(call, pos=self._pos(token))
        raise ParseError(
            "expected a statement, found %r" % token.kind, token.line, token.col
        )

    def _parse_local_decl(self):
        type_token = self._advance()
        is_fnptr = type_token.kind == "fnptr"
        name = self._expect("ident")
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_expr()
        self._expect(";")
        return A.LocalDecl(name.value, init, is_fnptr, pos=self._pos(type_token))

    def _parse_assign(self):
        name = self._expect("ident")
        self._expect("=")
        expr = self._parse_expr()
        self._expect(";")
        return A.Assign(name.value, expr, pos=self._pos(name))

    def _parse_if(self):
        token = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_block()
        els = None
        if self._at("else"):
            self._advance()
            if self._at("if"):
                # "else if" chains desugar to a nested block.
                nested = self._parse_if()
                els = A.Block([nested], pos=nested.pos)
            else:
                els = self._parse_block()
        return A.If(cond, then, els, pos=self._pos(token))

    def _parse_while(self):
        token = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return A.While(cond, body, pos=self._pos(token))

    def _parse_return(self):
        token = self._expect("return")
        expr = None
        if not self._at(";"):
            expr = self._parse_expr()
        self._expect(";")
        return A.Return(expr, pos=self._pos(token))

    def _parse_print(self):
        token = self._expect("print")
        self._expect("(")
        fmt = None
        args = []
        if self._at("string"):
            fmt = self._advance().value
            if self._at(","):
                self._advance()
        if not self._at(")"):
            args.append(self._parse_expr())
            while self._at(","):
                self._advance()
                args.append(self._parse_expr())
        self._expect(")")
        self._expect(";")
        return A.Print(args, fmt, pos=self._pos(token))

    def _parse_exit(self):
        token = self._expect("exit")
        self._expect("(")
        arg = None
        if not self._at(")"):
            arg = self._parse_expr()
        self._expect(")")
        self._expect(";")
        return A.ExitStmt(arg, pos=self._pos(token))

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._at("||"):
            op = self._advance()
            right = self._parse_and()
            left = A.Bin("||", left, right, pos=self._pos(op))
        return left

    def _parse_and(self):
        left = self._parse_cmp()
        while self._at("&&"):
            op = self._advance()
            right = self._parse_cmp()
            left = A.Bin("&&", left, right, pos=self._pos(op))
        return left

    def _parse_cmp(self):
        left = self._parse_add()
        if self._at("==", "!=", "<", "<=", ">", ">="):
            op = self._advance()
            right = self._parse_add()
            return A.Bin(op.kind, left, right, pos=self._pos(op))
        return left

    def _parse_add(self):
        left = self._parse_mul()
        while self._at("+", "-"):
            op = self._advance()
            right = self._parse_mul()
            left = A.Bin(op.kind, left, right, pos=self._pos(op))
        return left

    def _parse_mul(self):
        left = self._parse_unary()
        while self._at("*", "/", "%"):
            op = self._advance()
            right = self._parse_unary()
            left = A.Bin(op.kind, left, right, pos=self._pos(op))
        return left

    def _parse_unary(self):
        if self._at("-", "!"):
            op = self._advance()
            operand = self._parse_unary()
            return A.Un(op.kind, operand, pos=self._pos(op))
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == "num":
            self._advance()
            return A.Num(token.value, pos=self._pos(token))
        if token.kind == "&":
            self._advance()
            name = self._expect("ident")
            return A.FuncRef(name.value, pos=self._pos(token))
        if token.kind == "input":
            self._advance()
            self._expect("(")
            self._expect(")")
            return A.InputExpr(pos=self._pos(token))
        if token.kind == "ident":
            if self._peek(1).kind == "(":
                return self._parse_call_expr()
            self._advance()
            return A.Var(token.value, pos=self._pos(token))
        if token.kind == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError(
            "expected an expression, found %r" % token.kind, token.line, token.col
        )

    def _parse_call_expr(self):
        name = self._expect("ident")
        self._expect("(")
        args = []
        if not self._at(")"):
            args.append(self._parse_expr())
            while self._at(","):
                self._advance()
                args.append(self._parse_expr())
        self._expect(")")
        return A.CallExpr(name.value, args, pos=self._pos(name))


def parse(source):
    """Parse TinyC ``source`` text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()
