"""Error types raised by the TinyC front end."""


class TinyCError(Exception):
    """Base class for all TinyC front-end errors.

    Carries an optional source position so callers can render
    ``file:line:col`` style diagnostics.
    """

    def __init__(self, message, line=None, col=None):
        self.message = message
        self.line = line
        self.col = col
        if line is not None:
            super().__init__("line %d:%d: %s" % (line, col or 0, message))
        else:
            super().__init__(message)


class LexError(TinyCError):
    """Raised when the lexer encounters an unrecognized character."""


class ParseError(TinyCError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(TinyCError):
    """Raised by semantic analysis: undeclared names, arity mismatches,
    calls in nested expression positions, type misuse of function pointers,
    and similar violations."""
