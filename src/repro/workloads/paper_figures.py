"""TinyC ports of the paper's figure programs.

Each ``load_*`` helper returns ``(program, info, sdg)`` ready for
slicing, so tests and benchmarks share one parsing/SDG path.
"""

from repro.lang import check, parse
from repro.sdg import build_sdg

# Fig. 1(a) / Fig. 14(a): the running example.  The closure slice with
# respect to the print's actuals has parameter mismatches at the first
# and third call sites; specialization slicing splits p into two
# versions.
FIG1_SOURCE = """
int g1;
int g2;
int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  print("%d", g2);
  return 0;
}
"""

# Fig. 2(a): direct recursion that specializes into mutual recursion.
FIG2_SOURCE = """
int g1;
int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  print("%d\\n", g1);
}
"""

# §1's flawed-method example: the assignment z = 3 is needed in p_2 but
# dead in p_1; the flawed algorithm keeps it in both.
FLAWED_SOURCE = """
int g1;
int g2;

void p(int a, int b) {
  g1 = a;
  int z = 3;
  g2 = b + z;
}

int main() {
  p(11, 4);
  p(g2, 2);
  print("%d", g1);
}
"""

# Fig. 15: function pointers and indirect calls (§6.2).
FIG15_SOURCE = """
int f(int a, int b) {
  return a + b;
}

int g(int a, int b) {
  return a;
}

int main() {
  fnptr p;
  int x;
  int c = input();
  if (c > 0) {
    p = f;
  } else {
    p = g;
  }
  x = p(1, 2);
  print("%d", x);
}
"""

# Fig. 16(a): the sum/product tally program for feature removal (§7).
# N is kept small enough that mult's repeated-addition loop stays within
# test step budgets (prod grows factorially).
FIG16_SOURCE = """
int add(int a, int b) {
  return a + b;
}

int mult(int a, int b) {
  int i = 0;
  int ans = 0;
  while (i < a) {
    ans = add(ans, b);
    i = add(i, 1);
  }
  return ans;
}

void tally(ref int sum, ref int prod, int N) {
  int i = 1;
  while (i <= N) {
    sum = add(sum, i);
    prod = mult(prod, i);
    i = add(i, 1);
  }
}

int main() {
  int sum = 0;
  int prod = 1;
  tally(sum, prod, 6);
  print("%d ", sum);
  print("%d ", prod);
}
"""

# §6.1: a conditional exit guarding later output.
EXIT_SOURCE = """
int g;

void check(int v) {
  if (v < 0) {
    exit(1);
  }
  g = v;
}

int main() {
  int x = input();
  check(x);
  print("%d", g);
}
"""


def _load(source):
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    return program, info, sdg


def load_fig1():
    return _load(FIG1_SOURCE)


def load_fig2():
    return _load(FIG2_SOURCE)


def load_flawed_example():
    return _load(FLAWED_SOURCE)


def load_fig15():
    """Fig. 15 requires function-pointer lowering before SDG
    construction; returns ``(original, lowered, info, sdg)``."""
    from repro.core.funcptr import lower_indirect_calls

    original = parse(FIG15_SOURCE)
    info = check(original)
    lowered, lowered_info = lower_indirect_calls(original, info)
    sdg = build_sdg(lowered, lowered_info)
    return original, lowered, lowered_info, sdg


def load_fig16():
    return _load(FIG16_SOURCE)


def load_exit_example():
    return _load(EXIT_SOURCE)
