"""Workloads: the paper's example programs and experiment subjects.

* :mod:`repro.workloads.paper_figures` — TinyC ports of Figs. 1, 2, 14,
  15, 16 and the §1 flawed-method example.
* :mod:`repro.workloads.exponential` — the Fig. 13 family ``P_k`` with
  ``2^k`` specializations.
* :mod:`repro.workloads.wc` — a word-count utility for the §5 speedup
  experiment.
* :mod:`repro.workloads.generator` — a seeded random TinyC program
  generator (terminating by construction).
* :mod:`repro.workloads.suite` — the Fig. 17 benchmark suite: synthetic
  stand-ins sized after the paper's test programs.
"""

from repro.workloads.exponential import exponential_program
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.paper_figures import (
    FIG1_SOURCE,
    FIG2_SOURCE,
    FIG15_SOURCE,
    FIG16_SOURCE,
    FLAWED_SOURCE,
    load_fig1,
    load_fig2,
    load_fig15,
    load_fig16,
    load_flawed_example,
)
from repro.workloads.suite import SUITE, SuiteProgram, load_suite
from repro.workloads.wc import WC_SOURCE, load_wc

__all__ = [
    "FIG1_SOURCE",
    "FIG2_SOURCE",
    "FIG15_SOURCE",
    "FIG16_SOURCE",
    "FLAWED_SOURCE",
    "GenConfig",
    "SUITE",
    "SuiteProgram",
    "WC_SOURCE",
    "exponential_program",
    "generate_program",
    "load_fig1",
    "load_fig2",
    "load_fig15",
    "load_fig16",
    "load_flawed_example",
    "load_suite",
    "load_wc",
]
