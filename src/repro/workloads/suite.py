"""The Fig. 17 benchmark suite.

The paper evaluates on the Siemens programs plus wc, gzip, space, flex
and go — C sources we cannot parse (no CodeSurfer).  Each suite entry
is instead a deterministic synthetic TinyC program whose *shape*
(procedure count, call-site density, recursion, parameter mixes) tracks
the paper's Fig. 17 row, scaled so that the largest subjects stay
tractable for a pure-Python PDS engine (roughly 1/10 of the paper's PDG
vertex counts for the big four; the small Siemens programs are near
full scale).  ``wc`` is the hand-written port from
:mod:`repro.workloads.wc`.

Each entry also fixes the number of slices taken (the Fig. 17 "# Slices
taken" column).  Criteria are *(PDG-vertex, call-stack)* bug-site
configurations anchored at print statements — the style the paper used
for the Siemens programs (Horwitz et al. 2010) — cycled over prints and
successively deeper contexts when the paper took more slices than the
program has prints.
"""

from repro.lang import pretty
from repro.sdg import build_sdg
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.wc import load_wc


class SuiteProgram(object):
    """A loaded suite entry.

    Attributes:
        name: the paper's program name with a ``_like`` suffix for
            synthetic stand-ins.
        program, info, sdg: the loaded TinyC subject.
        criteria: one entry per slice taken; each is a list of
            ``(vertex, context)`` configuration pairs (contexts are
            tuples of call-site labels, innermost first).
        paper: dict of the Fig. 17 row for reference.
    """

    def __init__(self, name, program, info, sdg, criteria, paper):
        self.name = name
        self.program = program
        self.info = info
        self.sdg = sdg
        self.criteria = criteria
        self.paper = paper

    def source_lines(self):
        return len(pretty(self.program).splitlines())

    def __repr__(self):
        return "SuiteProgram(%s: %d procs, %d vertices, %d slices)" % (
            self.name,
            len(self.program.procs),
            self.sdg.vertex_count(),
            len(self.criteria),
        )


# (name, generator config | None for wc, slices taken, Fig. 17 row)
_ROWS = [
    ("tcas_like", GenConfig(seed=101, n_globals=6, n_procs=8, stmts_low=3, stmts_high=6, recursion_prob=0.08, globals_per_proc=2, main_prints=4), 37,
     {"versions": 37, "lines": 564, "procs": 9, "vertices": 466, "call_sites": 38, "slices": 37}),
    ("schedule2_like", GenConfig(seed=102, n_globals=8, n_procs=15, stmts_low=3, stmts_high=7, recursion_prob=0.1, globals_per_proc=2, main_prints=4), 6,
     {"versions": 2, "lines": 717, "procs": 16, "vertices": 980, "call_sites": 47, "slices": 6}),
    ("schedule_like", GenConfig(seed=103, n_globals=8, n_procs=17, stmts_low=3, stmts_high=6, recursion_prob=0.1, globals_per_proc=2, main_prints=4), 11,
     {"versions": 6, "lines": 725, "procs": 18, "vertices": 873, "call_sites": 44, "slices": 11}),
    ("print_tokens_like", GenConfig(seed=104, n_globals=9, n_procs=17, stmts_low=4, stmts_high=8, recursion_prob=0.12, globals_per_proc=2, main_prints=4), 4,
     {"versions": 4, "lines": 889, "procs": 18, "vertices": 1298, "call_sites": 89, "slices": 4}),
    ("replace_like", GenConfig(seed=105, n_globals=9, n_procs=20, stmts_low=4, stmts_high=8, recursion_prob=0.15, globals_per_proc=2, main_prints=5), 20,
     {"versions": 26, "lines": 931, "procs": 21, "vertices": 1330, "call_sites": 65, "slices": 58}),
    ("print_tokens2_like", GenConfig(seed=106, n_globals=9, n_procs=18, stmts_low=3, stmts_high=7, recursion_prob=0.12, globals_per_proc=2, main_prints=5), 15,
     {"versions": 8, "lines": 957, "procs": 19, "vertices": 1128, "call_sites": 84, "slices": 42}),
    ("tot_info_like", GenConfig(seed=107, n_globals=6, n_procs=6, stmts_low=5, stmts_high=9, recursion_prob=0.08, globals_per_proc=2, main_prints=4), 12,
     {"versions": 19, "lines": 1414, "procs": 7, "vertices": 675, "call_sites": 37, "slices": 23}),
    ("wc", None, 4,
     {"versions": 1, "lines": 802, "procs": 11, "vertices": 1899, "call_sites": 170, "slices": 10}),
    ("gzip_like", GenConfig(seed=108, n_globals=12, n_procs=40, stmts_low=4, stmts_high=8, recursion_prob=0.12, globals_per_proc=3, main_prints=6), 8,
     {"versions": 4, "lines": 5314, "procs": 97, "vertices": 26419, "call_sites": 556, "slices": 26}),
    ("space_like", GenConfig(seed=109, n_globals=12, n_procs=45, stmts_low=3, stmts_high=6, recursion_prob=0.12, globals_per_proc=3, main_prints=6), 10,
     {"versions": 20, "lines": 7429, "procs": 136, "vertices": 18822, "call_sites": 1016, "slices": 69}),
    ("flex_like", GenConfig(seed=110, n_globals=14, n_procs=55, stmts_low=4, stmts_high=8, recursion_prob=0.15, globals_per_proc=3, main_prints=6), 10,
     {"versions": 5, "lines": 10425, "procs": 147, "vertices": 38436, "call_sites": 1308, "slices": 79}),
    ("go_like", GenConfig(seed=111, n_globals=14, n_procs=70, stmts_low=5, stmts_high=9, recursion_prob=0.12, globals_per_proc=3, main_prints=8), 8,
     {"versions": 1, "lines": 29246, "procs": 372, "vertices": 102455, "call_sites": 2084, "slices": 10}),
]


#: Names of all suite programs, in Fig. 17 order.
SUITE = [row[0] for row in _ROWS]

#: The small subset used by default in CI-speed benchmark runs.
QUICK_SUITE = [
    "tcas_like",
    "schedule2_like",
    "schedule_like",
    "tot_info_like",
    "wc",
]

_cache = {}


def load_suite(names=None, max_slices=None):
    """Load suite programs (cached).

    Args:
        names: iterable of suite names; default all.
        max_slices: cap the number of slices (criteria) per program.

    Returns:
        list of :class:`SuiteProgram`.
    """
    if names is None:
        names = SUITE
    loaded = []
    for name in names:
        if name not in _cache:
            _cache[name] = _load_row(name)
        entry = _cache[name]
        if max_slices is not None and len(entry.criteria) > max_slices:
            entry = SuiteProgram(
                entry.name,
                entry.program,
                entry.info,
                entry.sdg,
                entry.criteria[:max_slices],
                entry.paper,
            )
        loaded.append(entry)
    return loaded


def _load_row(name):
    row = next(r for r in _ROWS if r[0] == name)
    _name, config, slices, paper = row
    if config is None:
        program, info, sdg = load_wc()
    else:
        program, info = generate_program(config)
        sdg = build_sdg(program, info)
    criteria = _print_criteria(sdg, slices)
    return SuiteProgram(name, program, info, sdg, criteria, paper)


def _print_criteria(sdg, count):
    """One criterion per slice, in the style of the paper's experiments:
    a *(PDG-vertex, call-stack)* configuration (Horwitz et al. 2010
    bug-site criteria) anchored at the actual-ins of a print call, under
    one realizable calling context.  Prints are cycled with successively
    deeper contexts when the paper took more slices than prints exist;
    prints in procedures unreachable from main are skipped (their slices
    are empty by definition).

    Each criterion is a list of ``(vertex, context)`` pairs; contexts
    are tuples of call-site labels, innermost call first.
    """
    reachable = sdg.call_graph.reachable_from("main")
    prints = [
        vid
        for vid in sdg.print_call_vertices()
        if sdg.vertices[vid].proc in reachable
    ]
    chains = _context_chains(sdg)
    criteria = []
    index = 0
    while len(criteria) < count and prints:
        call_vid = prints[index % len(prints)]
        proc = sdg.vertices[call_vid].proc
        variant = index // len(prints)
        context = _pick_context(chains, proc, variant)
        actual_ins = sorted(sdg.print_criterion([call_vid]))
        criteria.append([(vid, context) for vid in actual_ins])
        index += 1
    return criteria


def _context_chains(sdg):
    """For each procedure, a few realizable calling contexts (tuples of
    call-site labels, innermost first), discovered by BFS over the call
    graph from main."""
    from collections import deque

    chains = {"main": [()]}
    queue = deque(["main"])
    # Several passes so recursive cycles contribute deeper contexts.
    for _round in range(3):
        queue = deque(chains.keys())
        while queue:
            caller = queue.popleft()
            for label in sdg.sites_in_proc.get(caller, ()):
                site = sdg.call_sites[label]
                for context in chains.get(caller, ())[:2]:
                    extended = (label,) + context
                    bucket = chains.setdefault(site.callee, [])
                    if extended not in bucket and len(bucket) < 4:
                        bucket.append(extended)
                        queue.append(site.callee)
    return chains


def _pick_context(chains, proc, variant):
    options = chains.get(proc, [()])
    return options[variant % len(options)]
