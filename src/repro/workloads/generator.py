"""A seeded random TinyC program generator.

The §8 experiments need many realistic multi-procedure subjects; the
paper used C programs we cannot parse, so the suite (Fig. 17 stand-ins)
is produced here with controlled size knobs.  The generator also powers
the property-based tests: every generated program is

* semantically valid (passes ``check``), and
* terminating by construction:

  - procedure calls follow a DAG, except self-recursion guarded by
    ``if (k > 0)`` on a decrementing counter parameter;
  - loops iterate a fresh counter up to a small constant;
  - counter variables (loop counters, recursion counters) are
    *reserved*: never assigned, never passed by reference, and
    recursion counters receive only small constants at external call
    sites;
  - multiplication is excluded from generated expressions so values
    grow at most additively (no iterated-squaring blowups).

Determinism: everything derives from ``GenConfig.seed``.
"""

import random

from repro.lang import ast_nodes as A
from repro.lang import check


class GenConfig(object):
    """Size and shape knobs for program generation."""

    def __init__(
        self,
        seed=0,
        n_globals=6,
        n_procs=8,
        stmts_low=3,
        stmts_high=7,
        max_depth=2,
        max_params=3,
        ref_param_prob=0.2,
        recursion_prob=0.25,
        call_prob=0.35,
        print_prob=0.08,
        input_prob=0.1,
        exit_prob=0.0,
        main_prints=3,
        globals_per_proc=None,
        param_coupling=0.9,
        call_depth=5,
        returns_prob=0.8,
        capture_prob=0.9,
        local_bias=0.6,
    ):
        self.seed = seed
        self.n_globals = n_globals
        self.n_procs = n_procs
        self.stmts_low = stmts_low
        self.stmts_high = stmts_high
        self.max_depth = max_depth
        self.max_params = max_params
        self.ref_param_prob = ref_param_prob
        self.recursion_prob = recursion_prob
        self.call_prob = call_prob
        self.print_prob = print_prob
        self.input_prob = input_prob
        self.exit_prob = exit_prob
        self.main_prints = main_prints
        # Maximum call-graph depth: procedures are stratified into this
        # many levels and only call strictly lower levels.  Real call
        # graphs are broad and shallow; an unstratified DAG over 70
        # procedures can be 70 calls deep, compounding calling-context
        # diversity far beyond anything the paper's C subjects exhibit.
        self.call_depth = call_depth
        # How many globals each procedure may touch (None = all).
        self.globals_per_proc = globals_per_proc
        # Return-value-centric interfaces: real helpers communicate
        # mostly through return values their callers actually use, which
        # keeps their relevant-output pattern uniform across contexts
        # (the paper's 90.6% single-version procedures).  Global-heavy
        # side-channel communication is what multiplies variants.
        self.returns_prob = returns_prob
        self.capture_prob = capture_prob
        # Probability that an assignment prefers a local over a global
        # when both are available.
        self.local_bias = local_bias
        # Maximum call-graph depth: procedures are stratified into this
        # many levels and only call strictly lower levels.  Real call
        # graphs are broad and shallow; an unstratified DAG over 70
        # procedures can be 70 calls deep, compounding calling-context
        # diversity far beyond anything the paper's C subjects exhibit.
        # Probability that a parameter is coupled into the procedure's
        # outputs.  Real procedures use nearly all their parameters for
        # their main result (the paper found parameter mismatches in
        # only 9.4% of sliced procedures); uncoupled parameters are what
        # create specialization opportunities.
        self.param_coupling = param_coupling


class _ProcContext(object):
    def __init__(self, name, params, returns_value, recursive, globals_view=None):
        self.name = name
        self.params = params  # list of A.Param
        self.returns_value = returns_value
        self.recursive = recursive
        # The procedure's global "affinity set": real programs are
        # modular — each procedure touches a small slice of the global
        # state.  Without this, every procedure reads/writes every
        # global and slices become combinatorially polyvariant (the
        # Fig. 13 worst case), unlike the paper's C subjects.
        self.globals_view = globals_view
        self.locals = []  # names declared so far (generation order)
        self.hoisted = []  # LocalDecl statements to prepend (nested decls)
        self.reserved = set()  # counters: read-only for generated code
        self.counter = 0
        if recursive:
            self.reserved.add(params[0].name)

    def fresh_local(self):
        self.counter += 1
        return "v%d_%s" % (self.counter, self.name)

    def fresh_loop(self):
        self.counter += 1
        return "i%d_%s" % (self.counter, self.name)

    def _visible_globals(self, globals_):
        if self.globals_view is None:
            return list(globals_)
        return list(self.globals_view)

    def readable_vars(self, globals_):
        names = self._visible_globals(globals_)
        names.extend(param.name for param in self.params if param.kind != "fnptr")
        names.extend(self.locals)
        return names

    def writable_vars(self, globals_):
        names = self._visible_globals(globals_)
        names.extend(
            param.name for param in self.params if param.kind in ("value", "ref")
        )
        names.extend(self.locals)
        return [name for name in names if name not in self.reserved]

    def ref_candidates(self):
        # No globals: the no-alias discipline forbids passing a global by
        # reference.  Counters are reserved.
        pool = [p.name for p in self.params if p.kind in ("value", "ref")]
        pool.extend(self.locals)
        return [name for name in pool if name not in self.reserved]


class _Generator(object):
    # No "*": iterated squaring inside loops/recursion would produce
    # astronomically large integers.
    _OPS = ["+", "+", "-", "-", "%", "<", "<=", ">", "==", "!="]

    def __init__(self, config):
        self.config = config
        self.rng = random.Random(config.seed)
        self.globals = ["g%d" % index for index in range(config.n_globals)]
        self.procs = []  # generated A.Proc, callees first
        self.signatures = {}  # name -> (params, returns_value)
        self.level = {}  # proc name -> call-graph stratum

    # -- expressions ----------------------------------------------------------

    def _expr(self, ctx, depth=0):
        rng = self.rng
        readable = ctx.readable_vars(self.globals)
        choice = rng.random()
        if depth >= 2 or choice < 0.35 or not readable:
            return A.Num(rng.randint(0, 9))
        if choice < 0.7:
            return A.Var(rng.choice(readable))
        op = rng.choice(self._OPS)
        return A.Bin(op, self._expr(ctx, depth + 1), self._expr(ctx, depth + 1))

    def _condition(self, ctx):
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return A.Bin(op, self._expr(ctx, 1), self._expr(ctx, 1))

    # -- statements ---------------------------------------------------------------

    def _declare_local(self, ctx, name, init, depth):
        """Create a local declaration; nested declarations are hoisted
        to the top of the body (as plain ``int x;``) and the in-place
        statement becomes an assignment, so no use can precede its
        declaration at run time."""
        ctx.locals.append(name)
        if depth == 0:
            return A.LocalDecl(name, init)
        ctx.hoisted.append(A.LocalDecl(name, None))
        if init is None:
            init = A.Num(0)
        return A.Assign(name, init)

    def _stmt(self, ctx, depth, allow_recursion, loop_depth=0):
        rng, config = self.rng, self.config
        roll = rng.random()
        writable = ctx.writable_vars(self.globals)

        if roll < config.print_prob:
            return A.Print([self._expr(ctx)], "%d\n")
        roll -= config.print_prob

        if roll < config.exit_prob:
            return A.ExitStmt(A.Num(rng.randint(0, 3)))
        roll -= config.exit_prob

        if roll < config.input_prob and writable:
            return A.Assign(rng.choice(writable), A.InputExpr())
        roll -= config.input_prob

        if roll < config.call_prob and loop_depth == 0:
            # Calls are never generated inside loops: along a call DAG,
            # loop-amplified call counts multiply into astronomically
            # large dynamic call trees.
            call_stmt = self._call_stmt(ctx, allow_recursion)
            if call_stmt is not None:
                return call_stmt

        if depth < config.max_depth and rng.random() < 0.35:
            if rng.random() < 0.5:
                then = A.Block(self._block(ctx, depth + 1, allow_recursion, loop_depth))
                els = None
                if rng.random() < 0.5:
                    els = A.Block(self._block(ctx, depth + 1, allow_recursion, loop_depth))
                return A.If(self._condition(ctx), then, els)
            # Bounded loop over a fresh, reserved counter.
            counter = ctx.fresh_loop()
            decl = self._declare_local(ctx, counter, A.Num(0), depth)
            ctx.reserved.add(counter)
            bound = rng.randint(1, 4)
            body = self._block(ctx, depth + 1, allow_recursion, loop_depth + 1)
            body.append(A.Assign(counter, A.Bin("+", A.Var(counter), A.Num(1))))
            loop = A.While(A.Bin("<", A.Var(counter), A.Num(bound)), A.Block(body))
            if isinstance(decl, A.Assign):
                return [decl, loop]
            return [decl, loop]

        if rng.random() < 0.3 and depth == 0:
            name = ctx.fresh_local()
            return self._declare_local(ctx, name, self._expr(ctx), depth)
        if writable:
            locals_only = [n for n in writable if n not in self.globals]
            if locals_only and rng.random() < config.local_bias:
                return A.Assign(rng.choice(locals_only), self._expr(ctx))
            return A.Assign(rng.choice(writable), self._expr(ctx))
        return A.Print([self._expr(ctx)], "%d\n")

    def _call_stmt(self, ctx, allow_recursion):
        rng = self.rng
        my_level = self.level.get(ctx.name, -1)
        candidates = [
            proc for proc in self.procs if self.level[proc.name] > my_level
        ]
        if allow_recursion and ctx.recursive:
            candidates.append(None)  # marker for self-call
        if not candidates:
            return None
        target = rng.choice(candidates)
        if target is None:
            params = ctx.params
            args = [A.Bin("-", A.Var(params[0].name), A.Num(1))]
            args += self._call_args(ctx, params, skip=1)
            call = A.CallExpr(ctx.name, args)
            returns = ctx.returns_value
        else:
            params, returns = self.signatures[target.name]
            args = self._call_args(ctx, params)
            call = A.CallExpr(target.name, args)
        if returns and rng.random() < self.config.capture_prob:
            writable = ctx.writable_vars(self.globals)
            if writable:
                return A.Assign(rng.choice(writable), call)
        return A.CallStmt(call)

    def _call_args(self, ctx, params, skip=0):
        """Arguments for one call, honoring the no-alias rule: ref
        arguments are pairwise-distinct non-global variables (fresh
        locals are synthesized when the caller has none to spare)."""
        used_refs = set()
        args = []
        for param in params[skip:]:
            if param.kind == "ref":
                pool = [n for n in ctx.ref_candidates() if n not in used_refs]
                if pool:
                    name = self.rng.choice(pool)
                else:
                    name = ctx.fresh_local()
                    ctx.locals.append(name)
                    ctx.hoisted.append(A.LocalDecl(name, None))
                used_refs.add(name)
                args.append(A.Var(name))
            elif param.name.startswith("k_"):
                # A recursion counter: keep the depth small.
                args.append(A.Num(self.rng.randint(0, 3)))
            else:
                args.append(self._expr(ctx))
        return args

    def _block(self, ctx, depth, allow_recursion, loop_depth=0):
        count = self.rng.randint(self.config.stmts_low, self.config.stmts_high)
        stmts = []
        for _ in range(count):
            stmt = self._stmt(ctx, depth, allow_recursion, loop_depth)
            if isinstance(stmt, list):
                stmts.extend(stmt)
            else:
                stmts.append(stmt)
        return stmts

    # -- procedures -------------------------------------------------------------------

    def _make_proc(self, index):
        rng, config = self.rng, self.config
        name = "proc%d" % index
        self.level[name] = (index - 1) * config.call_depth // max(
            1, config.n_procs
        )
        recursive = rng.random() < config.recursion_prob
        n_params = rng.randint(1 if recursive else 0, max(1, config.max_params))
        params = []
        for position in range(n_params):
            if recursive and position == 0:
                params.append(A.Param("k_%s" % name, "value"))
            elif rng.random() < config.ref_param_prob:
                params.append(A.Param("r%d_%s" % (position, name), "ref"))
            else:
                params.append(A.Param("p%d_%s" % (position, name), "value"))
        returns_value = rng.random() < config.returns_prob
        view = None
        if config.globals_per_proc is not None:
            # Most real helpers are pure (params/return only); a
            # minority touch a small set of globals.  Sample the
            # affinity size from {0, 1, .., globals_per_proc} with a
            # heavy bias toward purity.
            cap = min(config.globals_per_proc, len(self.globals))
            roll = rng.random()
            if roll < 0.45:
                size = 0
            elif roll < 0.8:
                size = min(1, cap)
            else:
                size = cap
            view = rng.sample(self.globals, size)
        ctx = _ProcContext(name, params, returns_value, recursive, view)

        body = self._block(ctx, 0, allow_recursion=False)
        if recursive:
            inner = self._block(ctx, 1, allow_recursion=True)
            if not any(_contains_self_call(stmt, name) for stmt in inner):
                args = [A.Bin("-", A.Var(params[0].name), A.Num(1))]
                args += self._call_args(ctx, params, skip=1)
                inner.append(A.CallStmt(A.CallExpr(name, args)))
            guard = A.If(
                A.Bin(">", A.Var(params[0].name), A.Num(0)), A.Block(inner), None
            )
            body.append(guard)
        # Couple most parameters into the procedure's outputs so slices
        # that need the outputs need the parameters too (cohesion).
        sinks = ctx.writable_vars(self.globals)
        for param in params:
            if param.kind == "fnptr" or param.name in ctx.reserved:
                continue
            if sinks and rng.random() < config.param_coupling:
                sink = rng.choice(sinks)
                body.append(
                    A.Assign(sink, A.Bin("+", A.Var(sink), A.Var(param.name)))
                )
        if returns_value:
            expr = self._expr(ctx)
            coupled = [p.name for p in params if p.kind == "value"]
            if coupled and rng.random() < config.param_coupling:
                expr = A.Bin("+", expr, A.Var(rng.choice(coupled)))
            body.append(A.Return(expr))
        body = ctx.hoisted + body
        proc = A.Proc(name, params, "int" if returns_value else "void", A.Block(body))
        self.signatures[name] = (params, returns_value)
        return proc

    def _make_main(self):
        rng, config = self.rng, self.config
        ctx = _ProcContext("main", [], True, False)
        body = []
        for name in self.globals:
            body.append(A.Assign(name, A.Num(rng.randint(0, 9))))
        body.extend(self._block(ctx, 0, allow_recursion=False))
        for proc in self.procs:
            if rng.random() < 0.6:
                body.append(self._direct_call(ctx, proc))
        for _ in range(config.main_prints):
            body.append(A.Print([A.Var(rng.choice(self.globals))], "%d\n"))
        body.append(A.Return(A.Num(0)))
        body = ctx.hoisted + body
        return A.Proc("main", [], "int", A.Block(body))

    def _direct_call(self, ctx, proc):
        params, returns = self.signatures[proc.name]
        args = self._call_args(ctx, params)
        call = A.CallExpr(proc.name, args)
        if returns and self.rng.random() < self.config.capture_prob:
            return A.Assign(self.rng.choice(self.globals), call)
        return A.CallStmt(call)

    def run(self):
        globals_ = [A.GlobalDecl(name, A.Num(0)) for name in self.globals]
        for index in range(self.config.n_procs, 0, -1):
            self.procs.append(self._make_proc(index))
        main = self._make_main()
        procs = list(reversed(self.procs)) + [main]
        program = A.Program(globals_, procs)
        info = check(program)
        return program, info


def _contains_self_call(stmt, name):
    for inner in _walk([stmt]):
        for expr in A.stmt_exprs(inner):
            for sub in A.walk_exprs(expr):
                if isinstance(sub, A.CallExpr) and sub.callee == name:
                    return True
    return False


def _walk(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, A.If):
            for inner in _walk(stmt.then.stmts):
                yield inner
            if stmt.els is not None:
                for inner in _walk(stmt.els.stmts):
                    yield inner
        elif isinstance(stmt, A.While):
            for inner in _walk(stmt.body.stmts):
                yield inner


def generate_program(config=None, **kwargs):
    """Generate a random valid TinyC program.

    Returns ``(program, info)``.  Accepts either a :class:`GenConfig` or
    keyword arguments for one.
    """
    if config is None:
        config = GenConfig(**kwargs)
    return _Generator(config).run()
