"""A word-count utility in TinyC (the §5 speedup subject).

Mirrors the structure of coreutils ``wc``: a scanning loop that feeds
per-category counting procedures.  Input is a stream of character codes
terminated by 0; newline is 10, space 32, tab 9.

The three reports at the end are the natural slicing criteria.  A slice
with respect to the line count alone drops the word-state machinery, so
its interpreter step count is a fraction of the original's — the
analogue of the paper's "executable slices of wc took 32.5% of the time
of the original".
"""

from repro.lang import check, parse
from repro.sdg import build_sdg

WC_SOURCE = """
int lines;
int words;
int chars;
int in_word;
int max_line_len;
int cur_line_len;

int is_space(int c) {
  if (c == 32) {
    return 1;
  }
  if (c == 9) {
    return 1;
  }
  if (c == 10) {
    return 1;
  }
  return 0;
}

void count_char(int c) {
  chars = chars + 1;
}

void count_line(int c) {
  if (c == 10) {
    lines = lines + 1;
    if (cur_line_len > max_line_len) {
      max_line_len = cur_line_len;
    }
    cur_line_len = 0;
  } else {
    cur_line_len = cur_line_len + 1;
  }
}

void count_word(int c, int space) {
  if (space == 1) {
    in_word = 0;
  } else {
    if (in_word == 0) {
      in_word = 1;
      words = words + 1;
    }
  }
}

void scan() {
  int c = input();
  while (c != 0) {
    int space = is_space(c);
    count_char(c);
    count_line(c);
    count_word(c, space);
    c = input();
  }
}

int main() {
  lines = 0;
  words = 0;
  chars = 0;
  in_word = 0;
  max_line_len = 0;
  cur_line_len = 0;
  scan();
  print("lines %d\\n", lines);
  print("words %d\\n", words);
  print("chars %d\\n", chars);
  print("longest %d\\n", max_line_len);
  return 0;
}
"""


def load_wc():
    """Returns ``(program, info, sdg)`` for the wc utility."""
    program = parse(WC_SOURCE)
    info = check(program)
    sdg = build_sdg(program, info)
    return program, info, sdg


def scaled_wc_source(categories=8):
    """A wc at scale: the same scan-loop-feeding-counters structure,
    with ``categories`` extra per-category counting procedures (digit
    runs, punctuation, vowels, ... — here abstracted as residue
    classes) each feeding its own report line.  Used by the
    incremental-slicing benchmark: the per-category procedures are
    mutually independent, so an edit to one leaves every other
    report's slice untouched."""
    lines = ["int cat_%d;" % index for index in range(categories)]
    lines.append(WC_SOURCE[: WC_SOURCE.index("void scan()")].rstrip())
    for index in range(categories):
        lines.append(
            "\nvoid count_cat_%d(int c) {\n"
            "  if (c %% %d == %d) {\n"
            "    cat_%d = cat_%d + 1;\n"
            "  }\n"
            "}" % (index, categories + 2, index, index, index)
        )
    calls = "".join(
        "    count_cat_%d(c);\n" % index for index in range(categories)
    )
    lines.append(
        "\nvoid scan() {\n"
        "  int c = input();\n"
        "  while (c != 0) {\n"
        "    int space = is_space(c);\n"
        "    count_char(c);\n"
        "    count_line(c);\n"
        "    count_word(c, space);\n"
        + calls
        + "    c = input();\n"
        "  }\n"
        "}"
    )
    inits = "".join("  cat_%d = 0;\n" % index for index in range(categories))
    reports = "".join(
        '  print("cat%d %%d\\n", cat_%d);\n' % (index, index)
        for index in range(categories)
    )
    lines.append(
        "\nint main() {\n"
        "  lines = 0;\n"
        "  words = 0;\n"
        "  chars = 0;\n"
        "  in_word = 0;\n"
        "  max_line_len = 0;\n"
        "  cur_line_len = 0;\n"
        + inits
        + "  scan();\n"
        '  print("lines %d\\n", lines);\n'
        '  print("words %d\\n", words);\n'
        '  print("chars %d\\n", chars);\n'
        + reports
        + "  return 0;\n"
        "}"
    )
    return "\n".join(lines) + "\n"


def text_to_inputs(text):
    """Encode a text as the input stream wc consumes (0-terminated
    character codes)."""
    return [ord(ch) for ch in text] + [0]
