"""The Fig. 13 exponential family.

``P_k`` has ``k`` recursive call sites; after the call at the i-th site,
temporary ``t_i`` is zeroed while every other temporary receives the
corresponding global — breaking exactly one dependence per site.  The
broken-dependence patterns of different recursion levels interact, so
the slice from the final print generates a specialized version of
``Pk`` for every subset of ``{g1..gk}``: ``2^k`` versions (§4.3).
"""

from repro.lang import check, parse
from repro.sdg import build_sdg


def exponential_source(k):
    """The TinyC source of the family's k-th member."""
    if k < 1:
        raise ValueError("k must be >= 1")
    lines = []
    for i in range(1, k + 1):
        lines.append("int g%d;" % i)
    lines.append("")
    lines.append("void Pk(int m) {")
    lines.append("  int v;")
    for i in range(1, k + 1):
        lines.append("  int t%d;" % i)
    lines.append("  if (m == 0) {")
    lines.append("    return;")
    lines.append("  }")
    lines.append("  v = input();")
    if k == 1:
        lines.append("  Pk(m - 1);")
        lines.append("  t1 = 0;")
    else:
        for branch in range(1, k + 1):
            if branch == 1:
                lines.append("  if (v == 1) {")
            elif branch < k:
                lines.append("  } else if (v == %d) {" % branch)
            else:
                lines.append("  } else {")
            lines.append("    Pk(m - 1);")
            for i in range(1, k + 1):
                if i == branch:
                    lines.append("    t%d = 0;" % i)
                else:
                    lines.append("    t%d = g%d;" % (i, i))
        lines.append("  }")
    for i in range(1, k + 1):
        lines.append("  g%d = t%d;" % (i, i))
    lines.append("}")
    lines.append("")
    lines.append("int main() {")
    for i in range(1, k + 1):
        lines.append("  g%d = %d;" % (i, i))
    lines.append("  Pk(%d);" % k)
    total = " + ".join("g%d" % i for i in range(1, k + 1))
    lines.append('  print("%%d\\n", %s);' % total)
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def exponential_program(k):
    """Parse and build: returns ``(program, info, sdg)``."""
    program = parse(exponential_source(k))
    info = check(program)
    sdg = build_sdg(program, info)
    return program, info, sdg
