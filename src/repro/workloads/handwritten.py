"""Hand-written realistic TinyC subjects.

The synthetic suite controls *scale*; these programs supply *realism*:
idiomatic multi-procedure structure written by hand, in the spirit of
the paper's Siemens subjects — a token classifier (print_tokens-like),
a priority-queue scheduler simulation (schedule-like), and a streaming
statistics calculator (tot_info-like).  All consume the 0-terminated
``input()`` stream and report through prints, giving each several
natural slicing criteria.
"""

from repro.lang import check, parse
from repro.sdg import build_sdg

# A token classifier: reads a 0-terminated character stream and counts
# token classes, tracking the longest token (print_tokens-like).
TOKENIZER_SOURCE = """
int n_numbers;
int n_idents;
int n_ops;
int n_unknown;
int longest;
int cur_len;

int is_digit(int c) {
  if (c >= 48) {
    if (c <= 57) {
      return 1;
    }
  }
  return 0;
}

int is_alpha(int c) {
  if (c >= 97) {
    if (c <= 122) {
      return 1;
    }
  }
  if (c >= 65) {
    if (c <= 90) {
      return 1;
    }
  }
  return 0;
}

int is_op(int c) {
  if (c == 43) { return 1; }
  if (c == 45) { return 1; }
  if (c == 42) { return 1; }
  if (c == 47) { return 1; }
  if (c == 61) { return 1; }
  return 0;
}

int is_space(int c) {
  if (c == 32) { return 1; }
  if (c == 10) { return 1; }
  if (c == 9) { return 1; }
  return 0;
}

void note_token_end() {
  if (cur_len > longest) {
    longest = cur_len;
  }
  cur_len = 0;
}

int scan_number(int c) {
  int d = is_digit(c);
  while (d == 1) {
    cur_len = cur_len + 1;
    c = input();
    d = is_digit(c);
  }
  n_numbers = n_numbers + 1;
  note_token_end();
  return c;
}

int scan_ident(int c) {
  int a = is_alpha(c);
  int d = is_digit(c);
  while (a == 1 || d == 1) {
    cur_len = cur_len + 1;
    c = input();
    a = is_alpha(c);
    d = is_digit(c);
  }
  n_idents = n_idents + 1;
  note_token_end();
  return c;
}

void classify_single(int c) {
  int o = is_op(c);
  if (o == 1) {
    n_ops = n_ops + 1;
  } else {
    int s = is_space(c);
    if (s == 0) {
      n_unknown = n_unknown + 1;
    }
  }
}

int main() {
  int c = input();
  while (c != 0) {
    int d = is_digit(c);
    int a = is_alpha(c);
    if (d == 1) {
      c = scan_number(c);
    } else {
      if (a == 1) {
        c = scan_ident(c);
      } else {
        classify_single(c);
        c = input();
      }
    }
  }
  print("numbers %d\\n", n_numbers);
  print("idents %d\\n", n_idents);
  print("ops %d\\n", n_ops);
  print("unknown %d\\n", n_unknown);
  print("longest %d\\n", longest);
}
"""

# A three-level priority scheduler simulation: jobs arrive with a
# priority (1..3) from the input stream (0 ends the workload); each
# round runs the highest-priority job, ages lower queues, and demotes
# long-running work (schedule-like).
SCHEDULER_SOURCE = """
int high_q;
int mid_q;
int low_q;
int completed;
int demotions;
int promotions;
int idle_ticks;
int clock;

void enqueue(int priority) {
  if (priority >= 3) {
    high_q = high_q + 1;
  } else {
    if (priority == 2) {
      mid_q = mid_q + 1;
    } else {
      low_q = low_q + 1;
    }
  }
}

int pick_queue() {
  if (high_q > 0) { return 3; }
  if (mid_q > 0) { return 2; }
  if (low_q > 0) { return 1; }
  return 0;
}

void run_one(int which) {
  if (which == 3) {
    high_q = high_q - 1;
    if (clock % 3 == 0) {
      mid_q = mid_q + 1;
      demotions = demotions + 1;
    } else {
      completed = completed + 1;
    }
  } else {
    if (which == 2) {
      mid_q = mid_q - 1;
      completed = completed + 1;
    } else {
      low_q = low_q - 1;
      completed = completed + 1;
    }
  }
}

void age_queues() {
  if (clock % 4 == 0) {
    if (low_q > 0) {
      low_q = low_q - 1;
      mid_q = mid_q + 1;
      promotions = promotions + 1;
    }
  }
}

void tick() {
  int which = pick_queue();
  if (which == 0) {
    idle_ticks = idle_ticks + 1;
  } else {
    run_one(which);
  }
  age_queues();
  clock = clock + 1;
}

int pending() {
  return high_q + mid_q + low_q;
}

int main() {
  int priority = input();
  while (priority != 0) {
    enqueue(priority);
    tick();
    priority = input();
  }
  int left = pending();
  int guard = 0;
  while (left > 0 && guard < 1000) {
    tick();
    left = pending();
    guard = guard + 1;
  }
  print("completed %d\\n", completed);
  print("demotions %d\\n", demotions);
  print("promotions %d\\n", promotions);
  print("idle %d\\n", idle_ticks);
  print("clock %d\\n", clock);
}
"""

# A streaming statistics calculator with a gcd-based ratio reducer
# (tot_info-like: independent statistics over a table of counts).
STATISTICS_SOURCE = """
int count;
int total;
int minimum;
int maximum;
int positives;
int negatives;
int started;

int gcd(int a, int b) {
  if (a < 0) { a = 0 - a; }
  if (b < 0) { b = 0 - b; }
  if (b == 0) { return a; }
  int r = a % b;
  int result = gcd(b, r);
  return result;
}

void note_extremes(int value) {
  if (started == 0) {
    minimum = value;
    maximum = value;
    started = 1;
  } else {
    if (value < minimum) { minimum = value; }
    if (value > maximum) { maximum = value; }
  }
}

void note_sign(int value) {
  if (value > 0) { positives = positives + 1; }
  if (value < 0) { negatives = negatives + 1; }
}

void consume(int value) {
  count = count + 1;
  total = total + value;
  note_extremes(value);
  note_sign(value);
}

int mean() {
  if (count == 0) { return 0; }
  return total / count;
}

int spread() {
  return maximum - minimum;
}

int main() {
  int n = input();
  int i = 0;
  while (i < n && i < 200) {
    int value = input();
    consume(value);
    i = i + 1;
  }
  int m = mean();
  int s = spread();
  int g = gcd(positives, negatives);
  print("count %d\\n", count);
  print("total %d\\n", total);
  print("mean %d\\n", m);
  print("min %d\\n", minimum);
  print("max %d\\n", maximum);
  print("spread %d\\n", s);
  print("sign-gcd %d\\n", g);
}
"""


def _load(source):
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    return program, info, sdg


def load_tokenizer():
    return _load(TOKENIZER_SOURCE)


def load_scheduler():
    return _load(SCHEDULER_SOURCE)


def load_statistics():
    return _load(STATISTICS_SOURCE)


HANDWRITTEN = {
    "tokenizer": load_tokenizer,
    "scheduler": load_scheduler,
    "statistics": load_statistics,
}
