"""E8 — Figs. 1/14: the running example's three-way comparison
(closure slice vs polyvariant vs monovariant executable slices).

Regenerates the paper's side-by-side: the closure slice's 21 elements
(Eqn. 2), the polyvariant slice with two versions of p (Fig. 14(b)),
and Binkley's monovariant slice with the g2 = 100 add-back
(Fig. 14(c)).
"""

from bench_utils import print_table
from repro.core import (
    binkley_slice,
    executable_program,
    monovariant_program,
    specialization_slice,
)
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig1


def test_fig14_three_way(benchmark):
    program, _info, sdg = load_fig1()
    criterion = sdg.print_criterion()

    poly = benchmark(
        lambda: specialization_slice(sdg, criterion, contexts="empty")
    )
    mono = binkley_slice(sdg, criterion)

    rows = [
        ("closure slice", len(mono.closure), "not executable (mismatches)"),
        (
            "polyvariant (Fig. 14b)",
            poly.sdg.vertex_count(),
            "p split into %d versions" % poly.version_counts()["p"],
        ),
        (
            "monovariant (Fig. 14c)",
            len(mono.slice_set),
            "adds back: %s"
            % sorted(sdg.vertices[v].label for v in mono.added),
        ),
    ]
    print_table(
        "Fig. 14 — closure vs polyvariant vs monovariant",
        ["slice", "#vertices", "notes"],
        rows,
    )

    poly_text = pretty(executable_program(poly).program)
    mono_text = pretty(monovariant_program(sdg, mono.slice_set).program)
    print("--- polyvariant (Fig. 14b) ---")
    print(poly_text)
    print("--- monovariant (Fig. 14c) ---")
    print(mono_text)

    assert poly.version_counts()["p"] == 2
    assert "g2 = 100" in mono_text
    assert "g2 = 100" not in poly_text
    original = run_program(program)
    assert run_program(executable_program(poly).program).values == original.values
    assert (
        run_program(monovariant_program(sdg, mono.slice_set).program).values
        == original.values
    )
