"""Process-pool backend benchmark: true parallelism across programs.

The thread backend shares one GIL, so on a *multi-program* batch — N
independent front halves and saturations, the corpus-inspection shape —
process workers are the only way to use more than one core.  The
acceptance bar: with >= 2 cores, ``slice_many_programs`` with
``backend="process"`` beats ``backend="thread"`` on a batch of
distinct generated programs.  On a single-core machine the comparison
is meaningless (process workers only add fork/pickle overhead), so the
timing assertion is skipped — the equivalence check still runs.
"""

import os
import time

import pytest

from repro.engine import slice_many_programs
from repro.lang import pretty
from repro.workloads.generator import GenConfig, generate_program

N_PROGRAMS = 4
N_CRITERIA = 4


@pytest.fixture(scope="module")
def batch():
    jobs = []
    for seed in range(N_PROGRAMS):
        program, _info = generate_program(
            GenConfig(seed=40 + seed, n_procs=8, main_prints=N_CRITERIA)
        )
        jobs.append(
            (pretty(program), [("print", index) for index in range(N_CRITERIA)])
        )
    return jobs


def _run(jobs, backend):
    t0 = time.perf_counter()
    results = slice_many_programs(jobs, backend=backend)
    return time.perf_counter() - t0, results


def test_process_backend_matches_thread_backend(batch):
    _seconds, threaded = _run(batch, "thread")
    _seconds, processed = _run(batch, "process")
    assert len(threaded) == len(processed) == N_PROGRAMS
    for batch_a, batch_b in zip(threaded, processed):
        for a, b in zip(batch_a, batch_b):
            assert a.version_counts() == b.version_counts()
            assert a.closure_elems() == b.closure_elems()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-vs-thread speedup needs >= 2 cores",
)
def test_process_backend_beats_thread_backend(batch):
    # Warm both pool machineries once (fork/import costs, suite state).
    _run(batch[:1], "thread")
    _run(batch[:1], "process")

    thread_seconds, _results = _run(batch, "thread")
    process_seconds, _results = _run(batch, "process")
    print(
        "\n%d programs x %d criteria: thread %.3fs, process %.3fs -> %.2fx"
        % (
            N_PROGRAMS,
            N_CRITERIA,
            thread_seconds,
            process_seconds,
            thread_seconds / process_seconds,
        )
    )
    assert process_seconds < thread_seconds, (
        "on a multi-program batch with %d cores, the process backend must "
        "beat the thread backend (process %.3fs vs thread %.3fs)"
        % (os.cpu_count(), process_seconds, thread_seconds)
    )
