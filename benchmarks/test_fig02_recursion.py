"""E9 — Fig. 2: recursion-pattern conversion (direct -> mutual).

Regenerates the Fig. 2(b) output and verifies the two r versions are
mutually recursive with swapped s-call patterns.
"""

from bench_utils import print_table
from repro.core import executable_program, specialization_slice
from repro.lang import ast_nodes as A
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig2


def test_fig2_regeneration(benchmark):
    program, _info, sdg = load_fig2()
    criterion = sdg.print_criterion()
    result = benchmark(
        lambda: specialization_slice(sdg, criterion, contexts="empty")
    )
    executable = executable_program(result)
    text = pretty(executable.program)
    print(text)

    counts = result.version_counts()
    rows = [(proc, counts[proc]) for proc in ("s", "r", "main")]
    print_table("Fig. 2 — specialized versions", ["procedure", "versions"], rows)

    assert counts == {"s": 2, "r": 2, "main": 1}
    procs = {p.name: p for p in executable.program.procs}
    r_names = [s.name for s in result.specializations_of("r")]

    def calls(name):
        return [
            expr.callee
            for stmt in A.walk_stmts(procs[name].body)
            for expr in A.stmt_exprs(stmt)
            if isinstance(expr, A.CallExpr)
        ]

    r1, r2 = r_names
    assert r2 in calls(r1) and r1 in calls(r2)
    assert run_program(program).values == run_program(executable.program).values
