"""The fused process backend's performance pin.

``slice_many(backend="process")`` used to ship one task per criterion:
every cold criterion crossed the IPC boundary alone and saturated alone
in its worker, so a 30-criterion batch paid 30 worklist passes spread
over the pool.  The fused path partitions the cold criteria into one
sub-batch per worker and each worker runs a single
``prestar_many_csr`` pass over the compiled PDS it adopted from the
shipped payload — N criteria cost roughly one worklist pass per
worker, not one per criterion.

The pin runs both modes over a small corpus of scaled word-count
programs (fresh sessions per mode so nothing is memo-warm), re-asserts
byte identity of every projected slice so the speedup can never come
from computing something cheaper, and requires the fused mode to be at
least 2x faster in total.  On a single-core runner process workers only
add fork overhead and the chunking degenerates to one sub-batch, so
the timing assertion is skipped — the equivalence check still runs.
"""

import os
import time

import pytest

from bench_utils import print_table, record_bench
from repro.engine import SlicingSession
from repro.fsa.serialize import automaton_to_payload
from repro.workloads.wc import scaled_wc_source

#: scaled word-count category counts; two distinct programs make the
#: batch a (small) corpus rather than a single subject.
CORPUS_CATEGORIES = (20, 32)

#: the ISSUE's floor: the fused process backend must beat the
#: per-criterion process fan-out by at least this factor.
MIN_SPEEDUP = 2.0


def _corpus():
    return [scaled_wc_source(categories) for categories in CORPUS_CATEGORIES]


def _run(mode):
    """Slice every print criterion of every corpus program through the
    process backend in the given batch-saturation mode, on fresh
    sessions (``repro.open_session`` memoizes; a warm memo would answer
    from cache and never reach the pool)."""
    total_seconds = 0.0
    payloads = []
    for source in _corpus():
        session = SlicingSession(source, kernel="csr")
        criteria = [
            ("print", index)
            for index in range(len(session.sdg.print_call_vertices()))
        ]
        t0 = time.perf_counter()
        results = session.slice_many(
            criteria, backend="process", batch_saturation=mode
        )
        total_seconds += time.perf_counter() - t0
        payloads.extend(automaton_to_payload(result.a6) for result in results)
    return total_seconds, payloads


def test_fused_process_matches_per_criterion():
    fused_seconds, fused = _run("on")
    off_seconds, unfused = _run("off")
    assert fused and fused == unfused
    record_bench(
        "fused_process_corpus",
        backend="process",
        programs=len(CORPUS_CATEGORIES),
        slices=len(fused),
        fused_seconds=fused_seconds,
        per_criterion_seconds=off_seconds,
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="fused-vs-fanout speedup needs >= 2 cores",
)
def test_fused_process_beats_per_criterion_fanout():
    # Warm the pool machinery once per mode (fork/import costs).
    small = scaled_wc_source(2)
    for mode in ("on", "off"):
        SlicingSession(small, kernel="csr").slice_many(
            [("print", 0)], backend="process", batch_saturation=mode
        )

    off_seconds, unfused = _run("off")
    fused_seconds, fused = _run("on")
    assert fused == unfused

    speedup = off_seconds / fused_seconds
    slices = len(fused)
    record_bench(
        "fused_process_speedup",
        backend="process",
        programs=len(CORPUS_CATEGORIES),
        slices=slices,
        speedup=speedup,
        fused_seconds=fused_seconds,
        per_criterion_seconds=off_seconds,
        min_speedup=MIN_SPEEDUP,
    )
    print_table(
        "Fused process backend — %d programs, %d slices (wall seconds)"
        % (len(CORPUS_CATEGORIES), slices),
        ["mode", "seconds", "speedup"],
        [
            ("per-criterion fan-out", "%.3f" % off_seconds, "1.00x"),
            ("fused sub-batches", "%.3f" % fused_seconds, "%.2fx" % speedup),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        "fused process backend is only %.2fx faster than the per-criterion "
        "fan-out on %d slices across %d programs (pinned floor: %.1fx)"
        % (speedup, slices, len(CORPUS_CATEGORIES), MIN_SPEEDUP)
    )
