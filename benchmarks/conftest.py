"""Pytest fixtures for the experiment benchmarks; see bench_utils."""

import pytest

from bench_utils import MAX_SLICES, SUITE_NAMES, SliceRecord
from repro.workloads.suite import load_suite


@pytest.fixture(scope="session")
def suite_entries():
    return load_suite(SUITE_NAMES, max_slices=MAX_SLICES)


@pytest.fixture(scope="session")
def suite_results(suite_entries):
    results = {}
    for entry in suite_entries:
        results[entry.name] = [
            SliceRecord(entry, criterion) for criterion in entry.criteria
        ]
    return results
