"""Pytest fixtures for the experiment benchmarks; see bench_utils."""

import json
import os

import pytest

from bench_utils import BENCH_RECORDS, MAX_SLICES, SUITE_NAMES, SliceRecord
from repro.workloads.suite import load_suite


@pytest.fixture(scope="session")
def suite_entries():
    return load_suite(SUITE_NAMES, max_slices=MAX_SLICES)


@pytest.fixture(scope="session")
def suite_results(suite_entries):
    results = {}
    for entry in suite_entries:
        results[entry.name] = [
            SliceRecord(entry, criterion) for criterion in entry.criteria
        ]
    return results


def pytest_sessionfinish(session, exitstatus):
    """Dump the run's :data:`bench_utils.BENCH_RECORDS` to the next
    free ``BENCH_<n>.json`` under the directory ``REPRO_BENCH_JSON``
    names (``make bench-smoke``/``bench-full`` point it at the repo
    root), so every benchmark run leaves a machine-readable trace of
    its measured speedups and wall times."""
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target or not BENCH_RECORDS:
        return
    n = 0
    while os.path.exists(os.path.join(target, "BENCH_%d.json" % n)):
        n += 1
    path = os.path.join(target, "BENCH_%d.json" % n)
    payload = {
        "exit_status": int(exitstatus),
        "records": BENCH_RECORDS,
    }
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        # The emitter is telemetry, never a reason to fail the run.
        return
