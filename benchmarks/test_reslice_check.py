"""E15 — §8.3: the reslicing validation check over the suite.

The paper's implementation ran this check after every slice; a failure
indicates an implementation bug.  We run it over every quick-suite slice
(and the full suite under REPRO_BENCH_FULL=1).
"""

from bench_utils import print_table
from repro.core import reslice_check


def test_reslice_suite(suite_results):
    rows = []
    for name, records in suite_results.items():
        passed = 0
        for record in records:
            if reslice_check(record.poly):
                passed += 1
        rows.append((name, "%d/%d" % (passed, len(records))))
        assert passed == len(records), name
    print_table("§8.3 — reslicing check", ["program", "passed"], rows)


def test_benchmark_reslice(benchmark, suite_results):
    record = next(iter(suite_results.values()))[0]
    benchmark(lambda: reslice_check(record.poly))
