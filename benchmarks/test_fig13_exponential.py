"""E7 — Fig. 13 / §4.3: the worst-case exponential family.

The slice of P_k generates a specialized version of Pk for every
*nonempty* subset of {g1..gk} — 2^k - 1 versions (the paper counts the
full power set, 2^k; the empty-need variant contributes no slice
elements in our SDG model, a discrepancy documented in EXPERIMENTS.md).
Either way the growth is Θ(2^k), which is what §4.3 demonstrates.
"""

import pytest

from bench_utils import print_table
from repro.core import specialization_slice
from repro.workloads.exponential import exponential_program


def versions(k):
    _program, _info, sdg = exponential_program(k)
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    return result


def test_fig13_table():
    rows = []
    for k in range(1, 7):
        result = versions(k)
        count = result.version_counts()["Pk"]
        rows.append(
            (
                k,
                count,
                2 ** k - 1,
                result.sdg.vertex_count(),
                result.stats["a6_states"],
            )
        )
        assert count == 2 ** k - 1
    print_table(
        "Fig. 13 — exponential family (paper: 2^k specializations)",
        ["k", "Pk versions", "2^k - 1", "|R| vertices", "A6 states"],
        rows,
    )


def test_output_size_exponential_in_k():
    sizes = [versions(k).sdg.vertex_count() for k in (2, 3, 4, 5)]
    ratios = [b / a for a, b in zip(sizes, sizes[1:])]
    assert all(ratio > 1.5 for ratio in ratios)


@pytest.mark.parametrize("k", [5])
def test_benchmark_exponential_slice(benchmark, k):
    _program, _info, sdg = exponential_program(k)
    criterion = sdg.print_criterion()
    benchmark(lambda: specialization_slice(sdg, criterion, contexts="empty"))
