"""Persistent-store benchmark: warm answers vs cold computation.

The acceptance bar for the on-disk slice store: a *fresh* session
backed by a warm store must answer a repeated ``slice_many`` batch at
least 5x faster than the cold run that filled it, because the warm run
unpickles the front half and the per-criterion results instead of
parsing, building the SDG, encoding the PDS, and saturating anything.

A second check pins the semantics the speedup must not cost: the warm
results render byte-identically to the cold ones.
"""

import time

import pytest

from bench_utils import record_bench
from repro.core import executable_program
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.store import SliceStore
from repro.workloads.generator import GenConfig, generate_program

N_CRITERIA = 8
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def benchmark_source():
    program, _info = generate_program(
        GenConfig(seed=11, n_procs=10, main_prints=N_CRITERIA)
    )
    return pretty(program)


def _run_batch(source, cache_dir):
    """One cold-or-warm measurement: build a session against the store
    and slice the whole batch; returns (seconds, session, results)."""
    t0 = time.perf_counter()
    session = SlicingSession(source, store=SliceStore(cache_dir))
    results = session.slice_many([("print", index) for index in range(N_CRITERIA)])
    return time.perf_counter() - t0, session, results


def test_warm_store_speedup(benchmark_source, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold_seconds, cold_session, cold_results = _run_batch(
        benchmark_source, cache_dir
    )
    assert cold_session.stats["front_half_from_store"] is False
    assert cold_session.stats["persist_misses"] == N_CRITERIA

    # Two warm runs, keep the faster: the measurement is "what a warm
    # store costs", not "what filesystem-cache luck costs".
    warm_seconds, warm_session, warm_results = _run_batch(
        benchmark_source, cache_dir
    )
    warm_again_seconds, _session, _results = _run_batch(benchmark_source, cache_dir)
    warm_seconds = min(warm_seconds, warm_again_seconds)

    stats = warm_session.stats
    assert stats["front_half_from_store"] is True
    assert stats["persist_hits"] == N_CRITERIA
    # The warm batch did no front-half or saturation work at all.
    assert stats["saturation_misses"] == 0 and stats["saturation_hits"] == 0

    speedup = cold_seconds / warm_seconds
    record_bench(
        "warm_store",
        speedup=speedup,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        min_speedup=MIN_SPEEDUP,
    )
    print(
        "\nwarm store: cold %.3fs, warm %.3fs -> %.1fx"
        % (cold_seconds, warm_seconds, speedup)
    )
    assert speedup >= MIN_SPEEDUP, (
        "warm store must answer a repeated batch at least %.0fx faster "
        "(got %.2fx: cold %.3fs vs warm %.3fs)"
        % (MIN_SPEEDUP, speedup, cold_seconds, warm_seconds)
    )

    # Byte-identical answers on both paths.
    for cold, warm in zip(cold_results, warm_results):
        assert pretty(executable_program(cold).program) == pretty(
            executable_program(warm).program
        )
