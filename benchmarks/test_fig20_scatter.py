"""E4 — Fig. 20: per-procedure size scatter (polyvariant vs monovariant).

For every specialized PDG p_k in every polyvariant slice, the paper
plots (x, y) = (% of the original procedure's vertices in p_k, % in the
monovariant version of p).  Points cluster on/below the 45-degree line;
the geometric mean of x/y is 93% (specialized versions are no larger,
often smaller).
"""

from bench_utils import geometric_mean, print_table


def scatter_points(suite_results):
    points = []
    for name, records in suite_results.items():
        for record in records:
            sdg = record.poly.source_sdg
            orig_sizes = {
                proc: len(vids) for proc, vids in sdg.proc_vertices.items()
            }
            mono_by_proc = {}
            for vid in record.mono.slice_set:
                proc = sdg.vertices[vid].proc
                mono_by_proc[proc] = mono_by_proc.get(proc, 0) + 1
            for spec in record.poly.pdgs.values():
                x = 100.0 * len(spec.orig_vertices) / orig_sizes[spec.proc]
                y = 100.0 * mono_by_proc.get(spec.proc, 0) / orig_sizes[spec.proc]
                points.append((name, spec.proc, x, y))
    return points


def test_fig20_scatter(suite_results):
    points = scatter_points(suite_results)
    assert points
    ratios = [x / y for _n, _p, x, y in points if y > 0]
    geo = geometric_mean(ratios)
    above = sum(1 for _n, _p, x, y in points if x > y + 1e-9)
    rows = [
        (
            "points",
            len(points),
        ),
        ("geo-mean poly%/mono%", "%.1f%%" % (100.0 * geo)),
        ("points above diagonal", above),
    ]
    print_table(
        "Fig. 20 — per-PDG size scatter (paper geo-mean: 93%)",
        ["metric", "value"],
        rows,
    )
    # Shape: specialized PDGs are never larger than the monovariant
    # version of the same procedure (they are subsets by construction),
    # so the ratio must be <= 100% and typically below.
    assert above == 0
    assert geo <= 1.0


def test_specialized_pdgs_subset_of_monovariant(suite_results):
    """Pointwise version of the Fig. 20 claim: each specialization's
    element set is a subset of Binkley's union for that procedure."""
    for records in suite_results.values():
        for record in records:
            for spec in record.poly.pdgs.values():
                assert spec.orig_vertices <= record.mono.slice_set


def test_benchmark_scatter_extraction(benchmark, suite_results):
    benchmark(lambda: scatter_points(suite_results))
