"""E12 — Fig. 16 / §7: multi-procedure feature removal."""

from bench_utils import print_table
from repro.core import executable_program, remove_feature
from repro.lang import ast_nodes as A
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig16


def test_fig16_regeneration(benchmark):
    program, _info, sdg = load_fig16()
    prod_decl = next(
        s
        for s in A.walk_stmts(program.proc("main").body)
        if isinstance(s, A.LocalDecl) and s.name == "prod"
    )
    criterion = [sdg.vertex_of_stmt[prod_decl.uid]]

    result = benchmark(lambda: remove_feature(sdg, criterion, contexts="empty"))
    executable = executable_program(result)
    text = pretty(executable.program)
    print(text)

    tally = executable.program.proc(result.specializations_of("tally")[0].name)
    rows = [
        ("add retained", "int add(int a, int b)" in text),
        ("tally params", [p.name for p in tally.params]),
        ("mult residual kept (pre-cleanup)", result.version_counts()["mult"] == 1),
    ]
    print_table("Fig. 16 — feature removal", ["check", "value"], rows)

    assert "prod" not in [p.name for p in tally.params]
    original = run_program(program, max_steps=5_000_000)
    reduced = run_program(executable.program, max_steps=5_000_000)
    assert reduced.values == [original.values[0]]  # sum only
    assert reduced.steps < original.steps
