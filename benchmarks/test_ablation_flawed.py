"""E14 — ablation: the flawed §1 method vs Algorithm 1.

The flawed method (closure slice minus forward slices from unneeded
formals) is complete but unsound: it retains elements that are dead in
specialized variants.  This ablation quantifies the retained-extra cost
on the §1 example and on generated programs.
"""

from bench_utils import print_table
from repro.core import flawed_specialization_slice, specialization_slice
from repro.sdg import build_sdg
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.paper_figures import load_flawed_example


def test_ablation_paper_example(benchmark):
    _program, _info, sdg = load_flawed_example()
    criterion = sdg.print_criterion()
    flawed = benchmark(lambda: flawed_specialization_slice(sdg, criterion))
    optimal = specialization_slice(sdg, criterion, contexts="empty")

    a_only = flawed.variant_vertices("p", {("param", 0)})
    labels = {sdg.vertices[v].label for v in a_only}
    rows = [
        ("flawed total vertices", flawed.total_vertices()),
        ("optimal total vertices", optimal.sdg.vertex_count()),
        ("dead 'int z = 3' kept by flawed", "int z = 3" in labels),
    ]
    print_table("§1 ablation — flawed method vs Alg. 1", ["metric", "value"], rows)
    assert "int z = 3" in labels
    assert flawed.total_vertices() > optimal.sdg.vertex_count()


def test_ablation_flawed_never_smaller_than_optimal():
    """Across generated programs, the flawed method's variants are
    supersets of Alg. 1's corresponding minimal partition elements in
    total size."""
    rows = []
    for seed in range(5):
        program, info = generate_program(GenConfig(seed=seed, n_procs=5))
        sdg = build_sdg(program, info)
        criterion = sdg.print_criterion()
        if not criterion:
            continue
        flawed = flawed_specialization_slice(sdg, criterion)
        optimal = specialization_slice(sdg, criterion, contexts="reachable")
        rows.append(
            (seed, flawed.total_vertices(), optimal.sdg.vertex_count())
        )
    print_table(
        "§1 ablation — generated programs", ["seed", "flawed |R|", "optimal |R|"], rows
    )
    # Note: totals are not directly comparable when the two algorithms
    # produce different variant counts, but the flawed method never
    # produces a *sound* smaller answer.
    assert rows
