"""E1 — Fig. 17: the test-program inventory table.

Regenerates the paper's Fig. 17 columns (source lines, procedures, PDG
vertices, call sites, slices taken) for our stand-in suite, side by side
with the paper's reported numbers.  Absolute sizes differ (synthetic
TinyC stand-ins, big programs scaled ~1/10); the relative ordering of
program sizes should track the paper's.
"""

from bench_utils import print_table
from repro.sdg import build_sdg


def test_fig17_table(suite_entries):
    rows = []
    for entry in suite_entries:
        rows.append(
            (
                entry.name,
                entry.source_lines(),
                len(entry.program.procs),
                entry.sdg.vertex_count(),
                len(entry.sdg.call_sites),
                len(entry.criteria),
                entry.paper["lines"],
                entry.paper["procs"],
                entry.paper["vertices"],
                entry.paper["call_sites"],
                entry.paper["slices"],
            )
        )
    print_table(
        "Fig. 17 — test programs (ours vs. paper)",
        [
            "program",
            "lines",
            "procs",
            "PDG-verts",
            "sites",
            "slices",
            "p.lines",
            "p.procs",
            "p.verts",
            "p.sites",
            "p.slices",
        ],
        rows,
    )
    assert rows


def test_size_ordering_tracks_paper(suite_entries):
    """Bigger paper programs should map to bigger stand-ins (Spearman-
    style sanity on vertex counts).  The hand-written wc port is
    excluded: the paper's wc v8.13 is full coreutils (option parsing,
    multibyte handling) while ours is the algorithmic core."""
    generated = [entry for entry in suite_entries if entry.name != "wc"]
    ours = [entry.sdg.vertex_count() for entry in generated]
    paper = [entry.paper["vertices"] for entry in generated]
    if len(ours) < 3:
        return

    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        rank = [0] * len(values)
        for position, index in enumerate(order):
            rank[index] = position
        return rank

    r_ours, r_paper = ranks(ours), ranks(paper)
    agreements = sum(
        1
        for i in range(len(ours))
        for j in range(i + 1, len(ours))
        if (r_ours[i] - r_ours[j]) * (r_paper[i] - r_paper[j]) > 0
    )
    total = len(ours) * (len(ours) - 1) // 2
    assert agreements / total > 0.6


def test_benchmark_sdg_build(benchmark, suite_entries):
    entry = suite_entries[0]
    benchmark(lambda: build_sdg(entry.program, entry.info))
