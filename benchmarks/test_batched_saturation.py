"""The fused multi-criterion saturation's performance pin.

``prestar_many_csr`` exists so a batch of N criteria costs one worklist
pass instead of N: every PDS rule is fired once, with criterion
membership carried as a bitset, and the N answers are projected at the
end.  The per-criterion alternative the engine used before — fanning
``prestar_csr`` calls out over a thread pool — pays the full rule-fire
cost N times and serializes on the GIL besides.

The pin runs both on the scaled word-count subject at 32 categories
(35 print criteria, comfortably past the ISSUE's >= 20-criterion
floor), times the saturation stage only (query construction, read-out
and the MRD chain are identical either way), re-asserts byte identity
of all 35 projected automata so the speedup can never come from
computing something cheaper, and requires the fused pass to be at
least 2x faster.  Measured speedup is typically well above the pin;
2x leaves room for CI noise while failing loudly if the fused path
ever degrades to per-criterion work.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from bench_utils import print_table, record_bench
from repro.engine import SlicingSession
from repro.engine.canonical import resolve_criterion_spec
from repro.fsa.serialize import automaton_to_payload
from repro.pds.kernel import prestar_csr, prestar_many_csr
from repro.workloads.wc import scaled_wc_source

#: scaled word-count categories; 32 yields 35 print criteria.
CATEGORIES = 32

#: the ISSUE's floor: one fused pass must beat the per-criterion
#: thread-pool fan-out by at least this factor on a >= 20-criterion
#: batch.
MIN_SPEEDUP = 2.0


def _queries(session):
    automata = []
    for index in range(len(session.sdg.print_call_vertices())):
        kind, payload = resolve_criterion_spec(session.sdg, ("print", index))
        automata.append(session._query_automaton(kind, payload, "reachable"))
    return automata


def test_fused_batch_speedup_on_scaled_wc():
    session = SlicingSession(scaled_wc_source(CATEGORIES), kernel="csr")
    pds = session.encoding.pds
    automata = _queries(session)
    assert len(automata) >= 20

    # Warm the compile cache on both paths: the pin times saturation,
    # not PDS compilation (the session pays that once at construction).
    prestar_csr(pds, automata[0], trim=True)
    prestar_many_csr(pds, automata[:2], trim=True)

    workers = min(len(automata), os.cpu_count() or 1)
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        sequential = list(
            pool.map(lambda a: prestar_csr(pds, a, trim=True), automata)
        )
    sequential_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    fused = prestar_many_csr(pds, automata, trim=True)
    fused_seconds = time.perf_counter() - t1

    # The speedup is only meaningful if the fused pass did the same
    # work: all 35 projections byte-identical to their sequential runs.
    assert [automaton_to_payload(a) for a in fused] == [
        automaton_to_payload(a) for a in sequential
    ]

    speedup = sequential_seconds / fused_seconds
    record_bench(
        "fused_batch_scaled_wc",
        criteria=len(automata),
        speedup=speedup,
        sequential_seconds=sequential_seconds,
        fused_seconds=fused_seconds,
        min_speedup=MIN_SPEEDUP,
    )
    print_table(
        "Fused saturation — scaled wc, %d criteria (saturation seconds)"
        % len(automata),
        ["path", "seconds", "speedup"],
        [
            ("thread pool x%d" % workers, "%.3f" % sequential_seconds, "1.00x"),
            ("fused pass", "%.3f" % fused_seconds, "%.2fx" % speedup),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        "fused batch is only %.2fx faster than the per-criterion thread "
        "pool on %d criteria (pinned floor: %.1fx)"
        % (speedup, len(automata), MIN_SPEEDUP)
    )
