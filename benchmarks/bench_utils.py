"""Shared helpers and measurement records for the experiment benchmarks.

By default the benchmarks run on ``QUICK_SUITE`` with a per-program
slice cap so a full ``pytest benchmarks/ --benchmark-only`` finishes in
minutes.  Set ``REPRO_BENCH_FULL=1`` to reproduce the experiments over
the entire 12-program suite with the paper's per-program slice counts
(closer to the §8 runs; takes much longer).

``suite_results`` computes, once per session, everything the Fig. 18-22
tables need: per-slice polyvariant results (with instrumentation),
monovariant (Binkley) results, and Weiser results.
"""

import os
import time
import tracemalloc

from repro.core import binkley_slice, specialization_slice, weiser_slice
from repro.workloads.suite import QUICK_SUITE, SUITE, load_suite

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SUITE_NAMES = SUITE if FULL else QUICK_SUITE
MAX_SLICES = None if FULL else 3

#: machine-readable measurements accumulated across the benchmark run;
#: when ``REPRO_BENCH_JSON`` names a directory, the session-finish hook
#: in ``conftest.py`` dumps these to the next free ``BENCH_<n>.json``
#: there, so the perf trajectory is tracked across PRs.
BENCH_RECORDS = []


def run_metadata():
    """The environment fields every benchmark record carries, so the
    ``BENCH_<n>.json`` trail is comparable across machines and PRs:
    cpu count, active saturation kernel, and python version."""
    import platform

    from repro import kernelcfg

    return {
        "cpu_count": os.cpu_count(),
        "kernel": kernelcfg.resolve_kernel(None),
        "python": platform.python_version(),
    }


def record_bench(name, **fields):
    """File one benchmark's measurements (speedups, wall times, sizes —
    whatever the benchmark pins) for the JSON emitter, stamped with
    :func:`run_metadata` (explicit fields win, so a benchmark that
    exercises a specific ``kernel``/``backend`` can say so).  A no-op
    beyond an append: benchmarks stay runnable without the emitter."""
    record = {"benchmark": name}
    record.update(run_metadata())
    record.update(fields)
    BENCH_RECORDS.append(record)


def criterion_automaton(entry, criterion):
    """A suite criterion is a list of (vertex, call-stack) configuration
    pairs (the paper's bug-site style); build the query automaton."""
    from repro.core.criteria import configs_criterion
    from repro.pds import encode_sdg

    return configs_criterion(encode_sdg(entry.sdg), criterion)


class SliceRecord(object):
    """All measurements for one (program, criterion) pair.

    Following §8.2.2, the monovariant baseline starts from the same
    element set as Alg. 1's first step (the Elems of the stack-
    configuration slice), then runs Binkley's mismatch repair.
    """

    def __init__(self, entry, criterion):
        query = criterion_automaton(entry, criterion)
        t0 = time.perf_counter()
        tracemalloc.start()
        self.poly = specialization_slice(entry.sdg, query)
        _current, poly_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        self.poly_seconds = time.perf_counter() - t0
        self.poly_peak_bytes = poly_peak

        closure = self.poly.closure_elems()
        # Timing/memory: run the full monovariant algorithm (its own
        # closure-slice phase included) so Fig. 21/22 compare complete
        # pipelines; sizes: seed from the same element set as Alg. 1
        # (§8.2.2) so Fig. 19/20 compare like with like.
        criterion_vertices = {vid for vid, _ctx in criterion}
        t1 = time.perf_counter()
        tracemalloc.start()
        binkley_slice(entry.sdg, criterion_vertices)
        _current, mono_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        self.mono_seconds = time.perf_counter() - t1
        self.mono_peak_bytes = mono_peak
        self.mono = binkley_slice(entry.sdg, closure_set=closure)

        self.weiser = weiser_slice(entry.sdg, closure)

        self.closure_size = len(closure)
        self.poly_size = self.poly.sdg.vertex_count()
        self.mono_size = len(self.mono.slice_set)

    def poly_increase_percent(self):
        if not self.closure_size:
            return 0.0
        return 100.0 * (self.poly_size - self.closure_size) / self.closure_size

    def mono_increase_percent(self):
        return self.mono.extra_percent()


def geometric_mean(values):
    cleaned = [max(value, 1e-12) for value in values]
    if not cleaned:
        return 0.0
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


def print_table(title, headers, rows):
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print("=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print()
