"""E13 — Fig. 15 / §6.2: function-pointer slicing."""

from repro.core import executable_program, specialization_slice
from repro.lang import pretty
from repro.lang.interp import run_program
from repro.workloads.paper_figures import load_fig15


def test_fig15_regeneration(benchmark):
    original, lowered, _info, sdg = load_fig15()
    criterion = sdg.print_criterion()
    result = benchmark(
        lambda: specialization_slice(sdg, criterion, contexts="empty")
    )
    executable = executable_program(result)
    print(pretty(executable.program))

    procs = {p.name: p for p in executable.program.procs}
    g_name = result.specializations_of("g")[0].name
    f_name = result.specializations_of("f")[0].name
    assert len(procs[g_name].params) == 1  # g specialized to one param
    assert len(procs[f_name].params) == 2  # f keeps both

    for inputs in ([1], [0], [-3]):
        assert (
            run_program(original, inputs).values
            == run_program(executable.program, inputs).values
        )
