"""E11 — §5: executable slices of wc run faster than wc.

Paper: slices of wc w.r.t. its printf calls took 32.5% of the original's
time (geometric mean).  Wall-clock on an interpreter measures mostly
interpreter overhead, so we use interpreter *step counts* — the same
"work avoided" quantity without OS noise — and additionally benchmark
one slice end-to-end.
"""

from bench_utils import geometric_mean, print_table
from repro.core import executable_program, specialization_slice
from repro.lang.interp import run_program
from repro.workloads.wc import load_wc, text_to_inputs

TEXT = (
    "the quick brown fox jumps over the lazy dog\n"
    "pack my box with five dozen liquor jugs\n"
    "\n"
    "sphinx of black quartz judge my vow\n"
) * 8


def test_wc_speedup_table():
    program, _info, sdg = load_wc()
    inputs = text_to_inputs(TEXT)
    original = run_program(program, inputs)
    labels = ["lines", "words", "chars", "longest"]
    rows = []
    ratios = []
    for label, print_vid in zip(labels, sdg.print_call_vertices()):
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        executable = executable_program(result)
        sliced = run_program(executable.program, inputs)
        ratio = sliced.steps / original.steps
        ratios.append(ratio)
        rows.append(
            (
                label,
                original.steps,
                sliced.steps,
                "%.1f%%" % (100.0 * ratio),
            )
        )
    geo = geometric_mean(ratios)
    rows.append(("geometric mean", "", "", "%.1f%%" % (100.0 * geo)))
    print_table(
        "§5 — wc slice work vs original (paper: 32.5% of original time)",
        ["criterion", "orig steps", "slice steps", "ratio"],
        rows,
    )
    assert geo < 0.9  # real savings
    assert min(ratios) < 0.75  # at least one slice drops a lot of work


def test_wc_slices_all_faithful():
    program, _info, sdg = load_wc()
    inputs = text_to_inputs(TEXT)
    original = run_program(program, inputs)
    expected = [
        TEXT.count("\n"),
        len(TEXT.split()),
        len(TEXT),
        max(len(line) for line in TEXT.split("\n")),
    ]
    assert original.values == expected
    for index, print_vid in enumerate(sdg.print_call_vertices()):
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        executable = executable_program(result)
        sliced = run_program(executable.program, inputs)
        assert sliced.values == [expected[index]]


def test_benchmark_wc_line_slice(benchmark):
    _program, _info, sdg = load_wc()
    criterion = sdg.print_criterion([sdg.print_call_vertices()[0]])
    benchmark(lambda: specialization_slice(sdg, criterion))
