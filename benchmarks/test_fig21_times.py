"""E5 — Fig. 21: slicing times, monovariant vs polyvariant.

Paper: polyvariant executable slicing was ~2.7x slower than monovariant
on the small programs and ~4.7x on the large ones, with the PDS/FSA
operations a fraction of the total.  We regenerate the per-program
timing table and check polyvariant is slower but within the same order
of magnitude; pytest-benchmark provides the statistically robust
measurements for one representative program of each size class.
"""

from bench_utils import geometric_mean, print_table
from repro.core import binkley_slice, specialization_slice


def test_fig21_table(suite_results):
    rows = []
    ratios = []
    for name, records in suite_results.items():
        mono_avg = sum(r.mono_seconds for r in records) / len(records)
        poly_avg = sum(r.poly_seconds for r in records) / len(records)
        automaton_avg = sum(
            r.poly.stats["prestar_seconds"] + r.poly.stats["automaton_seconds"]
            for r in records
        ) / len(records)
        if mono_avg > 0:
            ratios.append(poly_avg / mono_avg)
        rows.append(
            (
                name,
                "%.4f" % mono_avg,
                "%.4f" % poly_avg,
                "%.4f" % automaton_avg,
                "%.1fx" % (poly_avg / mono_avg if mono_avg else 0.0),
            )
        )
    rows.append(
        ("geo-mean slowdown", "", "", "", "%.1fx" % geometric_mean(ratios))
    )
    print_table(
        "Fig. 21 — slicing time (seconds; paper: poly 2.7-4.7x mono)",
        ["program", "mono", "poly", "PDS+FSA ops", "poly/mono"],
        rows,
    )
    slowdown = geometric_mean(ratios)
    # Shape: polyvariant costs more, but not catastrophically.
    assert slowdown > 1.0
    assert slowdown < 200.0


def test_automaton_ops_included_in_total(suite_results):
    for records in suite_results.values():
        for record in records:
            stats = record.poly.stats
            assert (
                stats["prestar_seconds"] + stats["automaton_seconds"]
                <= stats["total_seconds"] + 1e-9
            )


def test_benchmark_poly_small(benchmark, suite_entries):
    entry = suite_entries[0]
    from bench_utils import criterion_automaton

    query = criterion_automaton(entry, entry.criteria[0])
    benchmark(lambda: specialization_slice(entry.sdg, query))


def test_benchmark_mono_small(benchmark, suite_entries):
    entry = suite_entries[0]
    vertices = {vid for vid, _ctx in entry.criteria[0]}
    benchmark(lambda: binkley_slice(entry.sdg, vertices))
