"""Saturation-store benchmark: a new criterion against a warm front
half.

The acceptance bar for the ``__sats__`` table: answering a criterion
the store has *never seen* against a warm front half must be at least
2x faster when the shared ``Poststar(entry_main)`` artifact is
persisted than when ``__sats__`` has been cleared — because the warm
path loads the relocatable artifact (and any Prestar sibling whose key
matches) instead of re-saturating, leaving only the new criterion's
own Prestar to compute.

The subject program is a mutually recursive call web: Poststar has to
saturate a rich context language, while the measured criterion's
backward cone is a single trivial assignment — the shape a slicing
service sees when a user asks about one new program point.

Skip-safe on timer noise like the other benches: when the cold
saturation is too fast to measure reliably, the pin is skipped rather
than flaking.
"""

import os
import shutil
import time

import pytest

from bench_utils import record_bench
from repro.core import executable_program
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.store import SliceStore

MIN_SPEEDUP = 2.0
#: below this, the no-sats run is inside timer noise; skip the pin.
MIN_MEASURABLE_SECONDS = 0.003
RUNS = 3

WIDTH, DEPTH, FAN = 5, 5, 4


def _heavy_source(width=WIDTH, depth=DEPTH, fan=FAN):
    """``width * depth`` mutually recursive procedures; ``print #0``
    depends on all of them, ``print #1`` (the measured new criterion)
    on one trivial local only."""
    lines = ["int acc;"]
    for w in range(width):
        for d in range(depth):
            calls = []
            for f in range(fan):
                tw, td = (w + f) % width, (d + f + 1) % depth
                calls.append(
                    "  if (x > %d) {\n    p_%d_%d(x - %d);\n  }"
                    % (f + 1, tw, td, f + 1)
                )
            lines.append(
                "void p_%d_%d(int x) {\n%s\n  acc = acc + 1;\n}"
                % (w, d, "\n".join(calls))
            )
    body = ["  acc = 0;", "  int c = input();"]
    body += ["  p_%d_0(c);" % w for w in range(width)]
    body += ['  print("%d", acc);', "  int t = 7;", '  print("%d", t);']
    body.append("  return 0;")
    lines.append("int main() {\n%s\n}" % "\n".join(body))
    return "\n".join(lines)


def _measure_new_criterion(source, master, tmp_path, strip_sats):
    """Best-of-N latency of slicing the never-stored ``print #1``
    against a pristine copy of the warm store (results for it deleted
    by construction — it was never sliced).  The front half is loaded
    before the clock starts: the measurement is query latency against a
    warm front half, not unpickling."""
    best_seconds, session, result = None, None, None
    for index in range(RUNS):
        cache = str(tmp_path / ("strip%s-run%d" % (strip_sats, index)))
        shutil.copytree(master, cache)
        if strip_sats:
            shutil.rmtree(os.path.join(cache, "__sats__"))
        session = SlicingSession(source, store=SliceStore(cache))
        t0 = time.perf_counter()
        result = session.slice(("print", 1))
        elapsed = time.perf_counter() - t0
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, session, result


def test_persisted_poststar_speeds_up_new_criterion(tmp_path):
    source = _heavy_source()
    master = str(tmp_path / "master")
    writer = SlicingSession(source, store=SliceStore(master))
    writer.slice(("print", 0))  # warms front half, Poststar, one Prestar
    assert writer.store.stats()["tables"]["sat"] == 2

    warm_seconds, warm_session, warm_result = _measure_new_criterion(
        source, master, tmp_path, strip_sats=False
    )
    cold_seconds, cold_session, cold_result = _measure_new_criterion(
        source, master, tmp_path, strip_sats=True
    )

    # Both paths served the front half from disk; only the warm one
    # found the Poststar artifact.
    assert warm_session.stats["front_half_from_store"] is True
    assert warm_session.stats["sat_persist_hits"] >= 1
    assert cold_session.stats["sat_persist_hits"] == 0

    # The speedup must not cost fidelity: both paths render the new
    # criterion's slice identically to a storeless session.
    reference = SlicingSession(source).slice(("print", 1))
    for result in (warm_result, cold_result):
        assert result.version_counts() == reference.version_counts()
        assert result.closure_elems() == reference.closure_elems()
    assert pretty(executable_program(warm_result).program) == pretty(
        executable_program(reference).program
    )

    if cold_seconds < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            "cold saturation finished in %.4fs — inside timer noise"
            % cold_seconds
        )
    speedup = cold_seconds / warm_seconds
    record_bench(
        "saturation_store",
        speedup=speedup,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        min_speedup=MIN_SPEEDUP,
    )
    print(
        "\nnew criterion on warm front half: with __sats__ %.4fs, "
        "cleared %.4fs -> %.1fx" % (warm_seconds, cold_seconds, speedup)
    )
    assert speedup >= MIN_SPEEDUP, (
        "a persisted Poststar must make a new criterion at least %.0fx "
        "faster (got %.2fx: %.4fs with __sats__ vs %.4fs cleared)"
        % (MIN_SPEEDUP, speedup, warm_seconds, cold_seconds)
    )


def test_prestar_siblings_load_when_keys_match(tmp_path):
    """A fresh process re-asking a *seen* criterion with its result
    entry gone (e.g. LRU-evicted) loads the criterion's own Prestar
    artifact too — zero saturations computed end to end."""
    import glob

    source = _heavy_source(3, 3, 2)
    cache = str(tmp_path / "cache")
    writer = SlicingSession(source, store=SliceStore(cache))
    writer.slice(("print", 0))
    for path in glob.glob(os.path.join(cache, "*", "slice-*.slc")):
        os.unlink(path)

    reader = SlicingSession(source, store=SliceStore(cache))
    result = reader.slice(("print", 0))
    stats = reader.stats
    assert stats["sat_persist_hits"] == 2  # Poststar + the Prestar sibling
    assert stats["sat_persist_misses"] == 0
    assert pretty(executable_program(result).program) == pretty(
        executable_program(writer.slice(("print", 0))).program
    )
