"""Session-reuse benchmark: N criteria against one program.

The acceptance bar for the batched engine: slicing 8 criteria of one
generator-suite program through a shared :class:`SlicingSession` must be
at least 2x faster end-to-end than 8 independent ``slice_source`` calls,
because the session pays for parsing, SDG construction, PDS encoding,
and the ``Poststar(entry_main)`` saturation exactly once.

A second measurement demonstrates the memo: resubmitting the same batch
is pure cache lookups, orders of magnitude faster still.
"""

import time

from bench_utils import record_bench

import repro
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.workloads.generator import GenConfig, generate_program

N_CRITERIA = 8


def _benchmark_source():
    program, _info = generate_program(
        GenConfig(seed=11, n_procs=8, main_prints=N_CRITERIA)
    )
    return pretty(program)


def test_session_reuse_speedup():
    source = _benchmark_source()
    # Warm both code paths once (imports, lazy module state).
    repro.slice_source(source, print_index=0)

    t0 = time.perf_counter()
    one_shot = [
        repro.slice_source(source, print_index=index)
        for index in range(N_CRITERIA)
    ]
    cold_seconds = time.perf_counter() - t0

    # The timed session path includes building the session itself.
    t0 = time.perf_counter()
    session = SlicingSession(source)
    results = session.slice_many(
        [("print", index) for index in range(N_CRITERIA)]
    )
    session_seconds = time.perf_counter() - t0

    assert len(results) == N_CRITERIA
    # Identical answers on both paths.
    for index in range(N_CRITERIA):
        assert (
            results[index].closure_elems()
            == one_shot[index].result.closure_elems()
        )
        assert (
            results[index].version_counts()
            == one_shot[index].result.version_counts()
        )

    speedup = cold_seconds / session_seconds
    record_bench(
        "session_reuse",
        speedup=speedup,
        cold_seconds=cold_seconds,
        session_seconds=session_seconds,
        min_speedup=2.0,
    )
    print(
        "\n%d criteria: one-shot %.3fs, session %.3fs -> %.1fx"
        % (N_CRITERIA, cold_seconds, session_seconds, speedup)
    )
    assert speedup >= 2.0, (
        "session reuse must be at least 2x faster (got %.2fx: %.3fs vs %.3fs)"
        % (speedup, cold_seconds, session_seconds)
    )


def test_session_resubmission_is_cache_speed():
    source = _benchmark_source()
    session = SlicingSession(source)
    criteria = [("print", index) for index in range(N_CRITERIA)]
    first = session.slice_many(criteria)

    t0 = time.perf_counter()
    second = session.slice_many(criteria)
    resubmit_seconds = time.perf_counter() - t0

    assert all(a is b for a, b in zip(first, second))
    assert session.stats["slice_hits"] >= N_CRITERIA
    assert resubmit_seconds < 0.5  # dictionary lookups, not saturation
