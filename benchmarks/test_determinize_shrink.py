"""E10 — §4.2/§8.2.1: determinization does not blow up in practice.

Paper: "for the automata that arise from Prestar, the result of
determinize is significantly smaller than the input to determinize by
4.4%-34%" — i.e., the worst-case exponential subset construction never
materializes; the determinized (reversed) automaton is comparable to or
smaller than its input.  We regenerate the per-slice statistics.
"""

from bench_utils import print_table


def test_determinize_statistics(suite_results):
    rows = []
    worst_ratio = 0.0
    for name, records in suite_results.items():
        for index, record in enumerate(records):
            stats = record.poly.stats
            input_states = stats["determinize_input_states"]
            output_states = stats["determinize_output_states"]
            if input_states == 0:
                continue
            ratio = output_states / input_states
            worst_ratio = max(worst_ratio, ratio)
            rows.append((name, index, input_states, output_states, "%.2f" % ratio))
    print_table(
        "§4.2 — determinize input vs output states "
        "(paper: output 4.4-34% smaller)",
        ["program", "slice", "input", "output", "out/in"],
        rows[:25] + ([("...", "", "", "", "")] if len(rows) > 25 else []),
    )
    # Shape: no exponential blow-up — far below the 2^n worst case; the
    # subset construction should stay within a small constant of its
    # input for Prestar automata.
    assert worst_ratio < 4.0


def test_determinize_on_all_contexts_criteria(suite_entries):
    """The paper's wc/go-style criteria (all calling contexts of the
    prints) produce the larger Prestar automata where the 4.4-34%
    shrink was observed; regenerate those statistics too."""
    from bench_utils import print_table as table
    from repro.core import specialization_slice

    rows = []
    for entry in suite_entries:
        criterion = entry.sdg.print_criterion()
        result = specialization_slice(entry.sdg, criterion)
        stats = result.stats
        input_states = stats["determinize_input_states"]
        output_states = stats["determinize_output_states"]
        rows.append(
            (
                entry.name,
                input_states,
                output_states,
                "%.2f" % (output_states / input_states if input_states else 0),
            )
        )
    table(
        "§4.2 — determinize on all-contexts criteria",
        ["program", "input", "output", "out/in"],
        rows,
    )
    for _name, input_states, output_states, _ratio in rows:
        assert output_states < 8 * max(input_states, 1)


def test_no_exponential_blowup_even_on_fig13(benchmark):
    """Even the adversarial family keeps determinization linear-ish in
    its input (the blow-up there is in the *language*, not the subset
    construction)."""
    from repro.core import specialization_slice
    from repro.workloads.exponential import exponential_program

    _program, _info, sdg = exponential_program(5)
    criterion = sdg.print_criterion()
    result = benchmark(
        lambda: specialization_slice(sdg, criterion, contexts="empty")
    )
    stats = result.stats
    assert (
        stats["determinize_output_states"]
        < 40 * stats["determinize_input_states"]
    )
