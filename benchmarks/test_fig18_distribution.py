"""E2 — Fig. 18: distribution of the number of specialized versions per
procedure.

Paper: over all slices, ~90.6% of sliced procedures had exactly one
version; the maximum observed was six.  We regenerate the histogram for
our suite and check the same shape: a heavy single-version mode and a
small maximum.
"""

from bench_utils import print_table
from repro.core import specialization_slice


def test_fig18_distribution(suite_results):
    histogram = {}
    for records in suite_results.values():
        for record in records:
            for proc, count in record.poly.version_counts().items():
                if count == 0:
                    continue  # sliced away entirely (not in the closure slice)
                histogram[count] = histogram.get(count, 0) + 1
    total = sum(histogram.values())
    rows = [
        (versions, histogram[versions], "%.1f%%" % (100.0 * histogram[versions] / total))
        for versions in sorted(histogram)
    ]
    print_table(
        "Fig. 18 — specialized versions per procedure "
        "(paper: 90.6%% single-version, max 6)",
        ["#versions", "#procedures", "share"],
        rows,
    )
    single_share = histogram.get(1, 0) / total
    assert single_share >= 0.5, "single-version mode should dominate"
    assert max(histogram) <= 15, "no exponential explosion in practice"


def test_fig18_most_procs_not_replicated(suite_results):
    """The paper's stronger claim: replicated procedures are the
    exception.  Our generator produces denser global coupling than real
    C code, so the threshold is looser than 90.6%."""
    single = 0
    multi = 0
    for records in suite_results.values():
        for record in records:
            for count in record.poly.version_counts().values():
                if count == 1:
                    single += 1
                elif count > 1:
                    multi += 1
    assert single > multi


def test_benchmark_specialization_slice(benchmark, suite_entries):
    entry = suite_entries[0]
    from bench_utils import criterion_automaton

    query = criterion_automaton(entry, entry.criteria[0])
    benchmark(lambda: specialization_slice(entry.sdg, query))
