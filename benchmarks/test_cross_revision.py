"""Cross-revision discovery benchmark: cold process, edited source.

The acceptance bar for the footprint-indexed ``__sats__`` lookup
(ISSUE 8): a *brand-new process* opening a one-procedure edit of a
program whose previous revision filed its artifacts must answer the
report criteria at least 2x faster than a fully cold build — with no
live donor session and no ``update_source`` call.  The win composes
two store paths: the ``__procs__`` partial front-half hit rebuilds
only the edited procedure's PDG, and discovery adopts the previous
revision's Poststar and every Prestar through the per-revision
saturation index (the edit is label-only, so the fast-equivalence
check transfers everything).

Best-of-N against a pristine copy of the donor store per run (the
``test_saturation_store.py`` idiom), so each measured open really
pays the discovery path — adoption re-files survivors under the new
hash, which would otherwise turn later runs into warm reopens.

Byte-identical output against the storeless cold session is asserted
over *every* criterion before the timing pin, so a fast-but-wrong
path can never pass.  Skip-safe on timer noise like the other
benches.
"""

import shutil
import time

import pytest

from bench_utils import record_bench
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.store import SliceStore
from repro.workloads.wc import scaled_wc_source

MIN_SPEEDUP = 2.0
#: below this, the cold build is inside timer noise; skip the pin.
MIN_MEASURABLE_SECONDS = 0.003
RUNS = 3

BASE = scaled_wc_source(28)
#: label-only edit in one counting procedure: dependence shape kept,
#: so every saturation artifact survives the revision hop
EDIT = BASE.replace("cat_5 = cat_5 + 1", "cat_5 = cat_5 + 2")


def _criteria(session):
    return [
        ("print", index)
        for index in range(len(session.sdg.print_call_vertices()))
    ]


def test_cold_process_on_edited_source_speedup(tmp_path):
    master = str(tmp_path / "master")
    writer = SlicingSession(BASE, store=SliceStore(master))
    criteria = _criteria(writer)
    assert len(criteria) >= 19
    writer.slice_many(criteria)
    del writer  # the donor process is gone; only the store remains

    # Time the service-latency shape: open the edited text, answer the
    # first few criteria.  (The back-half closures are identical work
    # on both paths; the pin is about the front half + saturations.
    # Correctness below is checked over *every* criterion.)
    measured = criteria[: max(4, len(criteria) // 5)]

    cold_seconds = None
    for _run in range(RUNS):
        t0 = time.perf_counter()
        cold = SlicingSession(EDIT)
        cold.slice_many(measured)
        elapsed = time.perf_counter() - t0
        if cold_seconds is None or elapsed < cold_seconds:
            cold_seconds = elapsed

    discovered_seconds = None
    for run in range(RUNS):
        cache = str(tmp_path / ("discover-run%d" % run))
        shutil.copytree(master, cache)
        t0 = time.perf_counter()
        reader = SlicingSession(EDIT, store=SliceStore(cache))
        reader.slice_many(measured)
        elapsed = time.perf_counter() - t0
        if discovered_seconds is None or elapsed < discovered_seconds:
            discovered_seconds = elapsed

    stats = reader.stats
    # The composition the pin is about: all but the edited procedure's
    # PDG came from __procs__, and the saturations were adopted from
    # the previous revision instead of recomputed.
    assert stats["front_half_from_store"] is False
    assert stats["front_half_parts_hits"] == stats["front_half_parts_total"] - 1
    assert stats["sats_adopted"] >= 2
    assert stats["sat_persist_misses"] == 0  # nothing re-saturated

    cold.slice_many(criteria)
    reader.slice_many(criteria)
    for criterion in criteria:
        assert pretty(reader.executable(criterion).program) == pretty(
            cold.executable(criterion).program
        ), criterion

    if cold_seconds < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            "cold build too fast to measure reliably (%.4fs)" % cold_seconds
        )
    speedup = cold_seconds / discovered_seconds
    record_bench(
        "cross_revision_discovery",
        speedup=speedup,
        cold_seconds=cold_seconds,
        discovered_seconds=discovered_seconds,
        min_speedup=MIN_SPEEDUP,
    )
    print(
        "\ncold process on one-procedure edit: cold %.3fs, discovered "
        "%.3fs -> %.1fx (%d parts hit, %d sats adopted, discovery %.3fs)"
        % (
            cold_seconds,
            discovered_seconds,
            speedup,
            stats["front_half_parts_hits"],
            stats["sats_adopted"],
            stats["discovery_seconds"],
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        "cross-revision discovery must make a cold process at least 2x "
        "faster than a fully cold build (got %.2fx: %.3fs vs %.3fs)"
        % (speedup, cold_seconds, discovered_seconds)
    )
