"""E3 — Fig. 19: slice-size increase relative to the closure slice.

Paper (normalized to closure = 100): monovariant executable slices
average 107.1, polyvariant 109.4 (geometric means).  The monovariant
extra is *extraneous* elements; the polyvariant extra is *replicated*
closure elements.  We regenerate the per-program averages and check the
same qualitative shape: both increases are modest, and both algorithms
produce executable slices.
"""

from bench_utils import geometric_mean, print_table


def test_fig19_table(suite_results):
    rows = []
    mono_means, poly_means = [], []
    for name, records in suite_results.items():
        mono = [record.mono_increase_percent() for record in records]
        poly = [record.poly_increase_percent() for record in records]
        mono_avg = sum(mono) / len(mono)
        poly_avg = sum(poly) / len(poly)
        mono_means.append(100.0 + mono_avg)
        poly_means.append(100.0 + poly_avg)
        rows.append(
            (
                name,
                len(records),
                "%.1f%%" % mono_avg,
                "%.1f%%" % poly_avg,
            )
        )
    mono_geo = geometric_mean(mono_means)
    poly_geo = geometric_mean(poly_means)
    rows.append(("geometric mean (closure=100)", "", "%.1f" % mono_geo, "%.1f" % poly_geo))
    print_table(
        "Fig. 19 — %% extra vertices vs closure slice "
        "(paper: mono 107.1, poly 109.4)",
        ["program", "slices", "monovariant", "polyvariant"],
        rows,
    )
    # Shape: both modest (well under 2x), both >= 100.
    assert 100.0 <= mono_geo < 200.0
    assert 100.0 <= poly_geo < 200.0


def test_poly_extra_is_replication_only(suite_results):
    """Polyvariant never adds elements outside the closure slice
    (the paper's soundness distinction vs Binkley)."""
    for records in suite_results.values():
        for record in records:
            closure = record.poly.closure_elems()
            assert set(record.poly.map_back_vertex.values()) <= closure


def test_mono_extra_is_outside_closure(suite_results):
    """Binkley's extra elements are extraneous: genuinely outside the
    closure slice whenever present."""
    for records in suite_results.values():
        for record in records:
            assert record.mono.added.isdisjoint(record.mono.closure)


def test_benchmark_binkley(benchmark, suite_entries):
    from repro.core import binkley_slice

    entry = suite_entries[0]
    vertices = {vid for vid, _ctx in entry.criteria[0]}
    benchmark(lambda: binkley_slice(entry.sdg, vertices))
