"""E6 — Fig. 22: peak memory, monovariant vs polyvariant.

Paper: both algorithms use comparable space in the SDG process; the
PDS/FSA machinery adds its own share, dominated by Prestar.  We measure
peak tracemalloc bytes during each algorithm and regenerate the table.
"""

import tracemalloc

from bench_utils import print_table
from repro.core import specialization_slice
from repro.pds import encode_sdg, prestar
from repro.core.criteria import empty_stack_criterion


def test_fig22_table(suite_results):
    rows = []
    for name, records in suite_results.items():
        mono_avg = sum(r.mono_peak_bytes for r in records) / len(records)
        poly_avg = sum(r.poly_peak_bytes for r in records) / len(records)
        rows.append(
            (
                name,
                "%.2f" % (mono_avg / 1e6),
                "%.2f" % (poly_avg / 1e6),
                "%.1fx" % (poly_avg / mono_avg if mono_avg else 0.0),
            )
        )
    print_table(
        "Fig. 22 — peak memory (MB; paper: poly uses more, Prestar dominates)",
        ["program", "mono peak", "poly peak", "ratio"],
        rows,
    )
    assert rows


def test_prestar_dominates_poly_memory(suite_entries):
    """§8.2: 'the peak memory usage for PDS and FSA operations occurred
    during Prestar'.  Compare Prestar's peak against the later automaton
    pipeline on one program."""
    entry = suite_entries[0]
    criterion_vertices = [vid for vid, _ctx in entry.criteria[0]]
    encoding = encode_sdg(entry.sdg)
    query = empty_stack_criterion(encoding, criterion_vertices[:1])

    tracemalloc.start()
    prestar(encoding.pds, query)
    _cur, prestar_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert prestar_peak > 0


def test_benchmark_memory_probe(benchmark, suite_entries):
    entry = suite_entries[0]

    from bench_utils import criterion_automaton

    query = criterion_automaton(entry, entry.criteria[0])

    def run():
        tracemalloc.start()
        specialization_slice(entry.sdg, query)
        usage = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return usage

    benchmark(run)
