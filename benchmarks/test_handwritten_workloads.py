"""Supplementary experiment: the §8 statistics on hand-written
realistic subjects (tokenizer / scheduler / statistics).

The synthetic suite controls scale; these confirm the same qualitative
findings on idiomatic, human-written program structure — low
polyvariance, modest size increases, faithful slices."""

from bench_utils import geometric_mean, print_table
from repro.core import binkley_slice, executable_program, specialization_slice
from repro.lang.interp import run_program
from repro.workloads.handwritten import HANDWRITTEN
from repro.workloads.wc import text_to_inputs

INPUTS = {
    "tokenizer": text_to_inputs("alpha 42 + beta7 = 9"),
    "scheduler": [3, 1, 2, 3, 2, 0],
    "statistics": [5, 4, -2, 10, 0, 7],
}


def test_handwritten_statistics_table():
    rows = []
    version_histogram = {}
    poly_increases = []
    for name in sorted(HANDWRITTEN):
        program, _info, sdg = HANDWRITTEN[name]()
        slices = 0
        multi = 0
        for print_vid in sdg.print_call_vertices():
            criterion = sdg.print_criterion([print_vid])
            result = specialization_slice(sdg, criterion)
            closure = len(result.closure_elems())
            poly = result.sdg.vertex_count()
            if closure:
                poly_increases.append(100.0 * poly / closure)
            slices += 1
            for count in result.version_counts().values():
                if count:
                    version_histogram[count] = version_histogram.get(count, 0) + 1
                if count > 1:
                    multi += 1
        rows.append(
            (
                name,
                len(program.procs),
                sdg.vertex_count(),
                slices,
                multi,
            )
        )
    rows.append(
        (
            "geo-mean poly size (closure=100)",
            "",
            "",
            "",
            "%.1f" % geometric_mean(poly_increases),
        )
    )
    print_table(
        "Hand-written subjects — polyvariance",
        ["program", "procs", "vertices", "slices", "multi-version procs"],
        rows,
    )
    total = sum(version_histogram.values())
    assert version_histogram.get(1, 0) / total >= 0.8
    assert max(version_histogram) <= 4


def test_handwritten_slices_run(benchmark):
    name = "tokenizer"
    program, _info, sdg = HANDWRITTEN[name]()
    criterion = sdg.print_criterion([sdg.print_call_vertices()[0]])
    result = benchmark(lambda: specialization_slice(sdg, criterion))
    executable = executable_program(result)
    inputs = INPUTS[name]
    original = run_program(program, inputs, max_steps=2_000_000)
    sliced = run_program(executable.program, inputs, max_steps=2_000_000)
    expected_uid = sdg.vertices[sdg.print_call_vertices()[0]].stmt_uid
    assert [values for uid, _f, values in original.prints if uid == expected_uid] == [
        values for _uid, _f, values in sliced.prints
    ]


def test_handwritten_mono_vs_poly_sizes():
    rows = []
    for name in sorted(HANDWRITTEN):
        _program, _info, sdg = HANDWRITTEN[name]()
        criterion = sdg.print_criterion([sdg.print_call_vertices()[0]])
        poly = specialization_slice(sdg, criterion)
        closure = poly.closure_elems()
        mono = binkley_slice(sdg, closure_set=closure)
        rows.append(
            (
                name,
                len(closure),
                poly.sdg.vertex_count(),
                len(mono.slice_set),
            )
        )
    print_table(
        "Hand-written subjects — sizes (first criterion)",
        ["program", "closure", "polyvariant", "monovariant"],
        rows,
    )
    for _name, closure, poly, mono in rows:
        assert poly >= closure
        assert mono >= closure
