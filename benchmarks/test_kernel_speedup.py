"""The CSR saturation kernel's performance pin.

The ``csr`` kernel (:mod:`repro.pds.kernel`, :mod:`repro.fsa.intops`)
exists for exactly one reason: to run Prestar and the MRD automaton
chain at flat-array speed.  This benchmark pins the claim on the
worst-case workload the paper provides — the Fig. 13 exponential family,
whose k=10 instance pushes the determinize/minimize chain through
thousands of subset states — and simultaneously re-asserts the kernels'
byte-identity on that instance, so the speedup can never silently come
from computing something cheaper.

The pinned quantity is ``prestar_seconds + automaton_seconds``: the
saturation plus the MRD chain, the two stages the kernel reimplements.
(Read-out and encoding are kernel-independent and dominated by Python
object churn either way.)  Measured speedup at k=10 is ~8-11x; the pin
at 3x leaves room for CI noise while still failing loudly if the int
paths ever fall back to the object implementations.
"""

from bench_utils import print_table, record_bench
from repro.core import specialization_slice
from repro.fsa.serialize import automaton_to_payload
from repro.workloads.exponential import exponential_program

#: the Fig. 13 instance the pin runs on — large enough that the MRD
#: chain dominates (seconds, not milliseconds), small enough for tier-1.
K = 10

#: the ISSUE's floor: csr must beat object by at least this factor on
#: the kernel-covered stages.
MIN_SPEEDUP = 3.0


def _run(kernel):
    # A fresh SDG per kernel: the shared Poststar and PDS-compile caches
    # live on the graph/encoding, and the pin must time two cold runs.
    _program, _info, sdg = exponential_program(K)
    result = specialization_slice(
        sdg, sdg.print_criterion(), contexts="empty", kernel=kernel
    )
    stats = result.stats
    assert stats["kernel"] == kernel
    return result, stats["prestar_seconds"] + stats["automaton_seconds"]


def test_csr_kernel_speedup_on_fig13():
    object_result, object_core = _run("object")
    csr_result, csr_core = _run("csr")

    # The speedup is only meaningful if both kernels did the same work:
    # identical MRD automata (hence identical slices downstream) and
    # identical state-count instrumentation.
    assert automaton_to_payload(object_result.a6) == automaton_to_payload(
        csr_result.a6
    )
    for key in ("a1_states", "a3_states", "a4_states", "a6_states"):
        assert object_result.stats[key] == csr_result.stats[key], key
    assert csr_result.stats["kernel_worklist_pops"] > 0
    assert csr_result.stats["kernel_rules_compiled"] > 0

    speedup = object_core / csr_core
    record_bench(
        "csr_kernel_fig13",
        speedup=speedup,
        object_seconds=object_core,
        csr_seconds=csr_core,
        min_speedup=MIN_SPEEDUP,
    )
    print_table(
        "CSR kernel — Fig. 13 k=%d (prestar + MRD seconds)" % K,
        ["kernel", "core seconds", "speedup"],
        [
            ("object", "%.3f" % object_core, "1.00x"),
            ("csr", "%.3f" % csr_core, "%.2fx" % speedup),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        "csr kernel is only %.2fx faster than object on fig13 k=%d "
        "(pinned floor: %.1fx)" % (speedup, K, MIN_SPEEDUP)
    )
