"""Incremental re-slicing benchmark: one-procedure edit on wc at scale.

The acceptance bar for the incremental layer (ISSUE 3, mirroring the
``test_session_reuse.py`` bar for the batched engine): after a
one-procedure edit to the wc-scale program, re-slicing every report
criterion through ``update_source`` must be at least 3x faster
end-to-end than a cold rebuild of the session, because the update
rebuilds a single PDG, keeps the PDS encoding and both saturation
kinds (the edit is label-only), and re-serves every slice whose cone
avoids the edited procedure from the memo.

A second measurement pins the structural-edit (slow) path: it must
still beat the cold rebuild (the per-procedure PDGs are reused even
when the saturations are not) and stay byte-identical.
"""

import time

from bench_utils import record_bench
from repro.engine import SlicingSession
from repro.lang import pretty
from repro.workloads.wc import scaled_wc_source

# 28 counting categories: big enough that the measured speedup sits
# near 10x on an otherwise idle machine, keeping the 3x pin far from
# timer noise even on loaded CI runners.  (The artifact layer's cached
# reachable-query view made *cold* batches ~1.5x faster, so the
# subject grew from 16 categories to keep the margin.)
BASE = scaled_wc_source(28)
#: label-only edit in one counting procedure (the fast path)
EDIT_CONSTANT = BASE.replace("cat_5 = cat_5 + 1", "cat_5 = cat_5 + 2")
#: structural edit in the same procedure (the slow path)
EDIT_STRUCTURAL = BASE.replace(
    "cat_5 = cat_5 + 1;", "cat_5 = cat_5 + 1;\n    cat_5 = cat_5 + 0;"
)


def _criteria(session):
    return [
        ("print", index)
        for index in range(len(session.sdg.print_call_vertices()))
    ]


def _check_identical(warm, cold, criteria):
    for criterion in criteria:
        assert pretty(warm.executable(criterion).program) == pretty(
            cold.executable(criterion).program
        ), criterion


def test_incremental_reslice_speedup():
    warm = SlicingSession(BASE)
    criteria = _criteria(warm)
    assert len(criteria) >= 19
    warm.slice_many(criteria)

    t0 = time.perf_counter()
    cold = SlicingSession(EDIT_CONSTANT)
    cold.slice_many(criteria)
    cold_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    summary = warm.update_source(EDIT_CONSTANT)
    warm.slice_many(criteria)
    incremental_seconds = time.perf_counter() - t0

    assert summary["fast_path"] is True
    assert summary["procs_rebuilt"] == 1
    assert summary["saturations_dropped"] == 0
    _check_identical(warm, cold, criteria)

    speedup = cold_seconds / incremental_seconds
    record_bench(
        "incremental_reslice",
        speedup=speedup,
        cold_seconds=cold_seconds,
        incremental_seconds=incremental_seconds,
        min_speedup=3.0,
    )
    print(
        "\none-procedure edit: cold %.3fs, incremental %.3fs -> %.1fx "
        "(%d/%d procs reused, %d results kept)"
        % (
            cold_seconds,
            incremental_seconds,
            speedup,
            summary["procs_reused"],
            summary["procs_reused"] + summary["procs_rebuilt"],
            summary["results_kept"],
        )
    )
    assert speedup >= 3.0, (
        "incremental re-slice must be at least 3x faster than a cold "
        "rebuild (got %.2fx: %.3fs vs %.3fs)"
        % (speedup, cold_seconds, incremental_seconds)
    )


def test_incremental_structural_edit_still_wins():
    """The slow path (dependence shape changed, saturations dropped)
    still reuses every unchanged PDG: the front-half *update* must not
    be slower than a cold front-half *build* (the saturations are
    inherently repaid on both paths and dominate end-to-end noise),
    and the updated session must agree with the cold one exactly."""
    warm = SlicingSession(BASE)
    criteria = _criteria(warm)
    warm.slice_many(criteria)

    t0 = time.perf_counter()
    cold = SlicingSession(EDIT_STRUCTURAL)
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    summary = warm.update_source(EDIT_STRUCTURAL)
    update_seconds = time.perf_counter() - t0

    assert summary["fast_path"] is False
    assert summary["procs_rebuilt"] == 1
    assert summary["procs_reused"] == len(warm.sdg.procedures()) - 1
    cold.slice_many(criteria)
    warm.slice_many(criteria)
    _check_identical(warm, cold, criteria)
    print(
        "\nstructural edit: cold build %.3fs, incremental update %.3fs -> %.1fx"
        % (build_seconds, update_seconds, build_seconds / update_seconds)
    )
    # The update re-runs the front end and re-encodes the PDS but
    # rebuilds one PDG instead of fourteen; a modest margin absorbs
    # timer noise on the small absolute numbers.
    assert update_seconds <= build_seconds * 1.10
