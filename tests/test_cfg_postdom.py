"""CFG, postdominator, and control-dependence unit tests."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.control_dep import control_dependence
from repro.analysis.postdom import immediate_postdominators, postdominators


def diamond():
    """entry -> c -> {a, b} -> join -> exit."""
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "c")
    cfg.add_edge("c", "a")
    cfg.add_edge("c", "b")
    cfg.add_edge("a", "join")
    cfg.add_edge("b", "join")
    cfg.add_edge("join", "exit")
    return cfg


def test_cfg_edges_and_dedup():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "x")
    cfg.add_edge("entry", "x")
    assert cfg.successors("entry") == ["x"]
    assert cfg.predecessors("x") == ["entry"]


def test_fallthrough_edges_filtered():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "a")
    cfg.add_edge("a", "exit", fallthrough=True)
    assert cfg.successors("a") == ["exit"]
    assert cfg.successors("a", include_fallthrough=False) == []


def test_executable_wins_over_fallthrough():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("a", "b")
    cfg.add_edge("a", "b", fallthrough=True)
    assert cfg.successors("a", include_fallthrough=False) == ["b"]
    cfg2 = ControlFlowGraph("entry", "exit")
    cfg2.add_edge("a", "b", fallthrough=True)
    cfg2.add_edge("a", "b")
    assert cfg2.successors("a", include_fallthrough=False) == ["b"]


def test_reachable_from():
    cfg = diamond()
    assert "join" in cfg.reachable_from("c")
    assert "entry" not in cfg.reachable_from("c")


def test_postdominators_diamond():
    cfg = diamond()
    pdom = postdominators(cfg)
    assert pdom["c"] == {"c", "join", "exit"}
    assert pdom["a"] == {"a", "join", "exit"}
    assert pdom["entry"] == {"entry", "c", "join", "exit"}


def test_immediate_postdominators_diamond():
    cfg = diamond()
    ipdom = immediate_postdominators(cfg)
    assert ipdom["c"] == "join"
    assert ipdom["a"] == "join"
    assert ipdom["join"] == "exit"
    assert ipdom["exit"] is None


def test_control_dependence_diamond():
    cfg = diamond()
    deps = control_dependence(cfg)
    assert ("c", "a") in deps
    assert ("c", "b") in deps
    assert ("c", "join") not in deps


def test_control_dependence_loop():
    # entry -> w; w -> body -> w; w -> exit
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "w")
    cfg.add_edge("w", "body")
    cfg.add_edge("body", "w")
    cfg.add_edge("w", "exit")
    deps = control_dependence(cfg)
    assert ("w", "body") in deps
    assert ("w", "w") in deps  # loop predicate controls itself


def test_control_dependence_entry_augmentation():
    # With the entry->exit pseudo edge, top-level nodes depend on entry.
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "s1")
    cfg.add_edge("s1", "s2")
    cfg.add_edge("s2", "exit")
    cfg.add_edge("entry", "exit", fallthrough=True)
    deps = control_dependence(cfg)
    assert ("entry", "s1") in deps
    assert ("entry", "s2") in deps


def test_control_dependence_early_return_shape():
    # if (c) return; print  -- print depends on both c and the return
    # pseudo-predicate (Ball-Horwitz).
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "c")
    cfg.add_edge("entry", "exit", fallthrough=True)
    cfg.add_edge("c", "ret")
    cfg.add_edge("c", "print")
    cfg.add_edge("ret", "retjoin")  # the jump
    cfg.add_edge("ret", "print", fallthrough=True)
    cfg.add_edge("print", "retjoin")
    cfg.add_edge("retjoin", "exit")
    deps = control_dependence(cfg)
    assert ("c", "print") in deps
    assert ("ret", "print") in deps


def test_infinite_loop_does_not_crash():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "w")
    cfg.add_edge("w", "w2")
    cfg.add_edge("w2", "w")
    # no path to exit from the loop
    cfg.add_edge("entry", "exit", fallthrough=True)
    postdominators(cfg)
    control_dependence(cfg)
