"""Executable-program generation tests (Alg. 1 step 5)."""

from repro.core import executable_program, specialization_slice
from repro.lang import ast_nodes as A
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg


def slice_program(source, criterion=None, contexts="reachable"):
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    if criterion is None:
        criterion = sdg.print_criterion()
    result = specialization_slice(sdg, criterion, contexts=contexts)
    return program, sdg, result, executable_program(result)


def test_demoted_call_keeps_side_effects():
    """x = f(...) with a dead result but live side effects becomes
    f(...);"""
    _p, _sdg, _res, sl = slice_program(
        """
        int g;
        int f(int a) { g = a; return a + 1; }
        int main() { int x = f(3); print("%d", g); }
        """
    )
    main = sl.program.proc("main")
    call_stmts = [s for s in A.walk_stmts(main.body) if isinstance(s, A.CallStmt)]
    assert len(call_stmts) == 1
    assert not any(
        isinstance(s, (A.Assign, A.LocalDecl))
        and isinstance(getattr(s, "expr", getattr(s, "init", None)), A.CallExpr)
        for s in A.walk_stmts(main.body)
    )
    original = run_program(parse_and_check(_p))
    assert run_program(sl.program).values == original.values


def parse_and_check(program):
    reparsed = parse(pretty(program))
    check(reparsed)
    return reparsed


def test_void_conversion_drops_return_value():
    _p, _sdg, res, sl = slice_program(
        """
        int g;
        int f() { g = 1; return 42; }
        int main() { f(); print("%d", g); }
        """
    )
    f_spec = res.specializations_of("f")[0]
    proc = sl.program.proc(f_spec.name)
    assert proc.ret == "void"
    returns = [s for s in A.walk_stmts(proc.body) if isinstance(s, A.Return)]
    assert all(r.expr is None for r in returns)


def test_local_decl_reinserted_when_killed():
    """int x; x = input(); print(x): the declaration's zero value is
    dead, but x must still be declared in the slice."""
    _p, _sdg, _res, sl = slice_program(
        """
        int main() {
          int x = 5;
          x = input();
          print("%d", x);
        }
        """
    )
    main = sl.program.proc("main")
    decls = [s for s in A.walk_stmts(main.body) if isinstance(s, A.LocalDecl)]
    assert any(d.name == "x" for d in decls)
    check(sl.program)  # must be a legal program
    assert run_program(sl.program, [7]).values == [7]


def test_unreferenced_globals_dropped():
    _p, _sdg, _res, sl = slice_program(
        """
        int used; int unused;
        int main() { used = 1; unused = 2; print("%d", used); }
        """
    )
    names = [decl.name for decl in sl.program.globals]
    assert names == ["used"]


def test_global_initializer_preserved():
    _p, _sdg, _res, sl = slice_program(
        'int g = 9; int main() { print("%d", g); }'
    )
    decl = sl.program.globals[0]
    assert decl.init.value == 9
    assert run_program(sl.program).values == [9]


def test_empty_else_dropped():
    _p, _sdg, _res, sl = slice_program(
        """
        int g;
        int main() {
          int c = input();
          if (c > 0) { g = 1; } else { c = 2; }
          print("%d", g);
        }
        """
    )
    main = sl.program.proc("main")
    ifs = [s for s in A.walk_stmts(main.body) if isinstance(s, A.If)]
    assert len(ifs) == 1
    assert ifs[0].els is None


def test_stmt_map_points_back():
    program, _sdg, _res, sl = slice_program(
        'int main() { int x = 1; print("%d", x); }'
    )
    original_uids = {s.uid for s in A.walk_stmts(program.proc("main").body)}
    for new_uid, orig_uid in sl.stmt_map.items():
        assert orig_uid in original_uids


def test_print_keeps_all_arguments():
    """Library edges force every print argument into the slice."""
    _p, _sdg, _res, sl = slice_program(
        """
        int a; int b;
        int main() { a = 1; b = 2; print("%d %d", a, b); }
        """
    )
    main = sl.program.proc("main")
    prints = [s for s in A.walk_stmts(main.body) if isinstance(s, A.Print)]
    assert len(prints[0].args) == 2
    assert run_program(sl.program).values == [1, 2]


def test_while_loop_kept_with_counter():
    _p, _sdg, _res, sl = slice_program(
        """
        int main() {
          int total = 0;
          int junk = 0;
          int i = 0;
          while (i < 4) {
            total = total + i;
            junk = junk + 100;
            i = i + 1;
          }
          print("%d", total);
        }
        """
    )
    text = pretty(sl.program)
    assert "junk" not in text
    assert "while (i < 4)" in text
    assert run_program(sl.program).values == [6]


def test_input_alignment_preserved():
    """Earlier input() calls stay in the slice to keep the stream
    aligned, even when their values are dead."""
    _p, _sdg, _res, sl = slice_program(
        """
        int main() {
          int dead = input();
          int live = input();
          print("%d", live);
        }
        """
    )
    assert run_program(sl.program, [10, 20]).values == [20]


def test_slice_is_checkable_and_printable():
    _p, _sdg, _res, sl = slice_program(
        """
        int g;
        void helper(int v) { g = v; }
        int main() { helper(3); print("%d", g); }
        """
    )
    text = pretty(sl.program)
    reparsed = parse(text)
    check(reparsed)
    assert run_program(reparsed).values == [3]
