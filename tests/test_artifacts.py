"""Property tests for relocatable saturation artifacts
(:mod:`repro.engine.artifacts` + :mod:`repro.fsa.serialize`).

The artifact contract, checked over ≥20 generated programs:

* pickling an artifact and loading it back (``dumps`` → ``loads``)
  preserves the automaton exactly (structural equality of state and
  transition sets) and therefore its language — double-checked through
  the determinize+minimize canonical form — and preserves the
  ownership footprint;
* artifact bytes are deterministic: two pickles of equal artifacts are
  byte-identical (the property the ``__sats__`` table and the process
  backend lean on);
* the ``__sats__`` key digest is stable across interpreter processes
  (fresh hash seed), like the content keys it composes with;
* the footprint is exactly the procedures whose symbols the trimmed
  automaton touches — the invariant the incremental keep-rule is
  proved against.
"""

import os
import pickle

import pytest

from repro.engine import SlicingSession, stable_key_digest
from repro.engine.artifacts import symbol_owner_procs
from repro.engine.canonical import REACHABLE_KEY
from repro.fsa import canonical_dfa, language_equal, structurally_equal
from repro.fsa.serialize import automaton_from_payload, automaton_to_payload
from repro.lang import pretty
from repro.workloads.generator import GenConfig, generate_program

pytestmark = pytest.mark.smoke

#: the acceptance floor: artifact round-trips over at least 20 programs
N_PROGRAMS = 21


def _session(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return SlicingSession(pretty(program))


def _artifacts(session):
    """One Poststar and one Prestar artifact from a warmed session."""
    poststar = session.reachable_configs_artifact()
    prints = session.sdg.print_call_vertices()
    prestar = None
    if prints:
        session.slice(("print", 0))
        (sat_key,) = [
            key
            for (kind, key) in session._futures
            if kind == "saturation" and key != REACHABLE_KEY
        ]
        prestar = session._futures[("saturation", sat_key)].result()
    return poststar, prestar


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_artifact_roundtrip_preserves_language_and_footprint(seed):
    session = _session(seed)
    poststar, prestar = _artifacts(session)
    for artifact in filter(None, (poststar, prestar)):
        loaded = pickle.loads(pickle.dumps(artifact))
        assert loaded.kind == artifact.kind
        assert loaded.key == artifact.key
        assert loaded.footprint == artifact.footprint
        # Structural equality (the strongest form)...
        assert structurally_equal(loaded.automaton, artifact.automaton)
        # ...and the language-level check the issue asks for:
        # determinize+minimize canonical forms must coincide.
        assert structurally_equal(
            canonical_dfa(loaded.automaton), canonical_dfa(artifact.automaton)
        )
        assert language_equal(loaded.automaton, artifact.automaton)


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
def test_artifact_pickle_bytes_deterministic(seed):
    """Equal artifacts serialize to equal bytes: the payload orders
    states and transitions canonically, so pickling is insensitive to
    set-iteration order."""
    first, _ = _artifacts(_session(seed))
    second, _ = _artifacts(_session(seed))
    assert first is not second
    assert pickle.dumps(first) == pickle.dumps(second)


def test_payload_roundtrip_is_exact():
    session = _session(0)
    automaton = session.reachable_configs()
    rebuilt = automaton_from_payload(automaton_to_payload(automaton))
    assert structurally_equal(rebuilt, automaton)
    # The payload itself is canonical: rebuilding and re-rendering is a
    # fixed point.
    assert automaton_to_payload(rebuilt) == automaton_to_payload(automaton)


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_footprint_matches_touched_procedures(seed):
    """The footprint is exactly the content keys of the procedures
    owning a symbol on the (trimmed) automaton — per vertex ownership,
    plus caller and callee for call-site labels."""
    session = _session(seed)
    poststar, prestar = _artifacts(session)
    keys = session._content_keys()
    for artifact in filter(None, (poststar, prestar)):
        owners = symbol_owner_procs(session.sdg, artifact.automaton)
        assert artifact.footprint == frozenset(keys[name] for name in owners)
        assert artifact.footprint <= frozenset(keys.values())
    # The shared Poststar always reaches main itself (procedures main
    # never calls may legitimately be absent from its footprint).
    assert keys["main"] in poststar.footprint


def test_sats_key_digest_stable_across_processes():
    """The ``__sats__`` file name — sha256 over the front-half hash and
    the saturation key's stable digest — must come out identical in a
    fresh interpreter with a fresh hash seed."""
    import subprocess
    import sys

    from repro.store import SliceStore, source_hash
    from repro.workloads.paper_figures import FIG1_SOURCE

    session = SlicingSession(FIG1_SOURCE)
    session.slice()
    sat_keys = sorted(
        key for (kind, key) in session._futures if kind == "saturation"
    )
    here = [
        SliceStore.sat_name(source_hash(FIG1_SOURCE), stable_key_digest(key))
        for key in sat_keys
    ]
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    script = (
        "import json, sys\n"
        "from repro.engine import SlicingSession, stable_key_digest\n"
        "from repro.store import SliceStore, source_hash\n"
        "source = sys.stdin.read()\n"
        "session = SlicingSession(source)\n"
        "session.slice()\n"
        "keys = sorted(k for (kind, k) in session._futures if kind == 'saturation')\n"
        "print(json.dumps([SliceStore.sat_name(source_hash(source),\n"
        "                                      stable_key_digest(k))\n"
        "                  for k in keys]))\n"
    )
    import json

    env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="4242")
    there = json.loads(
        subprocess.check_output(
            [sys.executable, "-c", script], input=FIG1_SOURCE, env=env, text=True
        )
    )
    assert there == here


def test_sats_artifacts_shared_across_processes(tmp_path):
    """End to end: a subprocess fills the ``__sats__`` table; this
    process's fresh session loads the artifacts instead of saturating
    (digest stability made observable)."""
    import subprocess
    import sys

    from repro.store import SliceStore
    from repro.workloads.paper_figures import FIG1_SOURCE

    cache = str(tmp_path / "cache")
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    script = (
        "import sys\n"
        "from repro.engine import SlicingSession\n"
        "from repro.store import SliceStore\n"
        "session = SlicingSession(sys.stdin.read(), store=SliceStore(%r))\n"
        "session.slice()\n" % cache
    )
    env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="99")
    subprocess.check_output(
        [sys.executable, "-c", script], input=FIG1_SOURCE, env=env, text=True
    )
    reader = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    reader.reachable_configs()
    assert reader.stats["sat_persist_hits"] == 1
    assert reader.store.stats()["sat_hits"] == 1
