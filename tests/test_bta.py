"""Polyvariant binding-time analysis tests (§9) and calling-context
slicing."""

from repro.core import (
    binding_time_analysis,
    calling_context_slice,
    dynamic_input_vertices,
)
from repro.lang import check, parse
from repro.sdg import backward_closure_slice, build_sdg
from repro.workloads.paper_figures import load_fig1


def build(source):
    program = parse(source)
    info = check(program)
    return program, info, build_sdg(program, info)


def test_polyvariant_divisions():
    """f is called with a static constant at one site and a dynamic
    value at the other: two binding-time divisions, one per pattern."""
    _p, _i, sdg = build(
        """
        int g;
        int f(int a, int b) {
          g = a + b;
          return g;
        }
        int main() {
          int d = input();
          int r1 = f(1, 2);
          int r2 = f(d, 3);
          print("%d %d", r1, r2);
        }
        """
    )
    dynamic = dynamic_input_vertices(sdg)
    assert dynamic
    result = binding_time_analysis(sdg, dynamic)
    divisions = result.divisions_of("f")
    # Exactly one division is dynamic (the d-site); its dynamic param is
    # position 0 (a); the static-everywhere site contributes none.
    assert len(divisions) == 1
    assert divisions[0].dynamic_param_roles == {("param", 0)}


def test_both_sites_dynamic_one_division():
    _p, _i, sdg = build(
        """
        int g;
        void f(int a) { g = a; }
        int main() {
          int d = input();
          f(d);
          f(d + 1);
          print("%d", g);
        }
        """
    )
    result = binding_time_analysis(sdg, dynamic_input_vertices(sdg))
    divisions = result.divisions_of("f")
    assert len(divisions) == 1
    assert divisions[0].dynamic_param_roles == {("param", 0)}


def test_distinct_patterns_give_distinct_divisions():
    _p, _i, sdg = build(
        """
        int g;
        void f(int a, int b) { g = a + b; }
        int main() {
          int d = input();
          f(d, 1);
          f(2, d);
          print("%d", g);
        }
        """
    )
    result = binding_time_analysis(sdg, dynamic_input_vertices(sdg))
    divisions = result.divisions_of("f")
    patterns = {frozenset(d.dynamic_param_roles) for d in divisions}
    assert patterns == {
        frozenset({("param", 0)}),
        frozenset({("param", 1)}),
    }


def test_fully_static_program_has_no_divisions():
    _p, _i, sdg = build(
        """
        int g;
        void f(int a) { g = a; }
        int main() { f(1); print("%d", g); }
        """
    )
    result = binding_time_analysis(sdg, dynamic_input_vertices(sdg))
    assert result.division_counts() == {}


def test_report_renders():
    _p, _i, sdg = build(
        """
        int g;
        void f(int a) { g = a; }
        int main() { int d = input(); f(d); print("%d", g); }
        """
    )
    result = binding_time_analysis(sdg, dynamic_input_vertices(sdg))
    text = result.report()
    assert "f:" in text
    assert "a_in" in text


def test_is_dynamic_anywhere():
    _p, _i, sdg = build(
        """
        int g; int h;
        int main() {
          int d = input();
          g = d;
          h = 5;
          print("%d %d", g, h);
        }
        """
    )
    result = binding_time_analysis(sdg, dynamic_input_vertices(sdg))
    g_assign = next(v.vid for v in sdg.vertices.values() if v.label == "g = d")
    h_assign = next(v.vid for v in sdg.vertices.values() if v.label == "h = 5")
    assert result.is_dynamic_anywhere(g_assign)
    assert not result.is_dynamic_anywhere(h_assign)


# -- calling-context slicing ------------------------------------------------


def test_calling_context_slice_restricts_to_context():
    """Fig. 1: slicing p's b_in under C1 only must exclude main's
    elements feeding the *other* call sites."""
    _p, _i, sdg = load_fig1()
    fi_b = sdg.formal_ins["p"][("param", 1)]
    under_c1 = calling_context_slice(sdg, [fi_b], ("C1",))
    under_c2 = calling_context_slice(sdg, [fi_b], ("C2",))
    assert under_c1 != under_c2
    # C1 passes the constant 2: the slice stays tiny.
    labels_c1 = {sdg.vertices[v].label for v in under_c1}
    assert "2" in labels_c1
    assert "g2 = 100" not in labels_c1
    # C2 passes the constant 3 but also needs g2's value via C1's call.
    labels_c2 = {sdg.vertices[v].label for v in under_c2}
    assert "3" in labels_c2


def test_calling_context_slice_subset_of_full_slice():
    _p, _i, sdg = load_fig1()
    fi_b = sdg.formal_ins["p"][("param", 1)]
    full = backward_closure_slice(sdg, [fi_b])
    for context in (("C1",), ("C2",), ("C3",)):
        restricted = calling_context_slice(sdg, [fi_b], context)
        assert restricted <= full


def test_calling_context_slice_unrealizable_context_empty():
    _p, _i, sdg = load_fig1()
    fi_b = sdg.formal_ins["p"][("param", 1)]
    # C1 then C1 again is not a realizable stack in Fig. 1 — but the
    # machinery still answers (pre* of an inconsistent configuration is
    # just the configurations reaching it; the b_in chain itself).
    result = calling_context_slice(sdg, [fi_b], ("C1", "C1"))
    assert isinstance(result, set)
