"""Tests for the batched slicing engine (:mod:`repro.engine`)."""

import pytest

import repro
from repro.core import remove_feature, specialization_slice
from repro.engine import SlicingSession, canonical_key, resolve_criterion_spec
from repro.workloads.paper_figures import FIG1_SOURCE, FIG16_SOURCE

pytestmark = pytest.mark.smoke


# -- open_session caching and invalidation ----------------------------------------


def test_open_session_reuses_identical_source():
    first = repro.open_session(FIG1_SOURCE)
    second = repro.open_session(FIG1_SOURCE)
    assert first is second


def test_mutated_source_gets_fresh_session():
    """Satellite requirement: mutating the source and re-opening must
    not serve stale SDG/automaton results."""
    # p(g2, 3) is live for the criterion print (b flows to g2); mutate it.
    mutated = FIG1_SOURCE.replace("p(g2, 3)", "p(g2, 33)")
    assert mutated != FIG1_SOURCE
    stale = repro.open_session(FIG1_SOURCE)
    stale_text = repro.pretty(stale.executable().program)
    fresh = repro.open_session(mutated)
    assert fresh is not stale
    assert fresh.sdg is not stale.sdg
    fresh_text = repro.pretty(fresh.executable().program)
    assert "33" in fresh_text
    assert "33" not in stale_text
    # 2 + 33 at the final call site; the stale session still prints 5.
    assert repro.run_program(fresh.executable().program).values == [35]
    assert repro.run_program(stale.executable().program).values == [5]
    # The original session still answers for the original source.
    assert repro.open_session(FIG1_SOURCE) is stale


def test_session_cache_is_bounded():
    cache_max = repro._SESSION_CACHE_MAX
    for index in range(cache_max + 4):
        repro.open_session("int main() { print(\"%%d\", %d); return 0; }" % index)
    assert len(repro._session_cache) <= cache_max


# -- criterion memoization ---------------------------------------------------------


def test_identical_criteria_hit_the_memo():
    session = SlicingSession(FIG1_SOURCE)
    first = session.slice()
    stats = session.stats
    assert stats["slice_misses"] == 1 and stats["slice_hits"] == 0
    second = session.slice("prints")
    third = session.slice(("print", None))
    assert second is first and third is first
    stats = session.stats
    assert stats["slice_misses"] == 1 and stats["slice_hits"] == 2


def test_vertex_spelling_variants_share_one_entry():
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    results = {
        id(session.slice(tuple(vids))),
        id(session.slice(list(reversed(vids)))),
        id(session.slice(set(vids))),
    }
    assert len(results) == 1
    assert session.stats["slice_misses"] == 1


def test_contexts_mode_distinguishes_criteria():
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    reachable = session.slice(vids, contexts="reachable")
    empty = session.slice(vids, contexts="empty")
    assert reachable is not empty
    assert session.stats["slice_misses"] == 2


def test_prestar_saturation_memoized_separately():
    session = SlicingSession(FIG1_SOURCE)
    session.slice()
    stats = session.stats
    # reachable-configs (shared) + one per-criterion Prestar.
    assert stats["saturation_misses"] == 2
    session.slice(("print", 0))  # same single print -> same vertex set
    assert session.stats["saturation_misses"] == 2


def test_slice_many_dedupes_and_preserves_order():
    session = SlicingSession(FIG1_SOURCE)
    results = session.slice_many([("print", 0), "prints", ("print", 0)])
    assert len(results) == 3
    assert results[0] is results[2]
    # FIG1 has a single print, so all three specs canonicalize equally.
    assert results[0] is results[1]
    assert session.stats["slice_misses"] == 1


def test_session_matches_one_shot_pipeline():
    session = SlicingSession(FIG1_SOURCE)
    via_session = session.executable()
    one_shot = repro.slice_source(FIG1_SOURCE)
    assert repro.pretty(via_session.program) == repro.pretty(one_shot.program)
    assert repro.run_program(via_session.program).values == [5]
    direct = specialization_slice(session.sdg, session.sdg.print_criterion())
    assert via_session.result.closure_elems() == direct.closure_elems()
    assert via_session.result.version_counts() == direct.version_counts()


def test_executable_memoized():
    session = SlicingSession(FIG1_SOURCE)
    assert session.executable() is session.executable("prints")
    stats = session.stats
    assert stats["executable_misses"] == 1 and stats["executable_hits"] == 1


def test_configs_criterion_spec():
    """Explicit configuration criteria (the §8 bug-site style) go
    through the same memo."""
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    configs = [(vid, ()) for vid in vids]  # criterion prints live in main
    result = session.slice(configs)
    again = session.slice(tuple(reversed(configs)))
    assert again is result
    empty_ctx = session.slice(vids, contexts="empty")
    assert result.closure_elems() == empty_ctx.closure_elems()


def test_automaton_criterion_keyed_structurally():
    from repro.core.criteria import empty_stack_criterion

    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    first = session.slice(empty_stack_criterion(session.encoding, vids))
    second = session.slice(empty_stack_criterion(session.encoding, vids))
    assert first is second
    assert session.stats["slice_misses"] == 1


def test_one_shot_iterable_criteria():
    """Generator criteria must be resolved exactly once — never drained
    by a pre-scan and then re-read as empty."""
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    from_generator = session.slice_many([iter(vids)])[0]
    assert from_generator is session.slice(vids)
    assert set(from_generator.map_back_vertex.values())  # not the empty slice
    via_executable = session.executable(iter(vids))
    assert via_executable.result is from_generator


def test_unknown_criterion_string_is_rejected():
    session = SlicingSession(FIG1_SOURCE)
    with pytest.raises(ValueError, match="unknown criterion string"):
        session.slice("print")  # the easy typo for "prints"


def test_criterion_validation():
    session = SlicingSession(FIG1_SOURCE)
    with pytest.raises(ValueError):
        session.slice(("print", 99))
    with pytest.raises(ValueError):
        session.slice([10**9])  # unknown vertex id
    with pytest.raises(ValueError):
        session.slice(session.sdg.print_criterion(), contexts="bogus")
    # A failed computation must not poison the memo.
    assert session.stats["slice_misses"] == 1
    session.slice()


def test_session_remove_feature_matches_module_function():
    session = SlicingSession(FIG16_SOURCE)
    via_session = session.remove_feature("int prod = 1")
    assert session.remove_feature("int prod = 1") is via_session
    seeds = {
        vid
        for vid, vertex in session.sdg.vertices.items()
        if vertex.kind in ("statement", "call") and "int prod = 1" in vertex.label
    }
    direct = remove_feature(session.sdg, seeds)
    assert via_session.sdg.vertex_count() == direct.sdg.vertex_count()
    with pytest.raises(ValueError):
        session.remove_feature("no such statement text")


def test_session_remove_feature_cleaned_memoized():
    """The §7 cleanup pass runs through the session with its own memo
    table (ROADMAP open item), and matches the module-level
    :func:`clean_feature_removal` exactly."""
    from repro.core.cleanup import clean_feature_removal

    session = SlicingSession(FIG16_SOURCE)
    raw, cleaned = session.remove_feature_cleaned("int prod = 1")
    stats = session.stats
    assert stats["feature_clean_misses"] == 1 and stats["feature_clean_hits"] == 0
    # Resubmitting is a dictionary lookup returning the same objects.
    raw_again, cleaned_again = session.remove_feature_cleaned("int prod = 1")
    assert raw_again is raw and cleaned_again is cleaned
    stats = session.stats
    assert stats["feature_clean_hits"] == 1
    # The cleanup reuses the memoized removal (one feature miss total).
    assert stats["feature_misses"] == 1
    # Same answer as the module-level pass it folds in.
    result = session.remove_feature("int prod = 1")
    direct_raw, direct_cleaned = clean_feature_removal(result)
    assert repro.pretty(cleaned.program) == repro.pretty(direct_cleaned.program)
    assert repro.pretty(raw.program) == repro.pretty(direct_raw.program)
    assert cleaned.result is result
    # The cleaned program still runs (the §7 guarantee: cleanup removes
    # only useless code).
    assert (
        repro.run_program(cleaned.program).values
        == repro.run_program(raw.program).values
    )


def test_remove_feature_source_routes_through_session():
    """The one-call helper now shares the session memo: repeating a
    removal touches the cleanup table once."""
    # A whitespace variant hashes to its own session, so counters are
    # not shared with other tests that use FIG16_SOURCE.
    source = FIG16_SOURCE + "\n"
    first = repro.remove_feature_source(source, "int prod = 1")
    second = repro.remove_feature_source(source, "int prod = 1")
    assert first is second  # same memoized ExecutableSlice
    session = repro.open_session(source)
    assert session.stats["feature_clean_misses"] == 1
    assert session.stats["feature_clean_hits"] == 1


def test_for_sdg_shares_one_session():
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    first = SlicingSession.for_sdg(sdg)
    second = SlicingSession.for_sdg(sdg)
    assert first is second
    assert first.sdg is sdg


# -- canonicalization unit checks -------------------------------------------------


def test_canonical_key_forms():
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    all_prints = resolve_criterion_spec(sdg, "prints")
    assert all_prints == resolve_criterion_spec(sdg, None)
    assert all_prints == resolve_criterion_spec(sdg, ("print", None))
    kind, payload = all_prints
    assert kind == "vertices" and payload == tuple(sorted(sdg.print_criterion()))
    assert canonical_key(kind, payload, "reachable") != canonical_key(
        kind, payload, "empty"
    )
    single_vid = payload[0]
    assert resolve_criterion_spec(sdg, single_vid) == (
        "vertices",
        (single_vid,),
    )
