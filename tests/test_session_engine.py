"""Tests for the batched slicing engine (:mod:`repro.engine`)."""

import pytest

import repro
from repro.core import remove_feature, specialization_slice
from repro.engine import SlicingSession, canonical_key, resolve_criterion_spec
from repro.workloads.paper_figures import FIG1_SOURCE, FIG16_SOURCE

pytestmark = pytest.mark.smoke


# -- open_session caching and invalidation ----------------------------------------


def test_open_session_reuses_identical_source():
    first = repro.open_session(FIG1_SOURCE)
    second = repro.open_session(FIG1_SOURCE)
    assert first is second


def test_mutated_source_gets_fresh_session():
    """Satellite requirement: mutating the source and re-opening must
    not serve stale SDG/automaton results."""
    # p(g2, 3) is live for the criterion print (b flows to g2); mutate it.
    mutated = FIG1_SOURCE.replace("p(g2, 3)", "p(g2, 33)")
    assert mutated != FIG1_SOURCE
    stale = repro.open_session(FIG1_SOURCE)
    stale_text = repro.pretty(stale.executable().program)
    fresh = repro.open_session(mutated)
    assert fresh is not stale
    assert fresh.sdg is not stale.sdg
    fresh_text = repro.pretty(fresh.executable().program)
    assert "33" in fresh_text
    assert "33" not in stale_text
    # 2 + 33 at the final call site; the stale session still prints 5.
    assert repro.run_program(fresh.executable().program).values == [35]
    assert repro.run_program(stale.executable().program).values == [5]
    # The original session still answers for the original source.
    assert repro.open_session(FIG1_SOURCE) is stale


def test_session_cache_is_bounded():
    cache_max = repro._SESSION_CACHE_MAX
    for index in range(cache_max + 4):
        repro.open_session("int main() { print(\"%%d\", %d); return 0; }" % index)
    assert len(repro._session_cache) <= cache_max


# -- criterion memoization ---------------------------------------------------------


def test_identical_criteria_hit_the_memo():
    session = SlicingSession(FIG1_SOURCE)
    first = session.slice()
    stats = session.stats
    assert stats["slice_misses"] == 1 and stats["slice_hits"] == 0
    second = session.slice("prints")
    third = session.slice(("print", None))
    assert second is first and third is first
    stats = session.stats
    assert stats["slice_misses"] == 1 and stats["slice_hits"] == 2


def test_vertex_spelling_variants_share_one_entry():
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    results = {
        id(session.slice(tuple(vids))),
        id(session.slice(list(reversed(vids)))),
        id(session.slice(set(vids))),
    }
    assert len(results) == 1
    assert session.stats["slice_misses"] == 1


def test_contexts_mode_distinguishes_criteria():
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    reachable = session.slice(vids, contexts="reachable")
    empty = session.slice(vids, contexts="empty")
    assert reachable is not empty
    assert session.stats["slice_misses"] == 2


def test_prestar_saturation_memoized_separately():
    session = SlicingSession(FIG1_SOURCE)
    session.slice()
    stats = session.stats
    # reachable-configs (shared) + one per-criterion Prestar.
    assert stats["saturation_misses"] == 2
    session.slice(("print", 0))  # same single print -> same vertex set
    assert session.stats["saturation_misses"] == 2


def test_slice_many_dedupes_and_preserves_order():
    session = SlicingSession(FIG1_SOURCE)
    results = session.slice_many([("print", 0), "prints", ("print", 0)])
    assert len(results) == 3
    assert results[0] is results[2]
    # FIG1 has a single print, so all three specs canonicalize equally.
    assert results[0] is results[1]
    assert session.stats["slice_misses"] == 1


def test_session_matches_one_shot_pipeline():
    session = SlicingSession(FIG1_SOURCE)
    via_session = session.executable()
    one_shot = repro.slice_source(FIG1_SOURCE)
    assert repro.pretty(via_session.program) == repro.pretty(one_shot.program)
    assert repro.run_program(via_session.program).values == [5]
    direct = specialization_slice(session.sdg, session.sdg.print_criterion())
    assert via_session.result.closure_elems() == direct.closure_elems()
    assert via_session.result.version_counts() == direct.version_counts()


def test_executable_memoized():
    session = SlicingSession(FIG1_SOURCE)
    assert session.executable() is session.executable("prints")
    stats = session.stats
    assert stats["executable_misses"] == 1 and stats["executable_hits"] == 1


def test_configs_criterion_spec():
    """Explicit configuration criteria (the §8 bug-site style) go
    through the same memo."""
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    configs = [(vid, ()) for vid in vids]  # criterion prints live in main
    result = session.slice(configs)
    again = session.slice(tuple(reversed(configs)))
    assert again is result
    empty_ctx = session.slice(vids, contexts="empty")
    assert result.closure_elems() == empty_ctx.closure_elems()


def test_automaton_criterion_keyed_structurally():
    from repro.core.criteria import empty_stack_criterion

    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    first = session.slice(empty_stack_criterion(session.encoding, vids))
    second = session.slice(empty_stack_criterion(session.encoding, vids))
    assert first is second
    assert session.stats["slice_misses"] == 1


def test_one_shot_iterable_criteria():
    """Generator criteria must be resolved exactly once — never drained
    by a pre-scan and then re-read as empty."""
    session = SlicingSession(FIG1_SOURCE)
    vids = sorted(session.sdg.print_criterion())
    from_generator = session.slice_many([iter(vids)])[0]
    assert from_generator is session.slice(vids)
    assert set(from_generator.map_back_vertex.values())  # not the empty slice
    via_executable = session.executable(iter(vids))
    assert via_executable.result is from_generator


def test_unknown_criterion_string_is_rejected():
    session = SlicingSession(FIG1_SOURCE)
    with pytest.raises(ValueError, match="unknown criterion string"):
        session.slice("print")  # the easy typo for "prints"


def test_criterion_validation():
    session = SlicingSession(FIG1_SOURCE)
    with pytest.raises(ValueError):
        session.slice(("print", 99))
    with pytest.raises(ValueError):
        session.slice([10**9])  # unknown vertex id
    with pytest.raises(ValueError):
        session.slice(session.sdg.print_criterion(), contexts="bogus")
    # A failed computation must not poison the memo.
    assert session.stats["slice_misses"] == 1
    session.slice()


def test_session_remove_feature_matches_module_function():
    session = SlicingSession(FIG16_SOURCE)
    via_session = session.remove_feature("int prod = 1")
    assert session.remove_feature("int prod = 1") is via_session
    seeds = {
        vid
        for vid, vertex in session.sdg.vertices.items()
        if vertex.kind in ("statement", "call") and "int prod = 1" in vertex.label
    }
    direct = remove_feature(session.sdg, seeds)
    assert via_session.sdg.vertex_count() == direct.sdg.vertex_count()
    with pytest.raises(ValueError):
        session.remove_feature("no such statement text")


def test_session_remove_feature_cleaned_memoized():
    """The §7 cleanup pass runs through the session with its own memo
    table (ROADMAP open item), and matches the module-level
    :func:`clean_feature_removal` exactly."""
    from repro.core.cleanup import clean_feature_removal

    session = SlicingSession(FIG16_SOURCE)
    raw, cleaned = session.remove_feature_cleaned("int prod = 1")
    stats = session.stats
    assert stats["feature_clean_misses"] == 1 and stats["feature_clean_hits"] == 0
    # Resubmitting is a dictionary lookup returning the same objects.
    raw_again, cleaned_again = session.remove_feature_cleaned("int prod = 1")
    assert raw_again is raw and cleaned_again is cleaned
    stats = session.stats
    assert stats["feature_clean_hits"] == 1
    # The cleanup reuses the memoized removal (one feature miss total).
    assert stats["feature_misses"] == 1
    # Same answer as the module-level pass it folds in.
    result = session.remove_feature("int prod = 1")
    direct_raw, direct_cleaned = clean_feature_removal(result)
    assert repro.pretty(cleaned.program) == repro.pretty(direct_cleaned.program)
    assert repro.pretty(raw.program) == repro.pretty(direct_raw.program)
    assert cleaned.result is result
    # The cleaned program still runs (the §7 guarantee: cleanup removes
    # only useless code).
    assert (
        repro.run_program(cleaned.program).values
        == repro.run_program(raw.program).values
    )


def test_remove_feature_source_routes_through_session():
    """The one-call helper now shares the session memo: repeating a
    removal touches the cleanup table once."""
    # A whitespace variant hashes to its own session, so counters are
    # not shared with other tests that use FIG16_SOURCE.
    source = FIG16_SOURCE + "\n"
    first = repro.remove_feature_source(source, "int prod = 1")
    second = repro.remove_feature_source(source, "int prod = 1")
    assert first is second  # same memoized ExecutableSlice
    session = repro.open_session(source)
    assert session.stats["feature_clean_misses"] == 1
    assert session.stats["feature_clean_hits"] == 1


def test_for_sdg_shares_one_session():
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    first = SlicingSession.for_sdg(sdg)
    second = SlicingSession.for_sdg(sdg)
    assert first is second
    assert first.sdg is sdg


# -- update_source invalidation edge cases ----------------------------------------


WC_LIKE = """
int total;
int evens;

void note_total(int c) {
  total = total + c;
}

void note_even(int c) {
  if (c % 2 == 0) {
    evens = evens + 1;
  }
}

void scan() {
  int c = input();
  while (c != 0) {
    note_total(c);
    note_even(c);
    c = input();
  }
}

int main() {
  total = 0;
  evens = 0;
  scan();
  print("%d", total);
  print("%d", evens);
  return 0;
}
"""


def _assert_matches_cold(session, edited):
    cold = SlicingSession(edited)
    for index in range(len(cold.sdg.print_call_vertices())):
        assert repro.pretty(session.executable(("print", index)).program) == (
            repro.pretty(cold.executable(("print", index)).program)
        ), index
    return cold


def test_update_source_noop_and_validation():
    session = SlicingSession(WC_LIKE)
    summary = session.update_source(WC_LIKE)
    assert summary["noop"] is True and summary["procs_rebuilt"] == 0
    # Bad text leaves the session fully intact (front end runs first).
    with pytest.raises(Exception):
        session.update_source("int main() { syntax error")
    with pytest.raises(Exception):
        session.update_source("int main() { x = 1; return 0; }")  # undeclared
    # (no inputs: the scan loop never runs, total stays 0)
    assert repro.run_program(session.executable(("print", 0)).program).values == [0]
    # SDG-only sessions cannot update (no source text).
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    with pytest.raises(ValueError):
        SlicingSession(sdg=sdg).update_source(WC_LIKE)


def test_update_source_keeps_untouched_saturations():
    """A label-only edit in one procedure keeps every saturation and
    the slice results whose cones avoid it."""
    session = SlicingSession(WC_LIKE)
    session.slice(("print", 0))  # total: does not depend on note_even
    session.slice(("print", 1))  # evens: depends on note_even
    edited = WC_LIKE.replace("evens = evens + 1", "evens = evens + 2")
    summary = session.update_source(edited)
    assert summary["fast_path"] is True
    assert summary["procs_rebuilt"] == 1
    assert summary["saturations_dropped"] == 0
    # print 0's slice/executable survive; print 1's are recomputed.
    assert summary["results_kept"] >= 1 and summary["results_dropped"] >= 1
    before = session.stats["saturation_misses"]
    _assert_matches_cold(session, edited)
    # Re-slicing print 1 found its Prestar in the kept memo: the only
    # saturation work after the update is zero.
    assert session.stats["saturation_misses"] == before


def test_update_source_add_and_delete_procedure():
    session = SlicingSession(WC_LIKE)
    session.slice(("print", 0))
    # Add a procedure (and a call to it): main changes, the rest keep
    # their keys; the program signature is untouched.
    added = WC_LIKE.replace(
        "int main() {",
        "void reset() {\n  total = 0;\n}\n\nint main() {\n  reset();",
    )
    summary = session.update_source(added)
    assert summary["procs_rebuilt"] == 2  # reset (new) + main (edited)
    assert summary["procs_reused"] == 3
    _assert_matches_cold(session, added)
    # Delete it again: back to the original text.
    summary = session.update_source(WC_LIKE)
    assert summary["procs_removed"] == 1
    _assert_matches_cold(session, WC_LIKE)


def test_update_source_edit_to_main():
    """Edits to main structurally change every realizable context, so
    reachable-mode saturations must not survive a structural main
    edit; results still match a cold session exactly."""
    session = SlicingSession(WC_LIKE)
    session.slice(("print", 0))
    session.slice(("print", 1))
    edited = WC_LIKE.replace('print("%d", evens);\n', "")
    summary = session.update_source(edited)
    assert summary["fast_path"] is False
    assert summary["procs_rebuilt"] == 1  # main only
    assert summary["saturations_kept"] == 0  # poststar touches main
    cold = _assert_matches_cold(session, edited)
    assert len(cold.sdg.print_call_vertices()) == 1


def test_update_source_changes_funcptr_target_set():
    """The content keys are computed over the *lowered* program, so an
    edit that changes a function pointer's points-to set rebuilds the
    dispatch procedure."""
    base = (
        "fnptr p = &f;\n"
        "int main() {\n"
        "  int x = input();\n"
        "  if (x > 0) { p = &g; }\n"
        "  int y = p(x);\n"
        '  print("%d", y);\n'
        "  return 0;\n"
        "}\n"
        "int f(int a) { return a + 1; }\n"
        "int g(int a) { return a + 2; }\n"
        "int h(int a) { return a + 3; }\n"
    )
    session = SlicingSession(base)
    session.slice(("print", 0))
    edited = base.replace("p = &g;", "p = &h;")
    summary = session.update_source(edited)
    # main's text changed and the dispatcher's target set changed.
    assert summary["procs_rebuilt"] >= 2
    cold = _assert_matches_cold(session, edited)
    rendered = repro.pretty(session.executable(("print", 0)).program)
    assert "h(" in rendered and rendered == repro.pretty(
        cold.executable(("print", 0)).program
    )


def test_update_source_rekeys_open_session():
    base = WC_LIKE + "// rekey marker\n"
    edited = base.replace("evens + 1", "evens + 5")
    session = repro.open_session(base)
    session.update_source(edited)
    # The registry follows the session to its new hash...
    assert repro.open_session(edited) is session
    # ...and the old hash gets a fresh session, not the mutated one.
    assert repro.open_session(base) is not session


def test_update_source_with_configs_and_empty_criteria():
    """Configuration-set and empty-context criteria pin their contexts
    explicitly (no Poststar dependence): they survive a structural
    edit elsewhere, and match cold sessions either way."""
    session = SlicingSession(WC_LIKE)
    vids = tuple(sorted(session.sdg.print_criterion()))
    configs = tuple((vid, ()) for vid in vids)
    session.slice(configs)
    session.slice(vids, contexts="empty")
    # Structural edit in a leaf the criterion (in main) never reaches
    # backwards... it does reach note_even via flow; the point here is
    # exercising the slow path with non-reachable-mode entries.
    edited = WC_LIKE.replace(
        "evens = evens + 1;", "evens = evens + 1;\n    evens = evens + 0;"
    )
    summary = session.update_source(edited)
    assert summary["fast_path"] is False
    cold = SlicingSession(edited)
    cold_vids = tuple(sorted(cold.sdg.print_criterion()))
    assert repro.pretty(
        session.executable(tuple((vid, ()) for vid in cold_vids)).program
    ) == repro.pretty(
        cold.executable(tuple((vid, ()) for vid in cold_vids)).program
    )
    assert repro.pretty(
        session.executable(cold_vids, contexts="empty").program
    ) == repro.pretty(cold.executable(cold_vids, contexts="empty").program)


def test_update_source_keeps_vertex_ids_of_unchanged_procs():
    """Vertex-id criteria held across a fast-path update stay valid:
    unchanged procedures keep their exact vertex ids."""
    session = SlicingSession(WC_LIKE)
    vids = tuple(sorted(session.sdg.print_criterion()))
    before = session.slice(vids)
    edited = WC_LIKE.replace("total + c", "total + c + 0")
    session.update_source(edited)
    after = session.slice(vids)
    assert set(after.map_back_vertex.values()) and after is not before


# -- incremental feature removal (artifact-footprint survival) --------------------


#: do_junk's whole effect cone is the removable feature; do_kept stays.
FEATURE_SRC = """
int kept;
int junk;

void do_junk(int c) {
  junk = junk + c + 1;
}

void do_kept(int c) {
  kept = kept + c + 1;
}

int main() {
  int c = input();
  kept = 0;
  junk = 0;
  do_junk(c);
  do_kept(c);
  print("%d", kept);
  print("%d", junk);
  return 0;
}
"""


def test_update_source_keeps_feature_removal_outside_footprint():
    """Feature-removal results are no longer dropped unconditionally on
    update: removing the ``call do_junk`` statement leaves a residual program
    whose footprint avoids do_junk entirely, so a label-only edit
    *inside the removed feature* keeps the memoized removal, its §7
    cleanup, and every saturation — zero recomputation."""
    session = SlicingSession(FEATURE_SRC)
    raw, cleaned = session.remove_feature_cleaned("call do_junk")
    result = session.remove_feature("call do_junk")
    keys = session._content_keys()
    assert result.footprint is not None
    assert keys["do_junk"] not in result.footprint
    assert keys["do_kept"] in result.footprint

    edited = FEATURE_SRC.replace("junk + c + 1", "junk + c + 2")
    summary = session.update_source(edited)
    assert summary["fast_path"] is True
    assert summary["results_kept"] >= 2  # the removal and its cleanup
    misses_before = session.stats
    raw_again, cleaned_again = session.remove_feature_cleaned("call do_junk")
    assert raw_again is raw and cleaned_again is cleaned
    after = session.stats
    assert after["feature_misses"] == misses_before["feature_misses"]
    assert after["saturation_misses"] == misses_before["saturation_misses"]
    # The edit only touched the removed feature, so the survivor is
    # still byte-identical to a cold removal of the edited text.
    cold = SlicingSession(edited)
    _cold_raw, cold_cleaned = cold.remove_feature_cleaned("call do_junk")
    assert repro.pretty(cleaned_again.program) == repro.pretty(cold_cleaned.program)


def test_update_source_drops_feature_removal_inside_footprint():
    """The invalidation edge case: an edit *in the kept cone* (do_kept
    renders into the residual program) must drop the removal — keeping
    it would serve a stale rendered text — and the recomputation must
    match a cold session."""
    session = SlicingSession(FEATURE_SRC)
    session.remove_feature_cleaned("call do_junk")
    edited = FEATURE_SRC.replace("kept + c + 1", "kept + c + 2")
    summary = session.update_source(edited)
    assert summary["fast_path"] is True
    assert summary["results_dropped"] >= 2  # the removal and its cleanup
    _raw, cleaned = session.remove_feature_cleaned("call do_junk")
    assert "c + 2" in repro.pretty(cleaned.program)
    cold = SlicingSession(edited)
    _cold_raw, cold_cleaned = cold.remove_feature_cleaned("call do_junk")
    assert repro.pretty(cleaned.program) == repro.pretty(cold_cleaned.program)


def test_feature_cone_saturation_survives_edit_pr3_dropped():
    """The acceptance demonstrator: a saturation PR 3's logic always
    recomputed now survives an edit.  PR 3 dropped every feature memo
    entry on update and its Algorithm 2 re-ran ``Poststar(A_C)`` from
    scratch; the cone is now a first-class artifact, so after an edit
    that invalidates the rendered removal the re-removal finds *both*
    Poststars (shared + cone) in the memo and does no saturation work
    at all."""
    session = SlicingSession(FEATURE_SRC)
    session.remove_feature_cleaned("call do_junk")
    stats = session.stats
    # reachable-configs + the feature's forward cone.
    assert stats["saturation_misses"] == 2

    edited = FEATURE_SRC.replace("kept + c + 1", "kept + c + 2")
    summary = session.update_source(edited)
    assert summary["fast_path"] is True
    # Every saturation artifact survived the edit...
    assert summary["saturations_kept"] == 2
    assert summary["saturations_dropped"] == 0
    # ...and the rendered removal did not (do_kept is in its cone).
    assert summary["results_dropped"] >= 1

    session.remove_feature_cleaned("call do_junk")
    after = session.stats
    assert after["saturation_misses"] == 2  # no new saturation ran
    assert after["saturation_hits"] >= stats["saturation_hits"] + 2


def test_process_backend_ships_artifacts_to_workers():
    """The worker initializer installs the parent's shipped artifacts:
    a worker slicing a reachable-contexts criterion hits the installed
    Poststar instead of re-saturating."""
    from repro.engine import session as session_module
    from repro.engine.session import _process_worker_init, _process_worker_slice

    parent = SlicingSession(FIG1_SOURCE)
    parent.slice()
    artifacts = parent._export_artifacts(
        [canonical_key(*resolve_criterion_spec(parent.sdg, "prints"), "reachable")]
    )
    # The shared Poststar plus the batch criterion's Prestar.
    assert {artifact.key[0] for artifact in artifacts} == {
        "reachable-configs",
        "prestar",
    }

    saved = session_module._WORKER_SESSION
    try:
        _process_worker_init(FIG1_SOURCE, None, None, artifacts)
        worker = session_module._WORKER_SESSION
        kind, payload = resolve_criterion_spec(worker.sdg, "prints")
        slim = _process_worker_slice(kind, payload, "reachable")
        stats = worker.stats
        assert stats["saturation_misses"] == 0
        assert stats["saturation_hits"] == 2
        assert slim.source_sdg is None  # shipped back slim
        assert sorted(spec.name for spec in slim.pdgs.values()) == sorted(
            spec.name for spec in parent.slice().pdgs.values()
        )
    finally:
        session_module._WORKER_SESSION = saved


# -- canonicalization unit checks -------------------------------------------------


def test_canonical_key_forms():
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    all_prints = resolve_criterion_spec(sdg, "prints")
    assert all_prints == resolve_criterion_spec(sdg, None)
    assert all_prints == resolve_criterion_spec(sdg, ("print", None))
    kind, payload = all_prints
    assert kind == "vertices" and payload == tuple(sorted(sdg.print_criterion()))
    assert canonical_key(kind, payload, "reachable") != canonical_key(
        kind, payload, "empty"
    )
    single_vid = payload[0]
    assert resolve_criterion_spec(sdg, single_vid) == (
        "vertices",
        (single_vid,),
    )
