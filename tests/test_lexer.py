"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.tokens import Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def test_keywords_and_identifiers():
    tokens = tokenize("int foo while whilex input ref")
    assert [t.kind for t in tokens[:-1]] == [
        "int",
        "ident",
        "while",
        "ident",
        "input",
        "ref",
    ]
    assert tokens[1].value == "foo"
    assert tokens[3].value == "whilex"


def test_numbers():
    tokens = tokenize("0 42 007")
    assert [t.value for t in tokens[:-1]] == [0, 42, 7]
    assert all(t.kind == "num" for t in tokens[:-1])


def test_operators_longest_match():
    assert kinds("== = <= < !=")[:-1] == ["==", "=", "<=", "<", "!="]
    assert kinds("&& &")[:-1] == ["&&", "&"]


def test_line_comment():
    assert kinds("1 // comment here\n2")[:-1] == ["num", "num"]


def test_block_comment():
    assert kinds("1 /* a\nb*c */ 2")[:-1] == ["num", "num"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_string_literal_with_escapes():
    tokens = tokenize(r'"a\nb\t\"q\\"')
    assert tokens[0].kind == "string"
    assert tokens[0].value == 'a\nb\t"q\\'


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_bad_escape():
    with pytest.raises(LexError):
        tokenize(r'"\x"')


def test_unexpected_character():
    with pytest.raises(LexError) as info:
        tokenize("a $ b")
    assert "$" in str(info.value)


def test_positions():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].col) == (1, 1)
    assert (tokens[1].line, tokens[1].col) == (2, 3)


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == "eof"
    assert tokenize("x")[-1].kind == "eof"


def test_token_equality_and_hash():
    a = Token("num", 3, 1, 1)
    b = Token("num", 3, 9, 9)  # position-insensitive equality
    assert a == b
    assert hash(a) == hash(b)
    assert a != Token("num", 4, 1, 1)
