"""Criterion-construction edge cases."""

import pytest

from repro.core.criteria import (
    as_query_view,
    configs_criterion,
    empty_stack_criterion,
    reachable_contexts_criterion,
    rebase_initial,
)
from repro.fsa import FiniteAutomaton
from repro.pds import encode_sdg
from repro.workloads.paper_figures import load_fig1


def test_rebase_initial_identity():
    auto = FiniteAutomaton(initials=["p"], finals=["f"])
    auto.add_transition("p", "x", "f")
    assert rebase_initial(auto, "p") is auto


def test_rebase_initial_renames():
    auto = FiniteAutomaton(initials=["start"], finals=["f"])
    auto.add_transition("start", "x", "f")
    rebased = rebase_initial(auto, "p")
    assert rebased.initials == {"p"}
    assert rebased.accepts(["x"])


def test_rebase_initial_rejects_multiple():
    auto = FiniteAutomaton(initials=["a", "b"])
    with pytest.raises(ValueError):
        rebase_initial(auto, "p")


def test_rebase_initial_rejects_incoming():
    auto = FiniteAutomaton(initials=["start"], finals=["start"])
    auto.add_transition("start", "x", "start")
    with pytest.raises(ValueError):
        rebase_initial(auto, "p")


def test_unreachable_criterion_gives_empty_query():
    """Vertices in dead code yield an empty reachable-contexts query."""
    from repro.lang import check, parse
    from repro.sdg import build_sdg

    program = parse(
        """
        int g;
        void dead() { print("%d", g); }
        int main() { g = 1; print("%d", g); }
        """
    )
    info = check(program)
    sdg = build_sdg(program, info)
    encoding = encode_sdg(sdg)
    dead_print = next(
        vid
        for vid in sdg.print_call_vertices()
        if sdg.vertices[vid].proc == "dead"
    )
    criterion = sdg.print_criterion([dead_print])
    query = reachable_contexts_criterion(encoding, sorted(criterion))
    assert not query.finals or not query.trim().states


def test_configs_criterion_empty_context():
    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    vid = next(iter(sdg.print_criterion()))
    auto = configs_criterion(encoding, [(vid, ())])
    assert auto.accepts([vid])
    assert not auto.accepts([vid, "C1"])


def test_as_query_view_drops_fo_locations():
    from repro.pds import prestar

    _p, _i, sdg = load_fig1()
    encoding = encode_sdg(sdg)
    saturated = prestar(
        encoding.pds, empty_stack_criterion(encoding, sdg.print_criterion())
    )
    view = as_query_view(saturated, encoding)
    assert view.initials == {encoding.main_location}
    # Trimmed: every state reaches a final state.
    trimmed = view.trim()
    assert set(trimmed.states) == set(view.states)
