"""Minimality (Defn. 2.10(3) / Thm. 3.16): the partition is the
*coarsest* — two variants of a procedure are merged iff their element
sets are equal, so distinct specializations must have distinct element
sets, and the MRD automaton has no redundant states."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import specialization_slice
from repro.fsa import language_equal
from repro.fsa.minimize import minimize
from repro.fsa.determinize import determinize
from repro.fsa.ops import remove_epsilon, reverse
from repro.sdg import build_sdg
from repro.workloads.exponential import exponential_program
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.paper_figures import load_fig1, load_fig2


def assert_minimal(result):
    # (a) distinct specializations of one procedure have distinct
    # element sets (otherwise the partition would not be coarsest);
    by_proc = {}
    for spec in result.pdgs.values():
        by_proc.setdefault(spec.proc, []).append(spec)
    for specs in by_proc.values():
        element_sets = [frozenset(spec.orig_vertices) for spec in specs]
        assert len(element_sets) == len(set(element_sets))
    # (b) A6 is state-minimal for its reversed language: re-minimizing
    # cannot shrink it.
    a6 = result.a6.trim()
    if not a6.states:
        return
    reminimized = minimize(determinize(remove_epsilon(reverse(a6))))
    assert len(reminimized.states) == len(a6.states)
    assert language_equal(reverse(reminimized), a6)


def test_fig1_minimal():
    _p, _i, sdg = load_fig1()
    assert_minimal(specialization_slice(sdg, sdg.print_criterion(), contexts="empty"))


def test_fig2_minimal():
    _p, _i, sdg = load_fig2()
    assert_minimal(specialization_slice(sdg, sdg.print_criterion(), contexts="empty"))


def test_exponential_minimal():
    _p, _i, sdg = exponential_program(4)
    assert_minimal(specialization_slice(sdg, sdg.print_criterion(), contexts="empty"))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_programs_minimal(seed):
    program, info = generate_program(GenConfig(seed=seed, n_procs=5))
    sdg = build_sdg(program, info)
    criterion = sdg.print_criterion()
    if not criterion:
        return
    assert_minimal(specialization_slice(sdg, criterion))
