"""Reaching-definitions / flow-dependence unit tests."""

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.reaching import flow_dependences, reaching_definitions


def straight_line():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "d1")  # x = ...
    cfg.add_edge("d1", "d2")  # x = ... (kills d1)
    cfg.add_edge("d2", "u")  # use x
    cfg.add_edge("u", "exit")
    return cfg


def test_strong_kill():
    cfg = straight_line()
    defs = {"d1": {"x"}, "d2": {"x"}}
    uses = {"u": {"x"}}
    deps = flow_dependences(cfg, defs, uses)
    assert ("d2", "u", "x") in deps
    assert ("d1", "u", "x") not in deps


def test_weak_def_does_not_kill():
    cfg = straight_line()
    defs = {"d1": {"x"}, "d2": {"x"}}
    uses = {"u": {"x"}}
    must = {"d1": {"x"}, "d2": set()}  # d2 is a may-def only
    deps = flow_dependences(cfg, defs, uses, must)
    assert ("d2", "u", "x") in deps
    assert ("d1", "u", "x") in deps


def test_branch_merge():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "c")
    cfg.add_edge("c", "d1")
    cfg.add_edge("c", "d2")
    cfg.add_edge("d1", "u")
    cfg.add_edge("d2", "u")
    cfg.add_edge("u", "exit")
    deps = flow_dependences(cfg, {"d1": {"x"}, "d2": {"x"}}, {"u": {"x"}})
    assert ("d1", "u", "x") in deps
    assert ("d2", "u", "x") in deps


def test_loop_carried_dependence():
    # w -> b (x = x + 1) -> w; use at b sees its own def around the loop
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "d0")
    cfg.add_edge("d0", "w")
    cfg.add_edge("w", "b")
    cfg.add_edge("b", "w")
    cfg.add_edge("w", "exit")
    deps = flow_dependences(cfg, {"d0": {"x"}, "b": {"x"}}, {"b": {"x"}})
    assert ("b", "b", "x") in deps
    assert ("d0", "b", "x") in deps


def test_fallthrough_carries_no_dataflow():
    cfg = ControlFlowGraph("entry", "exit")
    cfg.add_edge("entry", "d1")
    cfg.add_edge("d1", "u", fallthrough=True)
    cfg.add_edge("u", "exit")
    deps = flow_dependences(cfg, {"d1": {"x"}}, {"u": {"x"}})
    assert deps == set()


def test_reaching_sets_at_node():
    cfg = straight_line()
    in_sets = reaching_definitions(cfg, {"d1": {"x"}, "d2": {"x"}}, {"u": {"x"}})
    assert in_sets["u"] == {("d2", "x")}
    assert in_sets["d2"] == {("d1", "x")}


def test_multiple_variables_independent():
    cfg = straight_line()
    defs = {"d1": {"x"}, "d2": {"y"}}
    uses = {"u": {"x", "y"}}
    deps = flow_dependences(cfg, defs, uses)
    assert ("d1", "u", "x") in deps
    assert ("d2", "u", "y") in deps
