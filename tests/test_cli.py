"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main
from repro.workloads.paper_figures import FIG1_SOURCE, FIG16_SOURCE


pytestmark = pytest.mark.smoke


@pytest.fixture()
def fig1_file(tmp_path):
    path = tmp_path / "fig1.tc"
    path.write_text(FIG1_SOURCE)
    return str(path)


@pytest.fixture()
def fig16_file(tmp_path):
    path = tmp_path / "fig16.tc"
    path.write_text(FIG16_SOURCE)
    return str(path)


def run_cli(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


def test_info(fig1_file):
    output = run_cli(["info", fig1_file])
    assert "procedures:   2" in output
    assert "vertices:" in output


def test_slice(fig1_file):
    output = run_cli(["slice", fig1_file])
    assert "versions" in output
    assert "p_1" in output and "p_2" in output


def test_slice_print_index_out_of_range(fig1_file):
    with pytest.raises(SystemExit):
        run_cli(["slice", fig1_file, "--print", "9"])


def test_slice_batch(fig16_file):
    output = run_cli(["slice-batch", fig16_file, "--jobs", "2"])
    assert "print #0:" in output and "print #1:" in output
    assert "batch: 2 criteria" in output
    assert "slice hits/misses" in output


def test_slice_batch_explicit_indices(fig1_file):
    output = run_cli(["slice-batch", fig1_file, "--prints", "0"])
    assert "print #0:" in output
    assert "batch: 1 criteria" in output


def test_slice_batch_bad_indices(fig1_file):
    with pytest.raises(SystemExit):
        run_cli(["slice-batch", fig1_file, "--prints", "9"])
    with pytest.raises(SystemExit):
        run_cli(["slice-batch", fig1_file, "--prints", "zero"])


def test_mono(fig1_file):
    output = run_cli(["mono", fig1_file])
    assert "g2 = 100" in output  # the Binkley add-back
    assert "void p(int a, int b)" in output


def test_remove(fig16_file):
    output = run_cli(["remove", fig16_file, "--feature", "int prod = 1"])
    assert "removed" in output
    assert "prod = mult" not in output.replace("int prod", "")


def test_remove_no_match(fig16_file):
    with pytest.raises(SystemExit):
        run_cli(["remove", fig16_file, "--feature", "no such stmt"])


def test_run(fig1_file):
    output = run_cli(["run", fig1_file])
    assert "5" in output
    assert "steps" in output


def test_run_with_inputs(tmp_path):
    path = tmp_path / "echo.tc"
    path.write_text('int main() { int x = input(); print("%d", x); }')
    output = run_cli(["run", str(path), "--inputs", "42"])
    assert "42" in output


def test_bta(tmp_path):
    path = tmp_path / "bta.tc"
    path.write_text(
        """
        int g;
        void f(int a) { g = a; }
        int main() { int d = input(); f(d); print("%d", g); }
        """
    )
    output = run_cli(["bta", str(path)])
    assert "f:" in output


def test_bta_static(fig1_file):
    output = run_cli(["bta", fig1_file])
    assert "fully static" in output


def test_main_entry(fig1_file, capsys):
    assert main(["info", fig1_file]) == 0
    captured = capsys.readouterr()
    assert "procedures" in captured.out


def test_cli_handles_funcptr_files(tmp_path):
    from repro.workloads.paper_figures import FIG15_SOURCE

    path = tmp_path / "fig15.tc"
    path.write_text(FIG15_SOURCE)
    output = run_cli(["slice", str(path)])
    assert "indirect_1" in output


def test_cache_stats_reports_payload_counters(fig16_file, tmp_path):
    import json

    cache = str(tmp_path / "cache")
    run_cli(
        [
            "slice-batch",
            fig16_file,
            "--cache-dir",
            cache,
            "--kernel",
            "csr",
        ]
    )
    stats = json.loads(run_cli(["cache", "stats", "--cache-dir", cache, "--json"]))
    assert "payload_hits" in stats["kernel"]
    assert "payload_misses" in stats["kernel"]
    # The batch compiled (and persisted) exactly one PDS payload.
    assert stats["tables"].get("pds") == 1
    plain = run_cli(["cache", "stats", "--cache-dir", cache])
    assert "__pds__" in plain


def test_slice_batch_reports_fused_process_counters(tmp_path):
    from repro.workloads.wc import scaled_wc_source

    path = tmp_path / "scaledwc.tc"
    path.write_text(scaled_wc_source(3))
    output = run_cli(
        [
            "slice-batch",
            str(path),
            "--kernel",
            "csr",
            "--backend",
            "process",
            "--batch-saturation",
            "on",
            "--jobs",
            "2",
        ]
    )
    assert "fused process:" in output
    assert "compiled-PDS payload hits/misses" in output
