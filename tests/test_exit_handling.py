"""§6.1 termination-modeling tests: exit, may-exit calls, halt
vertices."""

from repro.core import executable_program, specialization_slice
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import VertexKind, build_sdg
from repro.workloads.paper_figures import load_exit_example


def slice_of(source, inputs_list):
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    result = specialization_slice(sdg, sdg.print_criterion())
    executable = executable_program(result)
    for inputs in inputs_list:
        original = run_program(program, inputs)
        sliced = run_program(executable.program, inputs)
        assert original.values == sliced.values, (inputs, pretty(executable.program))
    return sdg, executable


def test_exit_argument_pinned_by_library_edge():
    """§6.1: the exit call's argument must be in any slice containing
    the exit."""
    sdg, executable = slice_of(
        """
        int g;
        int main() {
          int code = input();
          if (g == 0) { exit(code); }
          print("%d", g);
        }
        """,
        [[5], [0]],
    )
    text = pretty(executable.program)
    assert "exit(code)" in text


def test_direct_conditional_exit_guards_print():
    slice_of(
        """
        int g;
        int main() {
          int x = input();
          if (x < 0) { exit(1); }
          g = 1;
          print("%d", g);
        }
        """,
        [[-1], [3]],
    )


def test_interprocedural_exit_guard():
    """The paper's §6.1 concern, one level deep: check() may exit, so
    the print after the call depends on the exit inside check()."""
    program, _i, sdg = load_exit_example()
    result = specialization_slice(sdg, sdg.print_criterion())
    executable = executable_program(result)
    text = pretty(executable.program)
    assert "exit(1)" in text  # the guard survived
    for inputs in ([[-2]], [[4]]):
        original = run_program(program, inputs[0])
        sliced = run_program(executable.program, inputs[0])
        assert original.values == sliced.values


def test_exit_two_levels_deep():
    slice_of(
        """
        int g;
        void inner(int v) { if (v < 0) { exit(2); } }
        void outer(int v) { inner(v); }
        int main() {
          int x = input();
          outer(x);
          g = 7;
          print("%d", g);
        }
        """,
        [[-1], [1]],
    )


def test_halt_vertices_created_only_for_may_exit():
    program = parse(
        """
        int g;
        void clean() { g = 1; }
        void dirty() { exit(1); }
        int main() { clean(); print("%d", g); }
        """
    )
    info = check(program)
    sdg = build_sdg(program, info)
    assert ("halt",) not in sdg.formal_outs["clean"]
    assert ("halt",) in sdg.formal_outs["dirty"]
    # main never calls dirty, so main cannot exit.
    assert ("halt",) not in sdg.formal_outs["main"]


def test_unconditional_exit_truncates():
    slice_of(
        """
        int g;
        int main() {
          g = 1;
          print("%d", g);
          exit(0);
          print("%d", 99);
        }
        """,
        [[]],
    )


def test_exit_in_loop():
    slice_of(
        """
        int g;
        int main() {
          int i = 0;
          while (i < 10) {
            int x = input();
            if (x == 0) { exit(0); }
            g = g + x;
            i = i + 1;
          }
          print("%d", g);
        }
        """,
        [[1, 2, 3, 0], [1, 1, 1, 1, 1, 1, 1, 1, 1, 1]],
    )
