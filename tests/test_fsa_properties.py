"""Property-based FSA tests: the automaton operations preserve language
acceptance on randomly generated automata.

Everything is seeded ``random.Random`` (deterministic, no extra
dependencies).  The generated automata deliberately include the shapes
Algorithm 1 produces mid-pipeline and the library's documented edge
cases: nondeterminism, multiple initial states (reversal creates those),
epsilon transitions, and epsilon *cycles*.

Languages are compared exhaustively over all words up to length 4 on a
3-symbol alphabet (121 words), which distinguishes any two of the small
automata generated here.
"""

import itertools
import random

import pytest

from repro.fsa import determinize, minimize, remove_epsilon, reverse
from repro.fsa.automaton import EPSILON, FiniteAutomaton


pytestmark = pytest.mark.smoke

ALPHABET = ("a", "b", "c")
MAX_LEN = 4
SEEDS = range(40)


def all_words(max_len=MAX_LEN):
    for length in range(max_len + 1):
        for word in itertools.product(ALPHABET, repeat=length):
            yield word


def language(automaton, max_len=MAX_LEN):
    return {word for word in all_words(max_len) if automaton.accepts(word)}


def random_automaton(rng, max_states=6, epsilon_prob=0.2, multi_initial=True):
    n_states = rng.randint(2, max_states)
    states = list(range(n_states))
    automaton = FiniteAutomaton()
    for state in states:
        automaton.add_state(state)
    n_initials = rng.randint(1, 2) if multi_initial else 1
    for state in rng.sample(states, n_initials):
        automaton.add_initial(state)
    for state in rng.sample(states, rng.randint(1, n_states)):
        automaton.add_final(state)
    for _ in range(rng.randint(n_states, 3 * n_states)):
        symbol = EPSILON if rng.random() < epsilon_prob else rng.choice(ALPHABET)
        automaton.add_transition(rng.choice(states), symbol, rng.choice(states))
    return automaton


@pytest.mark.parametrize("seed", SEEDS)
def test_remove_epsilon_preserves_language(seed):
    automaton = random_automaton(random.Random(seed))
    stripped = remove_epsilon(automaton)
    assert not stripped.has_epsilon()
    assert language(stripped) == language(automaton)


@pytest.mark.parametrize("seed", SEEDS)
def test_determinize_preserves_language(seed):
    automaton = random_automaton(random.Random(1000 + seed))
    dfa = determinize(automaton)
    assert dfa.is_deterministic()
    assert language(dfa) == language(automaton)


@pytest.mark.parametrize("seed", SEEDS)
def test_minimize_preserves_language_and_shrinks(seed):
    automaton = random_automaton(random.Random(2000 + seed))
    dfa = determinize(automaton)
    minimal = minimize(dfa)
    assert language(minimal) == language(dfa)
    assert len(minimal.states) <= len(dfa.states)
    # Minimizing twice is a fixed point (state count cannot drop again).
    if minimal.states:
        assert len(minimize(determinize(minimal)).states) == len(minimal.states)


@pytest.mark.parametrize("seed", SEEDS)
def test_reverse_reverses_language(seed):
    automaton = random_automaton(random.Random(3000 + seed))
    reversed_automaton = reverse(automaton)
    for word in all_words(3):
        assert reversed_automaton.accepts(tuple(reversed(word))) == (
            automaton.accepts(word)
        ), word


@pytest.mark.parametrize("seed", SEEDS)
def test_double_reverse_is_identity_on_language(seed):
    automaton = random_automaton(random.Random(4000 + seed))
    assert language(reverse(reverse(automaton))) == language(automaton)


def test_multiple_initial_states_explicit():
    """Two initial states accepting disjoint languages: determinize
    must merge them into one subset-construction start state."""
    automaton = FiniteAutomaton(initials=[0, 1], finals=[2])
    automaton.add_transition(0, "a", 2)
    automaton.add_transition(1, "b", 2)
    dfa = determinize(automaton)
    assert len(dfa.initials) == 1
    for probe in (("a",), ("b",)):
        assert automaton.accepts(probe) and dfa.accepts(probe)
    assert not dfa.accepts(("a", "b"))
    assert language(minimize(dfa)) == language(automaton)


def test_epsilon_cycle_explicit():
    """An epsilon cycle among three states must not loop epsilon
    removal/determinization, and acceptance must see through it."""
    automaton = FiniteAutomaton(initials=[0], finals=[3])
    automaton.add_transition(0, EPSILON, 1)
    automaton.add_transition(1, EPSILON, 2)
    automaton.add_transition(2, EPSILON, 0)  # the cycle
    automaton.add_transition(2, "a", 3)
    automaton.add_transition(3, EPSILON, 3)  # self-loop epsilon
    assert automaton.accepts(("a",))
    stripped = remove_epsilon(automaton)
    assert not stripped.has_epsilon()
    assert language(stripped) == language(automaton) == {("a",)}
    assert language(determinize(automaton)) == {("a",)}


def test_epsilon_cycle_through_final_state():
    """A state reaching a final state via an epsilon cycle is itself
    accepting after epsilon removal."""
    automaton = FiniteAutomaton(initials=[0], finals=[1])
    automaton.add_transition(0, EPSILON, 1)
    automaton.add_transition(1, EPSILON, 0)
    automaton.add_transition(1, "b", 1)
    assert automaton.accepts(())
    stripped = remove_epsilon(automaton)
    assert language(stripped) == language(automaton)
    assert () in language(stripped)


def test_reverse_with_multiple_initials_and_epsilon():
    """Reversal composed with the other operations on the documented
    hard case: several initial states *and* epsilon transitions."""
    rng = random.Random(99)
    for _ in range(10):
        automaton = random_automaton(rng, epsilon_prob=0.35)
        round_trip = determinize(remove_epsilon(reverse(automaton)))
        expected = {tuple(reversed(word)) for word in language(automaton)}
        assert language(round_trip) == expected
