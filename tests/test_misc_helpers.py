"""Tests for small helpers not covered elsewhere."""

from repro.fsa import FiniteAutomaton, Transducer
from repro.lang import check, parse
from repro.lang.interp import run_program
from repro.sdg import build_sdg
from repro.workloads.paper_figures import load_fig1


def test_automaton_copy_independent():
    auto = FiniteAutomaton(initials=[0], finals=[1])
    auto.add_transition(0, "a", 1)
    cloned = auto.copy()
    cloned.add_transition(1, "b", 0)
    assert not auto.has_transition(1, "b", 0)
    assert cloned.accepts(["a", "b", "a"])
    assert not auto.accepts(["a", "b", "a"])


def test_automaton_renumber_preserves_language():
    auto = FiniteAutomaton(initials=["start"], finals=[("x", 1)])
    auto.add_transition("start", "a", ("x", 1))
    renumbered = auto.renumber()
    assert renumbered.accepts(["a"])
    assert all(isinstance(state, int) for state in renumbered.states)


def test_automaton_repr():
    auto = FiniteAutomaton(initials=[0], finals=[1])
    auto.add_transition(0, "a", 1)
    text = repr(auto)
    assert "2 states" in text and "1 transitions" in text


def test_transducer_len_and_get():
    transducer = Transducer({"x": "a"})
    transducer.add("y", "b")
    assert len(transducer) == 2
    assert transducer["x"] == "a"
    assert transducer.get("missing") is None
    assert transducer.get("missing", "dflt") == "dflt"


def test_sdg_describe():
    _p, _i, sdg = load_fig1()
    text = sdg.describe(sdg.print_criterion())
    assert "actual-in" in text


def test_sdg_stmt_vertices():
    _p, _i, sdg = load_fig1()
    program = sdg.program
    from repro.lang import ast_nodes as A

    uids = [s.uid for s in A.walk_stmts(program.proc("p").body)]
    vids = sdg.stmt_vertices(uids)
    assert len(vids) == 3


def test_run_result_render_without_format():
    program = parse("int main() { print(1, 2); }")
    check(program)
    result = run_program(program)
    assert result.render() == "1 2\n"


def test_interp_funcref_passed_as_value():
    program = parse(
        """
        int apply(fnptr f, int x) {
          int r = f(x);
          return r;
        }
        int double_it(int v) { return v + v; }
        int main() {
          int r = apply(double_it, 21);
          print("%d", r);
        }
        """
    )
    check(program)
    assert run_program(program).values == [42]


def test_callgraph_callsite_repr():
    from repro.analysis.callgraph import build_call_graph

    program = parse("void f() {} int main() { f(); }")
    check(program)
    graph = build_call_graph(program)
    assert "main -> f" in repr(graph.sites[0])


def test_pushdown_system_repr():
    from repro.pds import PushdownSystem

    pds = PushdownSystem()
    pds.add_rule("p", "a", "p", ("b",))
    assert "1 rules" in repr(pds)


def test_vertex_repr_and_is_parameter():
    _p, _i, sdg = load_fig1()
    fi = sdg.formal_ins["p"][("param", 0)]
    vertex = sdg.vertices[fi]
    assert vertex.is_parameter()
    assert "a_in" in repr(vertex)
    entry = sdg.vertices[sdg.entry_vertex["p"]]
    assert not entry.is_parameter()


def test_specialized_pdg_repr():
    from repro.core import specialization_slice

    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    spec = result.specializations_of("p")[0]
    assert "SpecializedPDG" in repr(spec)


def test_suite_program_repr():
    from repro.workloads.suite import load_suite

    entry = load_suite(["wc"], max_slices=1)[0]
    assert "wc" in repr(entry)


def test_gen_config_knobs_effective():
    from repro.lang import pretty
    from repro.workloads.generator import GenConfig, generate_program

    many, _ = generate_program(GenConfig(seed=5, n_procs=4, print_prob=0.4))
    few, _ = generate_program(GenConfig(seed=5, n_procs=4, print_prob=0.0))
    assert pretty(many).count("print(") > pretty(few).count("print(")


def test_modref_info_api():
    program = parse("int g; void f() { g = 1; } int main() { f(); }")
    info = check(program)
    sdg = build_sdg(program, info)
    assert "g" in sdg.modref.mod_out_globals("f", info.global_names)
    assert sdg.modref.ref_in_globals("f", info.global_names) == set()
