"""Top-level convenience API tests (``import repro``)."""

import pytest

import repro
from repro.workloads.paper_figures import FIG1_SOURCE, FIG16_SOURCE


pytestmark = pytest.mark.smoke


def test_version():
    assert repro.__version__


def test_load_source():
    program, info, sdg = repro.load_source(FIG1_SOURCE)
    assert sdg.vertex_count() > 0
    assert "p" in info.procs


def test_slice_source_all_prints():
    sliced = repro.slice_source(FIG1_SOURCE)
    text = repro.pretty(sliced.program)
    assert "p_1" in text and "p_2" in text
    assert repro.run_program(sliced.program).values == [5]
    assert sliced.result.version_counts()["p"] == 2


def test_slice_source_by_index():
    sliced = repro.slice_source(FIG16_SOURCE, print_index=0)
    result = repro.run_program(sliced.program, max_steps=5_000_000)
    assert result.values == [21]  # the sum only


def test_slice_source_lowers_funcptr():
    from repro.workloads.paper_figures import FIG15_SOURCE

    sliced = repro.slice_source(FIG15_SOURCE)
    text = repro.pretty(sliced.program)
    assert "indirect_1" in text


def test_remove_feature_source_cleaned():
    cleaned = repro.remove_feature_source(FIG16_SOURCE, "int prod = 1")
    text = repro.pretty(cleaned.program)
    assert "mult" not in text  # cleanup removed the residue
    result = repro.run_program(cleaned.program, max_steps=5_000_000)
    assert result.values == [21]


def test_remove_feature_source_raw():
    raw = repro.remove_feature_source(FIG16_SOURCE, "int prod = 1", clean=False)
    text = repro.pretty(raw.program)
    assert "mult" in text  # pre-cleanup residue retained


def test_remove_feature_source_no_match():
    with pytest.raises(ValueError):
        repro.remove_feature_source(FIG1_SOURCE, "nothing like this")
