"""PDS tests: rule classification, Prestar/Poststar saturation
cross-checked against brute-force configuration-space exploration."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsa import FiniteAutomaton
from repro.pds import PushdownSystem, poststar, prestar


pytestmark = pytest.mark.smoke


def test_rule_classification():
    pds = PushdownSystem()
    pop = pds.add_rule("p", "x", "q", ())
    internal = pds.add_rule("p", "x", "p", ("y",))
    push = pds.add_rule("p", "y", "p", ("z", "c"))
    assert pop.kind == "pop"
    assert internal.kind == "internal"
    assert push.kind == "push"


def test_rule_rhs_limited():
    pds = PushdownSystem()
    try:
        pds.add_rule("p", "x", "p", ("a", "b", "c"))
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_step_relation():
    pds = PushdownSystem()
    pds.add_rule("p", "x", "q", ("y", "z"))
    successors = pds.step(("p", ("x", "w")))
    assert successors == [("q", ("y", "z", "w"))]


# -- brute force helpers -----------------------------------------------------


def enumerate_configs(automaton, control_locations, max_len):
    """All configurations (p, stack) with |stack| <= max_len accepted by
    a P-automaton."""
    configs = set()
    symbols = automaton.alphabet()
    for location in control_locations:
        if location not in automaton.states:
            continue
        frontier = [(location, ())]
        while frontier:
            state, word = frontier.pop()
            if state in automaton.finals:
                configs.add((location, word))
            if len(word) == max_len:
                continue
            for symbol in symbols:
                for nxt in automaton.targets(state, symbol):
                    frontier.append((nxt, word + (symbol,)))
    return configs


def all_candidates(pds, max_len):
    """Every configuration with stack length <= max_len."""
    symbols = sorted(pds.stack_symbols, key=repr)
    locations = sorted(pds.control_locations, key=repr)
    words = [()]
    frontier = [()]
    for _ in range(max_len):
        frontier = [(s,) + w for s in symbols for w in frontier]
        words.extend(frontier)
    return {(location, word) for location in locations for word in words}


def brute_force_pre(pds, targets, max_len):
    """pre*(targets) restricted to short stacks, by iterating the
    one-step relation to a fixpoint over all candidate configurations.
    Successor stacks may exceed max_len mid-path, so this is an
    underapproximation only when a path must grow beyond max_len + 1;
    the tests use systems small enough that it is exact on the checked
    range."""
    candidates = all_candidates(pds, max_len + 2)
    result = set(targets)
    changed = True
    while changed:
        changed = False
        for config in candidates:
            if config in result:
                continue
            for successor in pds.step(config):
                if successor in result:
                    result.add(config)
                    changed = True
                    break
    return result


def simple_pds():
    """<p, a> -> <p, b>; <p, b> -> <p, c d>; <p, c> -> <q, eps>;
    <q, d> -> <p, a>"""
    pds = PushdownSystem()
    pds.add_rule("p", "a", "p", ("b",))
    pds.add_rule("p", "b", "p", ("c", "d"))
    pds.add_rule("p", "c", "q", ())
    pds.add_rule("q", "d", "p", ("a",))
    return pds


def singleton_automaton(location, word, finals=("f",)):
    auto = FiniteAutomaton(initials=[location], finals=list(finals))
    previous = location
    for index, symbol in enumerate(word):
        nxt = "f" if index == len(word) - 1 else ("s", index)
        auto.add_transition(previous, symbol, nxt)
        previous = nxt
    if not word:
        auto.add_final(location)
    return auto


def test_prestar_simple_chain():
    pds = simple_pds()
    query = singleton_automaton("p", ("a",))
    result = prestar(pds, query)
    # (p, a) itself, plus nothing else reaches (p, a)... in this system
    # (q, d) => (p, a).
    assert result.accepts_from("p", ("a",))
    assert result.accepts_from("q", ("d",))


def test_prestar_through_push_and_pop():
    pds = simple_pds()
    # target: (p, d) ; (p, b) => (p, c d) => (q, d) => hmm (q,d)=>(p,a d)
    # (p, c d) => (q, d): so pre*((q,d)) contains (p, c d) and (p, b)
    query = singleton_automaton("q", ("d",))
    result = prestar(pds, query)
    assert result.accepts_from("p", ("c", "d"))
    assert result.accepts_from("p", ("b",))
    assert result.accepts_from("p", ("a",))


def test_prestar_matches_brute_force():
    pds = simple_pds()
    targets = {("p", ("a", "d"))}
    query = singleton_automaton("p", ("a", "d"))
    saturated = prestar(pds, query)
    got = enumerate_configs(saturated, saturated.initials, 4)
    expected = brute_force_pre(pds, targets, 4)
    got_short = {c for c in got if len(c[1]) <= 3}
    expected_short = {c for c in expected if len(c[1]) <= 3}
    assert got_short == expected_short


def brute_force_post(pds, sources, max_len):
    seen = set(sources)
    queue = deque(sources)
    while queue:
        config = queue.popleft()
        for successor in pds.step(config):
            if len(successor[1]) > max_len:
                continue
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return seen


def test_poststar_matches_brute_force():
    pds = simple_pds()
    sources = {("p", ("a",))}
    query = singleton_automaton("p", ("a",))
    saturated = poststar(pds, query)
    got = enumerate_configs(saturated, saturated.initials, 4)
    expected = brute_force_post(pds, sources, 6)
    got_short = {c for c in got if len(c[1]) <= 3}
    expected_short = {c for c in expected if len(c[1]) <= 3}
    assert got_short == expected_short


@st.composite
def random_pds(draw):
    pds = PushdownSystem()
    locations = ["p", "q"]
    symbols = ["a", "b", "c"]
    count = draw(st.integers(min_value=1, max_value=8))
    for _ in range(count):
        kind = draw(st.integers(min_value=0, max_value=2))
        src = draw(st.sampled_from(locations))
        gamma = draw(st.sampled_from(symbols))
        dst = draw(st.sampled_from(locations))
        if kind == 0:
            pds.add_rule(src, gamma, dst, ())
        elif kind == 1:
            pds.add_rule(src, gamma, dst, (draw(st.sampled_from(symbols)),))
        else:
            pds.add_rule(
                src,
                gamma,
                dst,
                (draw(st.sampled_from(symbols)), draw(st.sampled_from(symbols))),
            )
    return pds


@settings(max_examples=60, deadline=None)
@given(random_pds(), st.sampled_from(["p", "q"]), st.sampled_from(["a", "b", "c"]))
def test_property_poststar_brute_force(pds, location, symbol):
    sources = {(location, (symbol,))}
    saturated = poststar(pds, singleton_automaton(location, (symbol,)))
    got = enumerate_configs(saturated, saturated.initials, 3)
    expected = brute_force_post(pds, sources, 6)
    got_short = {c for c in got if len(c[1]) <= 2}
    expected_short = {c for c in expected if len(c[1]) <= 2}
    assert got_short == expected_short


@settings(max_examples=40, deadline=None)
@given(random_pds(), st.sampled_from(["p", "q"]), st.sampled_from(["a", "b", "c"]))
def test_property_prestar_sound_and_complete_short_configs(pds, location, symbol):
    target = (location, (symbol,))
    saturated = prestar(pds, singleton_automaton(location, (symbol,)))
    got = enumerate_configs(saturated, saturated.initials, 2)
    got_short = {c for c in got if len(c[1]) <= 2}
    expected = brute_force_pre(pds, {target}, 2)
    expected_short = {c for c in expected if len(c[1]) <= 2}
    # Soundness: every accepted short config truly reaches the target.
    for config in got_short:
        assert _reaches(pds, config, target), (config, target)
    # Completeness: the brute-force pre* is covered.
    assert expected_short <= got_short


def _reaches(pds, config, target, stack_cap=7, node_cap=6000):
    seen = {config}
    queue = deque([config])
    count = 0
    while queue and count < node_cap:
        current = queue.popleft()
        count += 1
        if current == target:
            return True
        for successor in pds.step(current):
            if len(successor[1]) <= stack_cap and successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False
