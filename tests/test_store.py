"""Tests for the persistent slice store (:mod:`repro.store`).

Covers the store's own durability edge cases — corrupted, truncated,
and version-mismatched entry files, concurrent writers, eviction under
a tight cap — plus configuration/filesystem degradation (malformed
``REPRO_CACHE_MAX_BYTES``, ENOSPC-style write failures), the
per-revision saturation index, and the session integration: warm
front-half loads, disk-served slices with zero saturation work,
store-backed ``open_session``, the process backend, and the ``repro
cache`` CLI.
"""

import errno
import os
import struct
import threading
import time
import warnings

import pytest

import repro
from repro.cli import build_parser
from repro.engine import SlicingSession, slice_many_programs, stable_key_digest
from repro.lang import pretty
from repro.store import DEFAULT_MAX_BYTES, STORE_VERSION, SliceStore, source_hash
from repro.store.store import MAGIC
from repro.workloads.paper_figures import FIG1_SOURCE

pytestmark = pytest.mark.smoke

HASH = source_hash(FIG1_SOURCE)
KEY = stable_key_digest(("vertices", (1, 2), "reachable"))


def _store(tmp_path, **kwargs):
    return SliceStore(str(tmp_path / "cache"), **kwargs)


def _entry_files(store):
    result = []
    for root, _dirs, files in os.walk(store.cache_dir):
        result.extend(os.path.join(root, name) for name in files)
    return sorted(result)


# -- entry durability --------------------------------------------------------------


def test_roundtrip(tmp_path):
    store = _store(tmp_path)
    assert store.get(HASH, "slice", KEY) is None
    store.put(HASH, "slice", KEY, {"answer": [1, 2, 3]})
    assert store.get(HASH, "slice", KEY) == {"answer": [1, 2, 3]}
    stats = store.stats()
    assert stats["entries"] == 1 and stats["programs"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1


def test_corrupted_entry_is_a_miss_and_removed(tmp_path):
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, "value")
    (path,) = _entry_files(store)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF  # flip a payload byte; the checksum must catch it
    open(path, "wb").write(bytes(blob))
    assert store.get(HASH, "slice", KEY) is None
    assert not os.path.exists(path)
    assert store.stats()["invalid_dropped"] == 1


def test_truncated_entry_is_a_miss(tmp_path):
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, list(range(1000)))
    (path,) = _entry_files(store)
    blob = open(path, "rb").read()
    for cut in (0, 3, len(MAGIC) + 1, len(blob) // 2, len(blob) - 1):
        open(path, "wb").write(blob[:cut])
        assert store.get(HASH, "slice", KEY) is None
        # The defective file was dropped; re-store for the next cut.
        assert not os.path.exists(path)
        store.put(HASH, "slice", KEY, list(range(1000)))
    assert store.get(HASH, "slice", KEY) == list(range(1000))


def test_version_mismatch_invalidates(tmp_path):
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, "value")
    (path,) = _entry_files(store)
    blob = bytearray(open(path, "rb").read())
    # Rewrite the version field to a future version.
    blob[len(MAGIC)] = 0xFF
    open(path, "wb").write(bytes(blob))
    assert store.get(HASH, "slice", KEY) is None
    assert not os.path.exists(path)
    assert store.stats()["invalid_dropped"] == 1
    assert STORE_VERSION != 0xFF01  # the rewrite above really differs


def test_unpicklable_garbage_payload_is_a_miss(tmp_path):
    """A well-formed header over a checksummed-but-bogus payload must
    still degrade to a miss (pickle errors are caught)."""
    import hashlib
    import struct

    store = _store(tmp_path)
    payload = b"not a pickle at all"
    blob = (
        MAGIC
        + struct.pack(">H", STORE_VERSION)
        + hashlib.sha256(payload).digest()
        + payload
    )
    path = os.path.join(store.cache_dir, HASH, "slice-%s.slc" % KEY)
    os.makedirs(os.path.dirname(path))
    open(path, "wb").write(blob)
    assert store.get(HASH, "slice", KEY) is None
    assert not os.path.exists(path)


def test_concurrent_writers_same_key(tmp_path):
    """Racing writers (atomic replace) must never produce a torn or
    unreadable entry; one of the written values survives."""
    store = _store(tmp_path)
    n_writers = 8
    barrier = threading.Barrier(n_writers)
    errors = []

    def write(index):
        try:
            barrier.wait()
            for round_no in range(20):
                store.put(HASH, "slice", KEY, ("writer", index, round_no))
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(n_writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    value = store.get(HASH, "slice", KEY)
    assert value is not None and value[0] == "writer"
    assert len(_entry_files(store)) == 1  # no leaked temp files


def test_lru_eviction_caps_size(tmp_path):
    payload = "x" * 2000
    store = _store(tmp_path, max_bytes=10_000)
    for index in range(10):
        store.put(HASH, "slice", "key%02d" % index, (index, payload))
        # Keep entry 0 hot so LRU (not FIFO) order decides eviction.
        assert store.get(HASH, "slice", "key00") is not None
    stats = store.stats()
    assert stats["total_bytes"] <= 10_000
    assert stats["evictions"] >= 1
    assert store.get(HASH, "slice", "key00") is not None  # recently used survived
    assert store.get(HASH, "slice", "key01") is None  # cold entry evicted


def test_eviction_with_concurrent_readers(tmp_path):
    """Readers racing the eviction walk must never see an exception or
    a torn entry — a concurrently unlinked file is just a miss — and
    the cap still holds afterwards."""
    store = _store(tmp_path, max_bytes=20_000)
    payload = "y" * 1500
    stop = threading.Event()
    errors = []

    def read_loop():
        try:
            while not stop.is_set():
                for index in range(30):
                    store.get(HASH, "slice", "key%02d" % index)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    readers = [threading.Thread(target=read_loop) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        for index in range(30):
            store.put(HASH, "slice", "key%02d" % index, (index, payload))
    finally:
        stop.set()
        for thread in readers:
            thread.join()
    assert not errors
    stats = store.stats()
    assert stats["total_bytes"] <= 20_000
    assert stats["evictions"] >= 1


# -- configuration and filesystem degradation --------------------------------------


def test_malformed_max_bytes_env_falls_back(tmp_path, monkeypatch):
    """A malformed ``REPRO_CACHE_MAX_BYTES`` (e.g. ``256M``) must not
    crash every session with a cache dir: the store warns once, counts
    a config error, and runs with the default cap."""
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "256M")
    with pytest.warns(RuntimeWarning, match="REPRO_CACHE_MAX_BYTES"):
        store = _store(tmp_path)
    assert store.max_bytes == DEFAULT_MAX_BYTES
    assert store.stats()["config_errors"] == 1
    # The degraded store still works end to end.
    store.put(HASH, "slice", KEY, "value")
    assert store.get(HASH, "slice", KEY) == "value"
    # A well-formed value is honored as before...
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
    assert _store(tmp_path).max_bytes == 12345
    # ...and an explicit max_bytes never consults (or warns about) the env.
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "bogus")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _store(tmp_path, max_bytes=99).max_bytes == 99


def _deny_writes(monkeypatch):
    """Make every entry write fail the way a full/read-only filesystem
    would (deterministic stand-in for ENOSPC/EACCES)."""

    def refuse(*_args, **_kwargs):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr("repro.store.store.tempfile.mkstemp", refuse)


def test_write_failure_degrades_to_counted_noop(tmp_path, monkeypatch):
    """``put``/``put_program``/``put_sat``/``merge_sat_index`` on a
    failing filesystem are counted no-ops, never exceptions — the store
    is an optimization, not a dependency."""
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, "kept")
    _deny_writes(monkeypatch)
    store.put(HASH, "slice", "other", "dropped")
    store.put_program(HASH, {"front": "half"})
    store.put_sat(HASH, KEY, "artifact")
    store.merge_sat_index(HASH, layout=(("main", "k", "s", (1,), ()),), records={})
    # merge_sat_index attempts two writes: the index entry and the
    # inverted keymap sidecar.
    assert store.stats()["write_errors"] == 5
    # Reads are unaffected: the pre-existing entry still answers.
    assert store.get(HASH, "slice", KEY) == "kept"
    assert store.get(HASH, "slice", "other") is None


def test_queries_survive_failing_cache_writes(tmp_path, monkeypatch):
    """A slicing query whose answer already exists must not fail just
    because persisting it cannot: the full session pipeline runs to a
    correct result on a write-dead store."""
    reference = pretty(SlicingSession(FIG1_SOURCE).executable().program)
    _deny_writes(monkeypatch)
    session = SlicingSession(FIG1_SOURCE, store=_store(tmp_path))
    assert pretty(session.executable().program) == reference
    stats = session.store.stats()
    assert stats["write_errors"] >= 1
    assert stats["entries"] == 0  # nothing landed, nothing raised


def test_has_helpers_validate_header(tmp_path):
    """``has_program``/``has_sat`` are existence *plus* header checks:
    a corrupt or stale-version file reads as absent, so callers
    re-persist over it instead of trusting a file the next read will
    drop (the lost-survivor bug)."""
    store = _store(tmp_path)
    store.put_program(HASH, {"front": "half"})
    store.put_sat(HASH, KEY, "artifact")
    assert store.has_program(HASH) and store.has_sat(HASH, KEY)
    # A stale STORE_VERSION reads as absent.
    paths = _entry_files(store)
    for path in paths:
        blob = bytearray(open(path, "rb").read())
        blob[len(MAGIC)] ^= 0xFF
        open(path, "wb").write(bytes(blob))
    assert not store.has_program(HASH) and not store.has_sat(HASH, KEY)
    # A file truncated inside the header reads as absent.
    for path in paths:
        open(path, "wb").write(MAGIC[:2])
    assert not store.has_program(HASH) and not store.has_sat(HASH, KEY)
    # Foreign magic reads as absent; a missing file too.
    for path in paths:
        open(path, "wb").write(b"ELF\x7f" + b"\x00" * 16)
    assert not store.has_program(HASH) and not store.has_sat(HASH, KEY)
    for path in paths:
        os.unlink(path)
    assert not store.has_program(HASH) and not store.has_sat(HASH, KEY)


def test_update_refiles_survivor_over_stale_version_file(tmp_path):
    """The end-to-end lost-survivor regression: ``update_source`` must
    re-persist a surviving artifact over a stale-version file at its
    new location (the old existence-only ``has_sat`` skipped the write,
    and the next read dropped the file — survivor gone)."""
    from repro.engine.canonical import REACHABLE_KEY

    cache = str(tmp_path / "cache")
    session = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    session.slice()
    edited = FIG1_SOURCE.replace("p(g2, 3)", "p(g2, 4)")
    new_hash = source_hash(edited)
    store = session.store
    stale = store._entry_path(
        "__sats__", "sat", store.sat_name(new_hash, stable_key_digest(REACHABLE_KEY))
    )
    os.makedirs(os.path.dirname(stale), exist_ok=True)
    open(stale, "wb").write(MAGIC + struct.pack(">H", STORE_VERSION + 7) + b"junk")

    summary = session.update_source(edited)
    assert summary["fast_path"] is True and summary["saturations_kept"] >= 1
    # The stale file was overwritten with a valid entry: a fresh
    # process loads the survivor (zero saturations computed) instead
    # of dropping it.
    reader = SlicingSession(edited, store=SliceStore(cache))
    reader.slice()
    assert reader.stats["sat_persist_hits"] == 2
    assert reader.stats["sat_persist_misses"] == 0


# -- the per-revision saturation index ---------------------------------------------


def test_sat_index_records_filed_artifacts(tmp_path):
    """Every artifact a session files lands in its revision's index
    with its memo key, kind, and footprint, beside the revision's
    symbol layout."""
    store = _store(tmp_path)
    session = SlicingSession(FIG1_SOURCE, store=store)
    session.slice()
    index = store.get_sat_index(HASH)
    assert index is not None
    names = [entry[0] for entry in index["layout"]]
    assert names == [proc.name for proc in session.program.procs]
    kinds = sorted(kind for _key, kind, _fp in index["artifacts"].values())
    assert kinds == ["poststar", "prestar"]
    for _key, _kind, footprint in index["artifacts"].values():
        assert footprint  # ownership known, non-empty
    # The index file itself is a versioned entry: corruption degrades
    # to "revision not discoverable", never an exception.
    (idx_path,) = [p for p in _entry_files(store) if "/idx-" in p.replace(os.sep, "/")]
    blob = bytearray(open(idx_path, "rb").read())
    blob[-1] ^= 0xFF
    open(idx_path, "wb").write(bytes(blob))
    assert store.get_sat_index(HASH) is None


def test_sat_index_stable_across_processes(tmp_path):
    """Cross-process footprint-index stability: a fresh interpreter
    (fresh hash seed) writes the same layout and the same records for
    the same source."""
    import subprocess
    import sys

    cache_here = str(tmp_path / "here")
    cache_there = str(tmp_path / "there")
    SlicingSession(FIG1_SOURCE, store=SliceStore(cache_here)).slice()
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    script = (
        "import sys\n"
        "from repro.engine import SlicingSession\n"
        "from repro.store import SliceStore\n"
        "SlicingSession(sys.stdin.read(), store=SliceStore(%r)).slice()\n"
        % cache_there
    )
    env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="54321")
    subprocess.check_output(
        [sys.executable, "-c", script], input=FIG1_SOURCE, env=env, text=True
    )
    here = SliceStore(cache_here).get_sat_index(HASH)
    there = SliceStore(cache_there).get_sat_index(HASH)
    assert here is not None and there is not None
    assert here["layout"] == there["layout"]
    assert here["artifacts"] == there["artifacts"]


def test_cache_dir_tilde_expands(tmp_path, monkeypatch):
    """The documented ``cache_dir="~/.cache/repro"`` spelling must land
    under the home directory, not in a literal ``./~``."""
    monkeypatch.setenv("HOME", str(tmp_path))
    store = SliceStore("~/.cache/repro-tilde-test")
    assert store.cache_dir == str(tmp_path / ".cache" / "repro-tilde-test")
    session = repro.open_session(FIG1_SOURCE, cache_dir="~/.cache/repro-tilde-test")
    assert session.store.cache_dir == store.cache_dir
    session.slice()
    assert store.stats()["entries"] >= 1


def test_stale_temp_files_are_swept(tmp_path):
    """An orphaned ``.tmp`` from a killed writer must be removed by
    clear() and by the eviction sweep once past the grace period."""
    from repro.store.store import _TMP_GRACE_SECONDS

    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, "value")
    orphan = os.path.join(store.cache_dir, HASH, "orphanxyz.tmp")
    open(orphan, "wb").write(b"partial write")
    long_ago = time.time() - 10 * _TMP_GRACE_SECONDS
    os.utime(orphan, (long_ago, long_ago))
    # A fresh .tmp (a live writer) must survive clear()...
    live = os.path.join(store.cache_dir, HASH, "livewriter.tmp")
    open(live, "wb").write(b"in flight")
    assert store.clear() == 1
    assert not os.path.exists(orphan)
    assert os.path.exists(live)
    os.unlink(live)


def test_stored_entries_are_slim(tmp_path):
    """Per-criterion entries must not embed their own copy of the front
    half: every slice / feature / feature_clean / saturation-artifact
    file stays smaller than the shared fronthalf bundle it would
    otherwise duplicate."""
    from repro.workloads.paper_figures import FIG16_SOURCE

    store = _store(tmp_path)
    session = SlicingSession(FIG16_SOURCE, store=store)
    session.slice()
    session.remove_feature_cleaned("int prod = 1")
    sizes = {}
    for path in _entry_files(store):
        name = os.path.basename(path)
        if not name.endswith(".slc"):
            continue  # non-entry sidecars (meta, keymap) are not entries
        sizes[name.split("-")[0].replace(".slc", "")] = max(
            os.path.getsize(path),
            sizes.get(name.split("-")[0].replace(".slc", ""), 0),
        )
    expected = {
        "fronthalf",
        "slice",
        "feature",
        "feature_clean",
        "proc",
        "sat",
        "idx",
    }
    slim = ("slice", "feature", "feature_clean", "proc", "sat", "idx")
    if session.kernel == "csr":
        # The csr kernel additionally persists the compiled-PDS payload
        # (flat int arrays — slim by construction).
        expected.add("pds")
        slim += ("pds",)
    assert set(sizes) == expected
    for table in slim:
        assert sizes[table] < sizes["fronthalf"], (
            "%s entry (%d bytes) should be slim, not embed another front "
            "half (%d bytes)" % (table, sizes[table], sizes["fronthalf"])
        )


def test_warm_feature_clean_relinks_result(tmp_path):
    """A store-loaded cleanup pair points at the warm session's own
    memoized removal result (the storeless identity invariant)."""
    from repro.workloads.paper_figures import FIG16_SOURCE

    cache = str(tmp_path / "cache")
    writer = SlicingSession(FIG16_SOURCE, store=SliceStore(cache))
    writer.remove_feature_cleaned("int prod = 1")

    reader = SlicingSession(FIG16_SOURCE, store=SliceStore(cache))
    raw, cleaned = reader.remove_feature_cleaned("int prod = 1")
    assert reader.stats["persist_hits"] == 2  # feature + feature_clean
    assert cleaned.result is reader.remove_feature("int prod = 1")
    assert cleaned.result.source_sdg is reader.sdg
    _again_raw, cleaned_again = reader.remove_feature_cleaned("int prod = 1")
    assert cleaned_again is cleaned


def test_clear_removes_everything(tmp_path):
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, "value")
    store.put_program(HASH, {"front": "half"})
    assert store.clear() == 2
    assert store.stats()["entries"] == 0
    assert _entry_files(store) == []


# -- session integration -----------------------------------------------------------


def test_warm_session_serves_from_disk_without_saturation(tmp_path):
    cache = str(tmp_path / "cache")
    cold = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    cold_result = cold.slice()
    assert cold.stats["persist_misses"] == 1

    warm = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    warm_result = warm.slice()
    stats = warm.stats
    assert stats["front_half_from_store"] is True
    assert stats["persist_hits"] == 1
    # The whole point of the store: a warm batch does no saturation at
    # all — neither Prestar nor the shared Poststar ran.
    assert stats["saturation_misses"] == 0 and stats["saturation_hits"] == 0
    # Byte-identical rendering, and the result is rehydrated onto the
    # warm session's own front half.
    assert pretty(warm.executable().program) == pretty(cold.executable().program)
    assert warm_result.source_sdg is warm.sdg
    assert warm_result.version_counts() == cold_result.version_counts()
    assert warm_result.closure_elems() == cold_result.closure_elems()


def test_corrupt_store_degrades_to_cold(tmp_path):
    cache = str(tmp_path / "cache")
    session = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    expected = pretty(session.executable().program)
    store = SliceStore(cache)
    for path in _entry_files(store):
        open(path, "wb").write(b"garbage")
    fresh = SlicingSession(FIG1_SOURCE, store=store)
    assert fresh.stats["front_half_from_store"] is False
    assert pretty(fresh.executable().program) == expected


def test_open_session_with_cache_dir(tmp_path):
    cache = str(tmp_path / "cache")
    with_store = repro.open_session(FIG1_SOURCE, cache_dir=cache)
    assert with_store.store is not None
    # The plain session for the same source is a different cache slot.
    without = repro.open_session(FIG1_SOURCE)
    assert without is not with_store
    assert repro.open_session(FIG1_SOURCE, cache_dir=cache) is with_store


def test_process_backend_matches_thread_backend(tmp_path):
    session = SlicingSession(FIG1_SOURCE)
    threaded = session.slice_many([("print", 0), "prints", ("print", 0)])
    fresh = SlicingSession(FIG1_SOURCE)
    processed = fresh.slice_many(
        [("print", 0), "prints", ("print", 0)], backend="process"
    )
    assert len(processed) == 3
    # Duplicate criteria dedupe to the same object on both backends.
    assert processed[0] is processed[2]
    # Worker results come back slim and are rehydrated onto the parent
    # session's front half (no duplicated SDG/encoding per criterion).
    assert all(result.source_sdg is fresh.sdg for result in processed)
    assert all(result.encoding is fresh.encoding for result in processed)
    for a, b in zip(threaded, processed):
        assert a.version_counts() == b.version_counts()
        assert a.closure_elems() == b.closure_elems()
    # Resubmitting is now pure memo.
    again = fresh.slice_many([("print", 0)], backend="process")
    assert again[0] is processed[0]


def test_process_backend_requires_source():
    _program, _info, sdg = repro.load_source(FIG1_SOURCE)
    session = SlicingSession(sdg=sdg)
    with pytest.raises(ValueError):
        session.slice_many([("print", 0)], backend="process")


def test_slice_many_rejects_unknown_backend():
    session = SlicingSession(FIG1_SOURCE)
    with pytest.raises(ValueError):
        session.slice_many([("print", 0)], backend="greenlet")


def test_slice_many_programs_both_backends(tmp_path):
    cache = str(tmp_path / "cache")
    jobs = [(FIG1_SOURCE, [("print", 0)]), (FIG1_SOURCE, ["prints"])]
    threaded = slice_many_programs(jobs, backend="thread", cache_dir=cache)
    processed = slice_many_programs(jobs, backend="process", cache_dir=cache)
    assert [len(batch) for batch in threaded] == [1, 1]
    for batch_a, batch_b in zip(threaded, processed):
        for a, b in zip(batch_a, batch_b):
            assert a.version_counts() == b.version_counts()
    with pytest.raises(ValueError):
        slice_many_programs(jobs, backend="fiber")


# -- the cache CLI -----------------------------------------------------------------


def run_cli(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


def _run_cli_subprocess(argv):
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.check_output(
        [sys.executable, "-m", "repro"] + argv, env=env, text=True
    )


def test_cache_cli_stats_and_clear(tmp_path):
    cache = str(tmp_path / "cache")
    source_file = tmp_path / "fig1.tc"
    source_file.write_text(FIG1_SOURCE)

    cold = run_cli(["slice-batch", str(source_file), "--cache-dir", cache])
    assert "front half cold" in cold
    # Same process, same source: open_session reuses the live session
    # (the in-memory layer sits above the store).
    again = run_cli(["slice-batch", str(source_file), "--cache-dir", cache])
    assert "slice hits/misses 1/1" in again
    # A fresh process is what the store exists for: warm front half,
    # slices served from disk.
    warm = _run_cli_subprocess(
        ["slice-batch", str(source_file), "--cache-dir", cache]
    )
    assert "front half warm" in warm
    assert "persist hits/misses 1/0" in warm

    stats = run_cli(["cache", "stats", "--cache-dir", cache])
    assert "programs:     1" in stats
    # The per-table breakdown: every table with its entry and byte
    # counts, the shared content-addressed tables under their on-disk
    # names.
    for table in ("slice", "front-half", "__procs__", "__sats__"):
        assert table in stats, stats
    assert "entries" in stats and "bytes" in stats

    cleared = run_cli(["cache", "clear", "--cache-dir", cache])
    assert "removed" in cleared
    stats = run_cli(["cache", "stats", "--cache-dir", cache])
    assert "entries:      0" in stats


def test_cache_cli_stats_json(tmp_path):
    """``repro cache stats --json`` emits the full machine-readable
    stats dict, per-table entry/byte breakdown included."""
    import json

    cache = str(tmp_path / "cache")
    source_file = tmp_path / "fig1.tc"
    source_file.write_text(FIG1_SOURCE)
    run_cli(["slice-batch", str(source_file), "--cache-dir", cache])

    stats = json.loads(run_cli(["cache", "stats", "--json", "--cache-dir", cache]))
    assert stats["programs"] == 1
    assert stats["version"] == STORE_VERSION
    # One front half, one slice result, per-procedure parts, and the
    # two saturation artifacts (shared Poststar + the criterion's
    # Prestar) — each with a parallel byte count.
    assert stats["tables"]["fronthalf"] == 1
    assert stats["tables"]["slice"] >= 1
    assert stats["tables"]["proc"] >= 1
    assert stats["tables"]["sat"] == 2
    for table, count in stats["tables"].items():
        assert stats["table_bytes"][table] > 0, table
    assert stats["total_bytes"] == sum(stats["table_bytes"].values())
    # An empty store renders valid JSON too.
    empty = json.loads(
        run_cli(["cache", "stats", "--json", "--cache-dir", str(tmp_path / "none")])
    )
    assert empty["entries"] == 0 and empty["tables"] == {}


# -- per-procedure content keys (the incremental layer's addressing) ---------------


WS_VARIANT = (
    "// leading comment\n"
    + FIG1_SOURCE.replace("{", "{\n  /* noise */", 1).replace("  ", "    ")
    + "\n\n"
)


def test_procedure_content_keys_ignore_whitespace_and_comments():
    from repro.engine.incremental import front_end
    from repro.engine import procedure_keys

    base = procedure_keys(*front_end(FIG1_SOURCE))
    noisy = procedure_keys(*front_end(WS_VARIANT))
    assert base == noisy


def test_procedure_content_keys_distinct_under_semantic_edits():
    from repro.engine.incremental import front_end
    from repro.engine import procedure_keys

    base_program, base_info = front_end(FIG1_SOURCE)
    base = procedure_keys(base_program, base_info)
    # A constant change touches exactly one procedure's key.
    edited = procedure_keys(*front_end(FIG1_SOURCE.replace("p(g2, 3)", "p(g2, 4)")))
    changed = {name for name in base if base[name] != edited[name]}
    assert len(changed) == 1
    # A global-declaration edit changes the program signature: all keys.
    moved = procedure_keys(*front_end(FIG1_SOURCE.replace("int g1;", "int g1 = 0;")))
    assert all(base[name] != moved[name] for name in base)
    # Renaming a procedure-local variable does not disturb the other
    # procedures' keys.
    local_src = (
        "int g;\n"
        "void helper() { int t = 2; g = t; }\n"
        "int main() { helper(); print(\"%d\", g); return 0; }\n"
    )
    local_base = procedure_keys(*front_end(local_src))
    local_renamed = procedure_keys(
        *front_end(local_src.replace("int t = 2; g = t;", "int u = 2; g = u;"))
    )
    assert local_renamed["helper"] != local_base["helper"]
    assert local_renamed["main"] == local_base["main"]


def test_procedure_content_keys_capture_transitive_interfaces():
    """A side-effect change deep in the call graph flips the interface
    — and therefore the key — of every procedure on the way up."""
    from repro.engine.incremental import front_end
    from repro.engine import procedure_keys

    source = (
        "int g;\n"
        "void leaf() { g = 1; }\n"
        "void mid() { leaf(); }\n"
        "int main() { mid(); print(\"%d\", g); return 0; }\n"
    )
    base = procedure_keys(*front_end(source))
    # leaf stops modifying g: mid's and main's callee interfaces change.
    edited = procedure_keys(*front_end(source.replace("g = 1;", "int x = 1;")))
    assert all(base[name] != edited[name] for name in ("leaf", "mid", "main"))


def test_procedure_content_keys_stable_across_processes(tmp_path):
    """Keys are sha256 of deterministic renderings: a fresh interpreter
    (fresh hash seed, fresh uid counters) computes the same digests."""
    import json
    import subprocess
    import sys

    from repro.engine.incremental import front_end
    from repro.engine import procedure_keys

    here = procedure_keys(*front_end(FIG1_SOURCE))
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    script = (
        "import json, sys\n"
        "from repro.engine.incremental import front_end\n"
        "from repro.engine import procedure_keys\n"
        "print(json.dumps(procedure_keys(*front_end(sys.stdin.read()))))\n"
    )
    env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="12345")
    there = json.loads(
        subprocess.check_output(
            [sys.executable, "-c", script], input=FIG1_SOURCE, env=env, text=True
        )
    )
    assert there == here


def test_store_proc_table_partial_hits(tmp_path):
    """An edited program misses the whole-program bundle but assembles
    its front half from the unchanged procedures' parts — and the
    results are identical to a storeless cold session."""
    from repro.workloads.wc import WC_SOURCE

    cache = str(tmp_path / "cache")
    writer = SlicingSession(WC_SOURCE, store=SliceStore(cache))
    writer.slice(("print", 0))

    edited = WC_SOURCE.replace("chars = chars + 1;", "chars = chars + 1;\n  int d = 1;")
    reader = SlicingSession(edited, store=SliceStore(cache))
    stats = reader.stats
    assert stats["front_half_from_store"] is False
    assert stats["front_half_parts_total"] == 6
    assert stats["front_half_parts_hits"] == 5  # all but the edited proc
    cold = SlicingSession(edited)
    for index in range(len(cold.sdg.print_call_vertices())):
        assert pretty(reader.executable(("print", index)).program) == pretty(
            cold.executable(("print", index)).program
        )
    store_stats = reader.store.stats()
    assert store_stats["proc_hits"] == 5 and store_stats["proc_misses"] == 1
    # The parts table is not a "program" in the stats.
    assert store_stats["programs"] == 2
    assert store_stats["tables"]["proc"] >= 6


def test_corrupt_proc_part_degrades_to_fresh_build(tmp_path):
    cache = str(tmp_path / "cache")
    SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    parts_dir = os.path.join(cache, "__procs__")
    for name in os.listdir(parts_dir):
        path = os.path.join(parts_dir, name)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
    # Bundle also removed so the session must take the parts path.
    for sub in os.listdir(cache):
        if sub != "__procs__":
            for name in os.listdir(os.path.join(cache, sub)):
                os.unlink(os.path.join(cache, sub, name))
    reader = SlicingSession(FIG1_SOURCE, store=SliceStore(cache))
    assert reader.stats["front_half_parts_hits"] == 0
    assert pretty(reader.executable().program) == pretty(
        SlicingSession(FIG1_SOURCE).executable().program
    )


def test_cli_slice_batch_reuse_from(tmp_path):
    from repro.workloads.wc import WC_SOURCE

    previous = tmp_path / "wc_prev.tc"
    current = tmp_path / "wc.tc"
    previous.write_text(WC_SOURCE)
    current.write_text(WC_SOURCE.replace("chars = chars + 1", "chars = chars + 2"))

    out = run_cli(["slice-batch", str(current), "--reuse-from", str(previous)])
    assert "reuse:" in out and "5/6 procedures kept" in out and "fast path" in out
    # The updated session answers for the *current* text from now on.
    import repro

    session = repro.open_session(current.read_text())
    assert session.stats["updates"] == 1

    bad = tmp_path / "bad.tc"
    bad.write_text("int main() { broken")
    with pytest.raises(SystemExit):
        run_cli(["slice-batch", str(previous), "--reuse-from", str(bad)])


# -- the inverted keymap sidecar ---------------------------------------------------

LAYOUT_A = (
    ("main", "key-main-1", "shape-main", (1, 2), ("s1",)),
    ("helper", "key-help-1", "shape-help", (3,), ()),
)
# Same shape as LAYOUT_A, different content keys in every procedure —
# the fast-equivalent "label edit everywhere" donor.
LAYOUT_B = (
    ("main", "key-main-2", "shape-main", (1, 2), ("s1",)),
    ("helper", "key-help-2", "shape-help", (3,), ()),
)
# A different program entirely.
LAYOUT_C = (("other", "key-other", "shape-other", (9,), ()),)


def test_keymap_narrows_discovery_to_plausible_donors(tmp_path):
    """``sat_indexes_for`` returns exactly the revisions that share a
    content key or the layout shape signature — donors adoptable by
    footprint subset or fast equivalence are always in the set, and
    unrelated revisions never are."""
    store = _store(tmp_path)
    # Front halves keep the synthetic indexes alive through the GC
    # walk (an index with no live records and no front half is dead
    # weight and gets dropped).
    store.put_program("revA", {"front": "A"})
    store.put_program("revC", {"front": "C"})
    store.merge_sat_index("revA", layout=LAYOUT_A, records={})
    store.merge_sat_index("revC", layout=LAYOUT_C, records={})

    # Shared content key (footprint-subset adoption).
    found = store.sat_indexes_for(frozenset(["key-main-1", "key-new"]), None)
    assert [src for src, _index in found] == ["revA"]
    # Zero shared keys but the same shape (fast-equivalent label edit).
    found = store.sat_indexes_for(
        frozenset(["key-main-2", "key-help-2"]), store.layout_signature(LAYOUT_B)
    )
    assert [src for src, _index in found] == ["revA"]
    # Neither dimension matches: not a candidate.
    found = store.sat_indexes_for(
        frozenset(["key-main-2"]), store.layout_signature(LAYOUT_C)
    )
    assert [src for src, _index in found] == ["revC"]
    assert store.sat_indexes_for(frozenset(["nowhere"]), "no-such-shape") == []


def test_layout_signature_ignores_content_keys(tmp_path):
    assert SliceStore.layout_signature(LAYOUT_A) == SliceStore.layout_signature(
        LAYOUT_B
    )
    assert SliceStore.layout_signature(LAYOUT_A) != SliceStore.layout_signature(
        LAYOUT_C
    )
    # Malformed layouts answer None (and sat_indexes_for tolerates it).
    assert SliceStore.layout_signature(("not-a-5-tuple",)) is None


def test_keymap_missing_or_corrupt_falls_back_and_self_heals(tmp_path):
    store = _store(tmp_path)
    store.put_program("revA", {"front": "A"})
    store.put_program("revC", {"front": "C"})
    store.merge_sat_index("revA", layout=LAYOUT_A, records={})
    store.merge_sat_index("revC", layout=LAYOUT_C, records={})
    keymap_path = store._keymap_path()
    assert os.path.exists(keymap_path)

    full = {src for src, _index in store.sat_indexes()}
    for corruption in ("remove", b"not json {"):
        if corruption == "remove":
            os.unlink(keymap_path)
        else:
            with open(keymap_path, "wb") as handle:
                handle.write(corruption)
        # Degrades to the full scan...
        found = {src for src, _index in store.sat_indexes_for(frozenset(), None)}
        assert found == full == {"revA", "revC"}
        # ...and rebuilds the sidecar from what the scan found.
        assert os.path.exists(keymap_path)
        found = store.sat_indexes_for(frozenset(["key-other"]), None)
        assert [src for src, _index in found] == ["revC"]


def test_keymap_survives_clear_and_index_gc(tmp_path):
    store = _store(tmp_path)
    store.put_program(HASH, {"front": "half"})
    store.merge_sat_index(HASH, layout=LAYOUT_A, records={})
    store.merge_sat_index("ghost", layout=LAYOUT_C, records={})
    assert os.path.exists(store._keymap_path())

    # GC drops the record-less, front-half-less "ghost" index and
    # rebuilds the keymap without it.
    store._evict()
    assert {src for src, _index in store.sat_indexes()} == {HASH}
    found = store.sat_indexes_for(
        frozenset(["key-other"]), store.layout_signature(LAYOUT_C)
    )
    assert found == []
    found = store.sat_indexes_for(frozenset(["key-main-1"]), None)
    assert [src for src, _index in found] == [HASH]

    store.clear()
    assert not os.path.exists(store._keymap_path())
    assert store.sat_indexes_for(frozenset(["key-main-1"]), None) == []


def test_has_is_an_uncounted_peek(tmp_path):
    """``has`` answers from the header alone and moves no hit/miss
    counter — the fused batch path peeks with it and leaves the real
    lookup (and its accounting) to the memo path."""
    store = _store(tmp_path)
    store.put(HASH, "slice", KEY, {"answer": 1})
    before = store.stats()
    assert store.has(HASH, "slice", KEY)
    assert not store.has(HASH, "slice", "absent")
    assert not store.has("no-such-rev", "slice", KEY)
    after = store.stats()
    assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])
    # A corrupt header reads as absent.
    (path,) = [p for p in _entry_files(store) if "slice-" in p]
    with open(path, "r+b") as handle:
        handle.write(b"XXXX")
    assert not store.has(HASH, "slice", KEY)
