"""DOT-export tests."""

from repro.core import specialization_slice
from repro.sdg import backward_closure_slice
from repro.sdg.dot import automaton_to_dot, sdg_to_dot
from repro.workloads.paper_figures import load_fig1


def test_sdg_dot_structure():
    _p, _i, sdg = load_fig1()
    text = sdg_to_dot(sdg, title="fig1")
    assert text.startswith('digraph "fig1" {')
    assert text.rstrip().endswith("}")
    assert "subgraph cluster_0" in text
    # one node line per vertex
    assert text.count("shape=") >= sdg.vertex_count()
    # dashed interprocedural edges present
    assert "style=dashed" in text


def test_sdg_dot_highlight():
    _p, _i, sdg = load_fig1()
    slice_set = backward_closure_slice(sdg, sdg.print_criterion())
    text = sdg_to_dot(sdg, highlight=slice_set)
    assert text.count("penwidth=2.5") == len(slice_set)


def test_sdg_dot_summary_edges_optional():
    _p, _i, sdg = load_fig1()
    without = sdg_to_dot(sdg)
    with_summary = sdg_to_dot(sdg, include_summary=True)
    assert "style=dotted" not in without
    assert "style=dotted" in with_summary


def test_sdg_dot_escapes_labels():
    _p, _i, sdg = load_fig1()
    text = sdg_to_dot(sdg, title='with "quotes"')
    assert '\\"quotes\\"' in text


def test_automaton_dot():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    text = automaton_to_dot(result.a6, title="A6")
    assert "doublecircle" in text  # final state
    assert "__start ->" in text
    assert text.count("->") >= 3


def test_automaton_dot_symbol_labels():
    _p, _i, sdg = load_fig1()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")

    def label(symbol):
        if symbol in sdg.vertices:
            return sdg.vertices[symbol].label
        return symbol

    text = automaton_to_dot(result.a6, symbol_label=label)
    assert "g2 = b" in text
