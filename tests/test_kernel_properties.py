"""Property tests for the CSR saturation kernel's int codec and ops.

The ``csr`` kernel (:mod:`repro.fsa.intcodec`, :mod:`repro.fsa.intops`,
:mod:`repro.pds.kernel`) promises *structural identity* with the object
implementations — not just language equality — because byte-identical
slices, store entries, and ``__sats__`` digests downstream all hang off
the exact state objects and transition sets.  These tests pin the three
layers of that promise:

* the codec: encode -> decode is the identity (as
  :func:`repro.fsa.serialize.structurally_equal` sees it), and the
  bitset primitives agree with Python set semantics;
* the FSA ops: each ``*_int`` twin is structurally equal to the object
  implementation, on epsilon-free and epsilon-heavy inputs, mixed
  int/string alphabets included;
* the saturations: ``poststar_csr``/``prestar_csr`` match the object
  worklists payload-for-payload, and their output is independent of the
  order rules were inserted into the :class:`PushdownSystem` (the
  fixpoint is canonical; the worklist order must not leak).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsa import FiniteAutomaton, determinize, remove_epsilon
from repro.fsa.automaton import EPSILON
from repro.fsa.intcodec import bits_of, decode_automaton, encode_automaton, iter_bits
from repro.fsa.intops import (
    determinize_int,
    minimize_int,
    mrd_int,
    remove_epsilon_int,
    trim_int,
)
from repro.fsa.minimize import minimize
from repro.fsa.ops import mrd
from repro.fsa.serialize import automaton_to_payload, canonical_dfa, structurally_equal
from repro.pds import PushdownSystem, poststar, prestar
from repro.pds.kernel import poststar_csr, prestar_csr

# -- generators --------------------------------------------------------------------


def random_automaton(seed, n_states=8, n_symbols=4, density=0.3, eps=0.0):
    """A random NFA over a mixed int/string alphabet (the SDG automata
    mix vertex-id ints with call-site label strings, so symbol ordering
    by ``repr`` is load-bearing)."""
    rng = random.Random(seed)
    states = ["s%d" % i for i in range(n_states)]
    symbols = [i for i in range(n_symbols // 2)] + [
        "g%d" % i for i in range(n_symbols - n_symbols // 2)
    ]
    automaton = FiniteAutomaton(
        initials=rng.sample(states, rng.randint(1, 2)),
        finals=rng.sample(states, rng.randint(1, 3)),
    )
    for state in states:
        automaton.add_state(state)
    for src in states:
        for symbol in symbols:
            for dst in states:
                if rng.random() < density / n_states * 4:
                    automaton.add_transition(src, symbol, dst)
        if eps and rng.random() < eps:
            automaton.add_transition(src, EPSILON, rng.choice(states))
    return automaton


def random_pds(seed, n_locs=3, n_syms=5, n_rules=14):
    """A random PDS plus a random query automaton rooted at its control
    locations, with one foreign symbol the PDS has never heard of (query
    automata routinely carry criterion symbols outside the rule
    alphabet)."""
    rng = random.Random(seed)
    locs = ["p%d" % i for i in range(n_locs)]
    syms = list(range(n_syms))
    rules = []
    for _ in range(n_rules):
        w_len = rng.choice((0, 1, 1, 2))
        rules.append(
            (
                rng.choice(locs),
                rng.choice(syms),
                rng.choice(locs),
                tuple(rng.choice(syms) for _ in range(w_len)),
            )
        )
    pds = build_pds(rules)
    query = FiniteAutomaton(initials=[locs[0]], finals=["f"])
    query.add_transition(locs[0], rng.choice(syms), "f")
    query.add_transition(locs[0], "foreign", "f")
    query.add_transition("f", rng.choice(syms), "f")
    return pds, query, rules


def build_pds(rules):
    pds = PushdownSystem()
    for p, gamma, p2, w in rules:
        pds.add_rule(p, gamma, p2, w)
    return pds


# -- the int codec -----------------------------------------------------------------


@pytest.mark.smoke
@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200)), st.lists(st.integers(min_value=0, max_value=200)))
def test_bitsets_match_set_semantics(left, right):
    lbits, rbits = bits_of(left), bits_of(right)
    lset, rset = set(left), set(right)
    assert set(iter_bits(lbits)) == lset
    assert set(iter_bits(lbits | rbits)) == lset | rset
    assert set(iter_bits(lbits & rbits)) == lset & rset
    assert set(iter_bits(lbits & ~rbits)) == lset - rset
    assert (lbits & rbits == lbits) == (lset <= rset)
    assert sorted(iter_bits(lbits)) == sorted(lset)


@pytest.mark.smoke
@pytest.mark.parametrize("seed", range(12))
def test_encode_decode_roundtrip(seed):
    automaton = random_automaton(seed, eps=0.4 if seed % 3 == 0 else 0.0)
    decoded = decode_automaton(encode_automaton(automaton))
    assert structurally_equal(automaton, decoded)
    assert automaton_to_payload(automaton) == automaton_to_payload(decoded)


@pytest.mark.smoke
def test_encode_decode_empty_and_degenerate():
    empty = FiniteAutomaton()
    assert structurally_equal(empty, decode_automaton(encode_automaton(empty)))
    lonely = FiniteAutomaton(initials=["a"], finals=["a"])
    assert structurally_equal(lonely, decode_automaton(encode_automaton(lonely)))


# -- int FSA ops vs the object twins -----------------------------------------------


@pytest.mark.smoke
@pytest.mark.parametrize("seed", range(12))
def test_int_ops_match_object_ops(seed):
    automaton = random_automaton(seed)
    assert structurally_equal(trim_int(automaton), automaton.trim())
    assert structurally_equal(
        remove_epsilon_int(automaton), remove_epsilon(automaton, kernel="object")
    )
    det_object = determinize(automaton, kernel="object")
    assert structurally_equal(determinize_int(automaton), det_object)
    assert structurally_equal(minimize_int(det_object), minimize(det_object, kernel="object"))


@pytest.mark.parametrize("seed", range(8))
def test_int_ops_match_object_ops_with_epsilon(seed):
    automaton = random_automaton(seed, eps=0.6)
    assert structurally_equal(
        remove_epsilon_int(automaton), remove_epsilon(automaton, kernel="object")
    )
    # determinize_int applies epsilon-closure semantics directly.
    assert structurally_equal(
        determinize_int(automaton), determinize(automaton, kernel="object")
    )


@pytest.mark.parametrize("seed", range(8))
def test_fused_mrd_matches_object_chain(seed):
    view = random_automaton(seed)  # epsilon-free: the saturation-view shape
    fused = mrd_int(view)
    assert fused is not None
    a6, _a3_states, _a4_states = fused
    assert structurally_equal(a6, mrd(view))


def test_fused_mrd_declines_epsilon_views():
    view = random_automaton(0, eps=0.8)
    if not view.has_epsilon():
        view.add_transition("s0", EPSILON, "s1")
    assert mrd_int(view) is None


@pytest.mark.parametrize("seed", range(6))
def test_canonical_dfa_identical_under_both_kernels(seed, monkeypatch):
    automaton = random_automaton(seed, eps=0.3)
    payloads = {}
    for kernel in ("object", "csr"):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        payloads[kernel] = automaton_to_payload(canonical_dfa(automaton))
    assert payloads["object"] == payloads["csr"]


# -- the saturations ---------------------------------------------------------------


@pytest.mark.smoke
@pytest.mark.parametrize("seed", range(10))
def test_saturations_match_object_worklists(seed):
    pds, query, _rules = random_pds(seed)
    for trim in (False, True):
        stats = {}
        csr_post = poststar_csr(pds, query, trim=trim, stats=stats)
        obj_post = poststar(pds, query, trim=trim, kernel="object")
        assert automaton_to_payload(csr_post) == automaton_to_payload(obj_post)
        assert stats["kernel_worklist_pops"] > 0
        csr_pre = prestar_csr(pds, query, trim=trim)
        obj_pre = prestar(pds, query, trim=trim, kernel="object")
        assert automaton_to_payload(csr_pre) == automaton_to_payload(obj_pre)


@pytest.mark.smoke
def test_saturations_handcrafted_push_pop_chain():
    # <p,a> -> <p,b c>; <p,b> -> <q,ε>; <q,c> -> <q,ε>: poststar from
    # (p, a) must accept (q, ε) through the epsilon-skip machinery.
    pds = build_pds(
        [("p", "a", "p", ("b", "c")), ("p", "b", "q", ()), ("q", "c", "q", ())]
    )
    query = FiniteAutomaton(initials=["p", "q"], finals=["f"])
    query.add_transition("p", "a", "f")
    post_csr = poststar_csr(pds, query)
    post_obj = poststar(pds, query, kernel="object")
    assert automaton_to_payload(post_csr) == automaton_to_payload(post_obj)
    assert post_csr.accepts_from("q", ())
    # Prestar of (q, ε)-accepting query reaches back to (p, a).
    back_query = FiniteAutomaton(initials=["p", "q"], finals=["q"])
    pre_csr = prestar_csr(pds, back_query)
    pre_obj = prestar(pds, back_query, kernel="object")
    assert automaton_to_payload(pre_csr) == automaton_to_payload(pre_obj)
    assert pre_csr.accepts_from("p", ("a",))


@pytest.mark.parametrize("seed", range(10))
def test_saturation_independent_of_rule_insertion_order(seed):
    pds, query, rules = random_pds(seed)
    baseline_post = automaton_to_payload(poststar_csr(pds, query))
    baseline_pre = automaton_to_payload(prestar_csr(pds, query))
    rng = random.Random(seed + 1000)
    for _ in range(3):
        shuffled = list(rules)
        rng.shuffle(shuffled)
        reordered = build_pds(shuffled)
        assert automaton_to_payload(poststar_csr(reordered, query)) == baseline_post
        assert automaton_to_payload(prestar_csr(reordered, query)) == baseline_pre
        # The object worklists make the same promise; hold them to it.
        assert (
            automaton_to_payload(poststar(reordered, query, kernel="object"))
            == baseline_post
        )
        assert (
            automaton_to_payload(prestar(reordered, query, kernel="object"))
            == baseline_pre
        )


@pytest.mark.smoke
def test_poststar_csr_rejects_epsilon_queries():
    pds = build_pds([("p", "a", "p", ("a",))])
    query = FiniteAutomaton(initials=["p"], finals=["f"])
    query.add_transition("p", EPSILON, "f")
    with pytest.raises(ValueError):
        poststar_csr(pds, query)


@pytest.mark.smoke
def test_compiled_pds_cached_per_system():
    from repro.pds.kernel import compiled_pds

    pds = build_pds([("p", "a", "q", ()), ("q", "b", "p", ("a", "b"))])
    stats = {}
    first = compiled_pds(pds, stats=stats)
    assert stats["kernel_rules_compiled"] == 2
    again = compiled_pds(pds, stats=stats)
    assert again is first
    # A cache hit compiles nothing.
    assert stats["kernel_rules_compiled"] == 2
