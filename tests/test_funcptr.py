"""Function-pointer lowering and slicing tests (§6.2, Fig. 15)."""

import pytest

from repro.core import executable_program, lower_indirect_calls, specialization_slice
from repro.core.funcptr import LoweringError
from repro.lang import ast_nodes as A
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg
from repro.workloads.paper_figures import load_fig15


def test_lowering_introduces_dispatcher():
    _orig, lowered, info, _sdg = load_fig15()
    names = lowered.proc_names()
    assert any(name.startswith("indirect_") for name in names)
    dispatcher = lowered.proc("indirect_1")
    assert dispatcher.params[0].kind == "fnptr"
    # dispatch tests p == f
    conditions = [
        s.cond for s in A.walk_stmts(dispatcher.body) if isinstance(s, A.If)
    ]
    assert conditions and isinstance(conditions[0].right, A.FuncRef)


def test_lowering_preserves_semantics():
    original, lowered, _info, _sdg = load_fig15()
    for inputs in ([1], [0], [-3]):
        assert (
            run_program(original, inputs).values
            == run_program(lowered, inputs).values
        )


def test_lowering_idempotent_on_direct_programs():
    program = parse("void f() {} int main() { f(); }")
    info = check(program)
    lowered, lowered_info = lower_indirect_calls(program, info)
    assert lowered is program  # unchanged object


def test_fig15_specialization():
    """Slicing w.r.t. print(x): g specializes to one parameter, f keeps
    both, and the dispatcher forwards accordingly (§6.2's output)."""
    original, lowered, info, sdg = load_fig15()
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    text = pretty(executable.program)
    procs = {proc.name: proc for proc in executable.program.procs}

    g_spec = result.specializations_of("g")[0]
    assert len(procs[g_spec.name].params) == 1
    f_spec = result.specializations_of("f")[0]
    assert len(procs[f_spec.name].params) == 2

    for inputs in ([1], [0], [-3]):
        assert (
            run_program(original, inputs).values
            == run_program(executable.program, inputs).values
        )


def test_empty_points_to_rejected():
    program = parse("int main() { fnptr p; p(); }")
    info = check(program)
    with pytest.raises(LoweringError):
        lower_indirect_calls(program, info)


def test_incompatible_signatures_rejected():
    program = parse(
        """
        void one(int a) {}
        void two(int a, int b) {}
        int main() {
          fnptr p;
          int c = input();
          if (c > 0) { p = one; } else { p = two; }
          p(1);
        }
        """
    )
    info = check(program)
    with pytest.raises(LoweringError):
        lower_indirect_calls(program, info)


def test_void_targets_dispatch():
    program = parse(
        """
        int g;
        void set1(int v) { g = v; }
        void set2(int v) { g = v * 2; }
        int main() {
          fnptr p;
          int c = input();
          if (c > 0) { p = set1; } else { p = set2; }
          p(5);
          print("%d", g);
        }
        """
    )
    info = check(program)
    lowered, lowered_info = lower_indirect_calls(program, info)
    for inputs in ([1], [0]):
        assert run_program(program, inputs).values == run_program(lowered, inputs).values
    sdg = build_sdg(lowered, lowered_info)
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    for inputs in ([1], [0]):
        assert (
            run_program(program, inputs).values
            == run_program(executable.program, inputs).values
        )


def test_stub_retained_for_address_space():
    """A target procedure whose body is entirely sliced away must remain
    as a stub so the dispatch comparisons still work (§6.2)."""
    program = parse(
        """
        int g;
        void noop(int v) {}
        void store(int v) { g = v; }
        int main() {
          fnptr p;
          int c = input();
          if (c > 0) { p = noop; } else { p = store; }
          p(5);
          print("%d", g);
        }
        """
    )
    info = check(program)
    lowered, lowered_info = lower_indirect_calls(program, info)
    sdg = build_sdg(lowered, lowered_info)
    result = specialization_slice(sdg, sdg.print_criterion(), contexts="empty")
    executable = executable_program(result)
    names = executable.program.proc_names()
    assert "noop" in names  # stub or full; the FuncRef must resolve
    for inputs in ([1], [0]):
        assert (
            run_program(program, inputs).values
            == run_program(executable.program, inputs).values
        )
