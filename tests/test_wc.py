"""The §5 wc subject: correctness of the port and the slice-speedup
property."""

from repro.core import executable_program, specialization_slice
from repro.lang.interp import run_program
from repro.workloads.wc import load_wc, text_to_inputs

SAMPLE = "hello world\nthe quick brown fox\n\ntail line\n"


def counts(text):
    lines = text.count("\n")
    words = len(text.split())
    chars = len(text)
    longest = max((len(line) for line in text.split("\n")), default=0)
    return lines, words, chars, longest


def test_wc_counts_correct():
    program, _info, _sdg = load_wc()
    result = run_program(program, text_to_inputs(SAMPLE))
    lines, words, chars, longest = counts(SAMPLE)
    assert result.values == [lines, words, chars, longest]


def test_wc_empty_input():
    program, _info, _sdg = load_wc()
    result = run_program(program, text_to_inputs(""))
    assert result.values == [0, 0, 0, 0]


def test_wc_single_word_no_newline():
    program, _info, _sdg = load_wc()
    result = run_program(program, text_to_inputs("word"))
    assert result.values == [0, 1, 4, 0]


def slice_for_print(index):
    program, _info, sdg = load_wc()
    prints = sdg.print_call_vertices()
    criterion = sdg.print_criterion([prints[index]])
    result = specialization_slice(sdg, criterion)
    return program, sdg, result, executable_program(result)


def test_line_slice_faithful_and_smaller():
    program, sdg, result, sl = slice_for_print(0)
    inputs = text_to_inputs(SAMPLE)
    original = run_program(program, inputs)
    sliced = run_program(sl.program, inputs)
    lines, _w, _c, _l = counts(SAMPLE)
    assert sliced.values == [lines]
    assert sliced.steps < original.steps


def test_each_print_slice_faithful():
    program, _info, sdg = load_wc()
    inputs = text_to_inputs(SAMPLE)
    original = run_program(program, inputs)
    for index, print_vid in enumerate(sdg.print_call_vertices()):
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        sl = executable_program(result)
        sliced = run_program(sl.program, inputs)
        mapped = [(sl.stmt_map.get(u), vals) for u, _f, vals in sliced.prints]
        expected_uid = sdg.vertices[print_vid].stmt_uid
        expected = [
            (uid, vals) for uid, _f, vals in original.prints if uid == expected_uid
        ]
        assert mapped == expected


def test_char_slice_drops_word_machinery():
    program, sdg, result, sl = slice_for_print(2)  # chars
    names = set(sl.program.proc_names())
    # count_word is irrelevant to the character count.
    assert not any("count_word" in name for name in names)


def test_speedup_reasonable():
    """Geometric-mean step ratio over all four slices should show real
    savings (the paper reports 32.5% of original time for wc)."""
    program, _info, sdg = load_wc()
    inputs = text_to_inputs(SAMPLE * 5)
    original = run_program(program, inputs)
    ratios = []
    for print_vid in sdg.print_call_vertices():
        criterion = sdg.print_criterion([print_vid])
        result = specialization_slice(sdg, criterion)
        sl = executable_program(result)
        sliced = run_program(sl.program, inputs)
        ratios.append(sliced.steps / original.steps)
    geo_mean = 1.0
    for ratio in ratios:
        geo_mean *= ratio
    geo_mean **= 1.0 / len(ratios)
    assert geo_mean < 0.9
