"""Pretty-printer tests, including the parse/pretty round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import check, parse, pretty
from repro.workloads.generator import GenConfig, generate_program


def roundtrip(source):
    program = parse(source)
    check(program)
    text = pretty(program)
    program2 = parse(text)
    check(program2)
    assert pretty(program2) == text  # fixpoint after one round
    return text


def test_simple_roundtrip():
    roundtrip("int g; int main() { g = 1; print(\"%d\", g); return 0; }")


def test_precedence_preserved():
    text = roundtrip("int main() { int x = (1 + 2) * 3; int y = 1 + 2 * 3; return 0; }")
    assert "(1 + 2) * 3" in text
    assert "1 + 2 * 3" in text


def test_nested_control_flow():
    text = roundtrip(
        """
        int main() {
          int x = 0;
          while (x < 3) {
            if (x == 1) { x = x + 2; } else { x = x + 1; }
          }
          return x;
        }
        """
    )
    assert "while (x < 3)" in text


def test_string_escapes_roundtrip():
    text = roundtrip('int main() { print("a\\n\\tb \\"q\\"", 1); return 0; }')
    assert '\\n' in text


def test_ref_and_fnptr_params():
    text = roundtrip(
        "void f(ref int a, fnptr p) { a = 1; } int main() { int x; f(x, &main); return 0; }"
    )
    assert "ref int a" in text
    assert "fnptr p" in text


def test_unary_printing():
    text = roundtrip("int main() { int x = -(1 + 2); int y = !x; return 0; }")
    assert "-(1 + 2)" in text


def test_associativity_parens():
    # 1 - (2 - 3) must keep its parentheses; (1 - 2) - 3 must not.
    text = roundtrip("int main() { int x = 1 - (2 - 3); int y = 1 - 2 - 3; return 0; }")
    assert "1 - (2 - 3)" in text
    assert "y = 1 - 2 - 3" in text


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_roundtrip(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=4))
    text = pretty(program)
    program2 = parse(text)
    check(program2)
    assert pretty(program2) == text
