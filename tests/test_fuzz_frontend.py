"""Front-end robustness fuzzing: arbitrary input must produce a clean
TinyC diagnostic or a successful parse — never an internal error."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import check, parse, pretty
from repro.lang.errors import TinyCError
from repro.lang.tokens import tokenize

# Text biased toward TinyC-looking fragments so the parser gets past
# the lexer often enough to be exercised.
fragments = st.sampled_from(
    [
        "int", "void", "ref", "fnptr", "main", "g", "x", "f", "(", ")",
        "{", "}", ";", ",", "=", "==", "+", "-", "*", "/", "%", "<",
        "while", "if", "else", "return", "print", "input", "exit",
        "0", "1", "42", '"s"', "&", "&&", "||", "!", " ", "\n",
    ]
)
soup = st.lists(fragments, max_size=60).map(" ".join)
raw = st.text(max_size=80)


@settings(max_examples=300, deadline=None)
@given(soup)
def test_parser_total_on_token_soup(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        pass


@settings(max_examples=200, deadline=None)
@given(raw)
def test_lexer_total_on_raw_text(source):
    try:
        tokenize(source)
    except TinyCError:
        pass


@settings(max_examples=200, deadline=None)
@given(raw)
def test_parser_total_on_raw_text(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        pass


@settings(max_examples=100, deadline=None)
@given(soup)
def test_successful_parses_roundtrip(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        return
    text = pretty(program)
    reparsed = parse(text)
    check(reparsed)
    assert pretty(reparsed) == text
