"""Front-end robustness fuzzing: arbitrary input must produce a clean
TinyC diagnostic or a successful parse — never an internal error.

A second lane fuzzes the back end's kernel equivalence: on generated
(well-typed) programs, the ``csr`` and ``object`` saturation kernels
must produce payload-identical Prestar/Poststar automata for randomized
criteria — the same contract :mod:`tests.test_kernel_differential` pins
on the fixed corpus, here driven by hypothesis over generator seeds and
criterion choices."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import check, parse, pretty
from repro.lang.errors import TinyCError
from repro.lang.tokens import tokenize

# Text biased toward TinyC-looking fragments so the parser gets past
# the lexer often enough to be exercised.
fragments = st.sampled_from(
    [
        "int", "void", "ref", "fnptr", "main", "g", "x", "f", "(", ")",
        "{", "}", ";", ",", "=", "==", "+", "-", "*", "/", "%", "<",
        "while", "if", "else", "return", "print", "input", "exit",
        "0", "1", "42", '"s"', "&", "&&", "||", "!", " ", "\n",
    ]
)
soup = st.lists(fragments, max_size=60).map(" ".join)
raw = st.text(max_size=80)


@settings(max_examples=300, deadline=None)
@given(soup)
def test_parser_total_on_token_soup(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        pass


@settings(max_examples=200, deadline=None)
@given(raw)
def test_lexer_total_on_raw_text(source):
    try:
        tokenize(source)
    except TinyCError:
        pass


@settings(max_examples=200, deadline=None)
@given(raw)
def test_parser_total_on_raw_text(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        pass


@settings(max_examples=100, deadline=None)
@given(soup)
def test_successful_parses_roundtrip(source):
    try:
        program = parse(source)
        check(program)
    except TinyCError:
        return
    text = pretty(program)
    reparsed = parse(text)
    check(reparsed)
    assert pretty(reparsed) == text


# -- kernel-equivalence fuzzing ----------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_procs=st.integers(min_value=2, max_value=4),
    criterion_salt=st.integers(min_value=0, max_value=1_000_000),
)
def test_fuzz_saturation_kernels_agree(seed, n_procs, criterion_salt):
    """csr and object saturations agree payload-for-payload on generated
    programs with randomized vertex criteria (both contexts modes)."""
    import random

    from repro.core.criteria import empty_stack_criterion
    from repro.engine import SlicingSession
    from repro.fsa.serialize import automaton_to_payload
    from repro.pds import poststar, prestar
    from repro.workloads.generator import GenConfig, generate_program

    program, _info = generate_program(GenConfig(seed=seed, n_procs=n_procs))
    session = SlicingSession(pretty(program))
    encoding = session.encoding
    rng = random.Random(criterion_salt)
    vids = sorted(rng.sample(sorted(session.sdg.vertices), rng.randint(1, 3)))
    query = empty_stack_criterion(encoding, vids)
    for saturation in (prestar, poststar):
        for trim in (False, True):
            obj = saturation(encoding.pds, query, trim=trim, kernel="object")
            csr = saturation(encoding.pds, query, trim=trim, kernel="csr")
            assert automaton_to_payload(obj) == automaton_to_payload(csr), (
                saturation.__name__,
                trim,
            )
