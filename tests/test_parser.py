"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.errors import ParseError
from repro.lang.parser import parse


pytestmark = pytest.mark.smoke


def first_stmt(source_body):
    program = parse("int main() { %s }" % source_body)
    return program.proc("main").body.stmts[0]


def test_global_declarations():
    program = parse("int g; int h = 4; fnptr p;")
    assert [d.name for d in program.globals] == ["g", "h", "p"]
    assert program.globals[1].init.value == 4
    assert program.globals[2].is_fnptr


def test_procedure_parameters():
    program = parse("void f(int a, ref int b, fnptr c) {}")
    kinds = [p.kind for p in program.proc("f").params]
    assert kinds == ["value", "ref", "fnptr"]


def test_precedence():
    stmt = first_stmt("x = 1 + 2 * 3;")
    assert isinstance(stmt.expr, A.Bin) and stmt.expr.op == "+"
    assert stmt.expr.right.op == "*"


def test_left_associativity():
    stmt = first_stmt("x = 1 - 2 - 3;")
    # (1 - 2) - 3
    assert stmt.expr.op == "-"
    assert stmt.expr.left.op == "-"
    assert stmt.expr.right.value == 3


def test_parentheses_override():
    stmt = first_stmt("x = (1 + 2) * 3;")
    assert stmt.expr.op == "*"
    assert stmt.expr.left.op == "+"


def test_logical_operators():
    stmt = first_stmt("x = a && b || c;")
    assert stmt.expr.op == "||"
    assert stmt.expr.left.op == "&&"


def test_unary():
    stmt = first_stmt("x = -a + !b;")
    assert stmt.expr.left.op == "-"
    assert stmt.expr.right.op == "!"


def test_else_if_chain_desugars():
    stmt = first_stmt("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
    assert isinstance(stmt, A.If)
    nested = stmt.els.stmts[0]
    assert isinstance(nested, A.If)
    assert nested.els is not None


def test_while_and_return():
    program = parse("int f() { while (1) { return 5; } return 0; }")
    loop = program.proc("f").body.stmts[0]
    assert isinstance(loop, A.While)
    assert isinstance(loop.body.stmts[0], A.Return)


def test_call_statement_and_assignment():
    program = parse("void f() {} int main() { f(); int x = input(); x = f(); }")
    stmts = program.proc("main").body.stmts
    assert isinstance(stmts[0], A.CallStmt)
    assert isinstance(stmts[1].init, A.InputExpr)
    assert isinstance(stmts[2].expr, A.CallExpr)


def test_print_with_format():
    stmt = first_stmt('print("%d and %d\\n", a, b);')
    assert isinstance(stmt, A.Print)
    assert stmt.fmt == "%d and %d\n"
    assert len(stmt.args) == 2


def test_print_without_format():
    stmt = first_stmt("print(a);")
    assert stmt.fmt is None
    assert len(stmt.args) == 1


def test_exit_forms():
    assert first_stmt("exit();").arg is None
    assert first_stmt("exit(2);").arg.value == 2


def test_funcref_address_syntax():
    stmt = first_stmt("p = &f;")
    assert isinstance(stmt.expr, A.FuncRef)
    assert stmt.expr.name == "f"


def test_statement_uids_unique():
    program = parse("int main() { x = 1; x = 2; if (x) { x = 3; } }")
    uids = [s.uid for s in A.walk_stmts(program.proc("main").body)]
    assert len(uids) == len(set(uids))


@pytest.mark.parametrize(
    "bad",
    [
        "int main() { x = ; }",
        "int main() { if x { } }",
        "int main() { return 1 }",
        "int 3() {}",
        "void f(int) {}",
        "int main() { print(; }",
        "garbage",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_error_carries_position():
    with pytest.raises(ParseError) as info:
        parse("int main() {\n  x = ;\n}")
    assert info.value.line == 2
