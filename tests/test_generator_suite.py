"""Generator and benchmark-suite tests."""

from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.workloads.generator import GenConfig, generate_program
from repro.workloads.suite import QUICK_SUITE, SUITE, load_suite


def test_generator_deterministic():
    a, _ = generate_program(GenConfig(seed=7, n_procs=5))
    b, _ = generate_program(GenConfig(seed=7, n_procs=5))
    assert pretty(a) == pretty(b)


def test_generator_seeds_differ():
    a, _ = generate_program(GenConfig(seed=1, n_procs=5))
    b, _ = generate_program(GenConfig(seed=2, n_procs=5))
    assert pretty(a) != pretty(b)


def test_generated_programs_valid():
    for seed in range(10):
        program, info = generate_program(GenConfig(seed=seed, n_procs=5))
        reparsed = parse(pretty(program))
        check(reparsed)


def test_generated_programs_terminate():
    for seed in range(10):
        program, _info = generate_program(GenConfig(seed=seed, n_procs=5))
        result = run_program(program, [3, -1, 4, 1, 5] * 10, max_steps=3_000_000)
        assert result.steps <= 3_000_000


def test_generator_respects_proc_count():
    program, _info = generate_program(GenConfig(seed=0, n_procs=12))
    assert len(program.procs) == 13  # n_procs + main


def test_generator_exit_prob():
    program, _info = generate_program(
        GenConfig(seed=3, n_procs=5, exit_prob=0.2)
    )
    assert "exit(" in pretty(program)


def test_suite_names_match_fig17_order():
    assert SUITE[0] == "tcas_like"
    assert SUITE[-1] == "go_like"
    assert "wc" in SUITE
    assert len(SUITE) == 12
    assert set(QUICK_SUITE) <= set(SUITE)


def test_suite_loads_small_entries():
    entries = load_suite(["tcas_like", "wc"], max_slices=2)
    for entry in entries:
        assert entry.sdg.vertex_count() > 0
        assert entry.criteria
        assert all(entry.criteria)
        assert entry.paper["procs"] > 0
        assert entry.source_lines() > 10


def test_suite_cached():
    first = load_suite(["tcas_like"])[0]
    second = load_suite(["tcas_like"])[0]
    assert first.sdg is second.sdg


def test_suite_slice_cap():
    entry = load_suite(["tcas_like"], max_slices=3)[0]
    assert len(entry.criteria) == 3
    full = load_suite(["tcas_like"])[0]
    assert len(full.criteria) == full.paper["slices"] == 37
