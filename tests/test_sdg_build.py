"""SDG construction tests, validated against the paper's Fig. 3 where
possible."""

from repro.lang import check, parse
from repro.sdg import CALL, CONTROL, FLOW, LIBRARY, PARAM_IN, PARAM_OUT, VertexKind, build_sdg
from repro.workloads.paper_figures import load_fig1


def build(source):
    program = parse(source)
    info = check(program)
    return build_sdg(program, info)


def vertices_by_kind(sdg, proc, kind):
    return [
        sdg.vertices[v]
        for v in sdg.proc_vertices[proc]
        if sdg.vertices[v].kind == kind
    ]


def test_fig1_vertex_inventory():
    """Fig. 3: p has entry, 2 formal-ins (a, b), 3 formal-outs (g1, g2,
    g3), 3 statements; main has entry, 4 call vertices, etc."""
    _p, _i, sdg = load_fig1()
    assert len(vertices_by_kind(sdg, "p", VertexKind.FORMAL_IN)) == 2
    assert len(vertices_by_kind(sdg, "p", VertexKind.FORMAL_OUT)) == 3
    assert len(vertices_by_kind(sdg, "p", VertexKind.STATEMENT)) == 3
    # main: 3 calls to p + the print call.
    calls = vertices_by_kind(sdg, "main", VertexKind.CALL)
    assert len(calls) == 4
    # each p call site: 2 actual-ins (args; p reads no globals),
    # 3 actual-outs (g1, g2, g3).
    site = sdg.call_sites["C1"]
    assert len(site.actual_ins) == 2
    assert len(site.actual_outs) == 3


def test_fig1_edge_shapes():
    _p, _i, sdg = load_fig1()
    # control: entry p -> statements
    entry = sdg.entry_vertex["p"]
    stmt_vids = [v.vid for v in vertices_by_kind(sdg, "p", VertexKind.STATEMENT)]
    for vid in stmt_vids:
        assert sdg.has_edge(entry, vid, CONTROL)
    # flow: a_in -> g1 = a
    a_in = sdg.formal_ins["p"][("param", 0)]
    g1_assign = next(
        v.vid for v in vertices_by_kind(sdg, "p", VertexKind.STATEMENT) if v.label == "g1 = a"
    )
    assert sdg.has_edge(a_in, g1_assign, FLOW)
    # interprocedural edges at C1
    site = sdg.call_sites["C1"]
    assert sdg.has_edge(site.call_vertex, entry, CALL)
    assert sdg.has_edge(site.actual_ins[("param", 0)], a_in, PARAM_IN)
    g1_out = sdg.formal_outs["p"][("global", "g1")]
    assert sdg.has_edge(g1_out, site.actual_outs[("global", "g1")], PARAM_OUT)


def test_transitive_flow_through_callee():
    """g2 = b; in p must flow to uses of g2 after the call in main, via
    actual-in -> formal-in -> assignment -> formal-out -> actual-out."""
    _p, _i, sdg = load_fig1()
    site1 = sdg.call_sites["C1"]
    ao_g2 = site1.actual_outs[("global", "g2")]
    site2 = sdg.call_sites["C2"]
    ai_g2_uses = [
        vid
        for role, vid in site2.actual_ins.items()
        if sdg.vertices[vid].label == "g2"
    ]
    assert any(sdg.has_edge(ao_g2, vid, FLOW) for vid in ai_g2_uses)


def test_actual_out_kills_prior_definition():
    """g2 = 100 must NOT flow to uses after the first call (which
    must-defines g2)."""
    _p, _i, sdg = load_fig1()
    g2_100 = next(
        v.vid
        for v in vertices_by_kind(sdg, "main", VertexKind.STATEMENT)
        if v.label == "g2 = 100"
    )
    site2 = sdg.call_sites["C2"]
    for role, vid in site2.actual_ins.items():
        assert not sdg.has_edge(g2_100, vid, FLOW)
    # but it does flow into the first call's actual-in g2
    site1 = sdg.call_sites["C1"]
    first_g2 = site1.actual_ins[("param", 0)]
    assert sdg.has_edge(g2_100, first_g2, FLOW)


def test_print_library_edges():
    _p, _i, sdg = load_fig1()
    print_vid = sdg.print_call_vertices()[0]
    criterion = sdg.print_criterion([print_vid])
    assert len(criterion) == 1
    (ai,) = criterion
    assert sdg.has_edge(ai, print_vid, LIBRARY)
    assert sdg.has_edge(print_vid, ai, CONTROL)


def test_param_vertices_control_dependent_on_call():
    _p, _i, sdg = load_fig1()
    site = sdg.call_sites["C1"]
    for vid in list(site.actual_ins.values()) + list(site.actual_outs.values()):
        assert sdg.has_edge(site.call_vertex, vid, CONTROL)


def test_conditional_statement_control_dependence():
    sdg = build(
        """
        int g;
        int main() {
          int c = input();
          if (c > 0) { g = 1; }
          print("%d", g);
        }
        """
    )
    pred = next(
        v.vid for v in sdg.vertices.values() if v.kind == VertexKind.PREDICATE
    )
    assign = next(
        v.vid for v in sdg.vertices.values() if v.label == "g = 1"
    )
    assert sdg.has_edge(pred, assign, CONTROL)


def test_loop_predicate_self_dependence():
    sdg = build(
        """
        int main() {
          int i = 0;
          while (i < 3) { i = i + 1; }
          print("%d", i);
        }
        """
    )
    pred = next(
        v.vid for v in sdg.vertices.values() if v.kind == VertexKind.PREDICATE
    )
    assert sdg.has_edge(pred, pred, CONTROL)
    body = next(v.vid for v in sdg.vertices.values() if v.label == "i = i + 1")
    # loop-carried flow dependence of the increment on itself
    assert sdg.has_edge(body, body, FLOW)


def test_return_value_flow():
    sdg = build(
        "int f(int a) { return a + 1; } int main() { int x = f(2); print(\"%d\", x); }"
    )
    ret_stmt = next(v.vid for v in sdg.vertices.values() if v.label == "return a + 1")
    fo_ret = sdg.formal_outs["f"][("ret",)]
    assert sdg.has_edge(ret_stmt, fo_ret, FLOW)
    site = list(sdg.call_sites.values())[0]
    assert sdg.has_edge(fo_ret, site.actual_outs[("ret",)], PARAM_OUT)


def test_ref_param_round_trip():
    sdg = build(
        """
        void bump(ref int x) { x = x + 1; }
        int main() { int v = 1; bump(v); print("%d", v); }
        """
    )
    fo = sdg.formal_outs["bump"][("param", 0)]
    fi = sdg.formal_ins["bump"][("param", 0)]
    assign = next(v.vid for v in sdg.vertices.values() if v.label == "x = x + 1")
    assert sdg.has_edge(fi, assign, FLOW)
    assert sdg.has_edge(assign, fo, FLOW)


def test_input_chain_dependence():
    """A later input() depends on an earlier one via $input."""
    sdg = build(
        """
        int main() {
          int a = input();
          int b = input();
          print("%d", b);
        }
        """
    )
    first = next(v.vid for v in sdg.vertices.values() if v.label == "int a = input()")
    second = next(v.vid for v in sdg.vertices.values() if v.label == "int b = input()")
    assert sdg.has_edge(first, second, FLOW)


def test_vertex_and_edge_counts_are_stable():
    _p, _i, sdg = load_fig1()
    # p has exactly the paper's nine vertices p1-p9 (Fig. 3); main has
    # 27 (the paper's m1-m23 minus the format-string vertex m22, plus
    # its own ret formal-out and the vertices of "return 0;").
    assert len([v for v in sdg.vertices.values() if v.proc == "p"]) == 9
    assert sdg.vertex_count() == 36
    assert sdg.edge_count() > 70
