"""Relocatable compiled-PDS payloads and the fused process backend.

``compiled_payload``/``compiled_from_payload`` promise a deterministic
flat-array form of :class:`repro.pds.kernel.CompiledPDS` that crosses
process boundaries and survives the store, and that a worker adopting
a shipped payload computes *exactly* what it would have computed by
recompiling.  The fused process backend promises that partitioning a
cold criterion batch into per-worker sub-batches changes scheduling
only — results, artifacts, and persisted ``__sats__`` bytes stay
byte-identical across {thread, process} x {fused on, off}.  This suite
pins both layers plus the degrade paths (corrupt payloads recompile,
never crash; a failing ``slice_many_programs`` job names itself after
its siblings settle).

``repro.open_session`` memoizes sessions by source hash; every test
here builds :class:`SlicingSession` directly so nothing is memo-warm.
"""

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import ProgramSliceError, SlicingSession, slice_many_programs
from repro.fsa.serialize import automaton_to_payload
from repro.lang import pretty
from repro.pds.kernel import (
    PAYLOAD_VERSION,
    adopt_payload,
    compiled_from_payload,
    compiled_payload,
    compiled_pds,
    payload_digest,
    prestar_many_csr,
)
from repro.store import SliceStore
from repro.workloads.generator import GenConfig, generate_program

N_PROGRAMS = 26
MAX_CRITERIA = 4


def _source(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return pretty(program)


def _criteria(session):
    prints = len(session.sdg.print_call_vertices())
    criteria = [("print", index) for index in range(min(prints, MAX_CRITERIA))]
    criteria.append("prints")
    return criteria


def _queries(session, contexts="reachable"):
    from repro.engine.canonical import resolve_criterion_spec

    automata = []
    for criterion in _criteria(session):
        kind, payload = resolve_criterion_spec(session.sdg, criterion)
        automata.append(session._query_automaton(kind, payload, contexts))
    return automata


def _payloads(automata):
    return [automaton_to_payload(a) for a in automata]


def _session_payload(session):
    return compiled_payload(compiled_pds(session.encoding.pds))


def _child_digest(source):
    """Executed in a worker process: the payload digest a *different*
    interpreter computes for the same source."""
    session = SlicingSession(source, kernel="csr")
    return payload_digest(_session_payload(session))


def _sat_bytes(root):
    """The persisted ``__sats__`` entries of a store, name -> bytes
    (the index sidecar rides under ``idx-`` names and is excluded)."""
    found = {}
    sats = os.path.join(root, "__sats__")
    if not os.path.isdir(sats):
        return found
    for name in sorted(os.listdir(sats)):
        if not name.endswith(".slc") or name.startswith("idx-"):
            continue
        with open(os.path.join(sats, name), "rb") as handle:
            found[name] = handle.read()
    return found


# -- payload round-trip properties -------------------------------------------------


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_payload_round_trip_behavioral_on_corpus(seed):
    """``compiled_from_payload(compiled_payload(c))`` is behaviorally
    identical: a session that adopted the payload saturates every
    criterion to the same bytes as the session that compiled."""
    source = _source(seed)
    compiler = SlicingSession(source, kernel="csr")
    payload = _session_payload(compiler)

    # The payload is a fixed point of its own codec...
    rebuilt = compiled_from_payload(payload)
    assert compiled_payload(rebuilt) == payload

    # ...and adopting it onto an independently built (but equal) PDS
    # replaces that session's compile wholesale.
    adopter = SlicingSession(source, kernel="csr")
    sink = {}
    assert adopt_payload(adopter.encoding.pds, payload, sink)
    assert sink == {"pds_payload_hits": 1}
    assert compiled_pds(adopter.encoding.pds) is not None
    assert _payloads(
        prestar_many_csr(adopter.encoding.pds, _queries(adopter), trim=True)
    ) == _payloads(
        prestar_many_csr(compiler.encoding.pds, _queries(compiler), trim=True)
    )


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 5))
def test_payload_digest_stable_across_processes(seed):
    source = _source(seed)
    parent = payload_digest(_session_payload(SlicingSession(source, kernel="csr")))
    with ProcessPoolExecutor(max_workers=1) as pool:
        child = pool.submit(_child_digest, source).result()
    assert parent == child


def test_payload_digest_separates_programs():
    digests = {
        payload_digest(_session_payload(SlicingSession(_source(seed), kernel="csr")))
        for seed in range(4)
    }
    assert len(digests) == 4


# -- degrade to recompile ----------------------------------------------------------


def _corruptions(payload):
    tag, version, loc_codes, loc_strs, sym_codes, sym_strs, rule_ints = payload
    return {
        "not-a-tuple": list(payload),
        "short-tuple": payload[:6],
        "wrong-tag": ("cpsd",) + payload[1:],
        "wrong-version": (tag, version + 1) + payload[2:],
        "truncated-rules": payload[:6] + (rule_ints[:-1],),
        "loc-code-out-of-range": (
            tag, version, loc_codes + (-len(loc_strs) - 7,),
            loc_strs, sym_codes, sym_strs, rule_ints,
        ),
        "duplicate-locations": (
            tag, version, loc_codes + (loc_codes[0],),
            loc_strs, sym_codes, sym_strs, rule_ints,
        ),
        "rule-target-out-of-range": payload[:6]
        + ((len(loc_codes) + 9,) + rule_ints[1:],),
        "stray-string": (tag, version, loc_codes, loc_strs + (7,),
                         sym_codes, sym_strs, rule_ints),
    }


@pytest.mark.smoke
def test_corrupt_payloads_degrade_to_recompile():
    """Every malformed payload is rejected (counted, never raised) and
    the session recompiles to the same answer."""
    source = _source(1)
    payload = _session_payload(SlicingSession(source, kernel="csr"))
    for name, corrupt in _corruptions(payload).items():
        with pytest.raises(ValueError):
            compiled_from_payload(corrupt)
        victim = SlicingSession(source, kernel="csr")
        sink = {}
        assert not adopt_payload(victim.encoding.pds, corrupt, sink), name
        assert sink == {"pds_payload_misses": 1}, name


def test_corrupt_store_payload_recompiles_and_heals(tmp_path):
    """A corrupt ``__pds__`` entry costs one payload miss, the session
    recompiles (same slice bytes as storeless), and re-persists a good
    payload that the next session adopts."""
    source = _source(2)
    cache = str(tmp_path / "cache")
    good = _session_payload(SlicingSession(source, kernel="csr"))
    seeder = SliceStore(cache)
    src_hash = hashlib.sha256(source.encode("utf-8")).hexdigest()
    seeder.put_pds(src_hash, _corruptions(good)["truncated-rules"])

    victim = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    assert victim.source_hash == src_hash
    assert victim.stats["pds_payload_misses"] == 1
    assert victim.stats["pds_payload_hits"] == 0
    reference = SlicingSession(source, kernel="csr")
    assert automaton_to_payload(
        victim.slice(("print", 0)).a6
    ) == automaton_to_payload(reference.slice(("print", 0)).a6)

    # The recompile healed the entry in place.
    healed = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    assert healed.stats["pds_payload_hits"] == 1
    assert healed.stats["pds_payload_misses"] == 0


# -- store-backed adoption ---------------------------------------------------------


def test_store_persists_and_adopts_payload(tmp_path):
    source = _source(3)
    cache = str(tmp_path / "cache")
    writer = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    # A fresh store has no payload: one consult-miss, one compile-miss,
    # then the compile is persisted under the front-half hash.
    assert writer.stats["pds_payload_misses"] == 1
    assert writer.stats["kernel_compile_misses"] == 1
    assert writer.store.has_pds(writer.source_hash)
    assert writer.store.stats()["tables"].get("pds") == 1

    reader_store = SliceStore(cache)
    reader = SlicingSession(source, store=reader_store, kernel="csr")
    assert reader.stats["pds_payload_hits"] == 1
    assert reader.stats["pds_payload_misses"] == 0
    # Adoption *replaces* the compile: the session's compiled PDS is a
    # cache hit on the adopted object, never a recompile.
    assert reader.stats["kernel_compile_misses"] == 0
    assert reader.stats["kernel_compile_hits"] >= 1
    assert reader_store._counters["pds_hits"] == 1
    assert automaton_to_payload(
        reader.slice(("print", 0)).a6
    ) == automaton_to_payload(writer.slice(("print", 0)).a6)


@pytest.mark.smoke
def test_object_kernel_never_touches_payloads(tmp_path):
    session = SlicingSession(
        _source(4), store=SliceStore(str(tmp_path / "cache")), kernel="object"
    )
    assert session.stats["pds_payload_hits"] == 0
    assert session.stats["pds_payload_misses"] == 0
    assert not session.store.has_pds(session.source_hash)


# -- fused process backend: byte identity + counters -------------------------------


def _slice_config(source, criteria, cache, backend, mode):
    session = SlicingSession(source, store=SliceStore(cache), kernel="csr")
    results = session.slice_many(
        criteria, backend=backend, max_workers=2, batch_saturation=mode
    )
    rendered = [
        (
            automaton_to_payload(r.a1),
            automaton_to_payload(r.a6),
            r.closure_elems(),
            r.version_counts(),
            r.footprint,
        )
        for r in results
    ]
    return session, rendered


@pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 3))
def test_backend_mode_matrix_byte_identical(seed, tmp_path):
    """{thread, process} x {fused on, off}: identical rendered slices
    and identical persisted ``__sats__`` bytes."""
    source = _source(seed)
    criteria = _criteria(SlicingSession(source, kernel="csr"))
    rendered = {}
    sats = {}
    for backend in ("thread", "process"):
        for mode in ("on", "off"):
            cache = str(tmp_path / ("%s-%s" % (backend, mode)))
            session, rendered[(backend, mode)] = _slice_config(
                source, criteria, cache, backend, mode
            )
            sats[(backend, mode)] = _sat_bytes(cache)
            if backend == "process" and mode == "on":
                assert session.stats["fused_process_batches"] >= 1, seed
    reference = rendered[("thread", "off")]
    sat_reference = sats[("thread", "off")]
    assert sat_reference
    for config in rendered:
        assert rendered[config] == reference, (seed, config)
        assert sats[config] == sat_reference, (seed, config)


@pytest.mark.smoke
def test_fused_process_counters():
    source = _source(5)
    fused = SlicingSession(source, kernel="csr")
    criteria = _criteria(fused)
    fused.slice_many(
        criteria, backend="process", max_workers=2, batch_saturation="on"
    )
    stats = fused.stats
    assert stats["fused_process_batches"] >= 1
    sizes = stats["fused_process_subbatch_sizes"]
    assert len(sizes) == stats["fused_process_batches"]
    # Every distinct cold criterion landed in exactly one sub-batch.
    assert sum(sizes) == len(set(criteria))
    assert all(size >= 1 for size in sizes)

    plain = SlicingSession(source, kernel="csr")
    plain.slice_many(
        criteria, backend="process", max_workers=2, batch_saturation="off"
    )
    assert plain.stats["fused_process_batches"] == 0
    assert plain.stats["fused_process_subbatch_sizes"] == ()


@pytest.mark.smoke
def test_warm_session_ships_nothing_to_the_pool():
    session = SlicingSession(_source(6), kernel="csr")
    criteria = _criteria(session)
    session.slice_many(criteria, batch_saturation="on")
    batches_before = session.stats["fused_process_batches"]
    warm = session.slice_many(
        criteria, backend="process", max_workers=2, batch_saturation="on"
    )
    assert len(warm) == len(criteria)
    assert session.stats["fused_process_batches"] == batches_before


# -- slice_many_programs error handling --------------------------------------------


@pytest.mark.smoke
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_failing_job_names_itself_after_siblings_settle(backend, tmp_path):
    good = _source(7)
    bad = "int main() { this is not tinyc"
    cache = str(tmp_path / "cache")
    jobs = [
        (good, [("print", 0)]),
        (bad, [("print", 0)]),
        (_source(8), [("print", 0)]),
    ]
    with pytest.raises(ProgramSliceError) as info:
        slice_many_programs(jobs, backend=backend, cache_dir=cache)
    error = info.value
    assert error.job_index == 1
    digest = hashlib.sha256(bad.encode("utf-8")).hexdigest()[:12]
    assert error.source_digest == digest
    assert "job 1" in str(error) and digest in str(error)
    assert error.__cause__ is not None
    # The siblings settled: their work reached the shared store even
    # though the batch as a whole raised.
    survivor = SlicingSession(good, store=SliceStore(cache), kernel="csr")
    assert survivor.stats["front_half_from_store"]


@pytest.mark.smoke
def test_first_failing_job_wins_in_input_order():
    jobs = [
        ("int main() { broken", [("print", 0)]),
        ("also broken(", [("print", 0)]),
    ]
    with pytest.raises(ProgramSliceError) as info:
        slice_many_programs(jobs, backend="thread")
    assert info.value.job_index == 0


def test_largest_first_scheduling_preserves_result_order(tmp_path):
    """Jobs are submitted largest-source-first; results still come back
    in input order, byte-identical to one-at-a-time runs."""
    sources = sorted((_source(seed) for seed in range(9, 13)), key=len)
    jobs = [(source, [("print", 0), "prints"]) for source in sources]
    batch = slice_many_programs(jobs, backend="thread", kernel="csr")
    for (source, criteria), results in zip(jobs, batch):
        solo = SlicingSession(source, kernel="csr")
        for criterion, result in zip(criteria, results):
            assert automaton_to_payload(result.a6) == automaton_to_payload(
                solo.slice(criterion).a6
            ), (len(source), criterion)


# -- payload versioning ------------------------------------------------------------


@pytest.mark.smoke
def test_payload_version_is_pinned():
    """Bump ``PAYLOAD_VERSION`` whenever the payload layout changes —
    old store entries must be rejected, not misread."""
    assert PAYLOAD_VERSION == 1
    payload = _session_payload(SlicingSession(_source(0), kernel="csr"))
    assert payload[0] == "cpds" and payload[1] == PAYLOAD_VERSION
