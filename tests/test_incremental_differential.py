"""Mutation-differential testing of incremental re-slicing.

The pin for :meth:`SlicingSession.update_source`: apply generated
single-procedure edits to the differential corpus (the same generator
programs :mod:`tests.test_differential_baselines` uses) and assert that
every slice served by the *updated* session is byte-identical to what a
cold session on the edited text computes — same rendered program text,
same closure elements, same version counts — and that the assembled
front half is structurally identical to a cold build (same vertex ids,
same edges, same call-site labels).

Edit kinds (each applied to one procedure):

* rename a local variable (consistently, within the procedure);
* add a dead statement (an unused local declaration);
* change a numeric constant;
* duplicate an existing call statement;
* remove a call statement.

The corpus is generated deterministically at import time; a meta-test
pins its size at >= 25 edits so the suite cannot silently shrink.
"""

import random

import pytest

from repro.engine import SlicingSession
from repro.lang import ast_nodes as A
from repro.lang import parse, pretty
from repro.workloads.generator import GenConfig, generate_program

#: criteria checked per program (matching the differential harness cap)
MAX_CRITERIA = 4

SEEDS = range(10)


# -- mutators ----------------------------------------------------------------------
#
# Each mutator takes a freshly parsed (unchecked) AST plus an rng and
# returns an edited source text, or None when inapplicable.  Working on
# a fresh parse keeps the mutation purely syntactic.


def _all_idents(program):
    names = set()
    for proc in program.procs:
        names.add(proc.name)
        names.update(param.name for param in proc.params)
        for stmt in A.walk_stmts(proc.body):
            if isinstance(stmt, (A.Assign, A.LocalDecl)):
                names.add(stmt.name)
            for expr in A.stmt_exprs(stmt):
                names.update(A.expr_vars(expr))
    names.update(decl.name for decl in program.globals)
    return names


def _fresh_name(program, base):
    names = _all_idents(program)
    candidate = base
    index = 0
    while candidate in names:
        index += 1
        candidate = "%s%d" % (base, index)
    return candidate


def _rename_in_expr(expr, old, new):
    for sub in A.walk_exprs(expr):
        if isinstance(sub, A.Var) and sub.name == old:
            sub.name = new


def mutate_rename_local(program, rng):
    candidates = [
        (proc, stmt)
        for proc in program.procs
        for stmt in A.walk_stmts(proc.body)
        if isinstance(stmt, A.LocalDecl) and not stmt.is_fnptr
    ]
    if not candidates:
        return None
    proc, decl = rng.choice(candidates)
    old, new = decl.name, _fresh_name(program, decl.name + "_r")
    for stmt in A.walk_stmts(proc.body):
        if isinstance(stmt, (A.Assign, A.LocalDecl)) and stmt.name == old:
            stmt.name = new
        for expr in A.stmt_exprs(stmt):
            _rename_in_expr(expr, old, new)
    return pretty(program)


def mutate_add_dead_stmt(program, rng):
    proc = rng.choice(program.procs)
    name = _fresh_name(program, "dead")
    proc.body.stmts.insert(0, A.LocalDecl(name, A.Num(7), False))
    return pretty(program)


def mutate_change_constant(program, rng):
    candidates = [
        num
        for proc in program.procs
        for stmt in A.walk_stmts(proc.body)
        for expr in A.stmt_exprs(stmt)
        for num in A.walk_exprs(expr)
        if isinstance(num, A.Num)
    ]
    if not candidates:
        return None
    rng.choice(candidates).value += 1
    return pretty(program)


def _copy_expr(expr):
    from repro.core.executable import _copy_expr as copy_expr

    return copy_expr(expr)


def mutate_duplicate_call(program, rng):
    candidates = [
        (proc, block, index)
        for proc in program.procs
        for block, index in _call_stmt_positions(proc.body)
    ]
    if not candidates:
        return None
    proc, block, index = rng.choice(candidates)
    call = block.stmts[index].call
    copy = A.CallStmt(A.CallExpr(call.callee, [_copy_expr(arg) for arg in call.args]))
    copy.call.is_indirect = call.is_indirect
    block.stmts.insert(index + 1, copy)
    return pretty(program)


def mutate_remove_call(program, rng):
    candidates = [
        (proc, block, index)
        for proc in program.procs
        for block, index in _call_stmt_positions(proc.body)
    ]
    if not candidates:
        return None
    proc, block, index = rng.choice(candidates)
    del block.stmts[index]
    return pretty(program)


def _call_stmt_positions(block):
    positions = []
    stack = [block]
    while stack:
        current = stack.pop()
        for index, stmt in enumerate(current.stmts):
            if isinstance(stmt, A.CallStmt):
                positions.append((current, index))
            elif isinstance(stmt, A.If):
                stack.append(stmt.then)
                if stmt.els is not None:
                    stack.append(stmt.els)
            elif isinstance(stmt, A.While):
                stack.append(stmt.body)
    return positions


MUTATORS = [
    mutate_rename_local,
    mutate_add_dead_stmt,
    mutate_change_constant,
    mutate_duplicate_call,
    mutate_remove_call,
]


# -- corpus ------------------------------------------------------------------------


def _base_source(seed):
    program, _info = generate_program(GenConfig(seed=seed, n_procs=3))
    return pretty(program)


def _build_corpus():
    corpus = []
    for seed in SEEDS:
        base = _base_source(seed)
        for mutator in MUTATORS:
            rng = random.Random(1000 * seed + MUTATORS.index(mutator))
            edited = mutator(parse(base), rng)
            if edited is None or edited == base:
                continue
            corpus.append(
                ("seed%d-%s" % (seed, mutator.__name__[7:]), base, edited)
            )
    return corpus


CORPUS = _build_corpus()


def test_mutation_corpus_is_large_enough():
    """The acceptance floor: ~30 generated single-procedure edits."""
    assert len(CORPUS) >= 25
    kinds = {label.split("-", 1)[1] for label, _base, _edited in CORPUS}
    assert kinds == {
        "rename_local",
        "add_dead_stmt",
        "change_constant",
        "duplicate_call",
        "remove_call",
    }


# -- the differential check --------------------------------------------------------


def _front_half_fingerprint(sdg):
    return (
        {
            vid: (vertex.kind, vertex.proc, vertex.label, vertex.role, vertex.site_label)
            for vid, vertex in sdg.vertices.items()
        },
        set(sdg._edge_set),
        {
            label: (site.caller, site.callee, site.call_vertex,
                    dict(site.actual_ins), dict(site.actual_outs))
            for label, site in sdg.call_sites.items()
        },
        dict(sdg.entry_vertex),
        {name: dict(roles) for name, roles in sdg.formal_ins.items()},
        {name: dict(roles) for name, roles in sdg.formal_outs.items()},
    )


@pytest.mark.parametrize(
    "label,base,edited", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_incremental_slices_byte_identical_to_cold(label, base, edited):
    session = SlicingSession(base)
    # Warm the session the way an editor loop would: slice everything
    # once before the edit, so the update has real state to invalidate.
    base_prints = len(session.sdg.print_call_vertices())
    session.slice_many(
        [("print", index) for index in range(min(base_prints, MAX_CRITERIA))]
    )

    summary = session.update_source(edited)
    cold = SlicingSession(edited)

    # The assembled front half is the cold front half: same vertex ids,
    # labels, edges, and call sites (statement uids aside).
    assert _front_half_fingerprint(session.sdg) == _front_half_fingerprint(cold.sdg)

    prints = cold.sdg.print_call_vertices()
    criteria = [("print", index) for index in range(min(len(prints), MAX_CRITERIA))]
    criteria.append("prints")
    for criterion in criteria:
        incremental = session.slice(criterion)
        reference = cold.slice(criterion)
        assert incremental.closure_elems() == reference.closure_elems(), (
            label,
            criterion,
        )
        assert incremental.version_counts() == reference.version_counts(), (
            label,
            criterion,
        )
        assert pretty(session.executable(criterion).program) == pretty(
            cold.executable(criterion).program
        ), (label, criterion)
    # The summary is coherent: every procedure is accounted for.
    assert summary["procs_reused"] + summary["procs_rebuilt"] == len(
        cold.sdg.procedures()
    )


def test_whitespace_and_comment_edit_reuses_everything():
    base = _base_source(0)
    session = SlicingSession(base)
    session.slice("prints")
    edited = "// a comment\n" + base.replace("\n", "\n\n", 3) + "\n/* trailing */\n"
    summary = session.update_source(edited)
    assert summary["fast_path"] is True
    assert summary["procs_rebuilt"] == 0
    assert summary["results_kept"] >= 1 and summary["results_dropped"] == 0
    cold = SlicingSession(edited)
    assert pretty(session.executable("prints").program) == pretty(
        cold.executable("prints").program
    )


@pytest.mark.parametrize(
    "label,base,edited", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_cross_revision_discovery_byte_identical_to_cold(
    label, base, edited, tmp_path
):
    """The cross-process variant of the differential: a session on the
    *base* text files its artifacts in a store and exits; a brand-new
    store-backed session on the *edited* text (no ``update_source``, no
    live donor) discovers whatever survives through the footprint index
    — and every slice it serves must still be byte-identical to a
    storeless cold session."""
    from repro.store import SliceStore

    cache = str(tmp_path / "cache")
    writer = SlicingSession(base, store=SliceStore(cache))
    base_prints = len(writer.sdg.print_call_vertices())
    writer.slice_many(
        [("print", index) for index in range(min(base_prints, MAX_CRITERIA))]
    )
    del writer  # the donor process is gone

    reader = SlicingSession(edited, store=SliceStore(cache))
    cold = SlicingSession(edited)
    assert _front_half_fingerprint(reader.sdg) == _front_half_fingerprint(cold.sdg)

    prints = cold.sdg.print_call_vertices()
    criteria = [("print", index) for index in range(min(len(prints), MAX_CRITERIA))]
    criteria.append("prints")
    for criterion in criteria:
        discovered = reader.slice(criterion)
        reference = cold.slice(criterion)
        assert discovered.closure_elems() == reference.closure_elems(), (
            label,
            criterion,
        )
        assert discovered.version_counts() == reference.version_counts(), (
            label,
            criterion,
        )
        assert pretty(reader.executable(criterion).program) == pretty(
            cold.executable(criterion).program
        ), (label, criterion)


def test_chained_updates_stay_faithful():
    """Several updates in sequence (the editor loop) keep serving
    cold-identical results."""
    base = _base_source(1)
    session = SlicingSession(base)
    session.slice("prints")
    current = base
    for step, mutator in enumerate(
        [mutate_change_constant, mutate_add_dead_stmt, mutate_rename_local]
    ):
        edited = mutator(parse(current), random.Random(step))
        if edited is None:
            continue
        session.update_source(edited)
        cold = SlicingSession(edited)
        assert pretty(session.executable("prints").program) == pretty(
            cold.executable("prints").program
        ), step
        current = edited
