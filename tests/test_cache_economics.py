"""Cache economics and cross-revision discovery.

Two halves of one story (ISSUE 8):

* **Cost-aware eviction** — under a tight ``max_bytes`` cap the store
  sheds entries cheapest-to-rebuild first (slim results, then
  per-procedure parts, then Prestar artifacts, then Poststars, with
  front-half bundles and saturation indexes last), using recency only
  as the tie-break within a tier.  The flat-LRU regression is pinned
  by *simulating* the old policy over the same entry set and showing
  it would have dropped the shared Poststar that the tiered policy
  keeps — and that a warm reopen after real eviction answers without
  re-saturating it.

* **Cross-revision discovery** — a cold process opening *edited*
  source adopts the previous revision's saturation artifacts through
  the footprint-indexed ``__sats__`` lookup, with no live donor
  session, composing with the ``__procs__`` partial front-half path;
  adopted artifacts must yield byte-identical results.
"""

import os
import time

import pytest

from repro.cli import build_parser
from repro.engine import SlicingSession, stable_key_digest
from repro.engine.canonical import REACHABLE_KEY
from repro.lang import pretty
from repro.store import SliceStore
from repro.store.store import (
    TIER_PROC,
    TIER_RESULT,
    TIER_SAT_POSTSTAR,
    TIER_SAT_PRESTAR,
)

pytestmark = pytest.mark.smoke

SOURCE = (
    "int g;\n"
    "int acc;\n"
    "void helper() { int t = 2; g = t; }\n"
    "void noise() { acc = acc + 5; }\n"
    'int main() { helper(); noise(); print("%d", g); print("%d", acc); return 0; }\n'
)

#: label-only edit (changed constant): dependence shape preserved, so
#: every artifact transfers across the revisions
LABEL_EDIT = SOURCE.replace("acc + 5", "acc + 9")
#: structural edit confined to ``noise`` (new vertex): artifacts whose
#: footprint avoids ``noise`` survive, the rest do not
STRUCTURAL_EDIT = SOURCE.replace(
    "acc = acc + 5;", "acc = acc + 5; int z = 1; acc = acc + z;"
)

POSTSTAR_DIGEST = stable_key_digest(REACHABLE_KEY)


def _entry_files(store):
    result = []
    for root, _dirs, files in os.walk(store.cache_dir):
        result.extend(os.path.join(root, name) for name in files)
    return sorted(result)


def _set_age(path, seconds_ago):
    stamp = time.time() - seconds_ago
    os.utime(path, (stamp, stamp))


def _by_table(store):
    """table name -> [(path, size, mtime)] for every entry on disk."""
    groups = {}
    for entry in store._entries():
        groups.setdefault(store._entry_table(entry[0]), []).append(entry)
    return groups


# -- eviction tiers ----------------------------------------------------------------


def test_eviction_sheds_cheap_tiers_first(tmp_path):
    """Under pressure the store drops slim results and parts while the
    Poststar, the front-half bundle, and the index survive — even when
    the expensive entries are the *oldest* files in the cache."""
    cache = str(tmp_path / "cache")
    session = SlicingSession(SOURCE, store=SliceStore(cache))
    session.slice(("print", 0))
    session.slice(("print", 1))
    store = SliceStore(cache)
    groups = _by_table(store)
    expected = {"fronthalf", "slice", "proc", "sat", "idx"}
    if session.kernel == "csr":
        # The csr kernel also persists the compiled-PDS payload — a
        # cheap-to-rebuild entry that sheds with the parts tier.
        expected.add("pds")
    assert set(groups) == expected
    shed_tables = tuple(t for t in ("slice", "proc", "pds") if t in groups)

    # Make everything expensive look LRU-stale: flat LRU would evict
    # the saturations and the bundle first.
    for table in ("sat", "fronthalf", "idx"):
        for path, _size, _mtime in groups[table]:
            _set_age(path, 3600)
    keep_bytes = sum(
        size
        for table in ("fronthalf", "sat", "idx")
        for _path, size, _mtime in groups[table]
    )
    shed_bytes = sum(
        size
        for table in shed_tables
        for _path, size, _mtime in groups[table]
    )
    # Cap so that shedding every result and part suffices — and is
    # necessary (the cut is bigger than any single cheap entry).
    cap = keep_bytes + shed_bytes // 4
    tight = SliceStore(cache, max_bytes=cap)
    tight.put("ffff" + "0" * 60, "slice", "trigger", "x")  # first write scans

    after = _by_table(SliceStore(cache))
    assert "fronthalf" in after and "sat" in after and "idx" in after
    assert len(after["sat"]) == len(groups["sat"])  # every saturation kept
    assert sum(len(after.get(t, ())) for t in shed_tables) < sum(
        len(groups[t]) for t in shed_tables
    )
    stats = tight.stats()
    assert stats["evictions"] >= 1
    assert stats["total_bytes"] <= cap


def test_flat_lru_would_have_dropped_the_poststar(tmp_path):
    """The regression pin for the old policy: replaying mtime-only LRU
    over the very entry set the tiered evictor handled shows it would
    have dropped the shared Poststar (the oldest file) even though
    shedding slim results alone would have fit the cut."""
    cache = str(tmp_path / "cache")
    session = SlicingSession(SOURCE, store=SliceStore(cache))
    session.slice(("print", 0))
    session.slice(("print", 1))
    store = SliceStore(cache)
    groups = _by_table(store)
    poststar_path = store._entry_path(
        "__sats__", "sat", store.sat_name(session.source_hash, POSTSTAR_DIGEST)
    )
    _set_age(poststar_path, 7200)  # the LRU victim
    entries = store._entries()
    total = sum(size for _path, size, _mtime in entries)
    cap = total - 1  # any eviction at all must shed something

    # The old policy, replayed: oldest mtime first, regardless of cost.
    simulated = sorted(entries, key=lambda entry: entry[2])
    lru_dropped, running = set(), total
    for path, size, _mtime in simulated:
        if running <= cap:
            break
        lru_dropped.add(path)
        running -= size
    assert poststar_path in lru_dropped  # flat LRU sacrifices seconds of work

    # The tiered policy on the same set keeps it.
    tight = SliceStore(cache, max_bytes=cap)
    tight.put("ffff" + "1" * 60, "slice", "trigger", "x")
    assert os.path.exists(poststar_path)
    assert tight.stats()["evictions"] >= 1
    # Cheap slim results took the cut instead (the trigger put added a
    # fresh slice entry, so compare original paths, not counts).
    surviving = {path for path, _size, _mtime in SliceStore(cache)._entries()}
    assert {path for path, _size, _mtime in groups["slice"]} - surviving


def test_mtime_is_the_tiebreak_within_a_tier(tmp_path):
    """Within one cost tier the oldest entry goes first (reads bump
    mtime, so this is LRU exactly where LRU is the right call)."""
    store = SliceStore(str(tmp_path / "cache"), max_bytes=10_000_000)
    payload = "z" * 2000
    hash_a, hash_b = "a" * 64, "b" * 64
    store.put(hash_a, "slice", "old", payload)
    store.put(hash_b, "slice", "new", payload)
    old_path = store._entry_path(hash_a, "slice", "old")
    _set_age(old_path, 3600)
    sizes = {path: size for path, size, _mtime in store._entries()}
    tight = SliceStore(store.cache_dir, max_bytes=sum(sizes.values()) - 1)
    tight.put("c" * 64, "slice", "trigger", "x")
    assert not os.path.exists(old_path)
    assert os.path.exists(store._entry_path(hash_b, "slice", "new"))


def test_entry_tiers_classified_through_the_index(tmp_path):
    """The evictor ranks saturation files by the *kind* in their index
    record — prestar below poststar — without unpickling artifacts."""
    cache = str(tmp_path / "cache")
    session = SlicingSession(SOURCE, store=SliceStore(cache))
    session.slice(("print", 0))
    store = SliceStore(cache)
    entries = store._entries()
    sat_tiers, pruned = store._gc_sat_indexes(entries)
    assert pruned == 0
    tiers = sorted(sat_tiers.values())
    assert tiers == [TIER_SAT_PRESTAR, TIER_SAT_POSTSTAR]
    for path, _size, _mtime in entries:
        table = store._entry_table(path)
        if table == "slice":
            assert store._entry_tier(path, sat_tiers) == TIER_RESULT
        elif table == "proc":
            assert store._entry_tier(path, sat_tiers) == TIER_PROC
    # An artifact file with no index record defaults to the expensive
    # tier: when in doubt, keep it.
    assert store._entry_tier(
        os.path.join(cache, "__sats__", "sat-deadbeef.slc"), sat_tiers
    ) == TIER_SAT_POSTSTAR


def test_warm_reopen_after_eviction_skips_poststar(tmp_path):
    """The acceptance scenario: a cap that forces eviction, then a
    fresh process re-asking a seen criterion.  Cost-aware eviction
    dropped the slim results but kept the saturations, so the reopen
    answers with zero saturations computed."""
    cache = str(tmp_path / "cache")
    session = SlicingSession(SOURCE, store=SliceStore(cache))
    session.slice(("print", 0))
    session.slice(("print", 1))
    store = SliceStore(cache)
    groups = _by_table(store)
    slice_bytes = sum(size for _path, size, _mtime in groups["slice"])
    total = sum(size for _path, size, _mtime in store._entries())
    # Old files first under flat LRU would be the sats; age them.
    for path, _size, _mtime in groups["sat"]:
        _set_age(path, 3600)
    tight = SliceStore(cache, max_bytes=total - slice_bytes // 2)
    tight.put("ffff" + "2" * 60, "slice", "trigger", "x")
    assert tight.stats()["evictions"] >= 1

    reader = SlicingSession(SOURCE, store=SliceStore(cache))
    result = reader.slice(("print", 0))
    assert reader.stats["sat_persist_misses"] == 0  # nothing re-saturated
    assert reader.stats["sat_persist_hits"] >= 1
    reference = SlicingSession(SOURCE).slice(("print", 0))
    assert pretty(result.source_sdg.program) == pretty(
        reference.source_sdg.program
    )
    assert result.version_counts() == reference.version_counts()


def test_index_gc_prunes_stale_records_and_counts(tmp_path):
    """Records whose artifact file was evicted (or deleted) out from
    under the index are pruned on the next compaction walk, visibly in
    ``gc_index_pruned`` and the persisted lifetime counters."""
    cache = str(tmp_path / "cache")
    session = SlicingSession(SOURCE, store=SliceStore(cache))
    session.slice(("print", 0))
    store = SliceStore(cache)
    src_hash = session.source_hash
    before = store.get_sat_index(src_hash)
    assert len(before["artifacts"]) == 2
    for path, _size, _mtime in _by_table(store)["sat"]:
        os.unlink(path)
    store._evict()  # a compaction walk (under cap: GC only)
    after = store.get_sat_index(src_hash)
    assert after is not None and after["artifacts"] == {}
    assert store.stats()["gc_index_pruned"] == 2
    # The lifetime counters survive into a fresh store object.
    lifetime = SliceStore(cache).stats()["lifetime"]
    assert lifetime["gc_index_pruned"] == 2
    assert lifetime["compactions"] >= 1
    # With the records gone *and* the revision's front half gone, the
    # index file itself is dropped on the next walk.
    os.unlink(store._entry_path(src_hash, "fronthalf", None))
    store._evict()
    assert SliceStore(cache).get_sat_index(src_hash) is None


# -- cross-revision discovery ------------------------------------------------------


def test_cold_process_adopts_after_label_edit(tmp_path):
    """The tentpole scenario: a cold process opening a constant-edited
    text adopts *every* artifact of the previous revision through the
    footprint index — no live donor session, no saturation work — and
    composes with the ``__procs__`` partial front-half path."""
    cache = str(tmp_path / "cache")
    writer = SlicingSession(SOURCE, store=SliceStore(cache))
    writer.slice(("print", 0))
    writer.slice(("print", 1))

    reader = SlicingSession(LABEL_EDIT, store=SliceStore(cache))
    stats = reader.stats
    # Front half: bundle missed (new hash), parts hit for all but the
    # edited procedure.
    assert stats["front_half_from_store"] is False
    assert stats["front_half_parts_total"] == 3
    assert stats["front_half_parts_hits"] == 2
    # Discovery: Poststar + both Prestars adopted.
    assert stats["sats_adopted"] == 3
    assert reader.store.stats()["index_hits"] == 3
    reader.slice(("print", 0))
    reader.slice(("print", 1))
    assert stats["saturation_misses"] == 0  # memo-warm from adoption

    cold = SlicingSession(LABEL_EDIT)
    for index in (0, 1):
        assert pretty(reader.executable(("print", index)).program) == pretty(
            cold.executable(("print", index)).program
        )


def test_adoption_is_refiled_once_per_edit(tmp_path):
    """Adoption re-files survivors (artifacts + index records) under
    the new revision's hash, so the *next* cold open of the same text
    skips discovery entirely and loads directly."""
    cache = str(tmp_path / "cache")
    SlicingSession(SOURCE, store=SliceStore(cache)).slice(("print", 0))
    first = SlicingSession(LABEL_EDIT, store=SliceStore(cache))
    assert first.stats["sats_adopted"] >= 1

    second = SlicingSession(LABEL_EDIT, store=SliceStore(cache))
    assert second.stats["sats_adopted"] == 0  # own index already warm
    second.slice(("print", 0))
    assert second.stats["sat_persist_misses"] == 0


def test_structural_edit_adopts_only_surviving_footprints(tmp_path):
    """Discovery replays ``update_source``'s survival rule: after a
    structural edit inside ``noise``, the empty-contexts Prestar whose
    cone avoids ``noise`` transfers; the Poststar (footprint touches
    everything) does not."""
    cache = str(tmp_path / "cache")
    writer = SlicingSession(SOURCE, store=SliceStore(cache))
    writer.slice(("print", 0), contexts="empty")

    reader = SlicingSession(STRUCTURAL_EDIT, store=SliceStore(cache))
    assert reader.stats["sats_adopted"] == 1
    result = reader.slice(("print", 0), contexts="empty")
    assert reader.stats["saturation_misses"] == 0
    cold = SlicingSession(STRUCTURAL_EDIT)
    assert pretty(
        reader.executable(("print", 0), contexts="empty").program
    ) == pretty(cold.executable(("print", 0), contexts="empty").program)
    assert result.version_counts() == cold.slice(
        ("print", 0), contexts="empty"
    ).version_counts()


def test_reachable_prestar_gated_on_poststar_record(tmp_path):
    """A reachable-contexts Prestar bakes in the donor's Poststar
    language, so it transfers only when the Poststar *record* passes
    the footprint test too — after an edit the Poststar saw, neither
    transfers and the cold session recomputes."""
    cache = str(tmp_path / "cache")
    writer = SlicingSession(SOURCE, store=SliceStore(cache))
    writer.slice(("print", 0))  # reachable contexts (the default)

    reader = SlicingSession(STRUCTURAL_EDIT, store=SliceStore(cache))
    assert reader.stats["sats_adopted"] == 0
    result = reader.slice(("print", 0))
    assert reader.stats["saturation_misses"] == 2  # honest recompute
    cold = SlicingSession(STRUCTURAL_EDIT)
    assert pretty(reader.executable(("print", 0)).program) == pretty(
        cold.executable(("print", 0)).program
    )
    assert result.version_counts() == cold.slice(("print", 0)).version_counts()


def test_evicted_artifact_under_live_index_is_an_index_miss(tmp_path):
    """A record whose artifact file was evicted between indexing and
    discovery counts as ``index_misses`` and falls through to an honest
    recompute — never a crash, never a wrong answer."""
    cache = str(tmp_path / "cache")
    writer = SlicingSession(SOURCE, store=SliceStore(cache))
    writer.slice(("print", 0), contexts="empty")
    store = SliceStore(cache)
    # Prime the size accounting so the reader's own front-half writes
    # don't trigger a compaction walk — the walk's index GC would
    # otherwise prune the stale record before discovery ever reads it.
    store._evict()
    for path, _size, _mtime in _by_table(store)["sat"]:
        os.unlink(path)

    reader = SlicingSession(STRUCTURAL_EDIT, store=store)
    assert reader.stats["sats_adopted"] == 0
    assert store.stats()["index_misses"] >= 1
    cold = SlicingSession(STRUCTURAL_EDIT)
    assert pretty(
        reader.executable(("print", 0), contexts="empty").program
    ) == pretty(cold.executable(("print", 0), contexts="empty").program)


# -- the counters, end to end ------------------------------------------------------


def run_cli(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


def test_cache_stats_surface_economics_counters(tmp_path):
    """``repro cache stats`` (text and ``--json``) reports the new
    economics counters: write/config errors, index hits/misses, and
    the cross-process lifetime GC totals."""
    import json

    cache = str(tmp_path / "cache")
    SlicingSession(SOURCE, store=SliceStore(cache)).slice(("print", 0))
    store = SliceStore(cache)
    for path, _size, _mtime in _by_table(store)["sat"]:
        os.unlink(path)
    store._evict()  # prunes 2 index records into the lifetime sidecar

    text = run_cli(["cache", "stats", "--cache-dir", cache])
    assert "lifetime:" in text and "index records pruned" in text
    assert "write errors" in text

    stats = json.loads(run_cli(["cache", "stats", "--json", "--cache-dir", cache]))
    for counter in ("write_errors", "config_errors", "index_hits", "index_misses"):
        assert counter in stats, counter
    assert stats["lifetime"]["gc_index_pruned"] == 2
    assert stats["lifetime"]["compactions"] >= 1
    assert stats["tables"]["idx"] == 1
