"""Feature-removal tests (§7, Algorithm 2, Fig. 16)."""

from repro.core import executable_program, remove_feature
from repro.lang import ast_nodes as A
from repro.lang import check, parse, pretty
from repro.lang.interp import run_program
from repro.sdg import build_sdg
from repro.workloads.paper_figures import load_fig16


def prod_criterion(program, sdg):
    stmt = next(
        s
        for s in A.walk_stmts(program.proc("main").body)
        if isinstance(s, A.LocalDecl) and s.name == "prod"
    )
    return [sdg.vertex_of_stmt[stmt.uid]]


def test_fig16_feature_removed():
    program, _i, sdg = load_fig16()
    result = remove_feature(sdg, prod_criterion(program, sdg), contexts="empty")
    executable = executable_program(result)
    text = pretty(executable.program)

    # add survives (needed for the sum); tally loses the prod ref param.
    assert "int add(int a, int b)" in text
    tally = executable.program.proc(
        result.specializations_of("tally")[0].name
    )
    param_names = [p.name for p in tally.params]
    assert "prod" not in param_names
    assert "sum" in param_names

    # The product print is gone; the sum print remains.
    prints = [
        s
        for proc in executable.program.procs
        for s in A.walk_stmts(proc.body)
        if isinstance(s, A.Print)
    ]
    assert len(prints) == 1


def test_fig16_sum_behaviour_unchanged():
    program, _i, sdg = load_fig16()
    result = remove_feature(sdg, prod_criterion(program, sdg), contexts="empty")
    executable = executable_program(result)
    original = run_program(program, max_steps=5_000_000)
    reduced = run_program(executable.program, max_steps=5_000_000)
    # Original prints sum then prod; the reduced program prints only the
    # sum, with the same value (1+..+6 = 21).
    assert original.values[0] == 21
    assert reduced.values == [21]
    # And the reduced program does strictly less work.
    assert reduced.steps < original.steps


def test_fig16_useless_mult_specialization_retained():
    """§7: the algorithm keeps a residual specialization of mult and its
    call (useless-code elimination is a separate pass)."""
    program, _i, sdg = load_fig16()
    result = remove_feature(sdg, prod_criterion(program, sdg), contexts="empty")
    assert result.version_counts()["mult"] == 1


def test_feature_removal_single_procedure_complement():
    """Obs. 7.1 for a one-procedure program: removing the forward slice
    of a statement leaves exactly the backward-closed remainder."""
    source = """
    int a; int b;
    int main() {
      a = 1;
      b = 2;
      a = a + 1;
      print("%d", a);
      print("%d", b);
    }
    """
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    seed = next(
        v.vid for v in sdg.vertices.values() if v.label == "b = 2"
    )
    result = remove_feature(sdg, [seed], contexts="empty")
    executable = executable_program(result)
    text = pretty(executable.program)
    assert "b = 2" not in text
    assert "a = a + 1" in text
    reduced = run_program(executable.program)
    assert reduced.values == [2]  # only the a-print remains


def test_feature_removal_whole_program_noop():
    """Removing the forward slice of an unused statement keeps
    behaviour intact."""
    source = """
    int a; int dead;
    int main() {
      a = 1;
      dead = 9;
      print("%d", a);
    }
    """
    program = parse(source)
    info = check(program)
    sdg = build_sdg(program, info)
    seed = next(v.vid for v in sdg.vertices.values() if v.label == "dead = 9")
    result = remove_feature(sdg, [seed], contexts="empty")
    executable = executable_program(result)
    assert run_program(executable.program).values == [1]
