"""FSA library tests: determinize, minimize, reverse, ops, MRD."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsa import (
    FiniteAutomaton,
    complement,
    determinize,
    intersection,
    is_empty,
    language_equal,
    minimize,
    mrd,
    remove_epsilon,
    reverse,
    union,
)
from repro.fsa.automaton import EPSILON
from repro.fsa.ops import is_reverse_deterministic


pytestmark = pytest.mark.smoke


def ab_words(max_len):
    return [w for k in range(max_len + 1) for w in itertools.product("ab", repeat=k)]


def make(transitions, initials=(0,), finals=(1,)):
    auto = FiniteAutomaton(initials=initials, finals=finals)
    for src, symbol, dst in transitions:
        auto.add_transition(src, symbol, dst)
    return auto


@st.composite
def random_nfa(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    finals = draw(st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1))
    auto = FiniteAutomaton(initials=[0], finals=finals)
    count = draw(st.integers(min_value=0, max_value=12))
    for _ in range(count):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        symbol = draw(st.sampled_from("ab"))
        auto.add_transition(src, symbol, dst)
    return auto


# -- basics -----------------------------------------------------------------


def test_accepts_nfa():
    auto = make([(0, "a", 1), (0, "a", 2), (2, "b", 1)])
    assert auto.accepts(["a"])
    assert auto.accepts(["a", "b"])
    assert not auto.accepts(["b"])


def test_epsilon_closure_and_accepts():
    auto = make([(0, EPSILON, 1), (1, "a", 2)], finals=(2,))
    assert auto.accepts(["a"])
    assert not auto.accepts([])
    assert auto.epsilon_closure([0]) == {0, 1}


def test_trim_removes_dead_and_unreachable():
    auto = make([(0, "a", 1), (2, "a", 1), (0, "b", 3)])
    trimmed = auto.trim()
    assert 2 not in trimmed.states  # unreachable
    assert 3 not in trimmed.states  # dead
    assert trimmed.accepts(["a"])


def test_enumerate_words():
    auto = make([(0, "a", 1), (1, "b", 1)])
    words = auto.enumerate_words(3)
    assert ("a",) in words
    assert ("a", "b", "b") in words
    assert ("b",) not in words


def test_is_deterministic():
    dfa = make([(0, "a", 1)])
    assert dfa.is_deterministic()
    nfa = make([(0, "a", 1), (0, "a", 0)])
    assert not nfa.is_deterministic()


# -- determinize / minimize -----------------------------------------------------


def test_determinize_equivalent():
    auto = make([(0, "a", 1), (0, "a", 0), (0, "b", 0)])
    dfa = determinize(auto)
    assert dfa.is_deterministic()
    for word in ab_words(5):
        assert auto.accepts(word) == dfa.accepts(word)


def test_minimize_merges_equivalent_states():
    # two paths to equivalent accepting states
    auto = make([(0, "a", 1), (0, "b", 2)], finals=(1, 2))
    minimal = minimize(determinize(auto))
    assert len(minimal.states) == 2


def test_minimize_empty_language():
    auto = make([(0, "a", 1)], finals=())
    auto.add_final(5)  # unreachable final
    minimal = minimize(determinize(auto))
    assert not minimal.states


def test_minimal_dfa_canonical():
    # (a|b)*b : minimal DFA has 2 states
    auto = FiniteAutomaton(initials=[0], finals=[1])
    for symbol in "ab":
        auto.add_transition(0, symbol, 0)
    auto.add_transition(0, "b", 1)
    minimal = minimize(determinize(auto))
    assert len(minimal.states) == 2


# -- reverse / complement / products ----------------------------------------------


def test_reverse_language():
    auto = make([(0, "a", 2), (2, "b", 1)])
    rev = reverse(auto)
    assert rev.accepts(["b", "a"])
    assert not rev.accepts(["a", "b"])


def test_complement():
    auto = make([(0, "a", 1)])
    comp = complement(auto, {"a", "b"})
    for word in ab_words(4):
        assert comp.accepts(word) == (not auto.accepts(word))


def test_complement_of_empty():
    comp = complement(FiniteAutomaton(initials=[0]), {"a"})
    assert comp.accepts([])
    assert comp.accepts(["a", "a"])


def test_intersection():
    ends_b = FiniteAutomaton(initials=[0], finals=[1])
    for symbol in "ab":
        ends_b.add_transition(0, symbol, 0)
    ends_b.add_transition(0, "b", 1)
    starts_a = make([(0, "a", 1), (1, "a", 1), (1, "b", 1)])
    product = intersection(determinize(ends_b), starts_a)
    assert product.accepts(["a", "b"])
    assert not product.accepts(["b"])
    assert not product.accepts(["a"])


def test_union():
    left = make([(0, "a", 1)])
    right = make([(0, "b", 1)])
    combined = union(left, right)
    assert combined.accepts(["a"])
    assert combined.accepts(["b"])
    assert not combined.accepts(["a", "b"])


def test_remove_epsilon():
    auto = make([(0, EPSILON, 1), (1, "a", 2), (2, EPSILON, 3)], finals=(3,))
    clean = remove_epsilon(auto)
    assert not clean.has_epsilon()
    for word in ab_words(3):
        assert auto.accepts(word) == clean.accepts(word)


def test_language_equal_positive_and_negative():
    a1 = make([(0, "a", 1), (1, "a", 1)])
    a2 = make([(0, "a", 1), (1, "a", 0)], finals=(1, 0))
    # a+ vs (aa)*|a(aa)* -- a2 accepts "" too, so unequal
    assert not language_equal(a1, a2)
    a3 = make([(0, "a", 5), (5, "a", 5)], finals=(5,))
    assert language_equal(a1, a3)


def test_is_empty():
    assert is_empty(FiniteAutomaton(initials=[0]))
    assert not is_empty(make([(0, "a", 1)]))


# -- MRD -----------------------------------------------------------------------


def test_mrd_is_reverse_deterministic():
    auto = make([(0, "a", 1), (0, "b", 1), (0, "a", 2), (2, "b", 1)])
    result = mrd(auto)
    assert is_reverse_deterministic(result)
    for word in ab_words(4):
        assert auto.accepts(word) == result.accepts(word)


@settings(max_examples=120, deadline=None)
@given(random_nfa())
def test_property_determinize_minimize_preserve_language(auto):
    minimal = minimize(determinize(auto))
    for word in ab_words(4):
        assert auto.accepts(word) == minimal.accepts(word)


@settings(max_examples=120, deadline=None)
@given(random_nfa())
def test_property_mrd(auto):
    result = mrd(auto)
    assert language_equal(auto, result)
    if result.finals:
        assert is_reverse_deterministic(result)


@settings(max_examples=80, deadline=None)
@given(random_nfa())
def test_property_complement_partitions(auto):
    comp = complement(auto, {"a", "b"})
    for word in ab_words(4):
        assert comp.accepts(word) != auto.accepts(word)
    assert is_empty(intersection(determinize(auto), comp))


@settings(max_examples=80, deadline=None)
@given(random_nfa())
def test_property_double_reverse_identity(auto):
    assert language_equal(auto, reverse(reverse(auto)))


def test_transducer_apply_and_inverse():
    from repro.fsa import Transducer

    transducer = Transducer({"x": "a", "y": "a", "z": "b"})
    auto = make([(0, "x", 1), (1, "z", 2)], finals=(2,))
    mapped = transducer.apply(auto)
    assert mapped.accepts(["a", "b"])
    source = make([(0, "a", 1)], finals=(1,))
    inverse = transducer.apply_inverse(source)
    assert inverse.accepts(["x"])
    assert inverse.accepts(["y"])
    assert not inverse.accepts(["z"])
    assert transducer.inverse_of("a") == {"x", "y"}
