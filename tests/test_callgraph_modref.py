"""Call-graph and mod/ref analysis unit tests."""

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.modref import INPUT, compute_modref
from repro.lang import check, parse


def load(source):
    program = parse(source)
    info = check(program)
    return program, info, build_call_graph(program)


def test_call_graph_basic():
    _p, _i, graph = load(
        """
        void a() { b(); b(); }
        void b() { c(); }
        void c() {}
        int main() { a(); }
        """
    )
    assert graph.callees("a") == {"b"}
    assert graph.callers("b") == {"a"}
    assert len(graph.calls_from["a"]) == 2
    assert graph.reachable_from("main") == {"main", "a", "b", "c"}


def test_call_graph_captures():
    _p, _i, graph = load(
        "int f() { return 1; } int main() { int x = f(); f(); }"
    )
    sites = graph.calls_from["main"]
    assert [s.captures_return for s in sites] == [True, False]
    assert sites[0].target_var == "x"


def test_may_exit_transitive():
    _p, _i, graph = load(
        """
        void deep() { exit(1); }
        void mid() { deep(); }
        void clean() {}
        int main() { mid(); clean(); }
        """
    )
    assert graph.may_exit() == {"deep", "mid", "main"}


def test_indirect_call_rejected():
    program = parse("void f() {} int main() { fnptr p; p = f; p(); }")
    info = check(program)
    with pytest.raises(ValueError):
        build_call_graph(program)


def modref(source):
    program, info, graph = load(source)
    return compute_modref(program, info, graph)


def test_direct_mod_ref():
    result = modref(
        "int g; int h; void f() { g = h; } int main() { f(); }"
    )
    assert "g" in result.may_mod["f"]
    assert "h" in result.may_ref["f"]
    assert "g" in result.must_mod["f"]


def test_transitive_mod():
    result = modref(
        """
        int g;
        void leaf() { g = 1; }
        void mid() { leaf(); }
        int main() { mid(); }
        """
    )
    assert "g" in result.may_mod["mid"]
    assert "g" in result.may_mod["main"]
    assert "g" in result.must_mod["mid"]


def test_conditional_mod_not_must():
    result = modref(
        """
        int g;
        void f(int c) { if (c > 0) { g = 1; } }
        int main() { f(3); }
        """
    )
    assert "g" in result.may_mod["f"]
    assert "g" not in result.must_mod["f"]


def test_both_branches_is_must():
    result = modref(
        """
        int g;
        void f(int c) { if (c > 0) { g = 1; } else { g = 2; } }
        int main() { f(3); }
        """
    )
    assert "g" in result.must_mod["f"]


def test_early_return_breaks_must():
    result = modref(
        """
        int g;
        void f(int c) {
          if (c > 0) { return; }
          g = 1;
        }
        int main() { f(3); }
        """
    )
    assert "g" in result.may_mod["f"]
    assert "g" not in result.must_mod["f"]


def test_ref_param_effects():
    result = modref(
        """
        void f(ref int x) { x = 1; }
        int main() { int v; f(v); }
        """
    )
    assert "x" in result.may_mod["f"]
    assert "x" in result.must_mod["f"]


def test_ref_param_translated_to_caller_ref_param():
    result = modref(
        """
        void inner(ref int x) { x = 1; }
        void outer(ref int y) { inner(y); }
        int main() { int v; outer(v); }
        """
    )
    assert "y" in result.may_mod["outer"]


def test_ref_param_to_local_stays_internal():
    result = modref(
        """
        void inner(ref int x) { x = 1; }
        void outer() { int local; inner(local); }
        int main() { outer(); }
        """
    )
    # outer's write lands in its own local: no caller-visible mod.
    assert result.may_mod["outer"] == set()


def test_input_is_tracked_as_state():
    result = modref(
        """
        void reader() { int x = input(); }
        int main() { reader(); }
        """
    )
    assert INPUT in result.may_mod["reader"]
    assert INPUT in result.may_ref["reader"]
    assert INPUT in result.may_mod["main"]
    assert INPUT in result.must_mod["reader"]


def test_conditional_input_not_must():
    result = modref(
        """
        void reader(int c) { if (c > 0) { int x = input(); } }
        int main() { reader(1); }
        """
    )
    assert INPUT in result.may_mod["reader"]
    assert INPUT not in result.must_mod["reader"]


def test_ref_in_and_mod_out_sets():
    result = modref(
        """
        int a; int b; int c;
        void f(int p) {
          b = a;
          if (p > 0) { c = 1; }
        }
        int main() { f(1); }
        """
    )
    globals_ = {"a", "b", "c"}
    # a read; c weakly modified -> both need a formal-in; b must-modified.
    assert result.ref_in_globals("f", globals_) == {"a", "c"}
    assert result.mod_out_globals("f", globals_) == {"b", "c"}


def test_recursive_must_mod_greatest_fixpoint():
    result = modref(
        """
        int g;
        void r(int k) {
          g = 1;
          if (k > 0) { r(k - 1); }
        }
        int main() { r(3); }
        """
    )
    assert "g" in result.must_mod["r"]
